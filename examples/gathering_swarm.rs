//! Beyond the paper: multi-robot gathering (the open problem of
//! Section 5), explored empirically.
//!
//! Four robots with pairwise-distinct speeds all run the universal
//! Algorithm 7 from different start points. Every *pair* satisfies
//! Theorem 4 (different speeds), so every pair meets — but simultaneous
//! gathering of the whole swarm is a different matter, which is exactly
//! why the paper leaves it open.
//!
//! ```text
//! cargo run --release --example gathering_swarm
//! ```

use plane_rendezvous::prelude::*;
use plane_rendezvous::sim::{first_simultaneous_gathering, pairwise_meetings, DistanceTrace};

fn main() {
    // Four robots: speeds pairwise distinct, so all pairs are feasible.
    let configs = [
        (1.0, Vec2::new(0.0, 0.0)),
        (0.8, Vec2::new(0.9, 0.3)),
        (0.6, Vec2::new(-0.4, 0.7)),
        (0.45, Vec2::new(0.3, -0.8)),
    ];
    let r = 0.25;

    println!("swarm: 4 robots running Algorithm 7, speeds 1.0 / 0.8 / 0.6 / 0.45, r = {r}\n");

    // Pairwise feasibility per Theorem 4 (relative speed ≠ 1 for each pair).
    for (i, &(vi, _)) in configs.iter().enumerate() {
        for &(vj, _) in configs.iter().skip(i + 1) {
            let rel = RobotAttributes::reference().with_speed(vj / vi);
            assert!(feasibility(&rel).is_feasible());
        }
    }
    println!("every pair is feasible by Theorem 4 (pairwise speed ratios ≠ 1)\n");

    let warped: Vec<_> = configs
        .iter()
        .map(|&(v, start)| {
            RobotAttributes::reference()
                .with_speed(v)
                .frame_warp(WaitAndSearch, start)
        })
        .collect();
    let robots: Vec<&dyn MonotoneDyn> = warped.iter().map(|w| w as &dyn MonotoneDyn).collect();

    // Pairwise meeting matrix.
    let opts = ContactOptions::with_horizon(1e6).tolerance(r * 1e-6);
    let table = pairwise_meetings(&robots, r, &opts);
    println!("pairwise first-meeting times:");
    print!("      ");
    for j in 0..robots.len() {
        print!("{:>12}", format!("R{j}"));
    }
    println!();
    let mut latest: f64 = 0.0;
    for (i, row) in table.iter().enumerate() {
        print!("  R{i}  ");
        for (j, cell) in row.iter().enumerate() {
            if j <= i {
                print!("{:>12}", "·");
            } else {
                match cell {
                    Some(t) => {
                        latest = latest.max(*t);
                        print!("{t:>12.1}");
                    }
                    None => print!("{:>12}", "never"),
                }
            }
        }
        println!();
    }
    println!("\nall pairs have met by t = {latest:.1} (pairwise rendezvous composes)\n");

    // Simultaneous gathering: diameter ≤ r at one instant.
    let out = first_simultaneous_gathering(&robots, r, &ContactOptions::with_horizon(2e5));
    println!("simultaneous gathering (diameter ≤ r at one instant): {out}");
    match out {
        SimOutcome::Contact { .. } => {
            println!("-> the swarm happened to gather — not guaranteed in general!")
        }
        _ => println!("-> no simultaneous gathering within the horizon: the open problem is real"),
    }

    // Show the R0–R3 distance profile around their first meeting.
    if let Some(t01) = table[0][3] {
        let t0 = (t01 - 40.0).max(0.0);
        let trace = DistanceTrace::sample(&robots[0], &robots[3], t0, t01 + 40.0, 400);
        println!("\nR0–R3 distance around their first meeting (marker = r):");
        print!("{}", trace.ascii_plot(72, 12, Some(r)));
    }
}
