//! The heart of Section 3: a two-robot rendezvous *is* a one-robot
//! search, through the matrix `T∘ = I − v·Rot(φ)·Refl(χ)` (Lemma 4) and
//! its QR factorization (Lemma 5).
//!
//! This example runs both simulations side by side on the same instance
//! and shows they report the *same* first-contact time, then prints the
//! matrices involved.
//!
//! ```text
//! cargo run --release --example equivalent_reduction
//! ```

use plane_rendezvous::prelude::*;
use plane_rendezvous::sim::{DistanceTrace, Stationary};

fn main() {
    let attrs = RobotAttributes::reference()
        .with_speed(0.7)
        .with_orientation(2.1)
        .with_chirality(Chirality::Mirrored);
    let inst = RendezvousInstance::new(Vec2::new(0.45, 0.65), 0.04, attrs).unwrap();

    println!("instance: {inst}\n");

    // The reduction's algebra.
    let eq = EquivalentSearch::new(&attrs);
    println!(
        "Lemma 4 matrix   M  = v·Rot(φ)·Refl(χ) = {}",
        attrs.lemma4_matrix()
    );
    println!("equivalent matrix T∘ = I − M           = {}", eq.matrix());
    let qr = eq.qr();
    println!("Lemma 5 factors:  Φ  = {}", qr.q);
    println!("                  T∘' = {}", qr.r);
    println!("                  µ  = {:.6}", eq.mu());
    println!();

    // Simulation 1: the real two-robot rendezvous.
    let opts = ContactOptions::with_horizon(1e7).tolerance(inst.visibility() * 1e-9);
    let direct = simulate_rendezvous(UniversalSearch, &inst, &opts)
        .contact_time()
        .expect("feasible: v ≠ 1");

    // Simulation 2: one virtual robot T∘·S(t) hunting a stationary target.
    let virtual_robot = FrameWarp::new(UniversalSearch, eq.matrix(), Vec2::ZERO, 1.0);
    let target = Stationary::new(inst.offset());
    let reduced = first_contact(&virtual_robot, &target, inst.visibility(), &opts)
        .contact_time()
        .expect("the reduction preserves contacts");

    println!("two-robot rendezvous time:   {direct:.9}");
    println!("equivalent search time:      {reduced:.9}");
    println!(
        "difference:                  {:.3e}",
        (direct - reduced).abs()
    );
    assert!((direct - reduced).abs() <= 1e-6 * (1.0 + direct));
    println!("identical, as Lemma 4 promises.\n");

    // Show both distance profiles around the contact — they coincide.
    let reference = UniversalSearch;
    let partner = attrs.frame_warp(UniversalSearch, inst.offset());
    let t0 = (direct - 30.0).max(0.0);
    let real = DistanceTrace::sample(&reference, &partner, t0, direct + 5.0, 300);
    println!("inter-robot distance near contact (marker = r):");
    print!("{}", real.ascii_plot(72, 10, Some(inst.visibility())));

    // And the Theorem 2 bound for this (mirrored) instance.
    println!("\nTheorem 2: {}", theorem2_bound(&inst));
}
