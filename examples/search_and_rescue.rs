//! Search-and-rescue: a single robot with a short-range sensor must find
//! an immobile casualty at an unknown distance — Section 2's search
//! problem, the motivating application of the paper's introduction.
//!
//! Prints the round-by-round progress of Algorithm 4 and checks the
//! Theorem 1 time bound.
//!
//! ```text
//! cargo run --release --example search_and_rescue
//! ```

use plane_rendezvous::prelude::*;
use plane_rendezvous::search::schedule::RoundPhase;
use plane_rendezvous::search::times;

fn main() {
    // The casualty lies ~1.24 units away; the robot's sensor sees 1 cm.
    let target = Vec2::from_polar(1.24, 0.9);
    let r = 0.01;
    let inst = SearchInstance::new(target, r).unwrap();

    println!("search-and-rescue instance:");
    println!("  target at {target}, |d| = {:.4}", inst.distance());
    println!("  sensor radius r = {r}");
    println!("  difficulty d²/r = {:.1}", inst.difficulty());
    println!();

    // Round budget per Lemma 1's witnesses.
    if let Some(w) = coverage::lemma1_witness(inst.distance(), r) {
        println!(
            "Lemma 1 guarantees discovery by round {} (sub-round {}),",
            w.round, w.subround
        );
    }
    let guaranteed = coverage::guaranteed_discovery_round(inst.distance(), r).unwrap();
    println!("the sweep provably reaches the casualty in round {guaranteed}.");
    println!();

    // Print the schedule the robot executes until discovery.
    let found = first_discovery(&inst, 31).expect("always found");
    println!("round-by-round (closed-form schedule):");
    for k in 1..=found.round {
        let start = UniversalSearch::round_start(k);
        let dur = times::round_duration(k);
        println!(
            "  Search({k}): t ∈ [{:11.2}, {:11.2})  sweeps radii [{:.4}, {:.1}]",
            start,
            start + dur,
            times::inner_radius(k, 0),
            times::outer_radius(k, 2 * k - 1),
        );
    }
    println!();
    println!(
        "casualty found at t = {:.3} in round {}, sub-round {}, circle {} ({:?})",
        found.time, found.round, found.subround, found.circle, found.event
    );

    // Where was the robot at that moment?
    let robot = UniversalSearch;
    let pos = robot.position(found.time);
    println!(
        "robot position at discovery: {pos} (distance to casualty {:.4} ≤ r)",
        pos.distance(target)
    );
    if let RoundPhase::SubRound { radius, leg, .. } =
        plane_rendezvous::search::RoundSchedule::new(found.round)
            .locate(found.time - UniversalSearch::round_start(found.round))
    {
        println!("  (sweeping the circle of radius {radius:.4}, leg {leg:?})");
    }

    // And the paper's guarantee:
    let bound = coverage::theorem1_bound(inst.distance(), r);
    println!();
    println!("Theorem 1 bound: T < {bound:.1}");
    println!("measured / bound = {:.4}", found.time / bound);
    assert!(found.time < bound);

    // Cross-check with the continuous simulator.
    let sim = simulate_search(
        UniversalSearch,
        &inst,
        &ContactOptions::with_horizon(found.time + 10.0).tolerance(r * 1e-9),
    );
    println!("simulator cross-check: {sim}");
}
