//! Asymmetric clocks: Algorithm 7's phase timelines (Figures 1–2), the
//! growing active/inactive overlap (Figure 3), and a rendezvous checked
//! against Lemma 13's round bound `k*`.
//!
//! ```text
//! cargo run --release --example asymmetric_clocks
//! ```

use plane_rendezvous::core::{
    completion_time, first_sufficient_overlap_round, overlap_lemma9, PhaseSchedule,
};
use plane_rendezvous::prelude::*;

/// An ASCII timeline over a common global horizon (Figure 1): `.` while
/// the robot with clock `τ` is inactive, `#` while it is active.
fn timeline(tau: f64, horizon_global: f64, width: usize) -> String {
    (0..width)
        .map(|i| {
            let t_global = horizon_global * i as f64 / width as f64;
            let t_local = t_global / tau; // this robot's schedule clock
            let n = PhaseSchedule::round_at(t_local);
            if t_local < PhaseSchedule::active_start(n) {
                '.'
            } else {
                '#'
            }
        })
        .collect()
}

fn main() {
    let tau = 0.6;
    let dec = tau_decomposition(tau);
    println!(
        "τ = {tau} decomposes as t·2^-a with a = {}, t = {:.3}\n",
        dec.a, dec.t
    );

    // Figure 1: phase timelines of both robots on the global clock.
    let horizon = PhaseSchedule::round_end(4);
    println!(
        "Figure 1 — phase timelines ('.' inactive, '#' active), global t ∈ [0, {horizon:.0}):"
    );
    println!("  R  (τ=1):   {}", timeline(1.0, horizon, 100));
    println!("  R' (τ={tau}): {}", timeline(tau, horizon, 100));
    println!();

    // Figure 2: structure of one active phase.
    let n = 3;
    println!("Figure 2 — active phase of round {n}:");
    let a = PhaseSchedule::active_start(n);
    let mut t = a;
    for k in (1..=n).chain((1..=n).rev()) {
        let d = plane_rendezvous::search::times::round_duration(k);
        println!("  Search({k}): [{t:12.2}, {:12.2})", t + d);
        t += d;
    }
    println!();

    // Figure 3 / Lemma 9: the overlap grows without bound.
    println!("Figure 3 — Lemma 9 overlap of R's active k with R''s inactive k+1 (a=0):");
    println!(
        "  {:>3} | {:>14} | {:>14} | {:>10}",
        "k", "claimed", "computed", "S(k)/2 ref"
    );
    for k in [4, 6, 8, 10, 12] {
        let rep = overlap_lemma9(tau, k, 0);
        println!(
            "  {:>3} | {:>14.1} | {:>14.1} | {:>10}",
            k,
            rep.claimed,
            rep.computed,
            if rep.hypothesis_holds {
                "in range"
            } else {
                "off range"
            }
        );
    }
    println!();

    // Rendezvous with only the clocks differing.
    let attrs = RobotAttributes::reference().with_time_unit(tau);
    let inst = RendezvousInstance::new(Vec2::new(0.2, 0.85), 0.25, attrs).unwrap();
    let n_find = coverage::guaranteed_discovery_round(inst.distance(), inst.visibility()).unwrap();
    let k_star = lemma13_round_bound(tau, n_find);
    let analytic = first_sufficient_overlap_round(tau, n_find);
    println!("stationary-find round n = {n_find}");
    println!(
        "Lemma 13 bound k* = {k_star} (complete by t = {:.1})",
        completion_time(k_star)
    );
    println!("analytic first sufficient-overlap round = {analytic:?}");

    let opts = ContactOptions::with_horizon(completion_time(k_star)).tolerance(2.5e-7);
    match simulate_rendezvous(WaitAndSearch, &inst, &opts) {
        SimOutcome::Contact { time, .. } => {
            let round = PhaseSchedule::round_at(time);
            println!("simulated rendezvous at t = {time:.2} (round {round})");
            assert!(round <= k_star, "rendezvous later than k*!");
            println!("round {round} ≤ k* = {k_star}  ✓");
        }
        other => panic!("no rendezvous: {other}"),
    }
}
