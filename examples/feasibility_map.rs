//! The Theorem 4 feasibility map: which attribute differences make
//! rendezvous possible, confirmed by simulation on both sides of the
//! boundary.
//!
//! ```text
//! cargo run --release --example feasibility_map
//! ```

use plane_rendezvous::core::completion_time;
use plane_rendezvous::prelude::*;

fn verdict_cell(attrs: &RobotAttributes) -> &'static str {
    match feasibility(attrs) {
        Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks) => "F:clock",
        Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds) => "F:speed",
        Feasibility::Feasible(SymmetryBreaker::OrientationOffset) => "F:orient",
        Feasibility::Infeasible(_) => "  ---  ",
    }
}

fn main() {
    println!("Theorem 4: rendezvous is feasible iff τ≠1 ∨ v≠1 ∨ (χ=+1 ∧ 0<φ<2π)\n");

    let speeds = [0.5, 1.0];
    let clocks = [0.6, 1.0];
    let phis = [0.0, 1.3];

    for chi in [Chirality::Consistent, Chirality::Mirrored] {
        println!("χ = {chi}:");
        print!("  {:>12}", "v \\ (τ, φ)");
        for &tau in &clocks {
            for &phi in &phis {
                print!(" | τ={tau:<3} φ={phi:<3}");
            }
        }
        println!();
        for &v in &speeds {
            print!("  {v:>12}");
            for &tau in &clocks {
                for &phi in &phis {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    print!(" | {:^11}", verdict_cell(&attrs));
                }
            }
            println!();
        }
        println!();
    }

    // Confirm each cell by simulation.
    println!("simulation confirmation (universal Algorithm 7, d = 0.9, r = 0.25):");
    let r = 0.25;
    let mut checked = 0;
    let mut confirmed = 0;
    for &v in &speeds {
        for &tau in &clocks {
            for &phi in &phis {
                for chi in [Chirality::Consistent, Chirality::Mirrored] {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    checked += 1;
                    let verdict = feasibility(&attrs);
                    let ok = match verdict {
                        Feasibility::Feasible(_) => {
                            let inst =
                                RendezvousInstance::new(Vec2::new(0.4, 0.8), r, attrs).unwrap();
                            let opts = ContactOptions::with_horizon(completion_time(10))
                                .tolerance(r * 1e-6);
                            simulate_rendezvous(WaitAndSearch, &inst, &opts).is_contact()
                        }
                        Feasibility::Infeasible(reason) => {
                            let dir = reason.invariant_direction();
                            let inst = RendezvousInstance::new(dir * 0.9, r, attrs).unwrap();
                            let opts =
                                ContactOptions::with_horizon(5e4).tolerance(r * 1e-6);
                            matches!(
                                simulate_rendezvous(WaitAndSearch, &inst, &opts),
                                SimOutcome::Horizon { min_distance, .. } if min_distance >= 0.9 - 1e-9
                            )
                        }
                    };
                    if ok {
                        confirmed += 1;
                    } else {
                        println!("  MISMATCH at {attrs}: predicate says {verdict}");
                    }
                }
            }
        }
    }
    println!("  {confirmed}/{checked} cells confirmed by simulation");
    assert_eq!(confirmed, checked, "feasibility map mismatch");
}
