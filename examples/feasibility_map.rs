//! The Theorem 4 feasibility map: which attribute differences make
//! rendezvous possible, confirmed by simulation on both sides of the
//! boundary.
//!
//! This is the example-sized version of `rvz map`: it builds the
//! attribute grid with the `rvz-experiments` scenario generator, fans the
//! cells out with the parallel sweep executor, and checks that the
//! simulated outcome agrees with the Theorem 4 predicate on every cell —
//! adversarial placement included for the infeasible ones.
//!
//! ```text
//! cargo run --release --example feasibility_map
//! ```

use plane_rendezvous::experiments::{Algorithm, Scenario};
use plane_rendezvous::prelude::*;

fn verdict_cell(attrs: &RobotAttributes) -> &'static str {
    match feasibility(attrs) {
        Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks) => "F:clock",
        Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds) => "F:speed",
        Feasibility::Feasible(SymmetryBreaker::OrientationOffset) => "F:orient",
        Feasibility::Infeasible(_) => "  ---  ",
    }
}

fn main() {
    println!("Theorem 4: rendezvous is feasible iff τ≠1 ∨ v≠1 ∨ (χ=+1 ∧ 0<φ<2π)\n");

    let speeds = [0.5, 1.0];
    let clocks = [0.6, 1.0];
    let phis = [0.0, 1.3];

    for chi in [Chirality::Consistent, Chirality::Mirrored] {
        println!("χ = {chi}:");
        print!("  {:>12}", "v \\ (τ, φ)");
        for &tau in &clocks {
            for &phi in &phis {
                print!(" | τ={tau:<3} φ={phi:<3}");
            }
        }
        println!();
        for &v in &speeds {
            print!("  {v:>12}");
            for &tau in &clocks {
                for &phi in &phis {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    print!(" | {:^11}", verdict_cell(&attrs));
                }
            }
            println!();
        }
        println!();
    }

    // Confirm each cell by simulation, in parallel through the sweep
    // harness. Feasible cells use an arbitrary placement; infeasible
    // cells use the adversarial placement along the invariant direction,
    // which keeps the robots at distance ≥ d forever.
    let (d, r) = (0.9, 0.25);
    let mut scenarios = Vec::new();
    for &v in &speeds {
        for &tau in &clocks {
            for &phi in &phis {
                for chi in [Chirality::Consistent, Chirality::Mirrored] {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    let bearing = match feasibility(&attrs) {
                        // The pre-harness version placed the partner at
                        // (0.4, 0.8); atan2 takes (y, x).
                        Feasibility::Feasible(_) => 0.8_f64.atan2(0.4),
                        Feasibility::Infeasible(reason) => {
                            let dir = reason.invariant_direction();
                            dir.y.atan2(dir.x)
                        }
                    };
                    scenarios.push(Scenario {
                        id: scenarios.len() as u64,
                        algorithm: Algorithm::WaitAndSearch,
                        speed: v,
                        time_unit: tau,
                        orientation: phi,
                        chirality: chi,
                        distance: d,
                        bearing,
                        visibility: r,
                    });
                }
            }
        }
    }

    println!("simulation confirmation (universal Algorithm 7, d = {d}, r = {r}):");
    let records = run_sweep(&scenarios, &SweepOptions::default());
    // Strict check: adversarially placed twins must hold distance ≥ d
    // for the whole run, matching the Theorem 4 lower-bound argument.
    let confirmed = records
        .iter()
        .filter(|rec| rec.strictly_consistent())
        .count();
    for rec in records.iter().filter(|rec| !rec.strictly_consistent()) {
        println!(
            "  MISMATCH at {}: predicate says {:?}",
            rec.scenario.attributes(),
            rec.feasibility
        );
    }
    println!(
        "  {confirmed}/{} cells confirmed by simulation",
        records.len()
    );
    assert_eq!(confirmed, records.len(), "feasibility map mismatch");
}
