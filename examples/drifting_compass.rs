//! Drifting compass: the robots' only difference is their compass
//! orientation (`v = τ = 1`, `χ = +1`, `φ ≠ 0`) — the subtlest feasible
//! case of Theorem 4, where symmetry is broken purely by the angle
//! between the two robots' reference frames (Lemma 6's `µ`-scaling).
//!
//! ```text
//! cargo run --release --example drifting_compass
//! ```

use plane_rendezvous::prelude::*;

fn main() {
    let d = Vec2::new(0.0, 0.9);
    let r = 0.02;

    println!("two identical robots except for a compass offset φ; d = 0.9, r = {r}");
    println!(
        "{:>8} | {:>8} | {:>12} | {:>12} | {:>8}",
        "φ", "µ", "measured", "Thm 2 bound", "ratio"
    );

    for phi in [0.1, 0.5, 1.0, 2.0, std::f64::consts::PI, 4.5, 6.0] {
        let attrs = RobotAttributes::reference().with_orientation(phi);
        let eq = EquivalentSearch::new(&attrs);
        let inst = RendezvousInstance::new(d, r, attrs).unwrap();
        let bound = theorem2_bound(&inst).time().expect("feasible for φ ≠ 0");
        let opts = ContactOptions::with_horizon(bound * 1.05).tolerance(r * 1e-9);
        let t = simulate_rendezvous(UniversalSearch, &inst, &opts)
            .contact_time()
            .expect("rendezvous");
        println!(
            "{phi:>8.3} | {:>8.4} | {t:>12.2} | {bound:>12.1} | {:>8.4}",
            eq.mu(),
            t / bound
        );
        assert!(t < bound);
    }

    println!();
    println!("φ = 0 (exact twins) for contrast:");
    let twins = RobotAttributes::reference();
    println!("  Theorem 4: {}", feasibility(&twins));
    let inst = RendezvousInstance::new(d, r, twins).unwrap();
    let out = simulate_rendezvous(
        UniversalSearch,
        &inst,
        &ContactOptions::with_horizon(1e4).tolerance(r * 1e-9),
    );
    println!("  simulation: {out}");
    assert!(!out.is_contact());
}
