//! Quickstart: two robots with different speeds rendezvous using the
//! universal algorithm, with no knowledge of their own or each other's
//! attributes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plane_rendezvous::prelude::*;

fn main() {
    // Robot R is the reference frame (speed 1, clock 1, aligned compass).
    // Robot R' is 40% slower — it does not know this, and neither does R.
    let attrs = RobotAttributes::reference().with_speed(0.6);

    // They start 0.8 apart (unknown to them) and can see 0.05 (unknown too).
    let inst = RendezvousInstance::new(Vec2::new(0.3, 0.74), 0.05, attrs).unwrap();

    println!("instance: {inst}");
    println!("Theorem 4 verdict: {}", feasibility(&attrs));

    // Both robots run the same trajectory value — Algorithm 4 (their
    // clocks are symmetric, so Section 3's algorithm applies).
    let opts = ContactOptions::with_horizon(1e7).tolerance(5e-11);
    match simulate_rendezvous(UniversalSearch, &inst, &opts) {
        SimOutcome::Contact {
            time,
            distance,
            steps,
        } => {
            println!("rendezvous at t = {time:.3} (distance {distance:.4}, {steps} sim steps)");
            match theorem2_bound(&inst) {
                Theorem2Bound::Finite {
                    time: bound,
                    factor,
                    ..
                } => {
                    println!("Theorem 2 bound: T < {bound:.3} (symmetry factor µ = {factor:.3})");
                    println!("measured / bound = {:.4}", time / bound);
                    assert!(time < bound, "bound violated!");
                }
                Theorem2Bound::Infeasible => unreachable!("v ≠ 1 is feasible"),
            }
        }
        other => println!("unexpected outcome: {other}"),
    }

    // The same instance also solves under the fully universal Algorithm 7
    // (which additionally covers asymmetric clocks).
    let out7 = simulate_rendezvous(WaitAndSearch, &inst, &opts);
    println!("Algorithm 7 (universal): {out7}");
}
