//! # plane-rendezvous
//!
//! A full reproduction of **“Symmetry Breaking in the Plane: Rendezvous
//! by Robots with Unknown Attributes”** (Czyzowicz, Gąsieniec, Killick,
//! Kranakis — PODC 2019) as a Rust workspace.
//!
//! Two anonymous robots are dropped at unknown positions in the infinite
//! Euclidean plane. They may differ in movement speed, clock rate,
//! compass orientation and chirality — and neither robot knows any of
//! these values. Both must run the *same* deterministic algorithm.
//! The paper characterizes exactly when rendezvous is possible
//! (Theorem 4) and gives a universal algorithm that achieves it without
//! knowing which attribute differs.
//!
//! This crate is a facade that re-exports the workspace's sub-crates
//! under stable module names:
//!
//! | module | contents |
//! |---|---|
//! | [`geometry`] | vectors, matrices, QR factorization |
//! | [`numerics`] | Lambert W, root finding, dyadic helpers |
//! | [`obs`] | zero-dependency metrics registry, spans, and the flight recorder |
//! | [`trajectory`] | segments, paths, frame warps, the `Trajectory` trait |
//! | [`model`] | robot attributes, instances, the Theorem 4 predicate |
//! | [`search`] | Algorithms 1–4 (Section 2) with closed-form indexing |
//! | [`core`] | equivalent-search reduction, Algorithm 7, overlap algebra |
//! | [`sim`] | conservative-advancement continuous-time simulation |
//! | [`baselines`] | omniscient spiral, schedule ablations |
//! | [`experiments`] | scenario grids, Latin-hypercube samples, parallel sweeps, symmetry canonicalization |
//! | [`server`] | the `rvz serve` HTTP query service with the symmetry-canonicalized result cache |
//! | [`mod@bench`] | bench tables, the engine benchmark cases, the `rvz loadtest` harness |
//!
//! ## Quickstart
//!
//! ```
//! use plane_rendezvous::prelude::*;
//!
//! // Robot R' is half as fast as R — feasible by Theorem 4.
//! let attrs = RobotAttributes::reference().with_speed(0.5);
//! assert!(feasibility(&attrs).is_feasible());
//!
//! // Simulate both robots running Algorithm 4 (symmetric clocks).
//! let inst = RendezvousInstance::new(Vec2::new(0.0, 0.8), 0.05, attrs).unwrap();
//! let outcome = simulate_rendezvous(UniversalSearch, &inst, &ContactOptions::default());
//! let t = outcome.contact_time().expect("rendezvous happens");
//!
//! // ... within the Theorem 2 bound.
//! let bound = theorem2_bound(&inst).time().unwrap();
//! assert!(t < bound);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use rvz_baselines as baselines;
pub use rvz_bench as bench;
pub use rvz_core as core;
pub use rvz_experiments as experiments;
pub use rvz_geometry as geometry;
pub use rvz_model as model;
pub use rvz_numerics as numerics;
pub use rvz_obs as obs;
pub use rvz_search as search;
pub use rvz_server as server;
pub use rvz_sim as sim;
pub use rvz_trajectory as trajectory;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use rvz_core::{
        lemma13_round_bound, tau_decomposition, theorem2_bound, EquivalentSearch, PhaseSchedule,
        Theorem2Bound, WaitAndSearch,
    };
    pub use rvz_experiments::{
        latin_hypercube, run_sweep, SampleSpace, Scenario, ScenarioGrid, Summary, SweepOptions,
    };
    pub use rvz_geometry::{Mat2, Vec2};
    pub use rvz_model::{
        feasibility, Chirality, Feasibility, RendezvousInstance, RobotAttributes, SearchInstance,
        SymmetryBreaker,
    };
    pub use rvz_search::{coverage, first_discovery, times, UniversalSearch};
    pub use rvz_sim::{
        first_contact, first_contact_generic, simulate_rendezvous, simulate_search, ContactOptions,
        SimOutcome, Stationary,
    };
    pub use rvz_trajectory::{
        Cursor, FrameWarp, MonotoneDyn, MonotoneTrajectory, Path, PathBuilder, Segment, Trajectory,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item from each module to catch broken re-exports.
        let _ = crate::geometry::Vec2::ZERO;
        let _ = crate::numerics::lambert_w0(1.0);
        let _ = crate::trajectory::Path::empty();
        let _ = crate::model::RobotAttributes::reference();
        let _ = crate::search::UniversalSearch;
        let _ = crate::core::WaitAndSearch;
        let _ = crate::sim::ContactOptions::default();
        let _ = crate::baselines::ArchimedeanSpiral::with_pitch(1.0);
        let _ = crate::experiments::ScenarioGrid::new();
        let _ = crate::server::ServiceOptions::default();
    }
}
