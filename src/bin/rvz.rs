//! `rvz` — command-line front end for the plane-rendezvous library.
//!
//! ```text
//! rvz feasibility --v 1.0 --tau 0.5 --phi 0 --chi +1
//! rvz rendezvous  --dx 0.3 --dy 0.8 --r 0.05 --v 0.6
//! rvz sweep       --speeds 0.5,1 --clocks 0.6,1 --out sweep
//! rvz serve       --port 7878
//! rvz loadtest    --quick
//! rvz <command> --help
//! ```
//!
//! Arguments are `--key value` pairs; each subcommand declares its flag
//! set, so a misspelled flag fails with that subcommand's usage string
//! rather than being silently ignored. The tool is deliberately
//! dependency-free (no clap) — it exists so that a user can poke at the
//! model, the sweep harness and the query service without writing Rust.

use plane_rendezvous::core::{completion_time, first_sufficient_overlap_round, WaitAndSearch};
use plane_rendezvous::experiments::{
    latin_hypercube, parse_chirality, run_sweep, write_csv, write_jsonl, Algorithm, SampleSpace,
    ScenarioGrid, Summary, SweepOptions, SweepRecord,
};
use plane_rendezvous::prelude::*;
use plane_rendezvous::server::{Service, ServiceOptions};
use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// The counting allocator behind the `allocs_per_query` columns of
/// `BENCH_engine.json`: counts allocation calls, defers everything to
/// the system allocator (negligible overhead for a CLI).
#[global_allocator]
static ALLOC: plane_rendezvous::bench::alloc::CountingAlloc =
    plane_rendezvous::bench::alloc::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        // Bare `version` goes through its CommandSpec (so `rvz version
        // --help` prints usage like every other command).
        "--version" | "-V" => {
            println!("rvz {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        _ => {}
    }
    let Some(spec) = COMMANDS.iter().find(|spec| spec.name == command.as_str()) else {
        eprintln!("error: unknown command `{command}`\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", spec.usage);
        return ExitCode::SUCCESS;
    }
    let result = parse_flags(rest, spec).and_then(|opts| (spec.run)(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", spec.usage);
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rvz — rendezvous in the plane by robots with unknown attributes (PODC 2019)

USAGE:
  rvz <command> [--flag value ...]
  rvz <command> --help        per-command flags and semantics

COMMANDS:
  feasibility   Theorem 4 verdict for an attribute combination
  search        exact Algorithm 4 discovery time for a stationary target
  rendezvous    simulate the universal Algorithm 7 on one instance
  phases        print the Algorithm 7 phase schedule
  bounds        closed-form bounds (Theorems 1/2, Lemma 13)
  sweep         parallel scenario sweep -> JSONL + CSV artifacts
  map           Theorem 4 feasibility map, confirmed by simulation
  bench-engine  first-contact engine benchmark -> BENCH_engine.json
  serve         HTTP query service with the symmetry-canonicalized cache
  loadtest      closed-loop A/B loadtest of serve -> BENCH_serve.json
  client        one-shot HTTP client for a running rvz serve
  version       print the rvz version

All numeric flags take plain numbers; angles are in radians.";

/// One subcommand: name, flag schema, usage text, handler.
struct CommandSpec {
    name: &'static str,
    /// `(flag, takes_value)`; flags with `false` are boolean switches.
    flags: &'static [(&'static str, bool)],
    usage: &'static str,
    run: fn(&Flags) -> Result<(), String>,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "feasibility",
        flags: &[("v", true), ("tau", true), ("phi", true), ("chi", true)],
        usage: "\
USAGE:
  rvz feasibility [--v V] [--tau T] [--phi P] [--chi +1|-1]

Theorem 4 verdict for the attribute combination (defaults: the
reference robot's twin, v = tau = 1, phi = 0, chi = +1).",
        run: cmd_feasibility,
    },
    CommandSpec {
        name: "search",
        flags: &[("x", true), ("y", true), ("r", true), ("max-round", true)],
        usage: "\
USAGE:
  rvz search --x X --y Y --r R [--max-round K]

Exact Algorithm 4 discovery time for a stationary target at (X, Y)
with visibility radius R; reports the Theorem 1 bound when d²/r ≥ 2.",
        run: cmd_search,
    },
    CommandSpec {
        name: "rendezvous",
        flags: &[
            ("dx", true),
            ("dy", true),
            ("r", true),
            ("v", true),
            ("tau", true),
            ("phi", true),
            ("chi", true),
            ("horizon", true),
        ],
        usage: "\
USAGE:
  rvz rendezvous --dx X --dy Y --r R [--v V] [--tau T] [--phi P]
                 [--chi +1|-1] [--horizon H]

Simulate the universal Algorithm 7 on the instance with R' placed at
(X, Y) and the given attributes.",
        run: cmd_rendezvous,
    },
    CommandSpec {
        name: "phases",
        flags: &[("rounds", true), ("tau", true)],
        usage: "\
USAGE:
  rvz phases [--rounds N] [--tau T]

Print the Algorithm 7 phase schedule (and its tau-scaled copy).",
        run: cmd_phases,
    },
    CommandSpec {
        name: "bounds",
        flags: &[
            ("d", true),
            ("r", true),
            ("v", true),
            ("tau", true),
            ("phi", true),
            ("chi", true),
        ],
        usage: "\
USAGE:
  rvz bounds --d D --r R [--v V] [--phi P] [--chi +1|-1] [--tau T]

Closed-form bounds: Theorem 1/2, and Lemma 13's k* when tau ≠ 1.",
        run: cmd_bounds,
    },
    CommandSpec {
        name: "sweep",
        flags: &[
            ("speeds", true),
            ("clocks", true),
            ("phis", true),
            ("chis", true),
            ("distances", true),
            ("bearings", true),
            ("r", true),
            ("algos", true),
            ("lhs", true),
            ("seed", true),
            ("threads", true),
            ("max-steps", true),
            ("horizon-rounds", true),
            ("no-prune", false),
            ("compile-budget", true),
            ("dedup-orbits", false),
            ("out", true),
            ("checkpoint", true),
            ("resume", false),
            ("faults", true),
            ("heartbeat", false),
        ],
        usage: "\
USAGE:
  rvz sweep [--speeds L] [--clocks L] [--phis L] [--chis L] [--distances L]
            [--bearings L] [--r R] [--algos L] [--lhs N] [--seed S]
            [--threads N] [--max-steps M] [--horizon-rounds K] [--no-prune]
            [--compile-budget P] [--dedup-orbits] [--out PREFIX]
            [--checkpoint PATH] [--resume] [--faults SPEC] [--heartbeat]

Run a parallel scenario sweep (grid by default, Latin-hypercube sample
with --lhs N) and write PREFIX.jsonl + PREFIX.csv. List flags (L) take
comma-separated values, e.g. --speeds 0.5,1. --no-prune disables the
engine's swept-envelope pruning layer (A/B escape hatch; outcomes keep
the same classification). --compile-budget caps the compiled fast
path's piece arena per trajectory (0 keeps everything on the cursor
path). --dedup-orbits collapses role-swap symmetric scenarios through
the exact canonical orbit before running, simulates one representative
per orbit, and maps outcomes back through the orbit transform.

Checkpointing: --checkpoint PATH journals each finished record (CRC
per line, fsync'd manifest) so a killed sweep can continue with
--resume, which replays the journal's valid prefix and computes only
what is missing — the artifacts are bit-identical to an uninterrupted
run, independent of --threads and of where the kill landed. A journal
from a different sweep (flags or scenario set changed) is refused.
--faults injects deterministic seeded disk faults into the checkpoint
I/O (keys: seed, short_write, torn_rename, read_corrupt, fsync_fail,
limit) — tests/CI only.

--heartbeat prints a progress line to stderr about once a second
(done/total, rate, elapsed). Observation-only: artifacts and
checkpoints are byte-identical with it on or off.",
        run: cmd_sweep,
    },
    CommandSpec {
        name: "map",
        flags: &[
            ("speeds", true),
            ("clocks", true),
            ("phis", true),
            ("d", true),
            ("r", true),
            ("threads", true),
            ("max-steps", true),
            ("horizon-rounds", true),
            ("no-prune", false),
            ("compile-budget", true),
        ],
        usage: "\
USAGE:
  rvz map [--speeds L] [--clocks L] [--phis L] [--d D] [--r R] [--threads N]
          [--max-steps M] [--horizon-rounds K] [--no-prune]
          [--compile-budget P]

Print the Theorem 4 feasibility map over the attribute grid and confirm
every cell by simulation. Raise --horizon-rounds (default 9) and
--max-steps for hard instances (large d²/r).",
        run: cmd_map,
    },
    CommandSpec {
        name: "bench-engine",
        flags: &[
            ("quick", false),
            ("no-prune", false),
            ("enforce-steps", false),
            ("no-metrics", false),
            ("out", true),
        ],
        usage: "\
USAGE:
  rvz bench-engine [--quick] [--no-prune] [--enforce-steps]
                   [--no-metrics] [--out PATH]

Benchmark the first-contact engine (seed conservative loop vs the
monotone-cursor fast path with swept-envelope pruning) on the canonical
case set; print the comparison table (incl. pruned intervals and
envelope queries) and write the machine-readable report to PATH
(default BENCH_engine.json). --quick runs a sub-second smoke variant
for CI; --no-prune A/Bs the pruning layer; --enforce-steps fails if the
cursor engine ever takes more steps than the generic loop.
--no-metrics flips the global telemetry kill switch before measuring —
CI diffs the deterministic report fields against a metrics-on run to
prove recording never changes an outcome.",
        run: cmd_bench_engine,
    },
    CommandSpec {
        name: "serve",
        flags: &[
            ("addr", true),
            ("port", true),
            ("workers", true),
            ("cache-capacity", true),
            ("cache-grid", true),
            ("no-cache", false),
            ("sweep-threads", true),
            ("max-steps", true),
            ("horizon-rounds", true),
            ("no-prune", false),
            ("compile-budget", true),
            ("deadline-ms", true),
            ("max-inflight", true),
            ("queue-depth", true),
            ("drain-ms", true),
            ("faults", true),
            ("snapshot", true),
            ("snapshot-interval-s", true),
            ("no-metrics", false),
            ("slow-log-ms", true),
        ],
        usage: "\
USAGE:
  rvz serve [--addr A] [--port P] [--workers N] [--cache-capacity N]
            [--cache-grid G] [--no-cache] [--sweep-threads N]
            [--max-steps M] [--horizon-rounds K] [--no-prune]
            [--compile-budget P] [--deadline-ms D] [--max-inflight N]
            [--queue-depth N] [--drain-ms D] [--faults SPEC]
            [--snapshot PATH] [--snapshot-interval-s S]
            [--no-metrics] [--slow-log-ms T]

Serve feasibility/first-contact/sweep queries over HTTP/1.1 with a
sharded LRU cache keyed by each scenario's attribute-symmetry orbit.
--port 0 binds an ephemeral port (printed on startup). --cache-grid is
the canonicalization step, snapped to a power of two (default 2^-30;
0 = bit-exact keys); --no-cache simulates every request (the loadtest
baseline). Engine flags mirror `rvz sweep`. Stop with POST /shutdown.

Overload controls: --deadline-ms caps each request's engine wall clock
(outcome \"deadline\", never cached; default: none), --max-inflight
bounds concurrent engine runs (excess shed with 503 + Retry-After;
default: unlimited), --queue-depth bounds accepted-but-unserved
connections (overflow shed with 503; default 1024), --drain-ms is the
graceful-shutdown drain deadline (default 5000). --faults takes a
deterministic seeded fault-injection spec `key=value,...` (keys: seed,
worker_panic, handler_panic, cache_fail, conn_reset, delay_rate,
delay_ms, short_write, torn_rename, read_corrupt, fsync_fail, limit)
— tests/CI only.

Durability: --snapshot PATH warm-starts the cache from a crash-safe
snapshot at boot (torn/corrupt/version-skewed files degrade to a
salvaged prefix or a cold start, never a refusal to boot), rewrites it
every --snapshot-interval-s seconds (default 30; temp + fsync + atomic
rename, a kill can never destroy the previous snapshot), and once more
on graceful drain. The restore outcome (cold|warm|salvaged n) is in
the boot banner and GET /stats.

Observability: every response carries an X-Rvz-Trace ID (echoed from
the request's X-Rvz-Trace header when it is 16 hex digits, otherwise
assigned from a deterministic sequence). GET /metrics serves the
Prometheus text exposition (request/cache/engine/fault counters and
latency histograms); GET /trace/recent serves the span flight
recorder as JSON (?n= caps the count). --slow-log-ms T logs one JSON
line to stderr for every request at or above T milliseconds (trace,
endpoint, status, cache outcome, orbit, engine work profile).
--no-metrics disables all metric recording and makes /metrics and
/trace/recent answer 404 like any unknown endpoint — result bodies
and headers are byte-identical either way.

ENDPOINTS:
  GET  /feasibility?v=&tau=&phi=&chi=   Theorem 4 verdict + orbit
  POST /feasibility                     same, scenario JSON body
  POST /first-contact                   engine outcome for one scenario
  POST /sweep                           {\"scenarios\": [...]} batch
  GET  /metrics | GET /trace/recent     observability (unless --no-metrics)
  GET  /stats | GET /healthz | POST /shutdown",
        run: cmd_serve,
    },
    CommandSpec {
        name: "loadtest",
        flags: &[
            ("quick", false),
            ("clients", true),
            ("requests", true),
            ("families", true),
            ("out", true),
            ("timeout-ms", true),
            ("check-overload", false),
            ("retries", true),
        ],
        usage: "\
USAGE:
  rvz loadtest [--quick] [--clients N] [--requests N] [--families N]
               [--out PATH] [--timeout-ms T] [--check-overload]
               [--retries N]

Loadtest of the serve stack. First the closed loop on a symmetric
workload: an in-process server per arm (cached, then --no-cache), N
clients issuing /first-contact queries over keep-alive connections,
throughput/latency percentiles and the cached-vs-uncached speedup.
Then the open loop: one-shot requests offered at 1x and 2x the
measured no-cache capacity against an admission-controlled server,
reporting offered vs accepted rate, 503 shed rate, and accepted p50/p99
per arm. Writes the machine-readable schema-v2 report to PATH (default
BENCH_serve.json). --requests is per client per arm; --timeout-ms sets
the client connect/read timeouts; --check-overload exits nonzero
unless the 2x arm sheds without collapsing (nonzero 503s, nonzero
accepted, accepted p99 within 5x of the 1x arm's). --retries lets each
closed-loop client retry 503s with capped jittered backoff honoring
Retry-After (default 0; the overload arms never retry — they measure
shedding).",
        run: cmd_loadtest,
    },
    CommandSpec {
        name: "client",
        flags: &[
            ("addr", true),
            ("path", true),
            ("method", true),
            ("body", true),
            ("timeout-ms", true),
            ("retries", true),
        ],
        usage: "\
USAGE:
  rvz client --addr HOST:PORT --path /endpoint [--method GET|POST]
             [--body JSON] [--timeout-ms T] [--retries N]

One-shot HTTP client for a running `rvz serve`: sends a single request
and prints the status, the X-Rvz-Cache (hit/miss/bypass) and
X-Rvz-Trace headers when present, and the response body. The method defaults to GET without a
body and POST with one. --timeout-ms bounds both the connect and the
read (default: connect 5000, read 30000). --retries N retries `503
Retry-After` sheds up to N times with capped jittered backoff,
sleeping at least the server's Retry-After hint (default 0: fail
fast).",
        run: cmd_client,
    },
    CommandSpec {
        name: "version",
        flags: &[],
        usage: "\
USAGE:
  rvz version

Print the rvz version.",
        run: |_| {
            println!("rvz {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        },
    },
];

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String], spec: &CommandSpec) -> Result<Flags, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected `--flag`, got `{key}`"));
        };
        let Some(&(name, takes_value)) = spec.flags.iter().find(|(f, _)| *f == name) else {
            return Err(format!("unknown flag `--{name}` for `rvz {}`", spec.name));
        };
        if !takes_value {
            map.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag `--{name}` needs a value"));
        };
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn get_f64(opts: &Flags, key: &str, default: Option<f64>) -> Result<f64, String> {
    match opts.get(key) {
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("`--{key}` expects a number, got `{v}`")),
        None => default.ok_or_else(|| format!("missing required flag `--{key}`")),
    }
}

fn get_u32(opts: &Flags, key: &str, default: u32) -> Result<u32, String> {
    match opts.get(key) {
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| format!("`--{key}` expects an integer, got `{v}`")),
        None => Ok(default),
    }
}

fn get_usize(opts: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("`--{key}` expects an integer, got `{v}`")),
        None => Ok(default),
    }
}

/// `--timeout-ms`, validated eagerly: zero is rejected by name so a
/// misconfigured run fails before any socket is opened.
fn get_timeout_ms(opts: &Flags) -> Result<Option<u64>, String> {
    match opts.get("timeout-ms") {
        None => Ok(None),
        Some(v) => {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("`--timeout-ms` expects an integer, got `{v}`"))?;
            if ms == 0 {
                return Err("`--timeout-ms` must be positive (milliseconds)".into());
            }
            Ok(Some(ms))
        }
    }
}

fn get_list_f64(opts: &Flags, key: &str) -> Result<Option<Vec<f64>>, String> {
    let Some(raw) = opts.get(key) else {
        return Ok(None);
    };
    raw.split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|_| format!("`--{key}` expects comma-separated numbers, got `{v}`"))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn get_chirality(opts: &Flags) -> Result<Chirality, String> {
    match opts.get("chi") {
        None => Ok(Chirality::Consistent),
        Some(s) => parse_chirality(s).map_err(|_| format!("`--chi` expects +1 or -1, got `{s}`")),
    }
}

fn get_algorithms(opts: &Flags) -> Result<Option<Vec<Algorithm>>, String> {
    let Some(raw) = opts.get("algos") else {
        return Ok(None);
    };
    raw.split(',')
        .map(|s| Algorithm::parse(s.trim()))
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// Applies the shared engine-tuning flags (`--max-steps`,
/// `--horizon-rounds`, `--no-prune`) plus the thread flag named
/// `thread_key` on top of the sweep defaults.
fn sweep_options(opts: &Flags, thread_key: &str) -> Result<SweepOptions, String> {
    let mut sweep_opts = SweepOptions {
        threads: get_usize(opts, thread_key, 0)?,
        ..SweepOptions::default()
    };
    if let Some(max_steps) = opts.get("max-steps") {
        sweep_opts.contact.max_steps = max_steps
            .parse::<u64>()
            .map_err(|_| format!("`--max-steps` expects an integer, got `{max_steps}`"))?;
    }
    if let Some(rounds) = opts.get("horizon-rounds") {
        let k = rounds
            .parse::<u32>()
            .map_err(|_| format!("`--horizon-rounds` expects an integer, got `{rounds}`"))?;
        if !(1..=31).contains(&k) {
            return Err("`--horizon-rounds` must be in 1..=31".into());
        }
        sweep_opts.contact.horizon = completion_time(k);
    }
    if opts.contains_key("no-prune") {
        sweep_opts.contact.prune = false;
    }
    if let Some(budget) = opts.get("compile-budget") {
        sweep_opts.compile_pieces = budget
            .parse::<usize>()
            .map_err(|_| format!("`--compile-budget` expects an integer, got `{budget}`"))?;
    }
    Ok(sweep_opts)
}

fn attributes(opts: &Flags) -> Result<RobotAttributes, String> {
    let v = get_f64(opts, "v", Some(1.0))?;
    let tau = get_f64(opts, "tau", Some(1.0))?;
    let phi = get_f64(opts, "phi", Some(0.0))?;
    if v <= 0.0 || tau <= 0.0 {
        return Err("speed and time unit must be positive".into());
    }
    Ok(RobotAttributes::new(v, tau, phi, get_chirality(opts)?))
}

fn cmd_feasibility(opts: &Flags) -> Result<(), String> {
    let attrs = attributes(opts)?;
    println!("attributes: {attrs}");
    println!("verdict:    {}", feasibility(&attrs));
    Ok(())
}

fn cmd_search(opts: &Flags) -> Result<(), String> {
    let x = get_f64(opts, "x", None)?;
    let y = get_f64(opts, "y", None)?;
    let r = get_f64(opts, "r", None)?;
    let max_round = get_u32(opts, "max-round", 31)?;
    let inst = SearchInstance::new(Vec2::new(x, y), r).map_err(|e| e.to_string())?;
    println!(
        "instance: target ({x}, {y}), d = {:.6}, r = {r}, d²/r = {:.3}",
        inst.distance(),
        inst.difficulty()
    );
    match first_discovery(&inst, max_round.min(31)) {
        Some(found) => {
            println!(
                "discovered at t = {:.6} (round {}, sub-round {}, circle {}, {:?})",
                found.time, found.round, found.subround, found.circle, found.event
            );
            if inst.difficulty() >= 2.0 {
                let bound = coverage::theorem1_bound(inst.distance(), r);
                println!(
                    "Theorem 1 bound: {bound:.3}  (measured/bound = {:.4})",
                    found.time / bound
                );
            }
        }
        None => println!("not discovered within {max_round} rounds"),
    }
    Ok(())
}

fn cmd_rendezvous(opts: &Flags) -> Result<(), String> {
    let dx = get_f64(opts, "dx", None)?;
    let dy = get_f64(opts, "dy", None)?;
    let r = get_f64(opts, "r", None)?;
    let attrs = attributes(opts)?;
    let inst = RendezvousInstance::new(Vec2::new(dx, dy), r, attrs).map_err(|e| e.to_string())?;
    println!("instance: {inst}");
    println!("Theorem 4: {}", feasibility(&attrs));
    let horizon = get_f64(opts, "horizon", Some(completion_time(12)))?;
    let out = simulate_rendezvous(
        WaitAndSearch,
        &inst,
        &ContactOptions::with_horizon(horizon).tolerance(r * 1e-6),
    );
    println!("Algorithm 7 simulation: {out}");
    Ok(())
}

fn cmd_phases(opts: &Flags) -> Result<(), String> {
    let rounds = get_u32(opts, "rounds", 6)?.clamp(1, 20);
    let tau = get_f64(opts, "tau", Some(1.0))?;
    if tau <= 0.0 {
        return Err("`--tau` must be positive".into());
    }
    println!(
        "{:>3} | {:>16} | {:>16} | {:>16}",
        "n", "I(n)", "A(n)", "round end"
    );
    for n in 1..=rounds {
        println!(
            "{n:>3} | {:>16.2} | {:>16.2} | {:>16.2}",
            tau * PhaseSchedule::inactive_start(n),
            tau * PhaseSchedule::active_start(n),
            tau * PhaseSchedule::round_end(n)
        );
    }
    if tau != 1.0 {
        println!("(boundaries scaled by τ = {tau})");
    }
    Ok(())
}

fn cmd_bounds(opts: &Flags) -> Result<(), String> {
    let d = get_f64(opts, "d", None)?;
    let r = get_f64(opts, "r", None)?;
    let attrs = attributes(opts)?;
    if d <= 0.0 || r <= 0.0 {
        return Err("`--d` and `--r` must be positive".into());
    }
    if d * d / r >= 2.0 {
        println!(
            "Theorem 1 (search): T < {:.3}",
            coverage::theorem1_bound(d, r)
        );
    }
    if attrs.time_unit() == 1.0 {
        if attrs.speed() <= 1.0 {
            let inst =
                RendezvousInstance::new(Vec2::new(0.0, d), r, attrs).map_err(|e| e.to_string())?;
            println!("Theorem 2 (rendezvous, τ = 1): {}", theorem2_bound(&inst));
        } else {
            println!("Theorem 2: normalize so the reference robot is fastest (v ≤ 1)");
        }
    } else {
        let tau = attrs.time_unit();
        let tau_norm = if tau < 1.0 { tau } else { 1.0 / tau };
        let n = coverage::guaranteed_discovery_round(d, r)
            .ok_or("instance beyond the supported round horizon")?;
        let dec = tau_decomposition(tau_norm);
        let k_star = lemma13_round_bound(tau_norm, n);
        println!("stationary-find round n = {n}");
        println!("τ = {tau} ⇒ t·2^-a with a = {}, t = {:.4}", dec.a, dec.t);
        println!("Lemma 13 round bound: k* = {k_star}");
        if k_star <= 31 {
            println!("complete-by time: I(k*+1) = {:.3}", completion_time(k_star));
            if let Some(meas) = first_sufficient_overlap_round(tau_norm, n) {
                println!("analytic sufficient-overlap round: {meas}");
            }
        } else {
            println!("(k* beyond the supported schedule horizon of 31 rounds)");
        }
    }
    Ok(())
}

fn save_artifact<F>(path: &str, records: &[SweepRecord], write: F) -> Result<(), String>
where
    F: FnOnce(&mut std::io::BufWriter<std::fs::File>, &[SweepRecord]) -> std::io::Result<()>,
{
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    write(&mut w, records)
        .and_then(|()| w.flush())
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_sweep(opts: &Flags) -> Result<(), String> {
    let r = get_f64(opts, "r", Some(0.1))?;
    if r <= 0.0 {
        return Err("`--r` must be positive".into());
    }

    let scenarios = if opts.contains_key("lhs") {
        let n = get_usize(opts, "lhs", 0)?;
        if n == 0 {
            return Err("`--lhs` expects a positive sample count".into());
        }
        let seed = get_usize(opts, "seed", 0)? as u64;
        let mut space = SampleSpace {
            visibility: r,
            ..Default::default()
        };
        if let Some(algos) = get_algorithms(opts)? {
            space.algorithms = algos;
        }
        latin_hypercube(&space, n, seed)
    } else {
        let mut grid = ScenarioGrid::new()
            .visibilities(&[r])
            .speeds(&[0.5, 0.75, 1.0, 1.25])
            .clocks(&[0.5, 1.0, 1.5])
            .orientations(&[0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .distances(&[0.6, 1.0, 1.4]);
        if let Some(v) = get_list_f64(opts, "speeds")? {
            grid = grid.speeds(&v);
        }
        if let Some(v) = get_list_f64(opts, "clocks")? {
            grid = grid.clocks(&v);
        }
        if let Some(v) = get_list_f64(opts, "phis")? {
            grid = grid.orientations(&v);
        }
        if let Some(v) = get_list_f64(opts, "distances")? {
            grid = grid.distances(&v);
        }
        if let Some(v) = get_list_f64(opts, "bearings")? {
            grid = grid.bearings(&v);
        }
        if let Some(chis) = opts.get("chis") {
            let values = chis
                .split(',')
                .map(|s| parse_chirality(s.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            grid = grid.chiralities(&values);
        }
        if let Some(algos) = get_algorithms(opts)? {
            grid = grid.algorithms(&algos);
        }
        grid.build()
    };

    let mut sweep_opts = sweep_options(opts, "threads")?;
    sweep_opts.heartbeat = opts.contains_key("heartbeat");

    let checkpoint = opts.get("checkpoint").map(std::path::PathBuf::from);
    if opts.contains_key("resume") && checkpoint.is_none() {
        return Err("`--resume` needs `--checkpoint PATH` (there is nothing to resume)".into());
    }
    if opts.contains_key("faults") && checkpoint.is_none() {
        return Err("`--faults` only applies to checkpoint I/O; pass `--checkpoint PATH`".into());
    }
    if checkpoint.is_some() && opts.contains_key("dedup-orbits") {
        // The journal records scenario rows one-to-one; the dedup path
        // computes representatives, so its work units do not match.
        return Err("`--checkpoint` and `--dedup-orbits` cannot be combined".into());
    }
    let disk_faults = match opts.get("faults") {
        None => None,
        Some(spec) => {
            let plan = plane_rendezvous::experiments::DiskFaultPlan::parse(spec)
                .map_err(|e| format!("`--faults`: {e}"))?;
            plan.is_active()
                .then(|| std::sync::Arc::new(plane_rendezvous::experiments::DiskFaults::new(plan)))
        }
    };

    println!(
        "sweeping {} scenarios on {} threads ...",
        scenarios.len(),
        sweep_opts.effective_threads()
    );
    let start = Instant::now();
    let mut checkpoint_stats = None;
    let (records, dedup) = if let Some(path) = &checkpoint {
        let (records, stats) = plane_rendezvous::experiments::run_sweep_checkpointed(
            &scenarios,
            &sweep_opts,
            path,
            opts.contains_key("resume"),
            disk_faults,
        )?;
        checkpoint_stats = Some(stats);
        (records, None)
    } else if opts.contains_key("dedup-orbits") {
        let (records, stats) =
            plane_rendezvous::experiments::run_sweep_deduped_default(&scenarios, &sweep_opts);
        (records, Some(stats))
    } else {
        (run_sweep(&scenarios, &sweep_opts), None)
    };
    let wall = start.elapsed().as_secs_f64();

    let prefix = opts.get("out").map(String::as_str).unwrap_or("sweep");
    save_artifact(&format!("{prefix}.jsonl"), &records, write_jsonl)?;
    save_artifact(&format!("{prefix}.csv"), &records, write_csv)?;

    print!("{}", Summary::from_records(&records).render());
    if let Some(stats) = dedup {
        println!(
            "orbit dedup: {} scenarios -> {} representatives ({:.2}x collapse)",
            stats.scenarios,
            stats.representatives,
            stats.ratio()
        );
    }
    if let Some(stats) = checkpoint_stats {
        println!(
            "checkpoint: {} resumed, {} computed, {} torn lines dropped{}",
            stats.resumed,
            stats.computed,
            stats.dropped,
            if stats.sync_failures > 0 {
                format!(", {} sync failures", stats.sync_failures)
            } else {
                String::new()
            }
        );
    }
    println!(
        "wall time: {wall:.3} s  ({:.0} instances/s)",
        records.len() as f64 / wall
    );
    Ok(())
}

fn cmd_bench_engine(opts: &Flags) -> Result<(), String> {
    use plane_rendezvous::bench::engine::{
        batch_summary, grazing_summary, measure_all, measure_batches, render_batch_table,
        render_json, render_table, step_regressions,
    };
    let quick = opts.contains_key("quick");
    let prune = !opts.contains_key("no-prune");
    if opts.contains_key("no-metrics") {
        plane_rendezvous::obs::set_enabled(false);
    }
    let path = opts
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json");
    println!(
        "benchmarking the first-contact engine ({} mode{}): seed loop vs cursor fast path vs compiled programs ...",
        if quick { "quick" } else { "full" },
        if prune { "" } else { ", pruning off" }
    );
    let start = Instant::now();
    let measurements = measure_all(quick, prune);
    print!("{}", render_table(&measurements));
    let batches = measure_batches(quick);
    print!("{}", render_batch_table(&batches));
    let json = render_json(&measurements, &batches, quick);
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "wrote {path}  ({:.2} s total)",
        start.elapsed().as_secs_f64()
    );
    println!("{}", grazing_summary(&measurements));
    println!("{}", batch_summary(&batches));
    if opts.contains_key("enforce-steps") {
        let regressions = step_regressions(&measurements);
        if !regressions.is_empty() {
            return Err(format!(
                "cursor engine took more steps than the generic engine on: {}",
                regressions.join(", ")
            ));
        }
        println!("step check: cursor engine never exceeded the generic engine's steps");
    }
    Ok(())
}

fn cmd_map(opts: &Flags) -> Result<(), String> {
    let speeds = get_list_f64(opts, "speeds")?.unwrap_or_else(|| vec![0.5, 1.0]);
    let clocks = get_list_f64(opts, "clocks")?.unwrap_or_else(|| vec![0.6, 1.0]);
    let phis = get_list_f64(opts, "phis")?.unwrap_or_else(|| vec![0.0, 1.3]);
    let d = get_f64(opts, "d", Some(0.9))?;
    let r = get_f64(opts, "r", Some(0.25))?;
    if d <= 0.0 || r <= 0.0 {
        return Err("`--d` and `--r` must be positive".into());
    }

    println!("Theorem 4: rendezvous is feasible iff τ≠1 ∨ v≠1 ∨ (χ=+1 ∧ 0<φ<2π)\n");
    for chi in [Chirality::Consistent, Chirality::Mirrored] {
        println!("χ = {chi}:");
        print!("  {:>12}", "v \\ (τ, φ)");
        for &tau in &clocks {
            for &phi in &phis {
                print!(" | τ={tau:<4} φ={phi:<4}");
            }
        }
        println!();
        for &v in &speeds {
            print!("  {v:>12}");
            for &tau in &clocks {
                for &phi in &phis {
                    let cell = match feasibility(&RobotAttributes::new(v, tau, phi, chi)) {
                        Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks) => "F:clock",
                        Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds) => "F:speed",
                        Feasibility::Feasible(SymmetryBreaker::OrientationOffset) => "F:orient",
                        Feasibility::Infeasible(_) => "  ---  ",
                    };
                    print!(" | {cell:^12}");
                }
            }
            println!();
        }
        println!();
    }

    // Confirm every cell by simulation through the sweep harness. The
    // placement bearing is adversarial for infeasible cells (along the
    // invariant direction) and arbitrary otherwise.
    let mut scenarios = Vec::new();
    for &v in &speeds {
        for &tau in &clocks {
            for &phi in &phis {
                for chi in [Chirality::Consistent, Chirality::Mirrored] {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    let bearing = match feasibility(&attrs) {
                        Feasibility::Feasible(_) => 1.1,
                        Feasibility::Infeasible(reason) => {
                            let dir = reason.invariant_direction();
                            dir.y.atan2(dir.x)
                        }
                    };
                    scenarios.push(plane_rendezvous::experiments::Scenario {
                        id: scenarios.len() as u64,
                        algorithm: Algorithm::WaitAndSearch,
                        speed: v,
                        time_unit: tau,
                        orientation: phi,
                        chirality: chi,
                        distance: d,
                        bearing,
                        visibility: r,
                    });
                }
            }
        }
    }

    let sweep_opts = sweep_options(opts, "threads")?;
    println!(
        "simulation confirmation (universal Algorithm 7, d = {d}, r = {r}, {} cells):",
        scenarios.len()
    );
    let records = run_sweep(&scenarios, &sweep_opts);
    let confirmed = records
        .iter()
        .filter(|rec| rec.strictly_consistent())
        .count();
    for rec in records.iter().filter(|rec| !rec.strictly_consistent()) {
        println!(
            "  MISMATCH at {}: predicate says {}, simulation says {}",
            rec.scenario.attributes(),
            rec.feasibility,
            rec.outcome
        );
    }
    println!(
        "  {confirmed}/{} cells confirmed by simulation",
        records.len()
    );
    if confirmed == records.len() {
        Ok(())
    } else {
        Err("feasibility map mismatch".into())
    }
}

fn cmd_serve(opts: &Flags) -> Result<(), String> {
    let addr = opts.get("addr").map(String::as_str).unwrap_or("127.0.0.1");
    let port = get_usize(opts, "port", 7878)?;
    if port > u16::MAX as usize {
        return Err("`--port` must fit in 16 bits".into());
    }
    let workers = match get_usize(opts, "workers", 0)? {
        0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
        n => n,
    };
    let cache_grid = get_f64(
        opts,
        "cache-grid",
        Some(plane_rendezvous::experiments::DEFAULT_GRID),
    )?;
    let deadline = match opts.get("deadline-ms") {
        None => None,
        Some(v) => {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("`--deadline-ms` expects an integer, got `{v}`"))?;
            if ms == 0 {
                return Err("`--deadline-ms` must be positive (milliseconds)".into());
            }
            Some(std::time::Duration::from_millis(ms))
        }
    };
    let faults = match opts.get("faults") {
        None => None,
        Some(spec) => Some(
            plane_rendezvous::server::FaultPlan::parse(spec)
                .map_err(|e| format!("`--faults`: {e}"))?,
        ),
    };
    let slow_log_ms = match opts.get("slow-log-ms") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("`--slow-log-ms` expects an integer, got `{v}`"))?,
        ),
    };
    let no_metrics = opts.contains_key("no-metrics");
    if no_metrics {
        // Kill switch: every counter add, histogram observe, and span
        // record in the process becomes a no-op.
        plane_rendezvous::obs::set_enabled(false);
    }
    let service_opts = ServiceOptions {
        cache_capacity: get_usize(opts, "cache-capacity", 65_536)?.max(1),
        cache_grid,
        no_cache: opts.contains_key("no-cache"),
        sweep: sweep_options(opts, "sweep-threads")?,
        deadline,
        max_inflight: get_usize(opts, "max-inflight", 0)?,
        faults,
        no_metrics,
        slow_log_ms,
        ..ServiceOptions::default()
    };
    let no_cache = service_opts.no_cache;
    let server_opts = plane_rendezvous::server::ServerOptions {
        workers,
        queue_depth: get_usize(opts, "queue-depth", 1024)?.max(1),
        drain: std::time::Duration::from_millis(get_usize(opts, "drain-ms", 5_000)? as u64),
        faults,
    };
    let snapshot_path = opts.get("snapshot").map(std::path::PathBuf::from);
    let snapshot_interval = get_usize(opts, "snapshot-interval-s", 30)?.max(1) as u64;

    let service = Service::new(service_opts);
    // Restore before the listener exists: the first accepted request
    // already sees the warm cache.
    let restore = snapshot_path
        .as_ref()
        .map(|path| service.restore_from(path));

    let server =
        plane_rendezvous::server::spawn_with(&format!("{addr}:{port}"), service, &server_opts)
            .map_err(|e| format!("cannot bind {addr}:{port}: {e}"))?;
    println!("rvz serve listening on {}", server.addr());
    println!(
        "workers = {workers}, cache = {}, grid = {}, queue = {}, deadline = {}, metrics = {}",
        if no_cache { "off" } else { "on" },
        plane_rendezvous::experiments::snap_grid(cache_grid),
        server_opts.queue_depth,
        deadline.map_or("none".to_string(), |d| format!("{} ms", d.as_millis())),
        if no_metrics { "off" } else { "on" },
    );
    if let (Some(path), Some(outcome)) = (&snapshot_path, &restore) {
        println!(
            "snapshot: {} every {snapshot_interval} s, restore: {outcome}",
            path.display()
        );
    }
    println!(
        "stop with: rvz client --addr {} --path /shutdown --method POST",
        server.addr()
    );
    // Make the banner visible to parent processes (CI scrapes the port)
    // even when stdout is a pipe.
    std::io::stdout().flush().ok();

    // Periodic snapshots: a plain thread woken by interval timeout or
    // by the stop sender at drain time (mpsc doubles as the stop flag).
    let snapshotter = snapshot_path.as_ref().map(|path| {
        let service = std::sync::Arc::clone(server.service());
        let path = path.clone();
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || loop {
            match stop_rx.recv_timeout(std::time::Duration::from_secs(snapshot_interval)) {
                Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            }
            if let Err(e) = service.write_snapshot_to(&path) {
                // Non-fatal by design: the previous snapshot is intact
                // and every entry is recomputable.
                eprintln!("rvz serve: snapshot write failed: {e}");
            }
        });
        (stop_tx, handle)
    });

    let service = std::sync::Arc::clone(server.service());
    let clean = server.join();
    if let Some((stop_tx, handle)) = snapshotter {
        stop_tx.send(()).ok();
        handle.join().ok();
    }
    // One final snapshot after drain, so a graceful stop always leaves
    // the freshest cache on disk.
    if let Some(path) = &snapshot_path {
        match service.write_snapshot_to(path) {
            Ok(entries) => println!(
                "rvz serve: final snapshot wrote {entries} entries to {}",
                path.display()
            ),
            Err(e) => eprintln!("rvz serve: final snapshot failed: {e}"),
        }
    }
    if clean {
        println!("rvz serve: shut down cleanly");
    } else {
        println!("rvz serve: drain deadline expired, detached stalled workers");
    }
    Ok(())
}

fn cmd_loadtest(opts: &Flags) -> Result<(), String> {
    use plane_rendezvous::bench::serve::{
        check_overload, render_json, render_overload_table, render_table, run_loadtest,
        run_overload, LoadtestConfig,
    };
    let defaults = LoadtestConfig::new(opts.contains_key("quick"));
    let cfg = LoadtestConfig {
        clients: get_usize(opts, "clients", defaults.clients)?.max(1),
        requests_per_client: get_usize(opts, "requests", defaults.requests_per_client)?.max(1),
        families: get_usize(opts, "families", defaults.families)?.max(1),
        timeout_ms: get_timeout_ms(opts)?.unwrap_or(defaults.timeout_ms),
        retries: get_u32(opts, "retries", defaults.retries)?,
        ..defaults
    };
    let path = opts
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json");
    println!(
        "loadtesting the serve stack ({} mode): {} clients × {} requests over {} symmetric families ...",
        if cfg.quick { "quick" } else { "full" },
        cfg.clients,
        cfg.requests_per_client,
        cfg.families
    );
    let start = Instant::now();
    let (arms, speedup) = run_loadtest(&cfg);
    print!("{}", render_table(&arms, speedup));
    // The open loop is calibrated against the engine-bound capacity:
    // the closed-loop no-cache throughput measured moments ago.
    let base_rps = arms
        .iter()
        .find(|a| a.name == "no-cache")
        .map(|a| a.rps)
        .ok_or("closed loop did not produce a no-cache arm")?;
    println!(
        "open-loop overload: offering 1× and 2× of {base_rps:.0} r/s for {} ms per arm ...",
        cfg.overload_duration_ms
    );
    let overload = run_overload(&cfg, base_rps);
    print!("{}", render_overload_table(&overload));
    std::fs::write(path, render_json(&arms, speedup, &overload, &cfg))
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "wrote {path}  ({:.2} s total)",
        start.elapsed().as_secs_f64()
    );
    if opts.contains_key("check-overload") {
        check_overload(&overload).map_err(|e| format!("overload check failed: {e}"))?;
        println!("overload check passed: shed-not-collapse holds at 2×");
    }
    Ok(())
}

fn cmd_client(opts: &Flags) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("missing required flag `--addr`")?;
    let path = opts.get("path").ok_or("missing required flag `--path`")?;
    let body = opts.get("body").map(String::as_str);
    let default_method = if body.is_some() { "POST" } else { "GET" };
    let method = opts
        .get("method")
        .map(String::as_str)
        .unwrap_or(default_method)
        .to_ascii_uppercase();
    let client_opts = match get_timeout_ms(opts)? {
        Some(ms) => {
            plane_rendezvous::server::ClientOptions::uniform(std::time::Duration::from_millis(ms))
        }
        None => plane_rendezvous::server::ClientOptions::default(),
    };
    let policy = plane_rendezvous::server::RetryPolicy::with_retries(get_u32(opts, "retries", 0)?);
    let response = plane_rendezvous::server::client::request_with_retry(
        addr,
        &method,
        path,
        body,
        &client_opts,
        &policy,
    )
    .map_err(|e| format!("request to {addr} failed: {e}"))?;
    println!("HTTP {}", response.status);
    if let Some(cache) = response.header("x-rvz-cache") {
        println!("X-Rvz-Cache: {cache}");
    }
    if let Some(trace) = response.header("x-rvz-trace") {
        println!("X-Rvz-Trace: {trace}");
    }
    println!("{}", response.body);
    if response.status >= 400 {
        return Err(format!("server answered with status {}", response.status));
    }
    Ok(())
}
