//! `rvz` — command-line front end for the plane-rendezvous library.
//!
//! ```text
//! rvz feasibility --v 1.0 --tau 0.5 --phi 0 --chi +1
//! rvz search      --x 0.7 --y 0.9 --r 0.01
//! rvz rendezvous  --dx 0.3 --dy 0.8 --r 0.05 --v 0.6 [--tau 1.0 --phi 0 --chi +1]
//! rvz phases      --rounds 6 [--tau 0.6]
//! rvz bounds      --d 1.0 --r 0.01 [--v 0.5 --phi 0 --chi +1 | --tau 0.5]
//! ```
//!
//! Arguments are `--key value` pairs; malformed pairs are rejected,
//! unrecognized keys are ignored. The tool is deliberately
//! dependency-free (no clap) — it exists so that a user can poke at the
//! model without writing Rust.

use plane_rendezvous::core::{completion_time, first_sufficient_overlap_round, WaitAndSearch};
use plane_rendezvous::experiments::{
    latin_hypercube, run_sweep, write_csv, write_jsonl, Algorithm, SampleSpace, ScenarioGrid,
    Summary, SweepOptions, SweepRecord,
};
use plane_rendezvous::prelude::*;
use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "feasibility" => cmd_feasibility(&opts),
        "search" => cmd_search(&opts),
        "rendezvous" => cmd_rendezvous(&opts),
        "phases" => cmd_phases(&opts),
        "bounds" => cmd_bounds(&opts),
        "sweep" => cmd_sweep(&opts),
        "map" => cmd_map(&opts),
        "bench-engine" => cmd_bench_engine(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rvz — rendezvous in the plane by robots with unknown attributes (PODC 2019)

USAGE:
  rvz feasibility [--v V] [--tau T] [--phi P] [--chi +1|-1]
      Theorem 4 verdict for the attribute combination.
  rvz search --x X --y Y --r R [--max-round K]
      Exact Algorithm 4 discovery time for a stationary target.
  rvz rendezvous --dx X --dy Y --r R [--v V] [--tau T] [--phi P] [--chi +1|-1]
      Simulate the universal Algorithm 7 on the instance.
  rvz phases [--rounds N] [--tau T]
      Print the Algorithm 7 phase schedule (and τ-scaled copy).
  rvz bounds --d D --r R [--v V] [--phi P] [--chi +1|-1] [--tau T]
      Closed-form bounds: Theorem 1/2, and Lemma 13's k* when τ ≠ 1.
  rvz sweep [--speeds L] [--clocks L] [--phis L] [--chis L] [--distances L]
            [--bearings L] [--r R] [--algos L] [--lhs N] [--seed S]
            [--threads N] [--max-steps M] [--horizon-rounds K] [--no-prune]
            [--out PREFIX]
      Run a parallel scenario sweep (grid by default, Latin-hypercube
      sample with --lhs N) and write PREFIX.jsonl + PREFIX.csv.
      List flags (L) take comma-separated values, e.g. --speeds 0.5,1.
      --no-prune disables the engine's swept-envelope pruning layer
      (A/B escape hatch; outcomes keep the same classification).
  rvz map [--speeds L] [--clocks L] [--phis L] [--d D] [--r R] [--threads N]
          [--max-steps M] [--horizon-rounds K]
      Print the Theorem 4 feasibility map over the attribute grid and
      confirm every cell by simulation. Raise --horizon-rounds (default 9)
      and --max-steps for hard instances (large d²/r).
  rvz bench-engine [--quick] [--no-prune] [--enforce-steps] [--out PATH]
      Benchmark the first-contact engine (seed conservative loop vs the
      monotone-cursor fast path with swept-envelope pruning) on the
      canonical case set; print the comparison table (incl. pruned
      intervals and envelope queries) and write the machine-readable
      report to PATH (default BENCH_engine.json). --quick runs a
      sub-second smoke variant for CI; --no-prune A/Bs the pruning
      layer; --enforce-steps fails if the cursor engine ever takes more
      steps than the generic loop.

All flags take numeric values (except the valueless --quick, --no-prune
and --enforce-steps); angles in radians.";

type Flags = HashMap<String, String>;

/// Flags that take no value; present means `true`.
const BOOLEAN_FLAGS: &[&str] = &["quick", "no-prune", "enforce-steps"];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected `--flag`, got `{key}`"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            map.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag `--{name}` needs a value"));
        };
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn get_f64(opts: &Flags, key: &str, default: Option<f64>) -> Result<f64, String> {
    match opts.get(key) {
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("`--{key}` expects a number, got `{v}`")),
        None => default.ok_or_else(|| format!("missing required flag `--{key}`")),
    }
}

fn get_u32(opts: &Flags, key: &str, default: u32) -> Result<u32, String> {
    match opts.get(key) {
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| format!("`--{key}` expects an integer, got `{v}`")),
        None => Ok(default),
    }
}

fn get_usize(opts: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("`--{key}` expects an integer, got `{v}`")),
        None => Ok(default),
    }
}

fn get_list_f64(opts: &Flags, key: &str) -> Result<Option<Vec<f64>>, String> {
    let Some(raw) = opts.get(key) else {
        return Ok(None);
    };
    raw.split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|_| format!("`--{key}` expects comma-separated numbers, got `{v}`"))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn parse_chi(s: &str) -> Result<Chirality, String> {
    match s {
        "+1" | "1" => Ok(Chirality::Consistent),
        "-1" => Ok(Chirality::Mirrored),
        other => Err(format!("chirality expects +1 or -1, got `{other}`")),
    }
}

fn get_chirality(opts: &Flags) -> Result<Chirality, String> {
    match opts.get("chi") {
        None => Ok(Chirality::Consistent),
        Some(s) => parse_chi(s).map_err(|_| format!("`--chi` expects +1 or -1, got `{s}`")),
    }
}

fn get_algorithms(opts: &Flags) -> Result<Option<Vec<Algorithm>>, String> {
    let Some(raw) = opts.get("algos") else {
        return Ok(None);
    };
    raw.split(',')
        .map(|s| Algorithm::parse(s.trim()))
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// Applies the shared engine-tuning flags (`--threads`, `--max-steps`,
/// `--horizon-rounds`) on top of the sweep defaults.
fn sweep_options(opts: &Flags) -> Result<SweepOptions, String> {
    let mut sweep_opts = SweepOptions {
        threads: get_usize(opts, "threads", 0)?,
        ..SweepOptions::default()
    };
    if let Some(max_steps) = opts.get("max-steps") {
        sweep_opts.contact.max_steps = max_steps
            .parse::<u64>()
            .map_err(|_| format!("`--max-steps` expects an integer, got `{max_steps}`"))?;
    }
    if let Some(rounds) = opts.get("horizon-rounds") {
        let k = rounds
            .parse::<u32>()
            .map_err(|_| format!("`--horizon-rounds` expects an integer, got `{rounds}`"))?;
        if !(1..=31).contains(&k) {
            return Err("`--horizon-rounds` must be in 1..=31".into());
        }
        sweep_opts.contact.horizon = completion_time(k);
    }
    if opts.contains_key("no-prune") {
        sweep_opts.contact.prune = false;
    }
    Ok(sweep_opts)
}

fn attributes(opts: &Flags) -> Result<RobotAttributes, String> {
    let v = get_f64(opts, "v", Some(1.0))?;
    let tau = get_f64(opts, "tau", Some(1.0))?;
    let phi = get_f64(opts, "phi", Some(0.0))?;
    if v <= 0.0 || tau <= 0.0 {
        return Err("speed and time unit must be positive".into());
    }
    Ok(RobotAttributes::new(v, tau, phi, get_chirality(opts)?))
}

fn cmd_feasibility(opts: &Flags) -> Result<(), String> {
    let attrs = attributes(opts)?;
    println!("attributes: {attrs}");
    println!("verdict:    {}", feasibility(&attrs));
    Ok(())
}

fn cmd_search(opts: &Flags) -> Result<(), String> {
    let x = get_f64(opts, "x", None)?;
    let y = get_f64(opts, "y", None)?;
    let r = get_f64(opts, "r", None)?;
    let max_round = get_u32(opts, "max-round", 31)?;
    let inst = SearchInstance::new(Vec2::new(x, y), r).map_err(|e| e.to_string())?;
    println!(
        "instance: target ({x}, {y}), d = {:.6}, r = {r}, d²/r = {:.3}",
        inst.distance(),
        inst.difficulty()
    );
    match first_discovery(&inst, max_round.min(31)) {
        Some(found) => {
            println!(
                "discovered at t = {:.6} (round {}, sub-round {}, circle {}, {:?})",
                found.time, found.round, found.subround, found.circle, found.event
            );
            if inst.difficulty() >= 2.0 {
                let bound = coverage::theorem1_bound(inst.distance(), r);
                println!(
                    "Theorem 1 bound: {bound:.3}  (measured/bound = {:.4})",
                    found.time / bound
                );
            }
        }
        None => println!("not discovered within {max_round} rounds"),
    }
    Ok(())
}

fn cmd_rendezvous(opts: &Flags) -> Result<(), String> {
    let dx = get_f64(opts, "dx", None)?;
    let dy = get_f64(opts, "dy", None)?;
    let r = get_f64(opts, "r", None)?;
    let attrs = attributes(opts)?;
    let inst = RendezvousInstance::new(Vec2::new(dx, dy), r, attrs).map_err(|e| e.to_string())?;
    println!("instance: {inst}");
    println!("Theorem 4: {}", feasibility(&attrs));
    let horizon = get_f64(opts, "horizon", Some(completion_time(12)))?;
    let out = simulate_rendezvous(
        WaitAndSearch,
        &inst,
        &ContactOptions::with_horizon(horizon).tolerance(r * 1e-6),
    );
    println!("Algorithm 7 simulation: {out}");
    Ok(())
}

fn cmd_phases(opts: &Flags) -> Result<(), String> {
    let rounds = get_u32(opts, "rounds", 6)?.clamp(1, 20);
    let tau = get_f64(opts, "tau", Some(1.0))?;
    if tau <= 0.0 {
        return Err("`--tau` must be positive".into());
    }
    println!(
        "{:>3} | {:>16} | {:>16} | {:>16}",
        "n", "I(n)", "A(n)", "round end"
    );
    for n in 1..=rounds {
        println!(
            "{n:>3} | {:>16.2} | {:>16.2} | {:>16.2}",
            tau * PhaseSchedule::inactive_start(n),
            tau * PhaseSchedule::active_start(n),
            tau * PhaseSchedule::round_end(n)
        );
    }
    if tau != 1.0 {
        println!("(boundaries scaled by τ = {tau})");
    }
    Ok(())
}

fn cmd_bounds(opts: &Flags) -> Result<(), String> {
    let d = get_f64(opts, "d", None)?;
    let r = get_f64(opts, "r", None)?;
    let attrs = attributes(opts)?;
    if d <= 0.0 || r <= 0.0 {
        return Err("`--d` and `--r` must be positive".into());
    }
    if d * d / r >= 2.0 {
        println!(
            "Theorem 1 (search): T < {:.3}",
            coverage::theorem1_bound(d, r)
        );
    }
    if attrs.time_unit() == 1.0 {
        if attrs.speed() <= 1.0 {
            let inst =
                RendezvousInstance::new(Vec2::new(0.0, d), r, attrs).map_err(|e| e.to_string())?;
            println!("Theorem 2 (rendezvous, τ = 1): {}", theorem2_bound(&inst));
        } else {
            println!("Theorem 2: normalize so the reference robot is fastest (v ≤ 1)");
        }
    } else {
        let tau = attrs.time_unit();
        let tau_norm = if tau < 1.0 { tau } else { 1.0 / tau };
        let n = coverage::guaranteed_discovery_round(d, r)
            .ok_or("instance beyond the supported round horizon")?;
        let dec = tau_decomposition(tau_norm);
        let k_star = lemma13_round_bound(tau_norm, n);
        println!("stationary-find round n = {n}");
        println!("τ = {tau} ⇒ t·2^-a with a = {}, t = {:.4}", dec.a, dec.t);
        println!("Lemma 13 round bound: k* = {k_star}");
        if k_star <= 31 {
            println!("complete-by time: I(k*+1) = {:.3}", completion_time(k_star));
            if let Some(meas) = first_sufficient_overlap_round(tau_norm, n) {
                println!("analytic sufficient-overlap round: {meas}");
            }
        } else {
            println!("(k* beyond the supported schedule horizon of 31 rounds)");
        }
    }
    Ok(())
}

fn save_artifact<F>(path: &str, records: &[SweepRecord], write: F) -> Result<(), String>
where
    F: FnOnce(&mut std::io::BufWriter<std::fs::File>, &[SweepRecord]) -> std::io::Result<()>,
{
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    write(&mut w, records)
        .and_then(|()| w.flush())
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_sweep(opts: &Flags) -> Result<(), String> {
    let r = get_f64(opts, "r", Some(0.1))?;
    if r <= 0.0 {
        return Err("`--r` must be positive".into());
    }

    let scenarios = if opts.contains_key("lhs") {
        let n = get_usize(opts, "lhs", 0)?;
        if n == 0 {
            return Err("`--lhs` expects a positive sample count".into());
        }
        let seed = get_usize(opts, "seed", 0)? as u64;
        let mut space = SampleSpace {
            visibility: r,
            ..Default::default()
        };
        if let Some(algos) = get_algorithms(opts)? {
            space.algorithms = algos;
        }
        latin_hypercube(&space, n, seed)
    } else {
        let mut grid = ScenarioGrid::new()
            .visibilities(&[r])
            .speeds(&[0.5, 0.75, 1.0, 1.25])
            .clocks(&[0.5, 1.0, 1.5])
            .orientations(&[0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .distances(&[0.6, 1.0, 1.4]);
        if let Some(v) = get_list_f64(opts, "speeds")? {
            grid = grid.speeds(&v);
        }
        if let Some(v) = get_list_f64(opts, "clocks")? {
            grid = grid.clocks(&v);
        }
        if let Some(v) = get_list_f64(opts, "phis")? {
            grid = grid.orientations(&v);
        }
        if let Some(v) = get_list_f64(opts, "distances")? {
            grid = grid.distances(&v);
        }
        if let Some(v) = get_list_f64(opts, "bearings")? {
            grid = grid.bearings(&v);
        }
        if let Some(chis) = opts.get("chis") {
            let values = chis
                .split(',')
                .map(|s| parse_chi(s.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            grid = grid.chiralities(&values);
        }
        if let Some(algos) = get_algorithms(opts)? {
            grid = grid.algorithms(&algos);
        }
        grid.build()
    };

    let sweep_opts = sweep_options(opts)?;

    println!(
        "sweeping {} scenarios on {} threads ...",
        scenarios.len(),
        sweep_opts.effective_threads()
    );
    let start = Instant::now();
    let records = run_sweep(&scenarios, &sweep_opts);
    let wall = start.elapsed().as_secs_f64();

    let prefix = opts.get("out").map(String::as_str).unwrap_or("sweep");
    save_artifact(&format!("{prefix}.jsonl"), &records, write_jsonl)?;
    save_artifact(&format!("{prefix}.csv"), &records, write_csv)?;

    print!("{}", Summary::from_records(&records).render());
    println!(
        "wall time: {wall:.3} s  ({:.0} instances/s)",
        records.len() as f64 / wall
    );
    Ok(())
}

fn cmd_bench_engine(opts: &Flags) -> Result<(), String> {
    use plane_rendezvous::bench::engine::{
        grazing_summary, measure_all, render_json, render_table, step_regressions,
    };
    let quick = opts.contains_key("quick");
    let prune = !opts.contains_key("no-prune");
    let path = opts
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json");
    println!(
        "benchmarking the first-contact engine ({} mode{}): seed loop vs cursor fast path ...",
        if quick { "quick" } else { "full" },
        if prune { "" } else { ", pruning off" }
    );
    let start = Instant::now();
    let measurements = measure_all(quick, prune);
    print!("{}", render_table(&measurements));
    let json = render_json(&measurements, quick);
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!(
        "wrote {path}  ({:.2} s total)",
        start.elapsed().as_secs_f64()
    );
    println!("{}", grazing_summary(&measurements));
    if opts.contains_key("enforce-steps") {
        let regressions = step_regressions(&measurements);
        if !regressions.is_empty() {
            return Err(format!(
                "cursor engine took more steps than the generic engine on: {}",
                regressions.join(", ")
            ));
        }
        println!("step check: cursor engine never exceeded the generic engine's steps");
    }
    Ok(())
}

fn cmd_map(opts: &Flags) -> Result<(), String> {
    let speeds = get_list_f64(opts, "speeds")?.unwrap_or_else(|| vec![0.5, 1.0]);
    let clocks = get_list_f64(opts, "clocks")?.unwrap_or_else(|| vec![0.6, 1.0]);
    let phis = get_list_f64(opts, "phis")?.unwrap_or_else(|| vec![0.0, 1.3]);
    let d = get_f64(opts, "d", Some(0.9))?;
    let r = get_f64(opts, "r", Some(0.25))?;
    if d <= 0.0 || r <= 0.0 {
        return Err("`--d` and `--r` must be positive".into());
    }

    println!("Theorem 4: rendezvous is feasible iff τ≠1 ∨ v≠1 ∨ (χ=+1 ∧ 0<φ<2π)\n");
    for chi in [Chirality::Consistent, Chirality::Mirrored] {
        println!("χ = {chi}:");
        print!("  {:>12}", "v \\ (τ, φ)");
        for &tau in &clocks {
            for &phi in &phis {
                print!(" | τ={tau:<4} φ={phi:<4}");
            }
        }
        println!();
        for &v in &speeds {
            print!("  {v:>12}");
            for &tau in &clocks {
                for &phi in &phis {
                    let cell = match feasibility(&RobotAttributes::new(v, tau, phi, chi)) {
                        Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks) => "F:clock",
                        Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds) => "F:speed",
                        Feasibility::Feasible(SymmetryBreaker::OrientationOffset) => "F:orient",
                        Feasibility::Infeasible(_) => "  ---  ",
                    };
                    print!(" | {cell:^12}");
                }
            }
            println!();
        }
        println!();
    }

    // Confirm every cell by simulation through the sweep harness. The
    // placement bearing is adversarial for infeasible cells (along the
    // invariant direction) and arbitrary otherwise.
    let mut scenarios = Vec::new();
    for &v in &speeds {
        for &tau in &clocks {
            for &phi in &phis {
                for chi in [Chirality::Consistent, Chirality::Mirrored] {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    let bearing = match feasibility(&attrs) {
                        Feasibility::Feasible(_) => 1.1,
                        Feasibility::Infeasible(reason) => {
                            let dir = reason.invariant_direction();
                            dir.y.atan2(dir.x)
                        }
                    };
                    scenarios.push(plane_rendezvous::experiments::Scenario {
                        id: scenarios.len() as u64,
                        algorithm: Algorithm::WaitAndSearch,
                        speed: v,
                        time_unit: tau,
                        orientation: phi,
                        chirality: chi,
                        distance: d,
                        bearing,
                        visibility: r,
                    });
                }
            }
        }
    }

    let sweep_opts = sweep_options(opts)?;
    println!(
        "simulation confirmation (universal Algorithm 7, d = {d}, r = {r}, {} cells):",
        scenarios.len()
    );
    let records = run_sweep(&scenarios, &sweep_opts);
    let confirmed = records
        .iter()
        .filter(|rec| rec.strictly_consistent())
        .count();
    for rec in records.iter().filter(|rec| !rec.strictly_consistent()) {
        println!(
            "  MISMATCH at {}: predicate says {}, simulation says {}",
            rec.scenario.attributes(),
            rec.feasibility,
            rec.outcome
        );
    }
    println!(
        "  {confirmed}/{} cells confirmed by simulation",
        records.len()
    );
    if confirmed == records.len() {
        Ok(())
    } else {
        Err("feasibility map mismatch".into())
    }
}
