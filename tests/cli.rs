//! End-to-end tests of the `rvz` command-line tool.

use std::process::Command;

fn rvz(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn feasibility_verdicts() {
    let (ok, stdout, _) = rvz(&["feasibility", "--tau", "0.5"]);
    assert!(ok);
    assert!(stdout.contains("feasible via asymmetric clocks"));

    let (ok, stdout, _) = rvz(&["feasibility"]);
    assert!(ok);
    assert!(stdout.contains("infeasible"));

    let (ok, stdout, _) = rvz(&["feasibility", "--chi", "-1", "--phi", "1.0"]);
    assert!(ok);
    assert!(stdout.contains("mirror twins"));
}

#[test]
fn search_reports_discovery_and_bound() {
    let (ok, stdout, _) = rvz(&["search", "--x", "0.7", "--y", "0.9", "--r", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("discovered at t ="));
    assert!(stdout.contains("Theorem 1 bound"));
}

#[test]
fn rendezvous_simulates() {
    let (ok, stdout, _) = rvz(&[
        "rendezvous",
        "--dx",
        "0.3",
        "--dy",
        "0.8",
        "--r",
        "0.25",
        "--tau",
        "0.6",
    ]);
    assert!(ok);
    assert!(stdout.contains("contact at t="));
}

#[test]
fn phases_prints_schedule() {
    let (ok, stdout, _) = rvz(&["phases", "--rounds", "3"]);
    assert!(ok);
    assert!(stdout.contains("I(n)"));
    assert_eq!(stdout.lines().count(), 4); // header + 3 rounds
}

#[test]
fn bounds_covers_both_clock_regimes() {
    let (ok, stdout, _) = rvz(&["bounds", "--d", "1.0", "--r", "0.01", "--v", "0.5"]);
    assert!(ok);
    assert!(stdout.contains("Theorem 2"));

    let (ok, stdout, _) = rvz(&["bounds", "--d", "1.0", "--r", "0.01", "--tau", "0.7"]);
    assert!(ok);
    assert!(stdout.contains("Lemma 13 round bound"));
}

#[test]
fn errors_are_reported_with_usage() {
    let (ok, _, stderr) = rvz(&["unknown-command"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));

    let (ok, _, stderr) = rvz(&["search", "--x", "1.0"]);
    assert!(!ok);
    assert!(stderr.contains("missing required flag"));

    let (ok, _, stderr) = rvz(&["feasibility", "--v", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("expects a number"));

    let (ok, _, stderr) = rvz(&["feasibility", "--chi", "2"]);
    assert!(!ok);
    assert!(stderr.contains("expects +1 or -1"));
}
