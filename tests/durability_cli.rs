//! End-to-end durability tests: SIGKILL a real `rvz serve` process and
//! assert the snapshot warm-starts the next one; SIGKILL a real
//! `rvz sweep --checkpoint` and assert `--resume` reproduces the
//! uninterrupted artifacts bit-identically; drive both recovery paths
//! under seeded disk-fault injection.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn rvz(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rvz-durability-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Starts `rvz serve --port 0`, scrapes the bound port from the first
/// banner line, and returns the full banner (everything up to the
/// `stop with:` line) for assertions. The rest of the pipe is drained
/// by a background thread so the server never blocks or breaks on a
/// closed stdout.
fn spawn_server(extra: &[&str]) -> (Child, String, Vec<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut banner = Vec::new();
    for line in lines.by_ref() {
        let line = line.expect("readable stdout");
        let done = line.starts_with("stop with:");
        banner.push(line);
        if done {
            break;
        }
    }
    std::thread::spawn(move || for _ in lines {});
    let addr = banner
        .first()
        .expect("a banner line")
        .rsplit(' ')
        .next()
        .expect("banner ends with the address")
        .to_string();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner: {banner:?}"
    );
    (child, addr, banner)
}

fn client(addr: &str, args: &[&str]) -> (bool, String) {
    let (ok, stdout, _) = rvz(&[&["client", "--addr", addr][..], args].concat());
    (ok, stdout)
}

/// Polls `/stats` until `pred` matches (snapshot writes are
/// asynchronous; the deadline keeps a hang from wedging CI).
fn wait_for_stats(addr: &str, pred: impl Fn(&str) -> bool, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (ok, out) = client(addr, &["--path", "/stats"]);
        if ok && pred(&out) {
            return out;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {out}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

const BODY: &str = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;

#[test]
fn sigkilled_server_warm_starts_from_its_snapshot() {
    let dir = scratch("serve-warm");
    let snap = dir.join("cache.snap");
    let snap_str = snap.to_str().unwrap();
    let serve_flags = [
        "--snapshot",
        snap_str,
        "--snapshot-interval-s",
        "1",
        "--max-steps",
        "20000",
        "--horizon-rounds",
        "6",
    ];

    // First life: answer one query (a miss), wait until a periodic
    // snapshot has captured it, then SIGKILL mid-flight.
    let (mut child, addr, _) = spawn_server(&serve_flags);
    let (ok, first) = client(&addr, &["--path", "/first-contact", "--body", BODY]);
    assert!(ok, "first-contact failed: {first}");
    assert!(first.contains("X-Rvz-Cache: miss"), "{first}");
    let expected_body = first
        .lines()
        .last()
        .expect("client prints the response body")
        .to_string();
    wait_for_stats(&addr, |s| !s.contains("\"writes\":0"), "a snapshot write");
    child.kill().expect("SIGKILL serve");
    child.wait().expect("reap serve");
    assert!(snap.exists(), "the periodic snapshot survived the kill");

    // Second life: same snapshot path. The cached orbit must answer
    // byte-identically as a *hit* — no engine run.
    let (mut child, addr, banner) = spawn_server(&serve_flags);

    assert!(
        banner.iter().any(|l| l.contains("restore: warm")),
        "boot banner reports the warm restore: {banner:?}"
    );
    let (ok, again) = client(&addr, &["--path", "/first-contact", "--body", BODY]);
    assert!(ok, "warm-start query failed: {again}");
    assert!(again.contains("X-Rvz-Cache: hit"), "{again}");
    assert_eq!(
        again.lines().last().unwrap(),
        expected_body,
        "restored answer is byte-identical to the computed one"
    );
    let stats = wait_for_stats(&addr, |s| s.contains("\"restore\":\"warm\""), "warm stats");
    assert!(stats.contains("\"restored_entries\""), "{stats}");

    // Graceful shutdown writes a final snapshot even with a long
    // interval still pending.
    let (ok, _) = client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    assert!(ok);
    child.wait().expect("serve exits");
    drop(child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_snapshot_salvages_and_corrupt_header_cold_starts() {
    let dir = scratch("serve-torn");
    let snap = dir.join("cache.snap");
    let snap_str = snap.to_str().unwrap();
    let serve_flags = [
        "--snapshot",
        snap_str,
        "--snapshot-interval-s",
        "600",
        "--max-steps",
        "20000",
        "--horizon-rounds",
        "6",
    ];

    // Seed a snapshot with two cached orbits via graceful shutdown.
    let (mut child, addr, _) = spawn_server(&serve_flags);
    let second = r#"{"speed":0.625,"distance":0.9,"visibility":0.25}"#;
    client(&addr, &["--path", "/first-contact", "--body", BODY]);
    client(&addr, &["--path", "/first-contact", "--body", second]);
    client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");

    // Tear the tail off — what a kill mid-write would leave on a
    // non-atomic filesystem — and leave a stale temp sibling behind.
    let bytes = std::fs::read(&snap).expect("snapshot was written");
    std::fs::write(&snap, &bytes[..bytes.len() - 7]).unwrap();
    std::fs::write(dir.join("cache.snap.tmp"), b"half-written garbage").unwrap();

    let (mut child, addr, banner) = spawn_server(&serve_flags);

    assert!(
        banner.iter().any(|l| l.contains("restore: salvaged")),
        "torn snapshot salvages its valid prefix: {banner:?}"
    );
    // The salvaged prefix still serves hits; the torn-off orbit is a
    // plain miss, not an error.
    let (ok, out) = client(&addr, &["--path", "/first-contact", "--body", BODY]);
    assert!(ok);
    assert!(out.contains("X-Rvz-Cache: hit"), "{out}");
    client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");

    // A mangled header (bad magic) must cold-start, not refuse to boot.
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    let (mut child, addr, banner) = spawn_server(&serve_flags);

    assert!(
        banner.iter().any(|l| l.contains("restore: cold")),
        "bad magic falls back cold: {banner:?}"
    );
    let (ok, out) = client(&addr, &["--path", "/first-contact", "--body", BODY]);
    assert!(ok);
    assert!(out.contains("X-Rvz-Cache: miss"), "cold cache: {out}");
    client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_read_corruption_degrades_restore_without_refusing_to_boot() {
    let dir = scratch("serve-faults");
    let snap = dir.join("cache.snap");
    let snap_str = snap.to_str().unwrap();

    let (mut child, addr, _) = spawn_server(&[
        "--snapshot",
        snap_str,
        "--snapshot-interval-s",
        "600",
        "--max-steps",
        "20000",
        "--horizon-rounds",
        "6",
    ]);
    client(&addr, &["--path", "/first-contact", "--body", BODY]);
    client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");

    // Boot with a pinned-seed read-corruption fault: the snapshot read
    // flips one byte, the restore degrades (salvaged or cold) and the
    // server still serves correct answers.
    let (mut child, addr, banner) = spawn_server(&[
        "--snapshot",
        snap_str,
        "--snapshot-interval-s",
        "600",
        "--max-steps",
        "20000",
        "--horizon-rounds",
        "6",
        "--faults",
        "seed=11,read_corrupt=1,limit=1",
    ]);

    let restore_line = banner
        .iter()
        .find(|l| l.contains("restore:"))
        .expect("snapshot banner line");
    assert!(
        restore_line.contains("salvaged") || restore_line.contains("cold"),
        "injected corruption must degrade, got: {restore_line}"
    );
    let (ok, out) = client(&addr, &["--path", "/first-contact", "--body", BODY]);
    assert!(ok, "{out}");
    assert!(out.contains("\"outcome\":\"contact\""), "{out}");
    client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");
    std::fs::remove_dir_all(&dir).ok();
}

/// The shared sweep shape: enough scenarios that a kill lands mid-run,
/// cheap enough per scenario for a debug-build test.
fn sweep_args<'a>(out: &'a str, checkpoint: Option<&'a str>, threads: &'a str) -> Vec<&'a str> {
    let mut args = vec![
        "sweep",
        "--speeds",
        "0.5,0.55,0.6,0.65,0.7,0.75,0.8,0.85,0.9,0.95",
        "--clocks",
        "0.6,1.0",
        "--phis",
        "0,1.5",
        "--chis",
        "+1",
        "--distances",
        "0.9",
        "--r",
        "0.25",
        "--max-steps",
        "20000",
        "--horizon-rounds",
        "6",
        "--threads",
        threads,
        "--out",
        out,
    ];
    if let Some(path) = checkpoint {
        args.extend_from_slice(&["--checkpoint", path]);
    }
    args
}

#[test]
fn sigkilled_sweep_resumes_bit_identical_to_an_uninterrupted_run() {
    let dir = scratch("sweep-resume");
    let reference = dir.join("reference");
    let resumed = dir.join("resumed");
    let journal = dir.join("sweep.ckpt");
    let journal_str = journal.to_str().unwrap();

    // The uninterrupted truth, on one thread.
    let (ok, _, stderr) = rvz(&sweep_args(reference.to_str().unwrap(), None, "1"));
    assert!(ok, "reference sweep failed: {stderr}");

    // Start the checkpointed run and SIGKILL it as soon as the journal
    // holds a few complete records.
    let mut child = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(sweep_args(
            resumed.to_str().unwrap(),
            Some(journal_str),
            "2",
        ))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("sweep starts");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        if lines >= 3 {
            break;
        }
        if child.try_wait().expect("poll sweep").is_some() {
            break; // finished before we could kill it — resume is a no-op
        }
        assert!(Instant::now() < deadline, "no checkpoint progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().ok();
    child.wait().expect("reap sweep");

    // Without --resume an existing journal is refused (no silent
    // clobber of partial work).
    let (ok, _, stderr) = rvz(&sweep_args(
        resumed.to_str().unwrap(),
        Some(journal_str),
        "4",
    ));
    assert!(!ok, "a leftover journal must not be silently overwritten");
    assert!(stderr.contains("--resume"), "{stderr}");

    // Resume on a different thread count: artifacts must be
    // bit-identical to the uninterrupted single-thread run.
    let mut args = sweep_args(resumed.to_str().unwrap(), Some(journal_str), "4");
    args.push("--resume");
    let (ok, stdout, stderr) = rvz(&args);
    assert!(ok, "resumed sweep failed: {stderr}");
    assert!(stdout.contains("checkpoint:"), "{stdout}");

    for ext in ["jsonl", "csv"] {
        let a = std::fs::read(reference.with_extension(ext)).unwrap();
        let b = std::fs::read(resumed.with_extension(ext)).unwrap();
        assert_eq!(a, b, "{ext} artifacts diverged after kill + resume");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_journal_and_injected_faults_still_resume_bit_identical() {
    let dir = scratch("sweep-faults");
    let reference = dir.join("reference");
    let resumed = dir.join("resumed");
    let journal = dir.join("sweep.ckpt");
    let journal_str = journal.to_str().unwrap();

    let (ok, _, stderr) = rvz(&sweep_args(reference.to_str().unwrap(), None, "2"));
    assert!(ok, "reference sweep failed: {stderr}");

    // A complete checkpointed run leaves a full journal.
    let (ok, _, stderr) = rvz(&sweep_args(
        resumed.to_str().unwrap(),
        Some(journal_str),
        "2",
    ));
    assert!(ok, "checkpointed sweep failed: {stderr}");

    // Tear the journal mid-line (a crash mid-append) and resume under a
    // pinned-seed read-corruption fault: salvage drops the torn tail,
    // the injected flip knocks out one more line, both are recomputed,
    // and the artifacts still match bit-for-bit.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 9]).unwrap();
    let mut args = sweep_args(resumed.to_str().unwrap(), Some(journal_str), "2");
    args.extend_from_slice(&["--resume", "--faults", "seed=7,read_corrupt=1,limit=1"]);
    let (ok, stdout, stderr) = rvz(&args);
    assert!(ok, "faulted resume failed: {stderr}");
    assert!(stdout.contains("checkpoint:"), "{stdout}");
    assert!(
        stdout.contains("resumed") && stdout.contains("computed"),
        "{stdout}"
    );

    for ext in ["jsonl", "csv"] {
        let a = std::fs::read(reference.with_extension(ext)).unwrap();
        let b = std::fs::read(resumed.with_extension(ext)).unwrap();
        assert_eq!(a, b, "{ext} artifacts diverged under torn journal + faults");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durability_flags_reject_bad_usage_with_named_clauses() {
    // --resume without --checkpoint is a user error, not a no-op.
    let (ok, _, stderr) = rvz(&["sweep", "--resume"]);
    assert!(!ok);
    assert!(stderr.contains("--checkpoint"), "{stderr}");

    // --faults without --checkpoint has nothing to inject into.
    let (ok, _, stderr) = rvz(&["sweep", "--faults", "seed=1,read_corrupt=1"]);
    assert!(!ok);
    assert!(stderr.contains("--checkpoint"), "{stderr}");

    // Parse errors name the offending clause and key.
    let (ok, _, stderr) = rvz(&[
        "sweep",
        "--checkpoint",
        "x.ckpt",
        "--faults",
        "read_corrupt=1.5",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("clause `read_corrupt=1.5`"),
        "names the clause: {stderr}"
    );
    assert!(
        stderr.contains("must be in [0, 1]"),
        "names the constraint: {stderr}"
    );

    let (ok, _, stderr) = rvz(&["serve", "--faults", "torn_rename=nope,seed=1"]);
    assert!(!ok);
    assert!(
        stderr.contains("clause `torn_rename=nope`"),
        "serve names the clause too: {stderr}"
    );

    // Checkpoint and orbit dedup journal different work units.
    let (ok, _, stderr) = rvz(&["sweep", "--checkpoint", "x.ckpt", "--dedup-orbits"]);
    assert!(!ok);
    assert!(stderr.contains("cannot be combined"), "{stderr}");
}
