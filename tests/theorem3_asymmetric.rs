//! Integration test for Theorem 3 / Lemmas 9–13 (experiment E9):
//! Algorithm 7 solves rendezvous with asymmetric clocks, within the
//! round bound `k*` of Lemma 13 — measured by full two-robot simulation
//! and by the independent analytic overlap calculator.

use plane_rendezvous::core::{completion_time, first_sufficient_overlap_round};
use plane_rendezvous::prelude::*;

fn instance(tau: f64, d: Vec2, r: f64) -> RendezvousInstance {
    let attrs = RobotAttributes::reference().with_time_unit(tau);
    RendezvousInstance::new(d, r, attrs).unwrap()
}

/// Stationary-find round for the instance (the paper's `n`).
fn stationary_round(inst: &RendezvousInstance) -> u32 {
    coverage::guaranteed_discovery_round(inst.distance(), inst.visibility())
        .expect("within supported rounds")
}

#[test]
fn asymmetric_clocks_rendezvous_within_lemma13_round() {
    // τ values with small k* so the full simulation stays cheap.
    for tau in [0.51, 0.6, 0.9] {
        let inst = instance(tau, Vec2::new(0.3, 0.8), 0.25);
        let n = stationary_round(&inst);
        let k_star = lemma13_round_bound(tau, n);
        let horizon = completion_time(k_star);
        let opts = ContactOptions::with_horizon(horizon).tolerance(inst.visibility() * 1e-6);
        let out = simulate_rendezvous(WaitAndSearch, &inst, &opts);
        let t = out
            .contact_time()
            .unwrap_or_else(|| panic!("τ={tau}: no rendezvous by round k*={k_star}: {out}"));
        assert!(
            t <= horizon,
            "τ={tau}: rendezvous at {t} after completing round {k_star}"
        );
    }
}

#[test]
fn analytic_overlap_round_bounds_hold_for_wide_tau_grid() {
    // Where simulation is too expensive (large a ⇒ k* ≥ 16), the analytic
    // overlap calculator still verifies Lemma 13: some round ≤ k* has an
    // inactive-phase overlap long enough for the full stationary find.
    for tau in [0.95, 0.85, 0.75, 0.66, 0.52, 0.4, 0.3, 0.25, 0.2, 0.11] {
        for n in 1..=3u32 {
            let k_star = lemma13_round_bound(tau, n);
            if k_star >= 30 {
                continue; // beyond the supported schedule horizon
            }
            let measured = first_sufficient_overlap_round(tau, n)
                .unwrap_or_else(|| panic!("τ={tau}, n={n}: no sufficient overlap found"));
            assert!(
                measured <= k_star,
                "τ={tau}, n={n}: analytic round {measured} > k* {k_star}"
            );
        }
    }
}

#[test]
fn slower_partner_clock_also_works() {
    // τ > 1 (R' slower): the model is symmetric under swapping robots, so
    // rendezvous still happens; the bound is the swapped instance's bound
    // stretched by τ.
    let tau = 2.0;
    let inst = instance(tau, Vec2::new(0.0, 0.9), 0.25);
    let swapped_k_star = lemma13_round_bound(1.0 / tau, 2);
    let horizon = tau * completion_time(swapped_k_star);
    let opts = ContactOptions::with_horizon(horizon).tolerance(inst.visibility() * 1e-6);
    let out = simulate_rendezvous(WaitAndSearch, &inst, &opts);
    assert!(out.is_contact(), "τ=2: {out}");
}

#[test]
fn clock_difference_rescues_mirror_twins_in_simulation() {
    // v = 1, χ = −1 is infeasible alone; τ ≠ 1 makes it feasible even
    // with the adversarial placement along the invariant direction.
    let phi = 1.2;
    let attrs = RobotAttributes::reference()
        .with_chirality(Chirality::Mirrored)
        .with_orientation(phi)
        .with_time_unit(0.6);
    let dir = Vec2::from_polar(1.0, phi / 2.0);
    let inst = RendezvousInstance::new(dir * 0.9, 0.25, attrs).unwrap();
    let n = stationary_round(&inst);
    let k_star = lemma13_round_bound(0.6, n);
    let opts =
        ContactOptions::with_horizon(completion_time(k_star)).tolerance(inst.visibility() * 1e-6);
    let out = simulate_rendezvous(WaitAndSearch, &inst, &opts);
    assert!(out.is_contact(), "mirrored + clock: {out}");
}

#[test]
fn universal_algorithm_needs_no_knowledge() {
    // The same ZST value solves instances whose *only* differing
    // attribute varies across all three breaker kinds.
    let cases = [
        RobotAttributes::reference().with_time_unit(0.6),
        RobotAttributes::reference().with_speed(0.5),
        RobotAttributes::reference().with_orientation(2.0),
    ];
    for attrs in cases {
        let inst = RendezvousInstance::new(Vec2::new(0.5, 0.5), 0.25, attrs).unwrap();
        let opts = ContactOptions::with_horizon(completion_time(9)).tolerance(2.5e-7);
        let out = simulate_rendezvous(WaitAndSearch, &inst, &opts);
        assert!(out.is_contact(), "{attrs:?}: {out}");
    }
}
