//! The monotone-cursor contract, property-tested for every
//! `MonotoneTrajectory` implementation in the workspace.
//!
//! Three properties from the contract (see `rvz_trajectory::monotone`):
//!
//! 1. **Agreement** — a cursor probed over a dense non-decreasing time
//!    grid returns the same positions as random-access
//!    `Trajectory::position`;
//! 2. **Piece validity** — on a reported affine piece, linear
//!    extrapolation from the probe reproduces the trajectory exactly up
//!    to the reported `piece_end`; on a circular piece the reported
//!    circle-and-phase law does;
//! 3. **Envelope soundness** — `envelope(t0, t1)` returns a disk
//!    containing `position(t)` for densely sampled `t ∈ [t0, t1]`, for
//!    every implementation including composed `FrameWarp`∘`ClockDrift`
//!    stacks.
//!
//! Grids are seeded and jittered (SplitMix64, no external deps) so the
//! probes do not align with segment boundaries by construction.

use plane_rendezvous::baselines::ArchimedeanSpiral;
use plane_rendezvous::experiments::SplitMix64;
use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::monotone::Motion;
use plane_rendezvous::trajectory::{ClockDrift, FnTrajectory};

/// Probes `trajectory` over a jittered grid of `n` times in
/// `[0, horizon]`, checking agreement and affine-piece validity.
fn check_cursor<T: MonotoneTrajectory>(trajectory: &T, horizon: f64, n: u32, seed: u64, tol: f64) {
    let mut rng = SplitMix64::new(seed);
    let mut cursor = trajectory.cursor();
    let mut t = 0.0_f64;
    for _ in 0..=n {
        let probe = cursor.probe(t);
        let direct = trajectory.position(t);
        assert!(
            probe.position.distance(direct) <= tol,
            "cursor/random-access mismatch at t={t}: {} vs {direct}",
            probe.position,
        );
        assert!(
            probe.piece_end > t || probe.piece_end == f64::INFINITY,
            "stale piece_end {} at t={t}",
            probe.piece_end
        );
        // Validate the motion-law claim at a point strictly inside the
        // piece (random-access evaluated, so this is an independent
        // check of the closed form).
        let span = (probe.piece_end.min(horizon * 2.0) - t).min(horizon / n as f64);
        match probe.motion {
            Motion::Affine { velocity } if span > 0.0 => {
                let u = t + rng.next_range(0.0, span);
                let extrapolated = probe.position + velocity * (u - t);
                let actual = trajectory.position(u);
                assert!(
                    extrapolated.distance(actual) <= tol,
                    "affine piece violated at t={t}, u={u}: {extrapolated} vs {actual}"
                );
            }
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } if span > 0.0 => {
                let u = t + rng.next_range(0.0, span);
                let extrapolated =
                    center + Vec2::from_polar(radius, angle + angular_velocity * (u - t));
                let actual = trajectory.position(u);
                assert!(
                    extrapolated.distance(actual) <= tol.max(1e-9),
                    "circular piece violated at t={t}, u={u}: {extrapolated} vs {actual}"
                );
            }
            _ => {}
        }
        // Jittered stride; occasionally repeat the same time (allowed).
        if rng.next_f64() > 0.05 {
            t += rng.next_range(0.0, 2.0 * horizon / n as f64);
        }
    }
}

#[test]
fn path_cursor_agrees() {
    let path = PathBuilder::at(Vec2::ZERO)
        .line_to(Vec2::new(1.0, 0.0))
        .full_circle(Vec2::ZERO)
        .wait(0.7)
        .line_to(Vec2::new(-2.0, 1.5))
        .arc_around(Vec2::ZERO, -1.3)
        .build();
    check_cursor(&path, path.duration() + 2.0, 1500, 0xA11CE, 1e-12);
}

#[test]
fn fn_trajectory_cursor_agrees() {
    let infinite = FnTrajectory::new(|t| Vec2::new(t.cos() * 2.0, (0.7 * t).sin()), 2.0);
    check_cursor(&infinite, 40.0, 800, 1, 1e-12);
    let finite = FnTrajectory::with_duration(|t| Vec2::new(t, -t * 0.5), 1.2, 6.0);
    check_cursor(&finite, 12.0, 800, 2, 1e-12);
}

#[test]
fn stationary_cursor_agrees() {
    check_cursor(&Stationary::new(Vec2::new(3.0, -4.0)), 100.0, 200, 3, 0.0);
}

#[test]
fn frame_warp_cursor_agrees() {
    let inner = PathBuilder::at(Vec2::ZERO)
        .line_to(Vec2::new(2.0, 0.0))
        .full_circle(Vec2::new(1.0, 0.0))
        .wait(1.0)
        .build();
    let warp = FrameWarp::new(
        inner,
        Mat2::rotation(0.9) * Mat2::scaling(1.7),
        Vec2::new(-1.0, 2.0),
        0.6,
    );
    check_cursor(&warp, warp.duration().unwrap() + 1.0, 1200, 4, 1e-12);
}

#[test]
fn clock_drift_cursor_agrees() {
    let inner = PathBuilder::at(Vec2::ZERO)
        .line_to(Vec2::new(4.0, 0.0))
        .wait(2.0)
        .line_to(Vec2::new(4.0, 4.0))
        .build();
    let drift = ClockDrift::from_rates(inner, &[(2.5, 0.4), (3.0, 1.6), (1.0, 0.9)], 1.1);
    check_cursor(&drift, 18.0, 1200, 5, 1e-9);
}

#[test]
fn nested_warp_drift_cursor_agrees() {
    // The full Lemma 4 stack over a drifting clock over Algorithm 7 —
    // the deepest composition the simulator actually runs.
    let attrs = RobotAttributes::reference()
        .with_speed(0.7)
        .with_orientation(1.1);
    let warped = attrs.frame_warp(WaitAndSearch, Vec2::new(0.3, 0.8));
    let drifted = ClockDrift::from_rates(warped, &[(50.0, 0.8), (75.0, 1.3)], 1.0);
    check_cursor(&drifted, 400.0, 2500, 6, 1e-9);
}

#[test]
fn universal_search_cursor_agrees() {
    use plane_rendezvous::search::times;
    check_cursor(&UniversalSearch, times::rounds_total(3), 3000, 7, 1e-9);
}

#[test]
fn wait_and_search_cursor_agrees() {
    check_cursor(&WaitAndSearch, PhaseSchedule::round_end(3), 3000, 8, 1e-9);
}

#[test]
fn spiral_cursor_agrees() {
    check_cursor(&ArchimedeanSpiral::with_pitch(0.3), 300.0, 1500, 9, 1e-9);
}

#[test]
fn warped_algorithm7_cursor_agrees() {
    // Mirrored chirality and a slow clock: the warp every sweep scenario
    // actually builds.
    let attrs = RobotAttributes::new(0.5, 1.5, 2.2, Chirality::Mirrored);
    let warped = attrs.frame_warp(WaitAndSearch, Vec2::new(-0.4, 0.9));
    check_cursor(&warped, PhaseSchedule::round_end(2) * 1.5, 2500, 10, 1e-9);
}

/// Issues `windows` envelope queries with non-decreasing starts over one
/// cursor, checking that every returned disk contains the trajectory's
/// position at dense samples of its interval (allowing `slack` of
/// floating-point leakage).
fn check_envelope<T: MonotoneTrajectory>(
    trajectory: &T,
    horizon: f64,
    windows: u32,
    seed: u64,
    slack: f64,
) {
    let mut rng = SplitMix64::new(seed);
    let mut cursor = trajectory.cursor();
    let mut t0 = 0.0_f64;
    for _ in 0..windows {
        let span = rng.next_range(0.0, 3.0 * horizon / windows as f64);
        let t1 = t0 + span;
        let disk = cursor.envelope(t0, t1);
        for i in 0..=25 {
            let t = t0 + span * i as f64 / 25.0;
            let p = trajectory.position(t);
            assert!(
                disk.contains(p, slack),
                "envelope [{t0}, {t1}] (= {disk}) misses position {p} at t={t}"
            );
        }
        // Starts are non-decreasing but may repeat, and windows overlap.
        if rng.next_f64() > 0.1 {
            t0 += rng.next_range(0.0, 2.0 * horizon / windows as f64);
        }
    }
    // The cursor still probes correctly after a train of envelope
    // queries (envelopes must not corrupt the forward state).
    let probe = cursor.probe(t0 + horizon);
    assert!(
        probe.position.distance(trajectory.position(t0 + horizon)) <= 1e-9,
        "probe after envelope queries diverged"
    );
}

#[test]
fn path_envelope_is_sound() {
    let path = PathBuilder::at(Vec2::ZERO)
        .line_to(Vec2::new(1.0, 0.0))
        .full_circle(Vec2::ZERO)
        .wait(0.7)
        .line_to(Vec2::new(-2.0, 1.5))
        .arc_around(Vec2::ZERO, -1.3)
        .build();
    check_envelope(&path, path.duration() + 2.0, 300, 0xE57, 1e-9);
}

#[test]
fn fn_trajectory_envelope_falls_back_soundly() {
    // Velocity is (−2·sin t, 0.7·cos 0.7t), so the tight speed bound is
    // √(2² + 0.7²) — the envelope fallback leans on it, unlike probes.
    let bound = (4.0_f64 + 0.49).sqrt();
    let infinite = FnTrajectory::new(|t| Vec2::new(t.cos() * 2.0, (0.7 * t).sin()), bound);
    check_envelope(&infinite, 40.0, 250, 0xE58, 1e-9);
}

#[test]
fn stationary_envelope_is_a_point() {
    let s = Stationary::new(Vec2::new(3.0, -4.0));
    check_envelope(&s, 100.0, 100, 0xE59, 0.0);
    let mut c = s.cursor();
    assert_eq!(c.envelope(0.0, 1e12).radius, 0.0);
}

#[test]
fn universal_search_envelope_is_sound() {
    use plane_rendezvous::search::times;
    check_envelope(&UniversalSearch, times::rounds_total(3), 400, 0xE5A, 1e-9);
}

#[test]
fn wait_and_search_envelope_is_sound() {
    check_envelope(
        &WaitAndSearch,
        PhaseSchedule::round_end(3),
        400,
        0xE5B,
        1e-9,
    );
}

#[test]
fn frame_warp_envelope_is_sound() {
    // Mirrored chirality and a slow clock over Algorithm 7 — the warp
    // every sweep scenario actually builds, envelope mapped through the
    // affine stack.
    let attrs = RobotAttributes::new(0.5, 1.5, 2.2, Chirality::Mirrored);
    let warped = attrs.frame_warp(WaitAndSearch, Vec2::new(-0.4, 0.9));
    check_envelope(&warped, PhaseSchedule::round_end(2) * 1.5, 400, 0xE5C, 1e-9);
}

#[test]
fn warp_drift_stack_envelope_is_sound() {
    // The deepest composition the simulator runs: FrameWarp ∘ ClockDrift
    // ∘ Algorithm 7, with the envelope threaded through both wrappers.
    let attrs = RobotAttributes::reference()
        .with_speed(0.7)
        .with_orientation(1.1);
    let warped = attrs.frame_warp(WaitAndSearch, Vec2::new(0.3, 0.8));
    let drifted = ClockDrift::from_rates(warped, &[(50.0, 0.8), (75.0, 1.3)], 1.0);
    check_envelope(&drifted, 400.0, 350, 0xE5D, 1e-9);
}

#[test]
fn spiral_envelope_falls_back_soundly() {
    check_envelope(&ArchimedeanSpiral::with_pitch(0.3), 300.0, 250, 0xE5E, 1e-9);
}
