//! Failure injection: the library must fail *loudly and precisely* on
//! bad inputs and resource exhaustion, never silently mis-simulate.

use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::FnTrajectory;

#[test]
fn engine_reports_step_budget_exhaustion() {
    // A grazing oscillation keeps the gap just above the radius so the
    // engine takes many small steps; a tiny budget must surface as
    // StepBudget, not hang or mis-report contact.
    let a = FnTrajectory::new(|t: f64| Vec2::new(t.sin() * 0.4, 0.0), 0.4);
    let b = FnTrajectory::new(|_| Vec2::new(1.5, 0.0), 0.0);
    let mut opts = ContactOptions::with_horizon(1e6);
    opts.max_steps = 50;
    match first_contact(&a, &b, 1.0, &opts) {
        SimOutcome::StepBudget {
            time,
            min_distance,
            steps,
        } => {
            assert!(time < 1e6);
            assert!(min_distance >= 0.1 - 1e-9);
            assert_eq!(steps, 50, "StepBudget must report the exhausted budget");
        }
        other => panic!("expected StepBudget, got {other}"),
    }
}

#[test]
#[should_panic(expected = "non-finite position")]
fn engine_rejects_nan_positions() {
    let bad = FnTrajectory::new(
        |t| {
            if t > 1.0 {
                Vec2::new(f64::NAN, 0.0)
            } else {
                Vec2::new(t, 0.0)
            }
        },
        1.0,
    );
    let target = FnTrajectory::new(|_| Vec2::new(100.0, 0.0), 0.0);
    let _ = first_contact(&bad, &target, 1.0, &ContactOptions::with_horizon(100.0));
}

#[test]
#[should_panic(expected = "horizon must be positive")]
fn engine_rejects_bad_horizon() {
    let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
    let _ = first_contact(&a, &a, 1.0, &ContactOptions::with_horizon(f64::INFINITY));
}

#[test]
fn engine_makes_progress_at_large_times() {
    // Near t = 1e9 the conservative step can fall below one ulp of t;
    // the progress floor must keep the loop advancing to the horizon.
    let a = FnTrajectory::new(|t| Vec2::new((t * 1e-9).sin(), 0.0), 1e-9);
    let b = FnTrajectory::new(|_| Vec2::new(10.0, 0.0), 0.0);
    let opts = ContactOptions::with_horizon(1e9);
    let out = first_contact(&a, &b, 1.0, &opts);
    assert!(matches!(out, SimOutcome::Horizon { .. }), "{out}");
}

#[test]
#[should_panic(expected = "beyond the supported horizon")]
fn universal_search_horizon_is_loud() {
    use plane_rendezvous::trajectory::Trajectory;
    let s = UniversalSearch;
    let _ = s.position(f64::MAX);
}

#[test]
#[should_panic(expected = "beyond the supported horizon")]
fn algorithm7_horizon_is_loud() {
    use plane_rendezvous::trajectory::Trajectory;
    let _ = WaitAndSearch.position(f64::MAX);
}

#[test]
fn instances_reject_all_degenerate_inputs() {
    // Coincident starts.
    assert!(RendezvousInstance::new(Vec2::ZERO, 0.1, RobotAttributes::reference()).is_err());
    // Non-finite offsets.
    assert!(RendezvousInstance::new(
        Vec2::new(f64::INFINITY, 0.0),
        0.1,
        RobotAttributes::reference()
    )
    .is_err());
    // Bad visibility.
    for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(
            RendezvousInstance::new(Vec2::UNIT_X, r, RobotAttributes::reference()).is_err(),
            "r={r} accepted"
        );
    }
}

#[test]
fn attribute_constructors_reject_nonsense() {
    use std::panic::catch_unwind;
    assert!(catch_unwind(|| RobotAttributes::reference().with_speed(f64::NAN)).is_err());
    assert!(catch_unwind(|| RobotAttributes::reference().with_speed(-1.0)).is_err());
    assert!(catch_unwind(|| RobotAttributes::reference().with_time_unit(0.0)).is_err());
    assert!(catch_unwind(|| RobotAttributes::reference().with_orientation(f64::INFINITY)).is_err());
}

#[test]
fn bound_calculators_reject_out_of_domain_parameters() {
    use std::panic::catch_unwind;
    // Theorem 1 needs d²/r ≥ 2.
    assert!(catch_unwind(|| coverage::theorem1_bound(1.0, 10.0)).is_err());
    // Lemma 13 needs τ ∈ (0, 1).
    assert!(catch_unwind(|| lemma13_round_bound(1.0, 3)).is_err());
    assert!(catch_unwind(|| lemma13_round_bound(0.0, 3)).is_err());
    // τ decomposition likewise.
    assert!(catch_unwind(|| tau_decomposition(2.0)).is_err());
}

#[test]
fn zero_tolerance_rejected_but_small_tolerance_works() {
    let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
    let b = FnTrajectory::new(|_| Vec2::new(5.0, 0.0), 0.0);
    assert!(std::panic::catch_unwind(|| {
        first_contact(&a, &b, 1.0, &ContactOptions::default().tolerance(0.0))
    })
    .is_err());
    let out = first_contact(&a, &b, 1.0, &ContactOptions::default().tolerance(1e-15));
    assert!(out.is_contact());
}
