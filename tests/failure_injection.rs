//! Failure injection: the library must fail *loudly and precisely* on
//! bad inputs and resource exhaustion, never silently mis-simulate.

use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::FnTrajectory;

#[test]
fn engine_reports_step_budget_exhaustion() {
    // A grazing oscillation keeps the gap just above the radius so the
    // engine takes many small steps; a tiny budget must surface as
    // StepBudget, not hang or mis-report contact.
    let a = FnTrajectory::new(|t: f64| Vec2::new(t.sin() * 0.4, 0.0), 0.4);
    let b = FnTrajectory::new(|_| Vec2::new(1.5, 0.0), 0.0);
    let mut opts = ContactOptions::with_horizon(1e6);
    opts.max_steps = 50;
    match first_contact(&a, &b, 1.0, &opts) {
        SimOutcome::StepBudget {
            time,
            min_distance,
            steps,
        } => {
            assert!(time < 1e6);
            assert!(min_distance >= 0.1 - 1e-9);
            assert_eq!(steps, 50, "StepBudget must report the exhausted budget");
        }
        other => panic!("expected StepBudget, got {other}"),
    }
}

#[test]
#[should_panic(expected = "non-finite position")]
fn engine_rejects_nan_positions() {
    let bad = FnTrajectory::new(
        |t| {
            if t > 1.0 {
                Vec2::new(f64::NAN, 0.0)
            } else {
                Vec2::new(t, 0.0)
            }
        },
        1.0,
    );
    let target = FnTrajectory::new(|_| Vec2::new(100.0, 0.0), 0.0);
    let _ = first_contact(&bad, &target, 1.0, &ContactOptions::with_horizon(100.0));
}

#[test]
#[should_panic(expected = "horizon must be positive")]
fn engine_rejects_bad_horizon() {
    let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
    let _ = first_contact(&a, &a, 1.0, &ContactOptions::with_horizon(f64::INFINITY));
}

#[test]
fn engine_makes_progress_at_large_times() {
    // Near t = 1e9 the conservative step can fall below one ulp of t;
    // the progress floor must keep the loop advancing to the horizon.
    let a = FnTrajectory::new(|t| Vec2::new((t * 1e-9).sin(), 0.0), 1e-9);
    let b = FnTrajectory::new(|_| Vec2::new(10.0, 0.0), 0.0);
    let opts = ContactOptions::with_horizon(1e9);
    let out = first_contact(&a, &b, 1.0, &opts);
    assert!(matches!(out, SimOutcome::Horizon { .. }), "{out}");
}

#[test]
#[should_panic(expected = "beyond the supported horizon")]
fn universal_search_horizon_is_loud() {
    use plane_rendezvous::trajectory::Trajectory;
    let s = UniversalSearch;
    let _ = s.position(f64::MAX);
}

#[test]
#[should_panic(expected = "beyond the supported horizon")]
fn algorithm7_horizon_is_loud() {
    use plane_rendezvous::trajectory::Trajectory;
    let _ = WaitAndSearch.position(f64::MAX);
}

#[test]
fn instances_reject_all_degenerate_inputs() {
    // Coincident starts.
    assert!(RendezvousInstance::new(Vec2::ZERO, 0.1, RobotAttributes::reference()).is_err());
    // Non-finite offsets.
    assert!(RendezvousInstance::new(
        Vec2::new(f64::INFINITY, 0.0),
        0.1,
        RobotAttributes::reference()
    )
    .is_err());
    // Bad visibility.
    for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(
            RendezvousInstance::new(Vec2::UNIT_X, r, RobotAttributes::reference()).is_err(),
            "r={r} accepted"
        );
    }
}

#[test]
fn attribute_constructors_reject_nonsense() {
    use std::panic::catch_unwind;
    assert!(catch_unwind(|| RobotAttributes::reference().with_speed(f64::NAN)).is_err());
    assert!(catch_unwind(|| RobotAttributes::reference().with_speed(-1.0)).is_err());
    assert!(catch_unwind(|| RobotAttributes::reference().with_time_unit(0.0)).is_err());
    assert!(catch_unwind(|| RobotAttributes::reference().with_orientation(f64::INFINITY)).is_err());
}

#[test]
fn bound_calculators_reject_out_of_domain_parameters() {
    use std::panic::catch_unwind;
    // Theorem 1 needs d²/r ≥ 2.
    assert!(catch_unwind(|| coverage::theorem1_bound(1.0, 10.0)).is_err());
    // Lemma 13 needs τ ∈ (0, 1).
    assert!(catch_unwind(|| lemma13_round_bound(1.0, 3)).is_err());
    assert!(catch_unwind(|| lemma13_round_bound(0.0, 3)).is_err());
    // τ decomposition likewise.
    assert!(catch_unwind(|| tau_decomposition(2.0)).is_err());
}

#[test]
fn all_four_engine_paths_surface_deadline_precisely() {
    use plane_rendezvous::sim::{
        first_contact_cursors, try_first_contact_programs, Budget, EngineScratch,
    };
    use plane_rendezvous::trajectory::{Compile, CompileOptions, LazyProgram};
    use std::time::Duration;

    // An already-expired budget checked every 4 steps: every path must
    // stop at exactly its first check boundary — `steps == 4` — and
    // report Deadline, not Horizon/StepBudget/hang.
    let attrs = RobotAttributes::new(0.8, 1.1, 0.3, Chirality::Consistent);
    let partner = attrs.frame_warp(UniversalSearch, Vec2::new(1.5, 0.9));
    let horizon = times::rounds_total(3);
    let radius = 0.05;
    let opts = ContactOptions::with_horizon(horizon)
        .tolerance(1e-9)
        .with_budget(Budget::new(Duration::ZERO).check_every(4));

    let assert_deadline = |label: &str, out: SimOutcome| match out {
        SimOutcome::Deadline { steps, time, .. } => {
            assert_eq!(
                steps, 4,
                "{label}: deadline must fire at the check boundary"
            );
            assert!(time >= 0.0 && time <= horizon, "{label}: time {time}");
        }
        other => panic!("{label}: expected Deadline, got {other}"),
    };

    assert_deadline(
        "generic",
        first_contact_generic(&UniversalSearch, &partner, radius, &opts),
    );
    assert_deadline(
        "cursor",
        first_contact_cursors(
            &mut *UniversalSearch.dyn_cursor(),
            &mut *partner.dyn_cursor(),
            radius,
            &opts,
        ),
    );

    let copts = CompileOptions::to_horizon(horizon).max_pieces(1 << 18);
    let ea = UniversalSearch.compile(&copts).expect("reference compiles");
    let eb = partner.compile(&copts).expect("warped partner compiles");
    let mut scratch = EngineScratch::new();
    assert_deadline(
        "compiled-eager",
        try_first_contact_programs(&ea, &eb, radius, &opts, &mut scratch)
            .expect("deadline is a definitive outcome, not a coverage refusal"),
    );

    let la = LazyProgram::new(&UniversalSearch, copts);
    let lb = LazyProgram::new(&partner, copts);
    assert_deadline(
        "compiled-lazy",
        try_first_contact_programs(&la, &lb, radius, &opts, &mut scratch)
            .expect("deadline is a definitive outcome, not a coverage refusal"),
    );
}

#[test]
fn unlimited_budget_is_bit_identical_to_no_budget() {
    use plane_rendezvous::experiments::{
        latin_hypercube, record_to_json, run_sweep, SampleSpace, SweepOptions,
    };
    use plane_rendezvous::sim::Budget;
    use std::time::Duration;

    // `Duration::MAX` never expires, so the budget checks are dead
    // branches: the sweep output must be byte-for-byte the same JSON as
    // a run with no budget at all — same outcomes, times, step counts.
    let scenarios = latin_hypercube(&SampleSpace::default(), 24, 0xC0FFEE);
    let base = SweepOptions {
        threads: 1,
        ..SweepOptions::default()
    };
    let with_budget = SweepOptions {
        contact: base.contact.with_budget(Budget::new(Duration::MAX)),
        ..base
    };
    let plain = run_sweep(&scenarios, &base);
    let budgeted = run_sweep(&scenarios, &with_budget);
    assert_eq!(plain.len(), budgeted.len());
    for (p, b) in plain.iter().zip(budgeted.iter()) {
        assert_eq!(
            record_to_json(p).render(),
            record_to_json(b).render(),
            "an unlimited budget must not perturb the record"
        );
    }
}

#[test]
fn zero_tolerance_rejected_but_small_tolerance_works() {
    let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
    let b = FnTrajectory::new(|_| Vec2::new(5.0, 0.0), 0.0);
    assert!(std::panic::catch_unwind(|| {
        first_contact(&a, &b, 1.0, &ContactOptions::default().tolerance(0.0))
    })
    .is_err());
    let out = first_contact(&a, &b, 1.0, &ContactOptions::default().tolerance(1e-15));
    assert!(out.is_contact());
}
