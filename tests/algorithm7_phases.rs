//! Integration test for Lemma 8 and Figures 1–3 (experiments E7, E8,
//! E10): the closed-form phase schedule against the explicitly generated
//! trajectory, and the overlap algebra against scaled simulations.

use plane_rendezvous::core::{
    overlap_lemma10, overlap_lemma9, Algorithm7Phase, PhaseSchedule, WaitAndSearch,
};
use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::StreamCursor;

/// E7: Lemma 8's I(n) and A(n) match the stream-accumulated durations of
/// the explicit Algorithm 7 segment list.
#[test]
fn phase_boundaries_match_stream_accumulation() {
    // Accumulate explicit segment durations round by round.
    let mut t = 0.0;
    for n in 1..=4u32 {
        assert!(
            (PhaseSchedule::inactive_start(n) - t).abs() < 1e-6 * (1.0 + t),
            "I({n}) mismatch: closed form {} vs accumulated {t}",
            PhaseSchedule::inactive_start(n)
        );
        // Wait phase is one segment of length 2S(n).
        let wait = 2.0 * PhaseSchedule::search_all_duration(n);
        assert!(
            (PhaseSchedule::active_start(n) - (t + wait)).abs() < 1e-6 * (1.0 + t),
            "A({n}) mismatch"
        );
        // Active phase: sum the explicit segments of SearchAll + SearchAllRev.
        let active: f64 = (1..=n)
            .chain((1..=n).rev())
            .map(plane_rendezvous::search::times::round_duration)
            .sum();
        t += wait + active;
    }
}

/// E7: the robot is exactly where the phase claims — at the origin
/// throughout every inactive phase, away from it mid-sweep.
#[test]
fn positions_respect_phases() {
    let algo = WaitAndSearch;
    for n in 1..=4u32 {
        let (i0, i1) = PhaseSchedule::inactive_interval(n);
        for f in [0.01, 0.5, 0.99] {
            let t = i0 + f * (i1 - i0);
            assert_eq!(
                algo.position(t),
                Vec2::ZERO,
                "round {n}: moved while inactive"
            );
            assert!(matches!(
                WaitAndSearch::locate(t),
                Algorithm7Phase::Inactive { .. }
            ));
        }
    }
}

/// E10 (Figure 2): the active phase decomposes as
/// Search(1)…Search(n) Search(n)…Search(1), verified against a stream
/// cursor for n ≤ 3.
#[test]
fn active_phase_structure_matches_figure2() {
    let n = 3u32;
    let a = PhaseSchedule::active_start(n);
    let s = PhaseSchedule::search_all_duration(n);
    // Expected block boundaries in order.
    let mut boundaries = vec![];
    let mut acc = a;
    for k in 1..=n {
        boundaries.push((acc, k));
        acc += plane_rendezvous::search::times::round_duration(k);
    }
    assert!((acc - (a + s)).abs() < 1e-9 * acc);
    for k in (1..=n).rev() {
        boundaries.push((acc, k));
        acc += plane_rendezvous::search::times::round_duration(k);
    }
    assert!((acc - PhaseSchedule::round_end(n)).abs() < 1e-9 * acc);
    // locate() must report exactly these blocks just after each boundary.
    for (i, &(t, k)) in boundaries.iter().enumerate() {
        let phase = WaitAndSearch::locate(t + 1e-3);
        let forward = i < n as usize;
        match phase {
            Algorithm7Phase::Forward { k: got, .. } if forward => {
                assert_eq!(got, k, "block {i}")
            }
            Algorithm7Phase::Reverse { k: got, .. } if !forward => {
                assert_eq!(got, k, "block {i}")
            }
            other => panic!("block {i}: unexpected phase {other:?}"),
        }
    }
}

/// Random-access positions equal stream-cursor positions across the
/// first two Algorithm 7 rounds at fine sampling (E7 cross-check).
#[test]
fn closed_form_equals_stream_over_two_rounds() {
    let algo = WaitAndSearch;
    let horizon = PhaseSchedule::round_end(2);
    let mut cursor = StreamCursor::new(WaitAndSearch::segments(2));
    let samples = 5000;
    for i in 0..samples {
        let t = horizon * (i as f64) / (samples as f64);
        let a = algo.position(t);
        let b = cursor.position(t);
        assert!(a.distance(b) < 1e-6, "t={t}: {a} vs {b}");
    }
}

/// E8 (Figure 3a): the Lemma 9 overlap equals the intersection measured
/// on actual τ-scaled trajectories — the partner really is stationary
/// during the whole claimed window.
#[test]
fn lemma9_overlap_window_has_stationary_partner() {
    let (k, a) = (4u32, 0u32);
    let (lo, hi) = plane_rendezvous::core::overlap::lemma9_tau_range(k, a);
    let tau = 0.5 * (lo + hi);
    let rep = overlap_lemma9(tau, k, a);
    assert!(rep.hypothesis_holds);
    // Sample the partner's position during the overlap window.
    let attrs = RobotAttributes::reference().with_time_unit(tau);
    let partner = attrs.frame_warp(WaitAndSearch, Vec2::ZERO);
    let (w0, w1) = (
        rep.reference_interval.0.max(rep.partner_interval.0),
        rep.reference_interval.1.min(rep.partner_interval.1),
    );
    assert!((w1 - w0 - rep.computed).abs() < 1e-9 * (1.0 + rep.computed));
    for f in [0.0, 0.25, 0.5, 0.75, 0.999] {
        let t = w0 + f * (w1 - w0);
        assert_eq!(
            partner.position(t),
            Vec2::ZERO,
            "partner moved inside the Lemma 9 window at t={t}"
        );
    }
}

/// E8 (Figure 3b): same for Lemma 10's reverse-side window.
#[test]
fn lemma10_overlap_window_has_stationary_partner() {
    let (k, a) = (6u32, 1u32);
    let (lo, hi) = plane_rendezvous::core::overlap::lemma10_tau_range(k, a);
    let tau = 0.5 * (lo + hi);
    let rep = overlap_lemma10(tau, k, a);
    assert!(rep.hypothesis_holds);
    let attrs = RobotAttributes::reference().with_time_unit(tau);
    let partner = attrs.frame_warp(WaitAndSearch, Vec2::ZERO);
    let (w0, w1) = (
        rep.reference_interval.0.max(rep.partner_interval.0),
        rep.reference_interval.1.min(rep.partner_interval.1),
    );
    for f in [0.0, 0.5, 0.999] {
        let t = w0 + f * (w1 - w0);
        assert_eq!(partner.position(t), Vec2::ZERO, "partner moved at t={t}");
    }
    // And the reference robot is in its *reverse* sweep during the window
    // end (Figure 3b's geometry).
    match WaitAndSearch::locate(w1 - 1e-3) {
        Algorithm7Phase::Reverse { .. } => {}
        other => panic!("expected reverse sweep at window end, got {other:?}"),
    }
}
