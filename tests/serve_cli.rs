//! End-to-end tests of the `rvz serve`, `rvz client` and `rvz loadtest`
//! subcommands: a real child process on an ephemeral port, driven over
//! real sockets.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn rvz(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Starts `rvz serve --port 0` and scrapes the bound port from the
/// startup banner.
fn spawn_server(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("a banner line")
        .expect("readable stdout");
    // Keep draining the pipe so the server never blocks (or breaks) on
    // a closed stdout.
    std::thread::spawn(move || for _ in lines {});
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("banner ends with the address")
        .to_string();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner: {banner}"
    );
    (child, addr)
}

fn client(addr: &str, args: &[&str]) -> (bool, String) {
    let (ok, stdout, _) = rvz(&[&["client", "--addr", addr][..], args].concat());
    (ok, stdout)
}

#[test]
fn serve_answers_queries_and_shuts_down_gracefully() {
    let (mut child, addr) = spawn_server(&[]);

    // Feasibility over the wire.
    let (ok, out) = client(&addr, &["--path", "/feasibility?tau=0.5"]);
    assert!(ok, "feasibility query failed: {out}");
    assert!(out.contains("\"breaker\":\"clocks\""));

    // First contact misses, its role-swap twin hits the same entry.
    let base = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
    let twin = r#"{"speed":2,"distance":1.8,"visibility":0.5,"bearing":4.188790204786391}"#;
    let (ok, out) = client(&addr, &["--path", "/first-contact", "--body", base]);
    assert!(ok);
    assert!(out.contains("X-Rvz-Cache: miss"), "first query: {out}");
    assert!(out.contains("\"outcome\":\"contact\""));
    let (ok, out) = client(&addr, &["--path", "/first-contact", "--body", twin]);
    assert!(ok);
    assert!(
        out.contains("X-Rvz-Cache: hit"),
        "symmetric twin should hit: {out}"
    );
    assert!(out.contains("\"swapped\":true"));

    // Batch sweep: both scenarios already cached from above? Only the
    // first orbit is; the second is new.
    let batch = r#"{"scenarios":[
        {"speed":0.5,"distance":0.9,"visibility":0.25},
        {"time_unit":0.6,"distance":0.9,"visibility":0.25}
    ]}"#;
    let (ok, out) = client(&addr, &["--path", "/sweep", "--body", batch]);
    assert!(ok, "sweep failed: {out}");
    assert!(out.contains("X-Rvz-Cache: hits=1;misses=1"), "{out}");
    assert!(out.contains("\"consistent\":2"));

    // Graceful shutdown: the child process exits cleanly.
    let (ok, out) = client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    assert!(ok);
    assert!(out.contains("\"shutting_down\":true"));
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");
}

#[test]
fn serve_no_cache_reports_bypass() {
    let (mut child, addr) = spawn_server(&["--no-cache"]);
    let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
    for _ in 0..2 {
        let (ok, out) = client(&addr, &["--path", "/first-contact", "--body", body]);
        assert!(ok);
        assert!(out.contains("X-Rvz-Cache: bypass"), "{out}");
    }
    let (_, _) = client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");
}

#[test]
fn client_reports_server_errors_with_nonzero_exit() {
    let (mut child, addr) = spawn_server(&[]);
    let (ok, stdout, stderr) = rvz(&[
        "client",
        "--addr",
        &addr,
        "--path",
        "/first-contact",
        "--body",
        "{\"speed\":-1}",
    ]);
    assert!(!ok, "a 400 should fail the client");
    assert!(stdout.contains("HTTP 400"));
    assert!(stderr.contains("status 400"));
    let (_, _) = client(&addr, &["--path", "/shutdown", "--method", "POST"]);
    child.wait().expect("serve exits");
}

#[test]
fn loadtest_quick_writes_the_bench_artifact() {
    let out_path =
        std::env::temp_dir().join(format!("rvz-loadtest-test-{}.json", std::process::id()));
    let out_str = out_path.to_str().unwrap();
    let (ok, stdout, stderr) = rvz(&[
        "loadtest",
        "--quick",
        "--clients",
        "2",
        "--requests",
        "10",
        "--families",
        "2",
        "--out",
        out_str,
    ]);
    assert!(ok, "loadtest failed: {stderr}");
    assert!(stdout.contains("cached"));
    assert!(stdout.contains("no-cache"));
    assert!(stdout.contains("speedup"));
    let json = std::fs::read_to_string(&out_path).unwrap();
    std::fs::remove_file(&out_path).ok();
    let parsed = plane_rendezvous::experiments::json::parse(json.trim()).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(|s| s.as_str()),
        Some("rvz-bench-serve/v3")
    );
    assert!(parsed.get("speedup").and_then(|s| s.as_f64()).unwrap() > 0.0);
    // v3: each closed-loop arm carries its full latency distribution.
    for arm in parsed.get("arms").and_then(|a| a.as_array()).unwrap() {
        let hist = arm
            .get("latency_histogram")
            .expect("v3 arms carry a latency histogram");
        assert!(hist.get("count").and_then(|c| c.as_f64()).unwrap() > 0.0);
        assert!(!hist
            .get("buckets")
            .and_then(|b| b.as_array())
            .unwrap()
            .is_empty());
    }
    // The open-loop overload phase must be part of the artifact.
    let overload = parsed
        .get("overload")
        .expect("the artifact carries an overload object");
    let arms = overload.get("arms").and_then(|a| a.as_array()).unwrap();
    assert_eq!(arms.len(), 2, "1x and 2x arms");
    for arm in arms {
        assert!(arm.get("shed_rate").and_then(|s| s.as_f64()).is_some());
        assert!(arm.get("accepted_latency_us").is_some());
    }
}

#[test]
fn per_subcommand_help_and_version() {
    let (ok, stdout, _) = rvz(&["version"]);
    assert!(ok);
    assert!(stdout.starts_with("rvz "));
    let (ok, stdout, _) = rvz(&["--version"]);
    assert!(ok);
    assert!(stdout.starts_with("rvz "));

    for cmd in [
        "feasibility",
        "search",
        "rendezvous",
        "phases",
        "bounds",
        "sweep",
        "map",
        "bench-engine",
        "serve",
        "loadtest",
        "client",
    ] {
        let (ok, stdout, _) = rvz(&[cmd, "--help"]);
        assert!(ok, "`rvz {cmd} --help` failed");
        assert!(
            stdout.contains("USAGE:") && stdout.contains(cmd),
            "`rvz {cmd} --help` output is not a usage string: {stdout}"
        );
    }
}

#[test]
fn unknown_flags_name_the_subcommand() {
    let (ok, _, stderr) = rvz(&["sweep", "--warp-speed", "9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--warp-speed` for `rvz sweep`"));
    assert!(stderr.contains("USAGE:"));
    assert!(
        stderr.contains("rvz sweep ["),
        "points at sweep usage: {stderr}"
    );

    let (ok, _, stderr) = rvz(&["serve", "--por", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--por` for `rvz serve`"));
}
