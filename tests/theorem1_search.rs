//! Integration test for Theorem 1 (experiments E1–E3): the universal
//! search algorithm finds every target within the paper's time bound,
//! measured two independent ways (conservative-advancement simulation
//! and the closed-form analytic oracle).

use plane_rendezvous::prelude::*;

fn instance(x: f64, y: f64, r: f64) -> SearchInstance {
    SearchInstance::new(Vec2::new(x, y), r).unwrap()
}

#[test]
fn search_time_within_theorem1_bound_across_sweep() {
    // Sweep distances and visibilities; verify measured < bound.
    let targets = [
        (0.3, 0.4),
        (-0.9, 0.2),
        (0.0, 1.7),
        (2.1, -1.2),
        (-3.0, -3.0),
        (0.05, -0.12),
    ];
    for &(x, y) in &targets {
        for rexp in [-4, -6, -9] {
            let r = (rexp as f64).exp2();
            let inst = instance(x, y, r);
            if inst.difficulty() < 2.0 {
                continue;
            }
            let found = first_discovery(&inst, 31).expect("analytic discovery");
            let bound = coverage::theorem1_bound(inst.distance(), r);
            assert!(
                found.time < bound,
                "target ({x},{y}), r=2^{rexp}: measured {} ≥ bound {bound}",
                found.time
            );
        }
    }
}

#[test]
fn simulated_and_analytic_search_agree() {
    for &(x, y, r) in &[
        (0.45_f64, 0.8_f64, 0.02_f64),
        (-1.2, 0.3, 0.05),
        (0.9, -0.9, 0.01),
    ] {
        let inst = instance(x, y, r);
        let analytic = first_discovery(&inst, 20).unwrap();
        let opts = ContactOptions::with_horizon(analytic.time + 50.0).tolerance(r * 1e-9);
        let sim = simulate_search(UniversalSearch, &inst, &opts)
            .contact_time()
            .expect("simulation finds the target");
        assert!(
            (sim - analytic.time).abs() <= 1e-3 * (1.0 + analytic.time),
            "({x},{y},{r}): sim {sim} vs analytic {}",
            analytic.time
        );
    }
}

#[test]
fn discovery_round_never_exceeds_lemma1_witness() {
    for &(x, y, r) in &[
        (0.7_f64, 0.4_f64, 1e-3_f64),
        (-0.2, 1.1, 1e-4),
        (1.9, 0.3, 1e-5),
    ] {
        let inst = instance(x, y, r);
        let witness = coverage::lemma1_witness(inst.distance(), r).expect("witness should exist");
        let found = first_discovery(&inst, 31).unwrap();
        assert!(
            found.round <= witness.round,
            "({x},{y},{r}): found round {} > witness {}",
            found.round,
            witness.round
        );
    }
}

/// Lemma 3 in the paper's regime: discovery on round k certifies
/// difficulty ≥ 2^{k+1} for off-axis targets found by the circle sweep.
#[test]
fn lemma3_difficulty_certificate() {
    for &(d, rexp) in &[(0.8_f64, -7_i32), (1.3, -9), (0.4, -8), (2.7, -11)] {
        let r = (rexp as f64).exp2();
        let inst = instance(0.0, d, r); // on the y-axis: no leg shortcut
        let found = first_discovery(&inst, 31).unwrap();
        assert!(
            inst.difficulty() >= coverage::lemma3_lower_bound(found.round),
            "d={d}, r=2^{rexp}: round {} but difficulty {}",
            found.round,
            inst.difficulty()
        );
    }
}

/// Degenerate inputs are rejected, not mis-simulated.
#[test]
fn invalid_instances_are_rejected() {
    assert!(SearchInstance::new(Vec2::ZERO, 0.1).is_err());
    assert!(SearchInstance::new(Vec2::UNIT_X, 0.0).is_err());
    assert!(SearchInstance::new(Vec2::new(f64::NAN, 0.0), 0.1).is_err());
}

/// The bound is tight-ish: measured time is within the bound but not
/// absurdly below it (sanity that we measure the same quantity the
/// theorem bounds — same d²/r scaling).
#[test]
fn measured_time_scales_like_difficulty() {
    let r = 1e-4;
    let t1 = first_discovery(&instance(0.0, 0.5, r), 31).unwrap().time;
    let t2 = first_discovery(&instance(0.0, 2.0, r), 31).unwrap().time;
    // d quadrupled ⇒ difficulty ×16 ⇒ time should grow by roughly 16
    // (up to the log factor and round quantization).
    let ratio = t2 / t1;
    assert!(
        (4.0..200.0).contains(&ratio),
        "scaling ratio {ratio} outside plausible range"
    );
}
