//! End-to-end tests of the `rvz sweep` and `rvz map` subcommands.

use std::path::PathBuf;
use std::process::Command;

fn rvz(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rvz"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A per-test output prefix under the target temp dir.
fn out_prefix(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("rvz-sweep-test-{}-{tag}", std::process::id()));
    dir
}

#[test]
fn sweep_writes_jsonl_and_csv_artifacts() {
    let prefix = out_prefix("artifacts");
    let prefix_str = prefix.to_str().unwrap();
    let (ok, stdout, stderr) = rvz(&[
        "sweep",
        "--speeds",
        "0.5,1.0",
        "--clocks",
        "0.6,1.0",
        "--phis",
        "0",
        "--chis",
        "+1",
        "--distances",
        "0.9",
        "--r",
        "0.25",
        "--threads",
        "2",
        "--out",
        prefix_str,
    ]);
    assert!(ok, "sweep failed: {stderr}");
    assert!(stdout.contains("sweeping 4 scenarios"));
    assert!(stdout.contains("theorem-4 consistency: 4/4"));

    let jsonl = std::fs::read_to_string(format!("{prefix_str}.jsonl")).unwrap();
    assert_eq!(jsonl.lines().count(), 4);
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));

    let csv = std::fs::read_to_string(format!("{prefix_str}.csv")).unwrap();
    assert_eq!(csv.lines().count(), 5, "header + 4 rows");
    assert!(csv.starts_with("id,algorithm,speed"));

    for ext in ["jsonl", "csv"] {
        let _ = std::fs::remove_file(format!("{prefix_str}.{ext}"));
    }
}

#[test]
fn sweep_output_is_byte_identical_across_thread_counts() {
    let args_for = |prefix: &str, threads: &str| {
        vec![
            "sweep".to_string(),
            "--speeds".into(),
            "0.5,0.8,1.0".into(),
            "--clocks".into(),
            "0.6,1.0".into(),
            "--phis".into(),
            "0,1.3".into(),
            "--distances".into(),
            "0.9".into(),
            "--r".into(),
            "0.25".into(),
            "--threads".into(),
            threads.into(),
            "--out".into(),
            prefix.into(),
        ]
    };
    let p1 = out_prefix("t1");
    let p4 = out_prefix("t4");
    for (prefix, threads) in [(&p1, "1"), (&p4, "4")] {
        let args = args_for(prefix.to_str().unwrap(), threads);
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let (ok, _, stderr) = rvz(&refs);
        assert!(ok, "sweep failed: {stderr}");
    }
    for ext in ["jsonl", "csv"] {
        let a = std::fs::read(format!("{}.{ext}", p1.to_str().unwrap())).unwrap();
        let b = std::fs::read(format!("{}.{ext}", p4.to_str().unwrap())).unwrap();
        assert_eq!(a, b, "{ext} artifact differs between 1 and 4 threads");
        let _ = std::fs::remove_file(format!("{}.{ext}", p1.to_str().unwrap()));
        let _ = std::fs::remove_file(format!("{}.{ext}", p4.to_str().unwrap()));
    }
}

#[test]
fn sweep_lhs_mode_is_seeded() {
    let prefix = out_prefix("lhs");
    let prefix_str = prefix.to_str().unwrap();
    let (ok, stdout, stderr) = rvz(&[
        "sweep",
        "--lhs",
        "32",
        "--seed",
        "7",
        "--r",
        "0.2",
        "--threads",
        "2",
        "--out",
        prefix_str,
    ]);
    assert!(ok, "lhs sweep failed: {stderr}");
    assert!(stdout.contains("sweeping 32 scenarios"));
    let first = std::fs::read(format!("{prefix_str}.jsonl")).unwrap();

    let (ok, _, _) = rvz(&[
        "sweep",
        "--lhs",
        "32",
        "--seed",
        "7",
        "--r",
        "0.2",
        "--threads",
        "4",
        "--out",
        prefix_str,
    ]);
    assert!(ok);
    let second = std::fs::read(format!("{prefix_str}.jsonl")).unwrap();
    assert_eq!(first, second, "same seed must reproduce the same artifact");

    for ext in ["jsonl", "csv"] {
        let _ = std::fs::remove_file(format!("{prefix_str}.{ext}"));
    }
}

#[test]
fn sweep_rejects_bad_flags() {
    let (ok, _, stderr) = rvz(&["sweep", "--speeds", "fast"]);
    assert!(!ok);
    assert!(stderr.contains("comma-separated numbers"));

    let (ok, _, stderr) = rvz(&["sweep", "--lhs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("positive sample count"));

    let (ok, _, stderr) = rvz(&["sweep", "--algos", "dance"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));

    let (ok, _, stderr) = rvz(&["sweep", "--horizon-rounds", "0"]);
    assert!(!ok);
    assert!(stderr.contains("`--horizon-rounds` must be in 1..=31"));

    let (ok, _, stderr) = rvz(&["map", "--horizon-rounds", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("`--horizon-rounds` expects an integer"));
}

#[test]
fn map_confirms_every_cell() {
    let (ok, stdout, stderr) = rvz(&["map", "--threads", "2"]);
    assert!(ok, "map failed: {stderr}");
    assert!(stdout.contains("Theorem 4"));
    assert!(stdout.contains("F:clock"));
    assert!(stdout.contains("16/16 cells confirmed by simulation"));
}

#[test]
fn sweep_no_prune_flag_is_accepted_and_consistent() {
    let prefix = out_prefix("no-prune");
    let prefix_str = prefix.to_str().unwrap();
    let args_tail = [
        "--speeds",
        "0.5,1.0",
        "--clocks",
        "1.0",
        "--phis",
        "0",
        "--chis",
        "+1",
        "--distances",
        "0.9",
        "--r",
        "0.25",
        "--threads",
        "2",
        "--out",
        prefix_str,
    ];
    let mut with_flag: Vec<&str> = vec!["sweep", "--no-prune"];
    with_flag.extend_from_slice(&args_tail);
    let (ok, stdout, stderr) = rvz(&with_flag);
    assert!(ok, "sweep --no-prune failed: {stderr}");
    assert!(stdout.contains("theorem-4 consistency: 2/2"));
}

#[test]
fn sweep_dedup_orbits_collapses_and_stays_consistent() {
    // Speeds 0.5 and 2.0 with matched placements contain role-swap
    // pairs only when d and r scale together; a single-cell grid per
    // speed keeps this simple — the dedup must at least run, report the
    // collapse line, and keep every record Theorem 4 consistent.
    let prefix = out_prefix("dedup");
    let prefix_str = prefix.to_str().unwrap();
    let (ok, stdout, stderr) = rvz(&[
        "sweep",
        "--dedup-orbits",
        "--speeds",
        "0.5,1.0",
        "--clocks",
        "0.5,2.0",
        "--phis",
        "0",
        "--chis",
        "+1",
        "--distances",
        "0.9",
        "--r",
        "0.25",
        "--threads",
        "2",
        "--out",
        prefix_str,
    ]);
    assert!(ok, "sweep --dedup-orbits failed: {stderr}");
    assert!(
        stdout.contains("orbit dedup:"),
        "missing collapse report:\n{stdout}"
    );
    assert!(stdout.contains("theorem-4 consistency: 4/4"), "{stdout}");
    let jsonl = std::fs::read_to_string(format!("{prefix_str}.jsonl")).unwrap();
    assert_eq!(jsonl.lines().count(), 4, "records keep the input scenarios");
}

#[test]
fn sweep_compile_budget_flag_is_accepted() {
    let prefix = out_prefix("compile-budget");
    let prefix_str = prefix.to_str().unwrap();
    // Budget 0 = cursor path only; the records must be just as
    // consistent (the compiled path never changes classifications).
    let (ok, stdout, stderr) = rvz(&[
        "sweep",
        "--compile-budget",
        "0",
        "--speeds",
        "0.5",
        "--clocks",
        "1.0",
        "--phis",
        "0",
        "--chis",
        "+1",
        "--distances",
        "0.9",
        "--r",
        "0.25",
        "--out",
        prefix_str,
    ]);
    assert!(ok, "sweep --compile-budget failed: {stderr}");
    assert!(stdout.contains("theorem-4 consistency: 1/1"), "{stdout}");
}
