//! Old engine vs. new engine: `SimOutcome` equivalence over a
//! Latin-hypercube of rendezvous scenarios.
//!
//! The monotone-cursor fast path (`first_contact`) must classify every
//! scenario — contact / horizon / step-budget — exactly as the original
//! conservative-advancement loop (`first_contact_generic`), report
//! contact times within the tolerance-derived slack, and never contact
//! later than the dense-sampling brute oracle.
//!
//! The one theoretical divergence is a dip entirely inside the
//! declaration band `(radius, radius + tolerance]`, which the generic
//! engine may legitimately step over; Latin-hypercube scenarios are not
//! knife-edge, and any such case would surface here as a classification
//! mismatch.

use plane_rendezvous::experiments::{latin_hypercube, Algorithm, SampleSpace, Scenario};
use plane_rendezvous::prelude::*;

/// The fast path, via the public rendezvous runner.
fn run_fast(scenario: &Scenario, opts: &ContactOptions) -> SimOutcome {
    let instance = scenario.instance().expect("valid scenario");
    match scenario.algorithm {
        Algorithm::WaitAndSearch => simulate_rendezvous(WaitAndSearch, &instance, opts),
        Algorithm::UniversalSearch => simulate_rendezvous(UniversalSearch, &instance, opts),
    }
}

/// The seed engine on the identical pair of trajectories.
fn run_generic(scenario: &Scenario, opts: &ContactOptions) -> SimOutcome {
    let instance = scenario.instance().expect("valid scenario");
    match scenario.algorithm {
        Algorithm::WaitAndSearch => {
            let partner = instance
                .attributes()
                .frame_warp(WaitAndSearch, instance.offset());
            first_contact_generic(&WaitAndSearch, &partner, instance.visibility(), opts)
        }
        Algorithm::UniversalSearch => {
            let partner = instance
                .attributes()
                .frame_warp(UniversalSearch, instance.offset());
            first_contact_generic(&UniversalSearch, &partner, instance.visibility(), opts)
        }
    }
}

#[test]
fn fast_and_generic_engines_classify_identically() {
    let space = SampleSpace {
        visibility: 0.2,
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 48, 0xE9E9);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(7),
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    let mut contacts = 0_usize;
    for scenario in &scenarios {
        let fast = run_fast(scenario, &opts);
        let generic = run_generic(scenario, &opts);
        assert_eq!(
            fast.classification(),
            generic.classification(),
            "scenario {scenario:?}: fast {fast} vs generic {generic}"
        );
        if let (
            SimOutcome::Contact { time: tf, .. },
            SimOutcome::Contact {
                time: tg,
                distance: dg,
                ..
            },
        ) = (fast, generic)
        {
            contacts += 1;
            // The fast engine resolves the crossing analytically; the
            // generic engine lands within tolerance/rel_speed of it. Both
            // must agree to the engines' shared declaration slack.
            let slack = (opts.tolerance * 10.0).max(1e-9 * tg.abs()) + 1e-6;
            assert!(
                tf <= tg + slack,
                "fast contact later than generic: {tf} vs {tg} ({scenario:?})"
            );
            assert!(dg <= scenario.visibility + opts.tolerance);
        }
    }
    // The hypercube must actually exercise the contact branch.
    assert!(contacts >= 10, "only {contacts} contact scenarios sampled");
}

#[test]
fn fast_engine_never_later_than_brute_oracle() {
    let space = SampleSpace {
        visibility: 0.25,
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 12, 0xB07);
    let horizon = plane_rendezvous::core::completion_time(5);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon,
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    for scenario in &scenarios {
        let instance = scenario.instance().expect("valid scenario");
        let (fast, brute) = match scenario.algorithm {
            Algorithm::WaitAndSearch => {
                let partner = instance
                    .attributes()
                    .frame_warp(WaitAndSearch, instance.offset());
                (
                    first_contact(&WaitAndSearch, &partner, instance.visibility(), &opts),
                    plane_rendezvous::sim::first_contact_brute(
                        &WaitAndSearch,
                        &partner,
                        instance.visibility(),
                        horizon,
                        horizon / 400_000.0,
                    ),
                )
            }
            Algorithm::UniversalSearch => {
                let partner = instance
                    .attributes()
                    .frame_warp(UniversalSearch, instance.offset());
                (
                    first_contact(&UniversalSearch, &partner, instance.visibility(), &opts),
                    plane_rendezvous::sim::first_contact_brute(
                        &UniversalSearch,
                        &partner,
                        instance.visibility(),
                        horizon,
                        horizon / 400_000.0,
                    ),
                )
            }
        };
        if let Some(tb) = brute {
            // One-sided soundness: where coarse sampling sees a contact,
            // the sound engine must have found one no later.
            let tf = fast
                .contact_time()
                .unwrap_or_else(|| panic!("engine missed brute contact at {tb} ({scenario:?})"));
            assert!(tf <= tb + 1e-9, "late contact: {tf} vs brute {tb}");
        }
    }
}

/// The generic fallback itself still matches the brute oracle — the
/// cross-check required for exotic `Trajectory` impls that bypass the
/// cursor layer.
#[test]
fn generic_fallback_agrees_with_brute_oracle() {
    use plane_rendezvous::trajectory::FnTrajectory;
    let a = FnTrajectory::new(|t: f64| Vec2::new(t.sin() * 3.0, t.cos() * 2.0), 3.0);
    let b = FnTrajectory::new(|t: f64| Vec2::new(4.0 - 0.2 * t, 0.1 * t), 0.25);
    let opts = ContactOptions::with_horizon(50.0);
    let engine = first_contact_generic(&a, &b, 0.5, &opts);
    let brute = plane_rendezvous::sim::first_contact_brute(&a, &b, 0.5, 50.0, 1e-4);
    match (engine.contact_time(), brute) {
        (Some(te), Some(tb)) => assert!(te <= tb + 1e-9, "{te} vs {tb}"),
        (Some(_), None) => {} // engine is allowed to be sharper
        (None, Some(tb)) => panic!("generic engine missed brute contact at {tb}"),
        (None, None) => {}
    }
}

/// Pruning on vs pruning off over the Latin-hypercube: contacts must
/// agree within the engines' shared declaration slack (skips only
/// remove certified contact-free intervals; on most scenarios the leaf
/// arithmetic resolves the identical crossing, but a conservative crawl
/// into the tolerance band may land ulps apart), and non-contact
/// scenarios may differ only by pruning upgrading a `step-budget`
/// truncation into a completed `horizon` disproof.
#[test]
fn pruned_and_unpruned_engines_agree() {
    let space = SampleSpace {
        visibility: 0.2,
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 48, 0xE9E9);
    let base = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(7),
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    for scenario in &scenarios {
        let pruned = run_fast(scenario, &base.prune(true));
        let unpruned = run_fast(scenario, &base.prune(false));
        match (pruned, unpruned) {
            (
                SimOutcome::Contact {
                    time: tp,
                    distance: dp,
                    ..
                },
                SimOutcome::Contact {
                    time: tu,
                    distance: du,
                    ..
                },
            ) => {
                let slack = base.tolerance * 10.0 + 1e-9 * tu.abs() + 1e-6;
                assert!((tp - tu).abs() <= slack, "{tp} vs {tu} ({scenario:?})");
                assert!(dp <= scenario.visibility + base.tolerance);
                assert!(du <= scenario.visibility + base.tolerance);
            }
            (SimOutcome::Contact { .. }, other) | (other, SimOutcome::Contact { .. }) => {
                panic!("pruning changed a contact verdict: {other} ({scenario:?})")
            }
            (SimOutcome::Horizon { .. }, SimOutcome::StepBudget { .. }) => {}
            (SimOutcome::StepBudget { .. }, SimOutcome::Horizon { .. }) => {
                panic!("pruning lost a completed disproof ({scenario:?})")
            }
            _ => {}
        }
        // The pruned engine must never take more steps.
        assert!(
            pruned.steps() <= unpruned.steps(),
            "pruning increased steps on {scenario:?}: {} vs {}",
            pruned.steps(),
            unpruned.steps()
        );
    }
}

/// Compiled vs. cursor engine: `SimOutcome` equivalence over a seeded
/// Latin hypercube — the acceptance test of the flat piecewise IR.
///
/// Every scenario the compiled path can resolve must classify exactly
/// as the cursor engine and agree on contact times within the shared
/// declaration slack; partial lowerings may *refuse* (fall back) but
/// never answer differently.
#[test]
fn compiled_and_cursor_engines_classify_identically() {
    use plane_rendezvous::sim::{try_first_contact_programs, EngineScratch};
    use plane_rendezvous::trajectory::{Compile, CompileOptions};

    let space = SampleSpace {
        visibility: 0.2,
        algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 32, 0xC0DE);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(4),
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    let copts = CompileOptions::to_horizon(opts.horizon).max_pieces(1 << 17);
    let ref_ws = WaitAndSearch.compile(&copts).expect("alg7 rounds <= 4 fit");
    let ref_us = UniversalSearch.compile(&copts).expect("truncation allowed");
    let mut scratch = EngineScratch::new();
    let mut resolved = 0_usize;
    for scenario in &scenarios {
        let instance = scenario.instance().expect("valid scenario");
        let compiled = match scenario.algorithm {
            Algorithm::WaitAndSearch => {
                plane_rendezvous::sim::compile_rendezvous_partner(&WaitAndSearch, &instance, &copts)
                    .ok()
                    .and_then(|partner| {
                        try_first_contact_programs(
                            &ref_ws,
                            &partner,
                            instance.visibility(),
                            &opts,
                            &mut scratch,
                        )
                    })
            }
            Algorithm::UniversalSearch => plane_rendezvous::sim::compile_rendezvous_partner(
                &UniversalSearch,
                &instance,
                &copts,
            )
            .ok()
            .and_then(|partner| {
                try_first_contact_programs(
                    &ref_us,
                    &partner,
                    instance.visibility(),
                    &opts,
                    &mut scratch,
                )
            }),
        };
        let Some(compiled) = compiled else {
            continue; // coverage refusal: the cursor fallback handles it
        };
        resolved += 1;
        let cursor = run_fast(scenario, &opts);
        assert_eq!(
            compiled.classification(),
            cursor.classification(),
            "scenario {scenario:?}: compiled {compiled} vs cursor {cursor}"
        );
        if let (Some(tc), Some(tk)) = (compiled.contact_time(), cursor.contact_time()) {
            let slack = opts.tolerance * 10.0 + 1e-9 * tk.abs() + 1e-6;
            assert!(
                (tc - tk).abs() <= slack,
                "contact times diverge: {tc} vs {tk} ({scenario:?})"
            );
        }
        // The compiled ladder must never out-step the cursor ladder by
        // more than the mark-seeded pruning can shift windows.
        assert!(
            compiled.steps() <= cursor.steps() * 2 + 64,
            "compiled engine stepped wildly more on {scenario:?}: {} vs {}",
            compiled.steps(),
            cursor.steps()
        );
    }
    assert!(
        resolved >= scenarios.len() / 2,
        "only {resolved}/{} scenarios resolved on the compiled path",
        scenarios.len()
    );
}

/// The SoA arena under the **scalar** ladder vs the eager program under
/// the same ladder: bit-for-bit identical outcomes.
///
/// `ProgramSoA::from_program` carries the exact `f64` columns of the
/// source program's pieces and rebakes the identical envelope tree, and
/// the scalar ladder is deterministic over `ProgramView` probes — so
/// this is an `assert_eq!` on the whole `SimOutcome`, not a tolerance
/// comparison. (The *lane* kernel is gated separately below: its chunk
/// entries anchor at exact piece start times where the scalar ladder
/// arrives via accumulated sums, which legitimately differ by ulps.)
#[test]
fn soa_arena_is_bit_identical_under_the_scalar_ladder() {
    use plane_rendezvous::sim::{try_first_contact_programs, EngineScratch};
    use plane_rendezvous::trajectory::{Compile, CompileOptions, ProgramSoA};

    let space = SampleSpace {
        visibility: 0.2,
        algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 32, 0xC0DE);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(4),
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    let copts = CompileOptions::to_horizon(opts.horizon).max_pieces(1 << 17);
    let ref_ws = WaitAndSearch.compile(&copts).expect("alg7 rounds <= 4 fit");
    let ref_us = UniversalSearch.compile(&copts).expect("truncation allowed");
    let soa_ws = ProgramSoA::from_program(&ref_ws);
    let soa_us = ProgramSoA::from_program(&ref_us);
    let mut scratch = EngineScratch::new();
    let mut resolved = 0_usize;
    for scenario in &scenarios {
        let instance = scenario.instance().expect("valid scenario");
        let (reference, soa_ref, partner) = match scenario.algorithm {
            Algorithm::WaitAndSearch => {
                let Ok(partner) = plane_rendezvous::sim::compile_rendezvous_partner(
                    &WaitAndSearch,
                    &instance,
                    &copts,
                ) else {
                    continue;
                };
                (&ref_ws, &soa_ws, partner)
            }
            Algorithm::UniversalSearch => {
                let Ok(partner) = plane_rendezvous::sim::compile_rendezvous_partner(
                    &UniversalSearch,
                    &instance,
                    &copts,
                ) else {
                    continue;
                };
                (&ref_us, &soa_us, partner)
            }
        };
        let soa_partner = ProgramSoA::from_program(&partner);
        let eager = try_first_contact_programs(
            reference,
            &partner,
            instance.visibility(),
            &opts,
            &mut scratch,
        );
        let over_soa = try_first_contact_programs(
            soa_ref,
            &soa_partner,
            instance.visibility(),
            &opts,
            &mut scratch,
        );
        assert_eq!(
            over_soa, eager,
            "scalar ladder diverged between arena and program ({scenario:?})"
        );
        resolved += eager.is_some() as usize;
    }
    assert!(resolved >= scenarios.len() / 2, "only {resolved} resolved");
}

/// The lane kernel vs the scalar compiled ladder over the Latin
/// hypercube: identical classifications, contact times within the
/// engines' shared declaration slack, refusals in lockstep.
#[test]
fn lane_kernel_and_scalar_ladder_classify_identically() {
    use plane_rendezvous::sim::{try_first_contact_programs, try_first_contact_soa, EngineScratch};
    use plane_rendezvous::trajectory::{Compile, CompileOptions, ProgramSoA};

    let space = SampleSpace {
        visibility: 0.2,
        algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 32, 0xC0DE);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(4),
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    let copts = CompileOptions::to_horizon(opts.horizon).max_pieces(1 << 17);
    let ref_ws = WaitAndSearch.compile(&copts).expect("alg7 rounds <= 4 fit");
    let ref_us = UniversalSearch.compile(&copts).expect("truncation allowed");
    let soa_ws = ProgramSoA::from_program(&ref_ws);
    let soa_us = ProgramSoA::from_program(&ref_us);
    let mut scratch = EngineScratch::new();
    let mut resolved = 0_usize;
    for scenario in &scenarios {
        let instance = scenario.instance().expect("valid scenario");
        let (reference, soa_ref, partner) = match scenario.algorithm {
            Algorithm::WaitAndSearch => {
                let Ok(partner) = plane_rendezvous::sim::compile_rendezvous_partner(
                    &WaitAndSearch,
                    &instance,
                    &copts,
                ) else {
                    continue;
                };
                (&ref_ws, &soa_ws, partner)
            }
            Algorithm::UniversalSearch => {
                let Ok(partner) = plane_rendezvous::sim::compile_rendezvous_partner(
                    &UniversalSearch,
                    &instance,
                    &copts,
                ) else {
                    continue;
                };
                (&ref_us, &soa_us, partner)
            }
        };
        let soa_partner = ProgramSoA::from_program(&partner);
        let scalar = try_first_contact_programs(
            reference,
            &partner,
            instance.visibility(),
            &opts,
            &mut scratch,
        );
        let kernel = try_first_contact_soa(
            soa_ref,
            &soa_partner,
            instance.visibility(),
            &opts,
            &mut scratch,
        );
        match (&scalar, &kernel) {
            (None, None) => continue,
            (Some(s), Some(k)) => {
                resolved += 1;
                assert_eq!(
                    k.classification(),
                    s.classification(),
                    "scenario {scenario:?}: kernel {k} vs scalar {s}"
                );
                if let (Some(tk), Some(ts)) = (k.contact_time(), s.contact_time()) {
                    let slack = opts.tolerance * 10.0 + 1e-9 * ts.abs() + 1e-6;
                    assert!(
                        (tk - ts).abs() <= slack,
                        "contact times diverge: {tk} vs {ts} ({scenario:?})"
                    );
                }
            }
            (s, k) => panic!("refusals diverged on {scenario:?}: scalar {s:?} vs kernel {k:?}"),
        }
    }
    assert!(resolved >= scenarios.len() / 2, "only {resolved} resolved");
}

/// The many-vs-many batch entry against the per-pair scalar ladder: the
/// window-table prefilter and shared-arena streaming must not change a
/// single verdict.
#[test]
fn batch_kernel_matches_per_pair_scalar_ladder() {
    use plane_rendezvous::sim::{
        first_contact_batch_soa, try_first_contact_programs, EngineScratch,
    };
    use plane_rendezvous::trajectory::{Compile, CompileOptions, ProgramSoA};

    let space = SampleSpace {
        visibility: 0.2,
        algorithms: vec![Algorithm::UniversalSearch],
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 24, 0xBA7C);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(4),
        max_steps: 5_000_000,
        ..ContactOptions::default()
    };
    let copts = CompileOptions::to_horizon(opts.horizon).max_pieces(1 << 17);
    let reference = UniversalSearch.compile(&copts).expect("covers");
    let soa_reference = ProgramSoA::from_program(&reference);
    let mut partners = Vec::new();
    let mut programs = Vec::new();
    let mut visibilities = Vec::new();
    for scenario in &scenarios {
        let instance = scenario.instance().expect("valid scenario");
        if let Ok(partner) =
            plane_rendezvous::sim::compile_rendezvous_partner(&UniversalSearch, &instance, &copts)
        {
            partners.push(ProgramSoA::from_program(&partner));
            programs.push(partner);
            visibilities.push(instance.visibility());
        }
    }
    assert!(partners.len() >= scenarios.len() / 2, "too few partners");
    // One shared visibility for the batch call (the grid holds it fixed).
    let radius = visibilities[0];
    assert!(visibilities.iter().all(|&v| v == radius));
    let mut scratch = EngineScratch::new();
    let batch = first_contact_batch_soa(&soa_reference, &partners, radius, &opts, &mut scratch);
    let mut contacts = 0_usize;
    for (k, partner) in programs.iter().enumerate() {
        let scalar = try_first_contact_programs(&reference, partner, radius, &opts, &mut scratch);
        match (&batch[k], &scalar) {
            (None, None) => continue,
            (Some(b), Some(s)) => {
                assert_eq!(
                    b.classification(),
                    s.classification(),
                    "partner {k}: batch {b} vs scalar {s}"
                );
                if let (Some(tb), Some(ts)) = (b.contact_time(), s.contact_time()) {
                    contacts += 1;
                    let slack = opts.tolerance * 10.0 + 1e-9 * ts.abs() + 1e-6;
                    assert!(
                        (tb - ts).abs() <= slack,
                        "partner {k}: contact {tb} vs {ts}"
                    );
                }
            }
            (b, s) => panic!("partner {k}: refusals diverged: batch {b:?} vs scalar {s:?}"),
        }
    }
    assert!(contacts >= 5, "only {contacts} batch contacts sampled");
}

/// The full sweep executor with pruning on vs off: feasible records are
/// identical, infeasible records stay (strictly) consistent in both
/// modes.
#[test]
fn sweep_records_equivalent_with_and_without_pruning() {
    use plane_rendezvous::experiments::{run_sweep, ScenarioGrid, SweepOptions};
    let scenarios = ScenarioGrid::new()
        .speeds(&[0.5, 1.0])
        .clocks(&[1.0])
        .orientations(&[0.0])
        .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
        .distances(&[0.9])
        .visibilities(&[0.25])
        .build();
    let mut opts = SweepOptions {
        threads: 2,
        ..SweepOptions::default()
    };
    let on = run_sweep(&scenarios, &opts);
    opts.contact.prune = false;
    let off = run_sweep(&scenarios, &opts);
    assert_eq!(on.len(), off.len());
    let mut upgrades = 0_usize;
    for (a, b) in on.iter().zip(off.iter()) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.outcome.is_contact(), b.outcome.is_contact());
        if a.outcome.is_contact() {
            assert_eq!(a.outcome.contact_time(), b.outcome.contact_time());
        }
        assert_eq!(a.consistent(), b.consistent());
        assert_eq!(a.strictly_consistent(), b.strictly_consistent());
        if let (SimOutcome::Horizon { .. }, SimOutcome::StepBudget { .. }) =
            (&a.outcome, &b.outcome)
        {
            upgrades += 1;
        }
    }
    // The grid's exact twins burn the whole step budget unpruned; the
    // envelope layer must complete their disproof to the horizon.
    assert!(upgrades > 0, "no step-budget upgrades sampled");
}
