//! Old engine vs. new engine: `SimOutcome` equivalence over a
//! Latin-hypercube of rendezvous scenarios.
//!
//! The monotone-cursor fast path (`first_contact`) must classify every
//! scenario — contact / horizon / step-budget — exactly as the original
//! conservative-advancement loop (`first_contact_generic`), report
//! contact times within the tolerance-derived slack, and never contact
//! later than the dense-sampling brute oracle.
//!
//! The one theoretical divergence is a dip entirely inside the
//! declaration band `(radius, radius + tolerance]`, which the generic
//! engine may legitimately step over; Latin-hypercube scenarios are not
//! knife-edge, and any such case would surface here as a classification
//! mismatch.

use plane_rendezvous::experiments::{latin_hypercube, Algorithm, SampleSpace, Scenario};
use plane_rendezvous::prelude::*;

/// The fast path, via the public rendezvous runner.
fn run_fast(scenario: &Scenario, opts: &ContactOptions) -> SimOutcome {
    let instance = scenario.instance().expect("valid scenario");
    match scenario.algorithm {
        Algorithm::WaitAndSearch => simulate_rendezvous(WaitAndSearch, &instance, opts),
        Algorithm::UniversalSearch => simulate_rendezvous(UniversalSearch, &instance, opts),
    }
}

/// The seed engine on the identical pair of trajectories.
fn run_generic(scenario: &Scenario, opts: &ContactOptions) -> SimOutcome {
    let instance = scenario.instance().expect("valid scenario");
    match scenario.algorithm {
        Algorithm::WaitAndSearch => {
            let partner = instance
                .attributes()
                .frame_warp(WaitAndSearch, instance.offset());
            first_contact_generic(&WaitAndSearch, &partner, instance.visibility(), opts)
        }
        Algorithm::UniversalSearch => {
            let partner = instance
                .attributes()
                .frame_warp(UniversalSearch, instance.offset());
            first_contact_generic(&UniversalSearch, &partner, instance.visibility(), opts)
        }
    }
}

#[test]
fn fast_and_generic_engines_classify_identically() {
    let space = SampleSpace {
        visibility: 0.2,
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 48, 0xE9E9);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: plane_rendezvous::core::completion_time(7),
        max_steps: 5_000_000,
    };
    let mut contacts = 0_usize;
    for scenario in &scenarios {
        let fast = run_fast(scenario, &opts);
        let generic = run_generic(scenario, &opts);
        assert_eq!(
            fast.classification(),
            generic.classification(),
            "scenario {scenario:?}: fast {fast} vs generic {generic}"
        );
        if let (
            SimOutcome::Contact { time: tf, .. },
            SimOutcome::Contact {
                time: tg,
                distance: dg,
                ..
            },
        ) = (fast, generic)
        {
            contacts += 1;
            // The fast engine resolves the crossing analytically; the
            // generic engine lands within tolerance/rel_speed of it. Both
            // must agree to the engines' shared declaration slack.
            let slack = (opts.tolerance * 10.0).max(1e-9 * tg.abs()) + 1e-6;
            assert!(
                tf <= tg + slack,
                "fast contact later than generic: {tf} vs {tg} ({scenario:?})"
            );
            assert!(dg <= scenario.visibility + opts.tolerance);
        }
    }
    // The hypercube must actually exercise the contact branch.
    assert!(contacts >= 10, "only {contacts} contact scenarios sampled");
}

#[test]
fn fast_engine_never_later_than_brute_oracle() {
    let space = SampleSpace {
        visibility: 0.25,
        ..Default::default()
    };
    let scenarios = latin_hypercube(&space, 12, 0xB07);
    let horizon = plane_rendezvous::core::completion_time(5);
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon,
        max_steps: 5_000_000,
    };
    for scenario in &scenarios {
        let instance = scenario.instance().expect("valid scenario");
        let (fast, brute) = match scenario.algorithm {
            Algorithm::WaitAndSearch => {
                let partner = instance
                    .attributes()
                    .frame_warp(WaitAndSearch, instance.offset());
                (
                    first_contact(&WaitAndSearch, &partner, instance.visibility(), &opts),
                    plane_rendezvous::sim::first_contact_brute(
                        &WaitAndSearch,
                        &partner,
                        instance.visibility(),
                        horizon,
                        horizon / 400_000.0,
                    ),
                )
            }
            Algorithm::UniversalSearch => {
                let partner = instance
                    .attributes()
                    .frame_warp(UniversalSearch, instance.offset());
                (
                    first_contact(&UniversalSearch, &partner, instance.visibility(), &opts),
                    plane_rendezvous::sim::first_contact_brute(
                        &UniversalSearch,
                        &partner,
                        instance.visibility(),
                        horizon,
                        horizon / 400_000.0,
                    ),
                )
            }
        };
        if let Some(tb) = brute {
            // One-sided soundness: where coarse sampling sees a contact,
            // the sound engine must have found one no later.
            let tf = fast
                .contact_time()
                .unwrap_or_else(|| panic!("engine missed brute contact at {tb} ({scenario:?})"));
            assert!(tf <= tb + 1e-9, "late contact: {tf} vs brute {tb}");
        }
    }
}

/// The generic fallback itself still matches the brute oracle — the
/// cross-check required for exotic `Trajectory` impls that bypass the
/// cursor layer.
#[test]
fn generic_fallback_agrees_with_brute_oracle() {
    use plane_rendezvous::trajectory::FnTrajectory;
    let a = FnTrajectory::new(|t: f64| Vec2::new(t.sin() * 3.0, t.cos() * 2.0), 3.0);
    let b = FnTrajectory::new(|t: f64| Vec2::new(4.0 - 0.2 * t, 0.1 * t), 0.25);
    let opts = ContactOptions::with_horizon(50.0);
    let engine = first_contact_generic(&a, &b, 0.5, &opts);
    let brute = plane_rendezvous::sim::first_contact_brute(&a, &b, 0.5, 50.0, 1e-4);
    match (engine.contact_time(), brute) {
        (Some(te), Some(tb)) => assert!(te <= tb + 1e-9, "{te} vs {tb}"),
        (Some(_), None) => {} // engine is allowed to be sharper
        (None, Some(tb)) => panic!("generic engine missed brute contact at {tb}"),
        (None, None) => {}
    }
}
