//! Integration test for Theorem 4 (experiment E6): the feasibility
//! predicate agrees with simulation on both sides — feasible instances
//! rendezvous, infeasible ones provably cannot (their distance never
//! shrinks under adversarial placement).

use plane_rendezvous::core::completion_time;
use plane_rendezvous::model::InfeasibleReason;
use plane_rendezvous::prelude::*;

const R: f64 = 0.25;
const D: f64 = 0.9;

fn attribute_grid() -> Vec<RobotAttributes> {
    let mut grid = Vec::new();
    for &v in &[0.5, 1.0] {
        for &tau in &[0.6, 1.0] {
            for &phi in &[0.0, 1.3, std::f64::consts::PI] {
                for &chi in &[Chirality::Consistent, Chirality::Mirrored] {
                    grid.push(RobotAttributes::new(v, tau, phi, chi));
                }
            }
        }
    }
    grid
}

#[test]
fn predicate_matches_simulation_on_full_grid() {
    for attrs in attribute_grid() {
        let verdict = feasibility(&attrs);
        match verdict {
            Feasibility::Feasible(_) => {
                // Generic placement; generous horizon (k* ≤ 9 for this grid).
                let inst = RendezvousInstance::new(Vec2::new(0.4, 0.8), R, attrs).unwrap();
                let opts = ContactOptions::with_horizon(completion_time(10)).tolerance(R * 1e-6);
                let out = simulate_rendezvous(WaitAndSearch, &inst, &opts);
                assert!(
                    out.is_contact(),
                    "{attrs}: predicted feasible but simulation reports {out}"
                );
            }
            Feasibility::Infeasible(reason) => {
                // Adversarial placement along the invariant direction.
                let dir = reason.invariant_direction();
                let inst = RendezvousInstance::new(dir * D, R, attrs).unwrap();
                // A bounded horizon cannot *prove* infeasibility by itself;
                // the invariance argument does. Check both: the simulator
                // sees no contact AND the minimum distance stays ≥ d.
                let opts = ContactOptions::with_horizon(5e4).tolerance(R * 1e-6);
                match simulate_rendezvous(WaitAndSearch, &inst, &opts) {
                    SimOutcome::Horizon { min_distance, .. } => {
                        assert!(
                            min_distance >= D - 1e-9,
                            "{attrs}: distance shrank to {min_distance} despite invariance"
                        );
                    }
                    other => panic!("{attrs}: predicted infeasible but {other}"),
                }
            }
        }
    }
}

/// The analytic invariance certificate behind the infeasible verdicts:
/// the relative trajectory is orthogonal to the invariant direction at
/// *every* sampled time, for both Algorithm 4 and Algorithm 7.
#[test]
fn infeasible_relative_motion_is_orthogonal_to_invariant_direction() {
    for phi in [0.0_f64, 0.9, 2.2] {
        let attrs = RobotAttributes::reference()
            .with_chirality(Chirality::Mirrored)
            .with_orientation(phi);
        let reason = match feasibility(&attrs) {
            Feasibility::Infeasible(r) => r,
            other => panic!("expected infeasible, got {other}"),
        };
        let dir = reason.invariant_direction();
        let warped = attrs.frame_warp(WaitAndSearch, Vec2::ZERO);
        let reference = WaitAndSearch;
        let mut t = 0.0;
        while t < 2000.0 {
            let rel = reference.position(t) - warped.position(t);
            assert!(
                rel.dot(dir).abs() < 1e-9 * (1.0 + rel.norm()),
                "φ={phi}, t={t}: relative motion has a component along û"
            );
            t += 7.3;
        }
    }
}

#[test]
fn identical_twins_hold_exact_formation() {
    let attrs = RobotAttributes::reference();
    let d = Vec2::new(0.6, -0.3);
    let warped = attrs.frame_warp(UniversalSearch, d);
    let reference = UniversalSearch;
    let mut t = 0.0;
    while t < 500.0 {
        let gap = reference.position(t).distance(warped.position(t));
        assert!(
            (gap - d.norm()).abs() < 1e-9,
            "t={t}: twin distance drifted to {gap}"
        );
        t += 3.1;
    }
}

/// Placements *off* the invariant direction can meet even for "infeasible"
/// attribute combinations — infeasibility is a worst-case statement, and
/// this is exactly why the adversarial direction matters.
#[test]
fn mirror_twins_can_meet_for_lucky_placements() {
    let phi = 0.0; // mirror twins, invariant direction = x̂
    let attrs = RobotAttributes::reference()
        .with_chirality(Chirality::Mirrored)
        .with_orientation(phi);
    // Place R' along ŷ: the relative motion (confined to ŷ) points at it.
    let inst = RendezvousInstance::new(Vec2::new(0.0, 0.9), R, attrs).unwrap();
    let opts = ContactOptions::with_horizon(5e4).tolerance(R * 1e-6);
    let out = simulate_rendezvous(WaitAndSearch, &inst, &opts);
    assert!(out.is_contact(), "lucky placement should still meet: {out}");
}

#[test]
fn invariant_direction_is_unit_for_all_reasons() {
    for phi in [0.0, 1.0, 3.0, 6.0] {
        let u = InfeasibleReason::MirrorTwins { orientation: phi }.invariant_direction();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }
    assert_eq!(
        InfeasibleReason::IdenticalTwins.invariant_direction(),
        Vec2::UNIT_X
    );
}
