//! Compilation soundness: the flat piecewise IR must be a *faithful*
//! lowering of every schedule in the workspace.
//!
//! Property tests over dense time grids: compiled positions match the
//! interpreted trajectories within `1e-12` (relative to the sweep
//! radius scale) — including full `FrameWarp ∘ ClockDrift` attribute
//! stacks — and the baked envelope trees contain every sampled
//! position. The spiral, the one transcendental trajectory, refuses to
//! lower unless the caller opts into certified approximation with
//! [`CompileOptions::approx_tolerance`]; silent guessing is never an
//! option (see `tests/approx_certification.rs` for the certified path).

use plane_rendezvous::core::WaitAndSearch;
use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::{ClockDrift, Compile, CompileOptions, CompiledProgram};

/// Dense position agreement between a trajectory and its lowering.
fn assert_positions_match<T: Trajectory + ?Sized>(
    label: &str,
    interpreted: &T,
    program: &CompiledProgram,
    horizon: f64,
    samples: usize,
) {
    for i in 0..=samples {
        // The division can land an ulp past the horizon; clamp so the
        // sample stays inside the covered span.
        let t = (horizon * i as f64 / samples as f64).min(horizon);
        let d = program.position(t).distance(interpreted.position(t));
        // The lowering re-anchors each piece at its start; the only
        // noise is one extra rounding per evaluation.
        let scale = 1.0 + interpreted.position(t).norm();
        assert!(
            d <= 1e-12 * scale,
            "{label}: compiled drifts {d:.3e} from interpreted at t={t}"
        );
    }
}

/// Envelope containment over sliding windows of several spans.
fn assert_envelopes_contain<T: Trajectory + ?Sized>(
    label: &str,
    interpreted: &T,
    program: &CompiledProgram,
    horizon: f64,
) {
    for w in 0..29 {
        let t0 = horizon * w as f64 / 29.0;
        for span in [0.1, 3.7, horizon / 7.0, horizon] {
            let disk = program.envelope(t0, t0 + span);
            let boxed = program.envelope_box(t0, t0 + span);
            for i in 0..=20 {
                let t = (t0 + span * i as f64 / 20.0).min(horizon);
                let p = interpreted.position(t);
                assert!(
                    disk.contains(p, 1e-9),
                    "{label}: envelope [{t0}, {}] misses t={t}",
                    t0 + span
                );
                assert!(
                    boxed.contains(p, 1e-9),
                    "{label}: envelope box [{t0}, {}] misses t={t}",
                    t0 + span
                );
            }
        }
    }
}

#[test]
fn universal_search_lowers_faithfully() {
    let horizon = times::rounds_total(3);
    let program = UniversalSearch
        .compile(&CompileOptions::to_horizon(horizon))
        .expect("rounds 1..=3 fit the default budget");
    assert!(program.covers(horizon));
    assert!(!program.round_marks().is_empty(), "schedule marks recorded");
    assert_positions_match("alg4", &UniversalSearch, &program, horizon, 4000);
    assert_envelopes_contain("alg4", &UniversalSearch, &program, horizon);
}

#[test]
fn wait_and_search_lowers_faithfully() {
    let horizon = plane_rendezvous::core::completion_time(3);
    let program = WaitAndSearch
        .compile(&CompileOptions::to_horizon(horizon))
        .expect("rounds 1..=3 fit the default budget");
    assert!(program.covers(horizon));
    assert_positions_match("alg7", &WaitAndSearch, &program, horizon, 4000);
    assert_envelopes_contain("alg7", &WaitAndSearch, &program, horizon);
}

#[test]
fn warp_drift_stacks_lower_faithfully() {
    // The full beyond-paper stack: Algorithm 4 through a drifting clock
    // inside a mirrored, scaled, rotated, time-dilated frame — warp and
    // drift must be applied at lowering time, exactly.
    let horizon = times::rounds_total(3);
    let drift = ClockDrift::from_rates(UniversalSearch, &[(10.0, 0.7), (25.0, 1.3)], 0.9);
    let stack = RobotAttributes::new(0.8, 1.25, 1.1, Chirality::Mirrored)
        .frame_warp(drift, Vec2::new(0.4, -0.7));
    let program = stack
        .compile(&CompileOptions::to_horizon(horizon))
        .expect("the stack lowers piece for piece");
    assert!(program.covers(horizon));
    assert_positions_match("warp∘drift", &stack, &program, horizon, 4000);
    assert_envelopes_contain("warp∘drift", &stack, &program, horizon);
    // The warp maps the inner marks through the time dilation.
    assert!(!program.round_marks().is_empty());
}

#[test]
fn warped_partner_matches_frame_warp_of_reference() {
    // The sweep executor's partner lowering: attribute frame applied at
    // lowering time must equal evaluating through the warp per query.
    let attrs = RobotAttributes::reference()
        .with_speed(0.6)
        .with_time_unit(1.4)
        .with_orientation(2.2);
    let warped = attrs.frame_warp(WaitAndSearch, Vec2::new(0.2, 0.9));
    let horizon = plane_rendezvous::core::completion_time(3);
    let program = warped
        .compile(&CompileOptions::to_horizon(horizon))
        .expect("lowering succeeds");
    assert_positions_match("partner", &warped, &program, horizon, 3000);
}

#[test]
fn spiral_refuses_to_lower_without_a_tolerance() {
    // Without an explicit approx_tolerance the curved span still takes
    // the escape hatch — certified chords are opt-in, never implicit.
    use plane_rendezvous::baselines::ArchimedeanSpiral;
    use plane_rendezvous::trajectory::CompileError;
    let err = ArchimedeanSpiral::with_pitch(0.5)
        .compile(&CompileOptions::to_horizon(100.0))
        .unwrap_err();
    assert!(
        matches!(err, CompileError::Curved { .. }),
        "the spiral must take the escape hatch, got {err}"
    );
}

#[test]
fn truncated_lowering_stays_faithful_on_its_prefix() {
    let horizon = times::rounds_total(4);
    let budget = 256;
    let program = UniversalSearch
        .compile(&CompileOptions::to_horizon(horizon).max_pieces(budget))
        .expect("truncation is allowed by default");
    assert_eq!(program.pieces().len(), budget);
    assert!(!program.covers(horizon));
    let covered = program.end_time();
    assert_positions_match("truncated", &UniversalSearch, &program, covered, 2000);
    // Envelope queries may look past the truncation and stay sound
    // (speed-bound growth).
    let disk = program.envelope(covered * 0.5, covered + 10.0);
    for i in 0..=40 {
        let t = covered * 0.5 + (covered * 0.5 + 10.0) * i as f64 / 40.0;
        assert!(disk.contains(UniversalSearch.position(t), 1e-9), "t={t}");
    }
}

#[test]
fn compiled_program_flows_through_generic_engine_entry_points() {
    // A compiled program is itself a MonotoneTrajectory: the generic
    // cursor engine must produce the same classification as running the
    // interpreted pair.
    let horizon = times::rounds_total(3);
    let opts = ContactOptions::with_horizon(horizon);
    let attrs = RobotAttributes::reference().with_speed(0.5);
    let partner = attrs.frame_warp(UniversalSearch, Vec2::new(0.3, 0.6));
    let copts = CompileOptions::to_horizon(horizon);
    let pa = UniversalSearch.compile(&copts).unwrap();
    let pb = partner.compile(&copts).unwrap();
    let through_programs = first_contact(&pa, &pb, 0.05, &opts);
    let interpreted = first_contact(&UniversalSearch, &partner, 0.05, &opts);
    assert_eq!(
        through_programs.classification(),
        interpreted.classification()
    );
    if let (Some(tc), Some(ti)) = (through_programs.contact_time(), interpreted.contact_time()) {
        assert!((tc - ti).abs() < 1e-6 * (1.0 + ti), "{tc} vs {ti}");
    }
}
