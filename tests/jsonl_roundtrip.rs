//! The sink/decoder contract: the server's JSON decoder must accept
//! `write_jsonl`'s output verbatim, record for record, bit for bit.
//!
//! `write_jsonl` renders floats with shortest-round-trip formatting, so
//! parsing a line back must reproduce the *exact* original record —
//! including every f64 bit pattern. This is what lets sweep artifacts
//! be replayed through `rvz serve` (or any other consumer of the wire
//! schema) without drift.

use plane_rendezvous::experiments::{
    json, latin_hypercube, record_from_json, run_sweep, write_jsonl, Algorithm, SampleSpace,
    ScenarioGrid, SweepOptions, SweepRecord,
};
use plane_rendezvous::model::Chirality;

fn roundtrip(records: &[SweepRecord]) {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, records).expect("in-memory write");
    let text = String::from_utf8(buf).expect("jsonl is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), records.len());
    for (line, original) in lines.iter().zip(records) {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("sink emitted unparseable JSON: {e}\n{line}"));
        let parsed = record_from_json(&value)
            .unwrap_or_else(|e| panic!("sink row rejected by decoder: {e}\n{line}"));
        // Record-level equality across the shortest-round-trip float
        // formatting: every field, every bit.
        assert_eq!(&parsed, original, "round-trip drift on {line}");
        // And re-encoding is byte-stable (render ∘ parse = id on rows).
        assert_eq!(
            plane_rendezvous::experiments::record_to_json(&parsed).render(),
            *line
        );
    }
}

#[test]
fn grid_sweep_rows_round_trip_bit_exactly() {
    let scenarios = ScenarioGrid::new()
        .speeds(&[0.5, 1.0])
        .clocks(&[0.6, 1.0])
        .orientations(&[0.0, 1.3])
        .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
        .distances(&[0.9])
        .visibilities(&[0.25])
        .build();
    roundtrip(&run_sweep(&scenarios, &SweepOptions::default()));
}

#[test]
fn lhs_sweep_rows_round_trip_bit_exactly() {
    // Latin-hypercube scenarios exercise arbitrary float bit patterns
    // (17-digit decimals), both algorithms and both chiralities.
    let space = SampleSpace {
        algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
        ..SampleSpace::default()
    };
    let scenarios = latin_hypercube(&space, 48, 1234);
    roundtrip(&run_sweep(&scenarios, &SweepOptions::default()));
}
