//! Integration test for Theorem 2 (experiments E4–E5): rendezvous with
//! symmetric clocks via Algorithm 4, across speeds, orientations and
//! chiralities — and the Lemma 4 reduction itself, by comparing a real
//! two-robot simulation against the equivalent one-robot search.

use plane_rendezvous::prelude::*;
use plane_rendezvous::sim::Stationary;

fn rendezvous_instance(attrs: RobotAttributes, d: Vec2, r: f64) -> RendezvousInstance {
    RendezvousInstance::new(d, r, attrs).unwrap()
}

/// Simulate the equivalent search: virtual robot T∘·S(t) vs a stationary
/// target at d⃗ (Definition 1 applies a rotation Φ on top, which is
/// distance-preserving, so we use T∘ directly).
fn equivalent_search_time(inst: &RendezvousInstance, horizon: f64) -> Option<f64> {
    let eq = EquivalentSearch::new(inst.attributes());
    let virtual_robot = FrameWarp::new(UniversalSearch, eq.matrix(), Vec2::ZERO, 1.0);
    let target = Stationary::new(inst.offset());
    first_contact(
        &virtual_robot,
        &target,
        inst.visibility(),
        &ContactOptions::with_horizon(horizon).tolerance(inst.visibility() * 1e-9),
    )
    .contact_time()
}

#[test]
fn rendezvous_time_equals_equivalent_search_time() {
    // Lemma 4: |S(t) − S'(t) − d⃗| = |T∘·S(t) − d⃗| for all t, so the two
    // simulations must report identical first-contact times.
    let cases = [
        RobotAttributes::reference().with_speed(0.5),
        RobotAttributes::reference()
            .with_speed(0.8)
            .with_orientation(1.0),
        RobotAttributes::reference()
            .with_orientation(2.5)
            .with_chirality(Chirality::Mirrored)
            .with_speed(0.7),
        RobotAttributes::reference().with_orientation(std::f64::consts::PI),
    ];
    for attrs in cases {
        let inst = rendezvous_instance(attrs, Vec2::new(0.4, 0.7), 0.02);
        let horizon = 1e6;
        let opts = ContactOptions::with_horizon(horizon).tolerance(0.02 * 1e-9);
        let direct = simulate_rendezvous(UniversalSearch, &inst, &opts)
            .contact_time()
            .expect("rendezvous");
        let equivalent = equivalent_search_time(&inst, horizon).expect("equivalent search");
        assert!(
            (direct - equivalent).abs() <= 1e-6 * (1.0 + direct),
            "{attrs:?}: direct {direct} vs equivalent {equivalent}"
        );
    }
}

#[test]
fn rendezvous_within_theorem2_bound_consistent_chirality() {
    for v in [0.3, 0.6, 0.9] {
        for phi in [0.0, 0.8, std::f64::consts::PI, 5.0] {
            let attrs = RobotAttributes::reference()
                .with_speed(v)
                .with_orientation(phi);
            let inst = rendezvous_instance(attrs, Vec2::new(0.0, 0.8), 0.03);
            let bound = theorem2_bound(&inst).time().expect("feasible");
            let opts = ContactOptions::with_horizon(bound * 1.01).tolerance(0.03 * 1e-9);
            let t = simulate_rendezvous(UniversalSearch, &inst, &opts)
                .contact_time()
                .unwrap_or_else(|| panic!("v={v} φ={phi}: no rendezvous within bound"));
            assert!(t < bound, "v={v} φ={phi}: {t} ≥ {bound}");
        }
    }
}

#[test]
fn rendezvous_within_theorem2_bound_mirrored_chirality() {
    for v in [0.4, 0.75] {
        for phi in [0.0, 1.2, 2.9, 4.4] {
            let attrs = RobotAttributes::reference()
                .with_speed(v)
                .with_orientation(phi)
                .with_chirality(Chirality::Mirrored);
            let inst = rendezvous_instance(attrs, Vec2::new(0.5, 0.5), 0.03);
            let bound = theorem2_bound(&inst).time().expect("feasible since v < 1");
            let opts = ContactOptions::with_horizon(bound * 1.01).tolerance(0.03 * 1e-9);
            let t = simulate_rendezvous(UniversalSearch, &inst, &opts)
                .contact_time()
                .unwrap_or_else(|| panic!("v={v} φ={phi} mirrored: no rendezvous"));
            assert!(t < bound, "v={v} φ={phi} mirrored: {t} ≥ {bound}");
        }
    }
}

/// Orientation alone (v = 1, τ = 1, χ = +1, φ ≠ 0) breaks symmetry —
/// the subtlest feasible case of Theorem 4.
#[test]
fn orientation_only_rendezvous() {
    for phi in [0.3, 1.6, 3.0, 6.0] {
        let attrs = RobotAttributes::reference().with_orientation(phi);
        let inst = rendezvous_instance(attrs, Vec2::new(0.7, -0.2), 0.05);
        let bound = theorem2_bound(&inst).time().expect("feasible");
        let opts = ContactOptions::with_horizon(bound * 1.01).tolerance(0.05 * 1e-9);
        let t = simulate_rendezvous(UniversalSearch, &inst, &opts)
            .contact_time()
            .unwrap_or_else(|| panic!("φ={phi}: no rendezvous"));
        assert!(t < bound, "φ={phi}: {t} ≥ {bound}");
    }
}

/// The µ-scaling of Lemma 6 is visible in measurements: with χ = +1 the
/// equivalent search is exactly a µ-times-faster search of the same
/// instance, so rendezvous time decreases as µ grows.
#[test]
fn larger_mu_means_faster_rendezvous() {
    let d = Vec2::new(0.0, 0.9);
    let r = 0.02;
    let mut prev_time = f64::INFINITY;
    // φ = π maximizes µ = 1 + v at fixed v... vary v downward: µ = 1 + v.
    // Instead fix v and increase φ toward π: µ = √(2 − 2cosφ) grows.
    for phi in [0.4, 1.2, std::f64::consts::PI] {
        let attrs = RobotAttributes::reference().with_orientation(phi);
        let inst = rendezvous_instance(attrs, d, r);
        let opts = ContactOptions::with_horizon(1e7).tolerance(r * 1e-9);
        let t = simulate_rendezvous(UniversalSearch, &inst, &opts)
            .contact_time()
            .unwrap();
        assert!(
            t <= prev_time * 1.5,
            "φ={phi}: time {t} did not trend down from {prev_time}"
        );
        prev_time = t;
    }
}
