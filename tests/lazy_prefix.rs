//! Streaming-lowering prefix equivalence: a [`LazyProgram`] driven to
//! any depth must be **bit-identical** to the eager lowering on the
//! span it has materialized — same pieces, same marks, same probes,
//! same envelope boxes.
//!
//! This is the contract that makes the streaming fast path a drop-in
//! replacement: both paths pull from the same piece stream, so the lazy
//! arena is a literal prefix of the eager arena (no re-derived
//! geometry, no tolerance slop), and every engine-visible query over
//! the covered span answers identically down to the last ulp.

use plane_rendezvous::core::WaitAndSearch;
use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::{
    ClockDrift, Compile, CompileOptions, CompiledProgram, LazyProgram, ProgramView,
};

/// Drives `lazy` to a ladder of depths and checks the materialized
/// prefix against the eager arena after every step.
fn assert_prefix_equivalence(label: &str, source: &dyn Compile, opts: CompileOptions) {
    let eager = source.compile(&opts).expect("eager lowering succeeds");
    let lazy = LazyProgram::new(source, opts);
    assert_eq!(
        lazy.materialized_pieces(),
        0,
        "{label}: construction must not lower"
    );

    let horizon = opts.horizon;
    for step in 1..=8 {
        let t = horizon * step as f64 / 8.0;
        lazy.drive_to(t);
        let n = lazy.materialized_pieces();
        let prefix = lazy.pieces_snapshot();
        assert_eq!(
            prefix.as_slice(),
            &eager.pieces()[..n],
            "{label}: lazy pieces diverge from the eager arena at depth t={t}"
        );
        assert!(
            lazy.covered_end() >= t.min(eager.end_time()),
            "{label}: drive_to({t}) left the frontier at {}",
            lazy.covered_end()
        );
    }

    // The full mark list is fixed at construction and identical to the
    // eager program's (both filter the source's round marks to the
    // horizon; nothing truncated here).
    assert_eq!(
        lazy.marks_snapshot(),
        eager.round_marks(),
        "{label}: mark lists diverge"
    );

    // Engine-visible queries: probes and envelope boxes agree bit for
    // bit across the covered span, including the hint-index protocol.
    let end = lazy.covered_end().min(eager.end_time());
    let (mut hint_lazy, mut hint_eager) = (0usize, 0usize);
    for i in 0..=600 {
        let t = end * i as f64 / 600.0;
        let pl = lazy.probe_from(&mut hint_lazy, t);
        let pe = eager.probe_from(&mut hint_eager, t);
        assert_eq!(pl, pe, "{label}: probe diverges at t={t}");
    }
    for w in 0..23 {
        let t0 = end * w as f64 / 23.0;
        for span in [0.05, end / 11.0, end / 3.0] {
            let t1 = (t0 + span).min(end);
            assert_eq!(
                lazy.envelope_box(t0, t1),
                eager.envelope_box(t0, t1),
                "{label}: envelope diverges on [{t0}, {t1}]"
            );
        }
    }
    let mut m = 0.0;
    loop {
        let (nl, ne) = (lazy.next_mark_after(m), eager.next_mark_after(m));
        assert_eq!(nl, ne, "{label}: next mark after {m} diverges");
        match nl {
            Some(next) => m = next,
            None => break,
        }
    }
}

#[test]
fn universal_search_prefixes_match_eager() {
    let horizon = times::rounds_total(4);
    assert_prefix_equivalence(
        "alg4",
        &UniversalSearch,
        CompileOptions::to_horizon(horizon).max_pieces(1 << 16),
    );
}

#[test]
fn wait_and_search_prefixes_match_eager() {
    let horizon = plane_rendezvous::core::completion_time(4);
    assert_prefix_equivalence(
        "alg7",
        &WaitAndSearch,
        CompileOptions::to_horizon(horizon).max_pieces(1 << 16),
    );
}

#[test]
fn warp_drift_stack_prefixes_match_eager() {
    let horizon = times::rounds_total(3);
    let drift = ClockDrift::from_rates(UniversalSearch, &[(10.0, 0.7), (25.0, 1.3)], 0.9);
    let stack = RobotAttributes::new(0.8, 1.25, 1.1, Chirality::Mirrored)
        .frame_warp(drift, Vec2::new(0.4, -0.7));
    assert_prefix_equivalence(
        "warp∘drift",
        &stack,
        CompileOptions::to_horizon(horizon).max_pieces(1 << 16),
    );
}

#[test]
fn certified_spiral_prefixes_match_eager() {
    use plane_rendezvous::baselines::ArchimedeanSpiral;
    assert_prefix_equivalence(
        "spiral",
        &ArchimedeanSpiral::for_visibility(0.05),
        CompileOptions::to_horizon(40.0)
            .max_pieces(1 << 18)
            .approx_tolerance(1e-5),
    );
}

#[test]
fn freeze_replays_as_an_eager_program() {
    // The serve-cache contract: freezing the materialized prefix yields
    // a CompiledProgram whose queries over the frozen span are
    // bit-identical to the live lazy view's.
    let horizon = times::rounds_total(4);
    let opts = CompileOptions::to_horizon(horizon).max_pieces(1 << 16);
    let lazy = LazyProgram::new(&UniversalSearch, opts);
    lazy.drive_to(horizon * 0.6);
    let frozen: CompiledProgram = lazy.freeze();
    assert_eq!(frozen.pieces(), lazy.pieces_snapshot().as_slice());
    let end = lazy.covered_end();
    let (mut ha, mut hb) = (0usize, 0usize);
    for i in 0..=400 {
        // Stay strictly inside the frozen span: at the boundary the
        // live view materializes further while the frozen arena stops.
        let t = end * i as f64 / 401.0;
        assert_eq!(frozen.probe_from(&mut ha, t), lazy.probe_from(&mut hb, t));
    }
    // Marks survive freezing in full, so replayed engine queries seed
    // identical pruning windows.
    assert_eq!(frozen.round_marks(), lazy.marks_snapshot().as_slice());
}
