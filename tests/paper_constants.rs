//! Regression locks on the paper's exact constants and closed forms.
//!
//! These tests pin the numeric identities of the paper so that any
//! future refactor that changes a formula — even by an algebraically
//! plausible-looking simplification — fails loudly with the expected
//! value printed.

use plane_rendezvous::prelude::*;
use plane_rendezvous::search::times;

const C: f64 = std::f64::consts::PI + 1.0;

#[test]
fn lemma2_exact_values() {
    // SearchCircle(1) = 2(π+1).
    assert!((times::search_circle_duration(1.0) - 2.0 * C).abs() < 1e-12);
    // Search(1) = 3(π+1)·2·4 = 24(π+1)... (k+1)·2^{k+1} = 2·4 = 8 ⇒ 24C.
    assert!((times::round_duration(1) - 24.0 * C).abs() < 1e-12);
    // Search(2) = 3C·3·8 = 72C.
    assert!((times::round_duration(2) - 72.0 * C).abs() < 1e-12);
    // First 3 rounds: 3C·3·2^5 = 288C.
    assert!((times::rounds_total(3) - 288.0 * C).abs() < 1e-10);
    // Wait of Search(2): 3C(4 + 1/4) = 12.75C.
    assert!((times::round_wait(2) - 12.75 * C).abs() < 1e-12);
}

#[test]
fn lemma8_exact_values() {
    // I(1) = 24C[(2−4)·2 + 4] = 0; A(1) = 24C[(3−4)·2 + 4] = 48C.
    assert_eq!(PhaseSchedule::inactive_start(1), 0.0);
    assert!((PhaseSchedule::active_start(1) - 48.0 * C).abs() < 1e-12);
    // I(3) = 24C[(6−4)·8 + 4] = 480C; A(3) = 24C[(9−4)·8 + 4] = 1056C.
    assert!((PhaseSchedule::inactive_start(3) - 480.0 * C).abs() < 1e-9);
    assert!((PhaseSchedule::active_start(3) - 1056.0 * C).abs() < 1e-9);
    // S(3) = 12C·3·8 = 288C.
    assert!((PhaseSchedule::search_all_duration(3) - 288.0 * C).abs() < 1e-9);
}

#[test]
fn dyadic_schedule_exact_values() {
    // Round 2, sub-round 1: δ = 1/2, outer 1, ρ = 2^{2−6−1} = 1/32,
    // m = 2^{2·2−1} = 8 ⇒ 9 circles.
    assert_eq!(times::inner_radius(2, 1), 0.5);
    assert_eq!(times::outer_radius(2, 1), 1.0);
    assert_eq!(times::granularity(2, 1), 0.03125);
    use plane_rendezvous::search::SubRound;
    assert_eq!(SubRound::new(2, 1).circle_count(), 9);
}

#[test]
fn theorem2_bound_exact_value() {
    // v = 1/2, φ = 0, χ = +1, d = 1, r = 1/100: µ = 1/2,
    // effective difficulty = 200, bound = 6C·log2(200)·200.
    let attrs = RobotAttributes::reference().with_speed(0.5);
    let inst = RendezvousInstance::new(Vec2::new(0.0, 1.0), 0.01, attrs).unwrap();
    let expected = 6.0 * C * 200f64.log2() * 200.0;
    let got = theorem2_bound(&inst).time().unwrap();
    assert!(
        (got - expected).abs() < 1e-9 * expected,
        "{got} vs {expected}"
    );
}

#[test]
fn mu_closed_form_identities() {
    // µ(v, φ=0) = |1−v|; µ(v, φ=π) = 1+v; µ(1, φ) = 2|sin(φ/2)|.
    for v in [0.25, 0.5, 1.0, 1.5] {
        let a0 = RobotAttributes::reference().with_speed(v);
        assert!((a0.mu() - (1.0 - v).abs()).abs() < 1e-12);
        let api = a0.with_orientation(std::f64::consts::PI);
        assert!((api.mu() - (1.0 + v)).abs() < 1e-12);
    }
    for phi in [0.5, 1.5, 3.0] {
        let a = RobotAttributes::reference().with_orientation(phi);
        let expected = 2.0 * (phi / 2.0).sin().abs();
        assert!((a.mu() - expected).abs() < 1e-12, "φ={phi}");
    }
}

#[test]
fn lemma13_locked_values() {
    // Locked outputs for a τ grid (n = 2). Any change to the bound
    // calculator must be deliberate.
    let expected: &[(f64, u32)] = &[
        (0.5, 8),    // a=0, t=1/2: max(8, 2+1)
        (0.51, 8),   // same regime
        (0.7, 5),    // t=0.7 > 2/3: max(⌈7/3⌉=3, 2+⌈log(2/0.3)⌉=2+3)
        (0.9, 9),    // max(9, 2+⌈log 20⌉=7)
        (0.25, 16),  // a=1: max(16, …)
        (0.125, 24), // a=2: max(24, …)
    ];
    for &(tau, k) in expected {
        assert_eq!(lemma13_round_bound(tau, 2), k, "τ={tau}");
    }
}

#[test]
fn theorem1_bound_exact_value() {
    // d = 1, r = 1/64: bound = 6C·6·64.
    let expected = 6.0 * C * 6.0 * 64.0;
    let got = coverage::theorem1_bound(1.0, 1.0 / 64.0);
    assert!((got - expected).abs() < 1e-9 * expected);
}

#[test]
fn lemma5_mirrored_entries_exact() {
    // v = 3/5, φ = π/2, χ = −1: µ = √(9/25 + 1) = √34/5,
    // T∘' = [µ, −2v/µ; 0, (1−v²)/µ] = [µ, −(6/5)/µ; 0, (16/25)/µ].
    let attrs = RobotAttributes::new(0.6, 1.0, std::f64::consts::FRAC_PI_2, Chirality::Mirrored);
    let eq = EquivalentSearch::new(&attrs);
    let mu = (34f64).sqrt() / 5.0;
    assert!((eq.mu() - mu).abs() < 1e-12);
    let r = eq.upper_triangular_closed_form();
    assert!((r.a - mu).abs() < 1e-12);
    assert!((r.b + 1.2 / mu).abs() < 1e-12);
    assert!((r.d - 0.64 / mu).abs() < 1e-12);
}
