//! Certified-approximation soundness: every `eps > 0` piece a lowering
//! emits is a **certificate** — at dense pseudo-random sample points
//! the true curve stays within the piece's proven bound of the
//! approximating chord and inside the (ε-expanded) envelope queries.
//!
//! Covered sources: the Archimedean spiral (closed-form curvature
//! bound), closure trajectories (sampled Lipschitz bound), and both
//! under full `FrameWarp ∘ ClockDrift` attribute stacks (which certify
//! through the sampled fallback with the stack's own speed bound).

use plane_rendezvous::baselines::ArchimedeanSpiral;
use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::{ClockDrift, Compile, CompileOptions, FnTrajectory, FrameWarp};

/// Deterministic uniform samples in `[0, 1)` (split-mix style); the
/// workspace is dependency-free, so tests roll their own.
fn rand01(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let bits = (*state ^ (*state >> 31)) >> 11;
    bits as f64 / (1u64 << 53) as f64
}

/// Lowers `source` with the given tolerance and property-tests the
/// certificate at `samples` random times per covered span.
fn assert_certified<T: Compile + ?Sized>(
    label: &str,
    source: &T,
    horizon: f64,
    eps: f64,
    samples: usize,
    seed: u64,
) {
    let opts = CompileOptions::to_horizon(horizon)
        .max_pieces(1 << 18)
        .approx_tolerance(eps);
    let program = source.compile(&opts).expect("certified lowering succeeds");
    let realized = program.approx_eps();
    assert!(
        realized > 0.0 && realized <= eps,
        "{label}: realized eps {realized} outside (0, {eps}]"
    );
    let end = program.end_time();
    let mut state = seed;
    for _ in 0..samples {
        let t = end * rand01(&mut state);
        let truth = source.position(t);
        let approx = program.position(t);
        let d = approx.distance(truth);
        assert!(
            d <= realized + 1e-12 * (1.0 + truth.norm()),
            "{label}: |approx - truth| = {d:.3e} > eps {realized:.3e} at t={t}"
        );
        // Envelope queries fold the per-piece eps in, so the true curve
        // can never escape a window that contains its time.
        let w = 0.01 + 0.3 * rand01(&mut state);
        let t0 = (t - w).max(0.0);
        let disk = program.envelope(t0, (t + w).min(end));
        let boxed = program.envelope_box(t0, (t + w).min(end));
        assert!(
            disk.contains(truth, 1e-9),
            "{label}: envelope misses the true curve at t={t}"
        );
        assert!(
            boxed.contains(truth, 1e-9),
            "{label}: envelope box misses the true curve at t={t}"
        );
    }
}

#[test]
fn spiral_chords_are_certificates() {
    assert_certified(
        "spiral",
        &ArchimedeanSpiral::for_visibility(0.05),
        60.0,
        1e-5,
        4000,
        0x5eed_0001,
    );
}

#[test]
fn spiral_certifies_at_coarse_and_fine_tolerances() {
    let spiral = ArchimedeanSpiral::for_visibility(0.02);
    for (eps, samples) in [(1e-3, 1500), (1e-6, 1500)] {
        assert_certified("spiral-eps", &spiral, 30.0, eps, samples, 0x5eed_0002);
    }
}

#[test]
fn closure_chords_are_certificates() {
    // A Lissajous-style closure: smooth, transcendental, honest about
    // its speed bound (|v| ≤ √(0.7² + 0.9²) < 1.15).
    let f = FnTrajectory::new(|t: f64| Vec2::new((0.7 * t).sin(), (0.9 * t).cos()), 1.15);
    assert_certified("closure", &f, 25.0, 1e-4, 4000, 0x5eed_0003);
}

#[test]
fn warped_drifting_spiral_certifies_through_the_stack() {
    // warp ∘ drift ∘ spiral: the outer layers have no closed-form
    // curvature bound, so certification runs through the sampled
    // Lipschitz fallback with the stack's composite speed bound.
    let drift = ClockDrift::from_rates(
        ArchimedeanSpiral::for_visibility(0.05),
        &[(8.0, 0.75), (20.0, 1.4)],
        0.9,
    );
    let stack = RobotAttributes::new(0.8, 1.3, 0.9, Chirality::Mirrored)
        .frame_warp(drift, Vec2::new(0.3, -0.2));
    assert_certified("warp∘drift∘spiral", &stack, 40.0, 1e-4, 2500, 0x5eed_0004);
}

#[test]
fn warped_drifting_closure_certifies_through_the_stack() {
    let drift = ClockDrift::from_rates(
        FnTrajectory::new(|t: f64| Vec2::new((0.6 * t).sin(), (0.8 * t).cos()), 1.0),
        &[(5.0, 1.2), (12.0, 0.8)],
        1.1,
    );
    let stack = FrameWarp::new(
        drift,
        Mat2::rotation(0.6) * Mat2::scaling(1.4),
        Vec2::new(-0.5, 0.7),
        0.85,
    );
    assert_certified("warp∘drift∘closure", &stack, 20.0, 2e-4, 2500, 0x5eed_0005);
}
