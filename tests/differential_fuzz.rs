//! Differential fuzzing of the five first-contact engine paths.
//!
//! A seeded generator draws random rendezvous scenarios — attribute
//! frames, offsets, radii — crossed with trajectory stacks (plain
//! warp, warp∘drift, warp∘drift∘spiral, raw spiral vs stationary) and
//! runs each through:
//!
//! 1. the seed conservative-advancement loop (`first_contact_generic`),
//! 2. the monotone-cursor engine (`first_contact_cursors`),
//! 3. the compiled engine over **eager** programs,
//! 4. the compiled engine over **streaming** [`LazyProgram`] views,
//! 5. the SoA lane kernel (`try_first_contact_soa`) over arenas built
//!    from the eager programs.
//!
//! All five must agree within the certified tolerance: identical
//! classifications with contact times in a slack band scaled by the
//! folded approximation bound, or a contact/horizon split only inside
//! the `radius ± (tolerance + 2ε)` band that the ε-folding soundness
//! argument explicitly leaves ambiguous.
//!
//! On a disagreement the harness **shrinks**: it greedily applies
//! case-simplifying transformations (drop stack layers, shrink the
//! offset, neutralize attributes, reduce the horizon) while the
//! failure reproduces, then panics with the minimized reproducer so
//! the case can be pasted into a regression test.
//!
//! Budget knobs (CI pins both): `RVZ_FUZZ_CASES` (default 32) and
//! `RVZ_FUZZ_SEED` (default `0xBADC0FFE`).

use plane_rendezvous::baselines::ArchimedeanSpiral;
use plane_rendezvous::prelude::*;
use plane_rendezvous::sim::{
    first_contact_cursors, try_first_contact_programs, try_first_contact_soa, EngineScratch,
};
use plane_rendezvous::trajectory::{ClockDrift, Compile, CompileOptions, LazyProgram, ProgramSoA};

/// Pointwise tolerance requested for curved spans; exact stacks ignore
/// it and report a realized ε of zero.
const APPROX_EPS: f64 = 1e-5;
const TOL: f64 = 1e-9;

fn rand01(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let bits = (*state ^ (*state >> 31)) >> 11;
    bits as f64 / (1u64 << 53) as f64
}

fn range(state: &mut u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rand01(state)
}

/// One generated scenario. `Debug` is the reproducer format.
#[derive(Debug, Clone, Copy)]
struct FuzzCase {
    /// 0 = Algorithm 4 (UniversalSearch), 1 = Algorithm 7 (WaitAndSearch).
    algorithm: u8,
    /// 0 = warp, 1 = warp∘drift, 2 = warp∘drift∘spiral, 3 = spiral vs stationary.
    stack: u8,
    offset: Vec2,
    speed: f64,
    time_unit: f64,
    orientation: f64,
    mirrored: bool,
    radius: f64,
    /// Horizon depth in schedule rounds (stacks 0–2).
    rounds: u32,
}

fn generate(state: &mut u64) -> FuzzCase {
    let stack = match (rand01(state) * 6.0) as u8 {
        0 | 1 => 0,
        2 | 3 => 1,
        4 => 2,
        _ => 3,
    };
    FuzzCase {
        algorithm: (rand01(state) * 2.0) as u8,
        stack,
        offset: Vec2::from_polar(
            range(state, 0.2, 2.5),
            range(state, 0.0, std::f64::consts::TAU),
        ),
        speed: range(state, 0.5, 1.5),
        time_unit: range(state, 0.7, 1.4),
        orientation: range(state, 0.0, std::f64::consts::TAU),
        mirrored: rand01(state) < 0.5,
        radius: range(state, 0.04, 0.25),
        rounds: 2 + (rand01(state) * 2.0) as u32,
    }
}

/// The two trajectories plus the engine horizon for a case.
fn build(case: &FuzzCase) -> (Box<dyn Compile>, Box<dyn Compile>, f64) {
    let chirality = if case.mirrored {
        Chirality::Mirrored
    } else {
        Chirality::Consistent
    };
    let attrs = RobotAttributes::new(case.speed, case.time_unit, case.orientation, chirality);
    if case.stack == 3 {
        // Raw spiral search against a stationary target: the curved
        // baseline alone, no attribute frame.
        let spiral = ArchimedeanSpiral::for_visibility(case.radius.max(0.05));
        let target = plane_rendezvous::sim::Stationary::new(case.offset * 0.4);
        return (Box::new(spiral), Box::new(target), 60.0);
    }
    // Stack 2 pairs the exact reference schedule against a fully curved
    // warped, drifting spiral partner.
    if case.stack == 2 {
        let spiral = ArchimedeanSpiral::for_visibility(0.05);
        let drift = ClockDrift::from_rates(spiral, &[(8.0, 0.8), (20.0, 1.25)], 0.95);
        let partner = attrs.frame_warp(drift, case.offset);
        return if case.algorithm == 0 {
            (
                Box::new(UniversalSearch),
                Box::new(partner),
                times::rounds_total(case.rounds),
            )
        } else {
            (
                Box::new(WaitAndSearch),
                Box::new(partner),
                plane_rendezvous::core::completion_time(case.rounds),
            )
        };
    }
    if case.algorithm == 0 {
        let horizon = times::rounds_total(case.rounds);
        let b: Box<dyn Compile> = match case.stack {
            0 => Box::new(attrs.frame_warp(UniversalSearch, case.offset)),
            _ => Box::new(attrs.frame_warp(
                ClockDrift::from_rates(
                    UniversalSearch,
                    &[(horizon * 0.3, 0.8), (horizon * 0.7, 1.25)],
                    0.95,
                ),
                case.offset,
            )),
        };
        (Box::new(UniversalSearch), b, horizon)
    } else {
        let horizon = plane_rendezvous::core::completion_time(case.rounds);
        let b: Box<dyn Compile> = match case.stack {
            0 => Box::new(attrs.frame_warp(WaitAndSearch, case.offset)),
            _ => Box::new(attrs.frame_warp(
                ClockDrift::from_rates(
                    WaitAndSearch,
                    &[(horizon * 0.3, 0.8), (horizon * 0.7, 1.25)],
                    0.95,
                ),
                case.offset,
            )),
        };
        (Box::new(WaitAndSearch), b, horizon)
    }
}

/// Certified agreement between two outcomes of the same query.
///
/// `eps_total` is the sum of the two programs' folded approximation
/// bounds for the arm pair being compared (0 for exact paths).
fn agrees(x: &SimOutcome, y: &SimOutcome, radius: f64, eps_total: f64) -> Option<String> {
    let band = TOL + 2.0 * eps_total;
    if x.classification() == y.classification() {
        if let (Some(tx), Some(ty)) = (x.contact_time(), y.contact_time()) {
            // Contact times may differ by the time it takes to cross
            // the certified band at the (unknown) closing speed; the
            // 2e3 factor is a generous floor on that speed.
            let slack = 2e3 * band * (1.0 + tx.abs()) + 1e-6 * (1.0 + tx.abs());
            if (tx - ty).abs() > slack {
                return Some(format!("contact times {tx} vs {ty} (slack {slack:.3e})"));
            }
        }
        return None;
    }
    // A contact/horizon split is legitimate only when the miss grazes
    // the certified band around the contact threshold.
    let (contact, horizon) = match (x, y) {
        (SimOutcome::Contact { .. }, SimOutcome::Horizon { .. }) => (x, y),
        (SimOutcome::Horizon { .. }, SimOutcome::Contact { .. }) => (y, x),
        _ => {
            return Some(format!(
                "classifications {} vs {}",
                x.classification(),
                y.classification()
            ))
        }
    };
    let min = match horizon {
        SimOutcome::Horizon { min_distance, .. } => *min_distance,
        _ => unreachable!(),
    };
    let dist = match contact {
        SimOutcome::Contact { distance, .. } => *distance,
        _ => unreachable!(),
    };
    let threshold = radius + TOL;
    if min <= threshold + 2.0 * eps_total + 1e-9 && dist >= radius - 2.0 * eps_total - 1e-9 {
        return None;
    }
    Some(format!(
        "contact at distance {dist} vs horizon min {min} (threshold {threshold}, eps {eps_total})"
    ))
}

/// Runs all four engine paths on one case; `Err` describes the first
/// disagreement. `Ok(true)` means the compiled arms participated.
fn run_case(case: &FuzzCase) -> Result<bool, String> {
    let (a, b, horizon) = build(case);
    let opts = ContactOptions::with_horizon(horizon).tolerance(TOL);
    let generic = first_contact_generic(&*a, &*b, case.radius, &opts);
    let cursor = first_contact_cursors(
        &mut *a.dyn_cursor(),
        &mut *b.dyn_cursor(),
        case.radius,
        &opts,
    );
    if let Some(why) = agrees(&generic, &cursor, case.radius, 0.0) {
        return Err(format!("generic vs cursor: {why}"));
    }

    let copts = CompileOptions::to_horizon(horizon)
        .max_pieces(1 << 18)
        .approx_tolerance(APPROX_EPS);
    let (ea, eb) = match (a.compile(&copts), b.compile(&copts)) {
        (Ok(ea), Ok(eb)) => (ea, eb),
        // A refusal is a legitimate escape hatch, not a disagreement;
        // the caller counts how often the compiled arms actually run.
        _ => return Ok(false),
    };
    let eps_total = ea.approx_eps() + eb.approx_eps();
    let mut scratch = EngineScratch::new();
    let eager = match try_first_contact_programs(&ea, &eb, case.radius, &opts, &mut scratch) {
        Some(out) => out,
        None => return Ok(false),
    };
    if let Some(why) = agrees(&generic, &eager, case.radius, eps_total) {
        return Err(format!("generic vs compiled-eager: {why}"));
    }

    // The lane kernel over arenas built from the same eager programs:
    // arena probes are bit-identical to program probes, so the kernel
    // shares the eager arms' certified band.
    let sa = ProgramSoA::from_program(&ea);
    let sb = ProgramSoA::from_program(&eb);
    let soa = match try_first_contact_soa(&sa, &sb, case.radius, &opts, &mut scratch) {
        Some(out) => out,
        None => return Ok(false),
    };
    if let Some(why) = agrees(&generic, &soa, case.radius, eps_total) {
        return Err(format!("generic vs soa-kernel: {why}"));
    }
    if let Some(why) = agrees(&eager, &soa, case.radius, eps_total) {
        return Err(format!("compiled-eager vs soa-kernel: {why}"));
    }

    let la = LazyProgram::new(&*a, copts);
    let lb = LazyProgram::new(&*b, copts);
    // Lazy views report the *a-priori* requested tolerance (they cannot
    // know the realized bound before materializing), so their certified
    // band is wider than the eager programs' realized one.
    let lazy_eps = {
        use plane_rendezvous::trajectory::ProgramView;
        la.approx_eps() + lb.approx_eps()
    };
    let lazy = match try_first_contact_programs(&la, &lb, case.radius, &opts, &mut scratch) {
        Some(out) => out,
        None => return Ok(false),
    };
    if let Some(why) = agrees(&generic, &lazy, case.radius, lazy_eps) {
        return Err(format!("generic vs compiled-lazy: {why}"));
    }
    if let Some(why) = agrees(&eager, &lazy, case.radius, eps_total + lazy_eps) {
        return Err(format!("compiled-eager vs compiled-lazy: {why}"));
    }
    Ok(true)
}

/// Candidate simplifications, most aggressive first. Each must strictly
/// reduce some complexity measure so shrinking terminates.
fn shrink_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    if case.stack > 0 && case.stack != 3 {
        out.push(FuzzCase {
            stack: case.stack - 1,
            ..*case
        });
    }
    if case.rounds > 2 {
        out.push(FuzzCase {
            rounds: case.rounds - 1,
            ..*case
        });
    }
    if case.mirrored {
        out.push(FuzzCase {
            mirrored: false,
            ..*case
        });
    }
    if case.offset.norm() > 0.2 {
        out.push(FuzzCase {
            offset: case.offset * 0.5,
            ..*case
        });
    }
    if (case.speed - 1.0).abs() > 0.05 {
        out.push(FuzzCase {
            speed: 0.5 * (case.speed + 1.0),
            ..*case
        });
    }
    if (case.time_unit - 1.0).abs() > 0.05 {
        out.push(FuzzCase {
            time_unit: 0.5 * (case.time_unit + 1.0),
            ..*case
        });
    }
    if case.orientation.abs() > 0.1 {
        out.push(FuzzCase {
            orientation: case.orientation * 0.5,
            ..*case
        });
    }
    out
}

/// Greedy minimization: keep the first simplification that still
/// fails, until none do.
fn shrink(mut case: FuzzCase, mut why: String) -> (FuzzCase, String) {
    for _ in 0..64 {
        let mut advanced = false;
        for candidate in shrink_candidates(&case) {
            if let Err(e) = run_case(&candidate) {
                case = candidate;
                why = e;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    (case, why)
}

#[test]
fn engine_paths_agree_on_random_scenarios() {
    let cases: usize = std::env::var("RVZ_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let seed: u64 = std::env::var("RVZ_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xBADC_0FFE);
    let mut state = seed;
    let mut compiled_runs = 0usize;
    for i in 0..cases {
        let case = generate(&mut state);
        match run_case(&case) {
            Ok(ran_compiled) => compiled_runs += ran_compiled as usize,
            Err(why) => {
                let (minimized, why) = shrink(case, why);
                panic!(
                    "engine paths disagree (seed {seed}, case {i}): {why}\n\
                     reproducer: {minimized:?}\n\
                     original:   {case:?}"
                );
            }
        }
    }
    // The harness is only meaningful if the compiled arms actually run;
    // refusals (budget, coverage) must stay the exception.
    assert!(
        compiled_runs * 2 >= cases,
        "compiled arms ran on only {compiled_runs}/{cases} cases"
    );
}
