//! Beyond the paper: time-varying clocks (Section 5's "alternative
//! capabilities" future work, and the dynamic-compass-style model of the
//! related work).
//!
//! A robot whose clock rate *drifts* within a band `[τ_lo, τ_hi]` is not
//! covered by the paper's constant-τ analysis. These experiments probe
//! the natural conjecture: as long as the band stays strictly on one side
//! of 1 (the clocks are *always* asymmetric), the universal algorithm
//! still succeeds.
//!
//! **Semantics.** The paper's constant `τ` acts twice: it dilates the
//! robot's schedule (`t ↦ t/τ`) *and* scales its distance unit (`v·τ`).
//! The drift extension isolates the **temporal** effect — the robot's
//! spatial frame stays fixed while its pace through the algorithm varies
//! (instantaneous rate `L'(t)`, i.e. effective `τ(t) = 1/L'(t)`). The
//! timing side is the one the overlap machinery of Lemmas 9–13 exploits,
//! so it is the right axis to perturb.

use plane_rendezvous::core::{completion_time, WaitAndSearch};
use plane_rendezvous::prelude::*;
use plane_rendezvous::trajectory::ClockDrift;

/// Robot R' with drifting clock, same speed/orientation/chirality.
fn drifting_partner(
    intervals: &[(f64, f64)],
    tail: f64,
    start: Vec2,
) -> impl MonotoneTrajectory + use<'_> {
    // The drift composes outside the frame warp: local algorithm time is
    // L(t); the frame itself is otherwise the identity with the given
    // start offset.
    let warped = RobotAttributes::reference().frame_warp(WaitAndSearch, start);
    ClockDrift::from_rates(warped, intervals, tail)
}

#[test]
fn drifting_clock_below_one_still_meets() {
    // Rate wanders in [0.5, 0.8] — always strictly slower than R.
    let partner = drifting_partner(
        &[(50.0, 0.6), (100.0, 0.8), (200.0, 0.5), (400.0, 0.7)],
        0.65,
        Vec2::new(0.3, 0.8),
    );
    let reference = WaitAndSearch;
    let out = first_contact(
        &reference,
        &partner,
        0.25,
        &ContactOptions::with_horizon(completion_time(10)).tolerance(2.5e-7),
    );
    assert!(out.is_contact(), "drift in [0.5, 0.8] failed: {out}");
}

#[test]
fn drifting_clock_above_one_still_meets() {
    // Rate wanders in [1.3, 1.9] — always strictly faster than R.
    let partner = drifting_partner(
        &[(80.0, 1.5), (120.0, 1.3), (300.0, 1.9)],
        1.6,
        Vec2::new(0.4, 0.7),
    );
    let reference = WaitAndSearch;
    let out = first_contact(
        &reference,
        &partner,
        0.25,
        &ContactOptions::with_horizon(completion_time(10)).tolerance(2.5e-7),
    );
    assert!(out.is_contact(), "drift in [1.3, 1.9] failed: {out}");
}

/// The constant-rate case is recovered exactly when the band is a single
/// point: drift at rate `c` equals a pure time dilation by `1/c` (same
/// spatial frame).
#[test]
fn degenerate_drift_recovers_constant_rate() {
    use plane_rendezvous::geometry::Mat2;
    let rate = 0.6; // effective τ = 1/0.6
    let start = Vec2::new(0.2, 0.85);
    let plain = FrameWarp::new(WaitAndSearch, Mat2::IDENTITY, start, 1.0 / rate);
    let drifted = drifting_partner(&[], rate, start);
    for t in [0.0, 10.0, 123.4, 999.9, 5000.0] {
        let a = plain.position(t);
        let b = drifted.position(t);
        assert!(a.distance(b) < 1e-9, "t={t}: {a} vs {b}");
    }
}

/// A drift band that *straddles* 1 can hover arbitrarily close to the
/// symmetric clock: the paper's overlap argument gives no guarantee
/// there. We document the conservative observation: with an adversarial
/// rate schedule that mirrors R's phase structure, the partner stays
/// synchronized and (being an exact twin otherwise) never meets R.
#[test]
fn adversarial_straddling_drift_can_preserve_symmetry() {
    // Rate exactly 1 forever is the degenerate straddle: an exact twin.
    let d = Vec2::new(0.0, 2.0);
    let partner = drifting_partner(&[], 1.0, d);
    let reference = WaitAndSearch;
    let out = first_contact(
        &reference,
        &partner,
        0.1,
        &ContactOptions::with_horizon(2e4),
    );
    match out {
        SimOutcome::Horizon { min_distance, .. } => {
            assert!((min_distance - 2.0).abs() < 1e-9);
        }
        other => panic!("twin with unit drift met: {other}"),
    }
}

/// Speed bounds stay sound under drift (the conservative-advancement
/// engine depends on this).
#[test]
fn drift_speed_bound_is_sound_for_algorithm7() {
    let partner = drifting_partner(&[(10.0, 1.9), (10.0, 0.3)], 1.0, Vec2::ZERO);
    let bound = partner.speed_bound();
    assert!((bound - 1.9).abs() < 1e-12);
    let mut t = 0.0;
    while t < 60.0 {
        let step = 0.02;
        let moved = partner.position(t).distance(partner.position(t + step));
        assert!(moved <= bound * step + 1e-9, "speed violated at t={t}");
        t += step;
    }
}
