//! Integration test for E11/E12: the universal algorithm vs the
//! omniscient spiral, and the granularity-schedule ablation.

use plane_rendezvous::baselines::{
    ArchimedeanSpiral, PaperSchedule, SearchScheduleModel, UniformGranularity,
};
use plane_rendezvous::prelude::*;

/// E11: the informed spiral beats the universal algorithm (that's the
/// price of knowing r), but only by roughly the log factor the paper
/// predicts — not asymptotically more.
#[test]
fn universal_overhead_over_spiral_is_logarithmic() {
    // Generic (non-dyadic) distance: on dyadic-aligned distances the
    // universal algorithm can get lucky and even beat the spiral, since
    // its circles pass exactly through the target radius.
    for rexp in [-5, -7, -9] {
        let r = (rexp as f64).exp2();
        let inst = SearchInstance::new(Vec2::from_polar(1.37, 2.0), r).unwrap();

        let universal = first_discovery(&inst, 31).unwrap().time;
        let spiral = ArchimedeanSpiral::for_visibility(r);
        let horizon = universal.max(spiral.search_time_estimate(inst.distance())) * 3.0 + 100.0;
        let spiral_time = first_contact(
            &spiral,
            &Stationary::new(inst.target()),
            r,
            &ContactOptions::with_horizon(horizon),
        )
        .contact_time()
        .expect("spiral finds the target");

        let overhead = universal / spiral_time;
        let difficulty = inst.difficulty();
        // Knowing r can only be emulated up to round quantization: the
        // universal time is never absurdly below the informed one ...
        assert!(
            overhead > 0.1,
            "r=2^{rexp}: universal ({universal}) suspiciously beat the spiral ({spiral_time})"
        );
        // ... and pays at most a constant times log(d²/r) on top.
        assert!(
            overhead < 40.0 * difficulty.log2(),
            "r=2^{rexp}: overhead {overhead} not logarithmic (log difficulty {})",
            difficulty.log2()
        );
    }
}

/// E12: replacing the paper's per-annulus granularity ladder with a
/// uniform per-round granularity is asymptotically worse.
#[test]
fn uniform_granularity_ablation_loses() {
    let paper = PaperSchedule;
    let uniform = UniformGranularity;
    for (d, rexp) in [(1.0, -6), (1.0, -10), (3.0, -8)] {
        let r = (rexp as f64).exp2();
        let p = paper.guaranteed_search(d, r, 31).unwrap();
        let u = uniform.guaranteed_search(d, r, 31).unwrap();
        assert!(
            u.time > p.time,
            "d={d}, r=2^{rexp}: uniform ({}) not worse than paper ({})",
            u.time,
            p.time
        );
    }
    // And the gap grows with difficulty.
    let easy = {
        let p = paper.guaranteed_search(1.0, (-6f64).exp2(), 31).unwrap();
        let u = uniform.guaranteed_search(1.0, (-6f64).exp2(), 31).unwrap();
        u.time / p.time
    };
    let hard = {
        let p = paper.guaranteed_search(1.0, (-12f64).exp2(), 31).unwrap();
        let u = uniform.guaranteed_search(1.0, (-12f64).exp2(), 31).unwrap();
        u.time / p.time
    };
    assert!(hard > 4.0 * easy, "gap did not grow: {easy} -> {hard}");
}

/// The spiral's closed-form estimate matches its simulated performance.
#[test]
fn spiral_estimate_matches_simulation() {
    let r = 0.02;
    let spiral = ArchimedeanSpiral::for_visibility(r);
    for d in [0.5, 1.0, 2.0] {
        let target = Vec2::from_polar(d, 2.1);
        let est = spiral.search_time_estimate(d);
        let t = first_contact(
            &spiral,
            &Stationary::new(target),
            r,
            &ContactOptions::with_horizon(est * 3.0 + 100.0),
        )
        .contact_time()
        .unwrap();
        // The simulated time is within ±(one winding + r slack) of the
        // estimate.
        let slack = spiral.search_time_estimate(d + 2.0 * r) - spiral.search_time_estimate(d)
            + 2.0 * std::f64::consts::TAU * (d + r);
        assert!(
            (t - est).abs() <= slack,
            "d={d}: sim {t} vs estimate {est} (slack {slack})"
        );
    }
}
