#!/usr/bin/env sh
# CI gate for the plane-rendezvous workspace.
#
#   ./ci.sh
#
# Runs the full verification stack. Everything works offline: the
# workspace has no external dependencies (see ARCHITECTURE.md,
# "Offline-build constraints").

set -eu

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> rvz bench-engine --quick --enforce-steps (smoke: schema intact, no step regressions)"
BENCH_SMOKE="$(mktemp -t bench_engine_smoke.XXXXXX.json)"
# --enforce-steps fails the run if the cursor engine takes more
# advancement steps than the seed conservative loop on any case.
cargo run --release --quiet --bin rvz -- bench-engine --quick --enforce-steps --out "$BENCH_SMOKE" >/dev/null
grep -q '"schema": "rvz-bench-engine/v2"' "$BENCH_SMOKE"
grep -q '"cases":' "$BENCH_SMOKE"
grep -q '"pruned_intervals":' "$BENCH_SMOKE"
rm -f "$BENCH_SMOKE"

echo "CI OK"
