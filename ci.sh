#!/usr/bin/env sh
# CI gate for the plane-rendezvous workspace.
#
#   ./ci.sh
#
# Runs the full verification stack. Everything works offline: the
# workspace has no external dependencies (see ARCHITECTURE.md,
# "Offline-build constraints").

set -eu

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> compiled-engine allocation gate (zero heap allocations per query)"
cargo test --release --quiet -p rvz-sim --test alloc_gate

echo "==> differential fuzz (fixed seed budget: five engine paths agree)"
# The seeded harness in tests/differential_fuzz.rs runs the generic,
# cursor, compiled-eager, compiled-lazy, and SoA lane-kernel paths on
# random scenario x trajectory-stack draws and requires agreement
# within the certified tolerance. The budget and seed are pinned so CI
# is deterministic.
RVZ_FUZZ_CASES=24 RVZ_FUZZ_SEED=3134984190 \
    cargo test --release --quiet --test differential_fuzz

echo "==> rvz bench-engine --quick --enforce-steps (smoke: schema v5 intact, no step regressions)"
BENCH_SMOKE="$(mktemp -t bench_engine_smoke.XXXXXX.json)"
# --enforce-steps fails the run if the cursor engine takes more
# advancement steps than the seed conservative loop on any case.
cargo run --release --quiet --bin rvz -- bench-engine --quick --enforce-steps --out "$BENCH_SMOKE" >/dev/null
grep -q '"schema": "rvz-bench-engine/v5"' "$BENCH_SMOKE"
grep -q '"lane_width":' "$BENCH_SMOKE"
grep -q '"cases":' "$BENCH_SMOKE"
grep -q '"batches":' "$BENCH_SMOKE"
grep -q '"pruned_intervals":' "$BENCH_SMOKE"
grep -q '"compile_eager_ns":' "$BENCH_SMOKE"
grep -q '"compile_lazy_ns":' "$BENCH_SMOKE"
grep -q '"approx_eps":' "$BENCH_SMOKE"
grep -q '"compile_ns_per_query":' "$BENCH_SMOKE"
grep -q '"pieces":' "$BENCH_SMOKE"
grep -q '"allocs_per_query":' "$BENCH_SMOKE"
grep -q '"lane_chunks":' "$BENCH_SMOKE"
grep -q '"soa_ns_per_query":' "$BENCH_SMOKE"
grep -q '"soa_speedup":' "$BENCH_SMOKE"
grep -q '"name": "swarm_many_vs_many"' "$BENCH_SMOKE"
# Certified chords mean every case — the spiral included — now carries
# a compiled sample: no escape-hatch nulls in the smoke artifact or in
# the committed full-mode report.
if grep -q '"compiled": null' "$BENCH_SMOKE"; then
    echo "bench smoke artifact contains a null compiled sample"; exit 1
fi
if grep -q '"compiled": null' BENCH_engine.json; then
    echo "committed BENCH_engine.json contains a null compiled sample"; exit 1
fi
grep -q '"schema": "rvz-bench-engine/v5"' BENCH_engine.json
grep -q '"lane_width":' BENCH_engine.json
grep -q '"soa_ns_per_query":' BENCH_engine.json
# The compiled fast path must report zero allocations per query on
# every batch workload (the batch rows are the only lines where
# allocs_per_query is adjacent to speedup, so this cannot be satisfied
# by the always-zero generic samples). The SoA arm is held to the same
# zero-allocation bar.
grep -q '"allocs_per_query": 0, "speedup"' "$BENCH_SMOKE"
if grep -qE '"allocs_per_query": [1-9][0-9]*, "speedup"' "$BENCH_SMOKE"; then
    echo "compiled batch workload reported nonzero allocations"; exit 1
fi
if grep -qE '"soa_allocs_per_query": [1-9][0-9]*' "$BENCH_SMOKE"; then
    echo "SoA batch workload reported nonzero allocations"; exit 1
fi
# The SoA kernel must never lose to the scalar compiled loop on the
# quick batch workloads (a 10% grace bound absorbs timer noise; a real
# regression — the lane gate mispricing chunks — overshoots it).
check_soa_not_slower() {
    awk '
        /"soa_ns_per_query"/ && /"compiled_ns_per_query"/ {
            c = $0; sub(/.*"compiled_ns_per_query": /, "", c); sub(/[,}].*/, "", c)
            s = $0; sub(/.*"soa_ns_per_query": /, "", s); sub(/[,}].*/, "", s)
            n += 1
            if (s + 0 > (c + 0) * 1.10) { print "SoA slower than scalar: " $0; bad += 1 }
        }
        END { if (n == 0) { print "no batch rows found"; exit 1 }; exit bad > 0 }
    ' "$1"
}
check_soa_not_slower "$BENCH_SMOKE"
rm -f "$BENCH_SMOKE"

echo "==> two-arm bench smoke (-C target-cpu=native vs baseline: SoA never slower than scalar)"
# The lane kernel leans on autovectorization: measure both a baseline
# build and a -C target-cpu=native build rather than assuming. Each arm
# must hold the SoA-never-slower bound on the quick batch workloads.
BENCH_NATIVE="$(mktemp -t bench_engine_native.XXXXXX.json)"
RUSTFLAGS="-C target-cpu=native" CARGO_TARGET_DIR=target/ci-native \
    cargo run --release --quiet --bin rvz -- bench-engine --quick --out "$BENCH_NATIVE" >/dev/null
grep -q '"schema": "rvz-bench-engine/v5"' "$BENCH_NATIVE"
check_soa_not_slower "$BENCH_NATIVE"
rm -f "$BENCH_NATIVE"

echo "==> telemetry overhead gate (deterministic bench fields identical with --no-metrics)"
# Recording is observation-only: flipping the global kill switch must
# not change a single engine decision. Timing fields differ run to run,
# so compare every deterministic field of the two reports.
BENCH_ON="$(mktemp -t bench_metrics_on.XXXXXX.json)"
BENCH_OFF="$(mktemp -t bench_metrics_off.XXXXXX.json)"
cargo run --release --quiet --bin rvz -- bench-engine --quick --out "$BENCH_ON" >/dev/null
cargo run --release --quiet --bin rvz -- bench-engine --quick --no-metrics --out "$BENCH_OFF" >/dev/null
for key in steps pruned_intervals envelope_queries allocs_per_query pieces outcome \
    lane_chunks lane_intervals; do
    ON_VALUES="$(grep -o "\"$key\": [^,}]*" "$BENCH_ON")"
    OFF_VALUES="$(grep -o "\"$key\": [^,}]*" "$BENCH_OFF")"
    [ -n "$ON_VALUES" ] || { echo "bench report carries no \"$key\" fields"; exit 1; }
    [ "$ON_VALUES" = "$OFF_VALUES" ] \
        || { echo "telemetry changed deterministic field \"$key\""; exit 1; }
done
rm -f "$BENCH_ON" "$BENCH_OFF"

echo "==> serve fault-injection suite (pinned seed: poison recovery, panic isolation, shedding, drain)"
# Every plan in the suite pins seed=42 (or 7) with rate-1.0 + limit
# sites, so the injected faults are exactly the first `limit` visits —
# deterministic across runs.
cargo test --release --quiet -p rvz-server --test fault_injection

echo "==> rvz serve smoke (ephemeral port, symmetric-twin cache hit, graceful shutdown)"
RVZ="./target/release/rvz"
SERVE_LOG="$(mktemp -t rvz_serve_smoke.XXXXXX.log)"
"$RVZ" serve --port 0 --workers 2 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
# Scrape the bound address from the startup banner.
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^rvz serve listening on //p' "$SERVE_LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve did not start"; cat "$SERVE_LOG"; exit 1; }
# A feasibility query answers with the Theorem 4 verdict.
"$RVZ" client --addr "$ADDR" --path '/feasibility?tau=0.5' | grep -q '"breaker":"clocks"'
# A first-contact query misses; its role-swap twin (v -> 1/v, d and r
# scaled by v·tau, bearing + pi) must hit the same canonical entry.
FC_METRICS_ON="$("$RVZ" client --addr "$ADDR" --path /first-contact \
    --body '{"speed":0.5,"distance":0.9,"visibility":0.25}')"
echo "$FC_METRICS_ON" | grep -q 'X-Rvz-Cache: miss'
"$RVZ" client --addr "$ADDR" --path /first-contact \
    --body '{"speed":2,"distance":1.8,"visibility":0.5,"bearing":4.188790204786391}' \
    | grep -q 'X-Rvz-Cache: hit'
# A batch sweep reuses the cached orbit and stays Theorem 4 consistent.
"$RVZ" client --addr "$ADDR" --path /sweep \
    --body '{"scenarios":[{"speed":0.5,"distance":0.9,"visibility":0.25},{"time_unit":0.6,"distance":0.9,"visibility":0.25}]}' \
    | grep -q '"consistent":2'
# Every response carries a 16-hex-digit trace ID.
"$RVZ" client --addr "$ADDR" --path /healthz \
    | grep -Eq '^X-Rvz-Trace: [0-9a-f]{16}$'
# /metrics serves the Prometheus exposition with every family present
# from the first scrape (preregistration), faults and sheds included.
METRICS_SCRAPE="$("$RVZ" client --addr "$ADDR" --path /metrics)"
for family in rvz_requests_total rvz_responses_total rvz_request_duration_us \
    rvz_cache_requests_total rvz_engine_queries_total rvz_engine_outcomes_total \
    rvz_engine_kernel_dispatch_total rvz_engine_kernel_lanes_active \
    rvz_faults_injected_total rvz_shed_total rvz_uptime_seconds rvz_inflight; do
    echo "$METRICS_SCRAPE" | grep -q "$family" \
        || { echo "metrics scrape missing $family"; exit 1; }
done
# The engine counters moved: the twin queries above ran exactly one
# engine query through the cache-miss path.
echo "$METRICS_SCRAPE" | grep -q 'rvz_cache_requests_total{outcome="hit"} [1-9]' \
    || { echo "cache-hit counter did not move"; exit 1; }
# The flight recorder serves recent spans as JSON.
"$RVZ" client --addr "$ADDR" --path '/trace/recent?n=4' | grep -q '"events":'
# /stats carries uptime, the build fingerprint, and the shed-cause split.
STATS="$("$RVZ" client --addr "$ADDR" --path /stats)"
echo "$STATS" | grep -q '"uptime_s":' || { echo "stats missing uptime_s"; exit 1; }
echo "$STATS" | grep -q '"engine_fingerprint":' || { echo "stats missing build"; exit 1; }
echo "$STATS" | grep -q '"shed_by_cause"' || { echo "stats missing shed_by_cause"; exit 1; }
# Graceful shutdown: the serve process exits cleanly on its own.
"$RVZ" client --addr "$ADDR" --path /shutdown --method POST | grep -q '"shutting_down":true'
wait "$SERVE_PID"
grep -q "shut down cleanly" "$SERVE_LOG"
rm -f "$SERVE_LOG"

echo "==> serve --no-metrics arm (observability hidden, wire bytes identical)"
SERVE_LOG="$(mktemp -t rvz_serve_nometrics.XXXXXX.log)"
"$RVZ" serve --port 0 --workers 2 --no-metrics > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^rvz serve listening on //p' "$SERVE_LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "no-metrics serve did not start"; cat "$SERVE_LOG"; exit 1; }
grep -q 'metrics = off' "$SERVE_LOG"
# The observability endpoints answer 404 exactly like unknown paths
# (the client exits nonzero on any 4xx/5xx).
if "$RVZ" client --addr "$ADDR" --path /metrics >/dev/null 2>&1; then
    echo "--no-metrics must hide /metrics"; exit 1
fi
if "$RVZ" client --addr "$ADDR" --path /trace/recent >/dev/null 2>&1; then
    echo "--no-metrics must hide /trace/recent"; exit 1
fi
# The same first-contact query produces byte-identical result JSON.
FC_METRICS_OFF="$("$RVZ" client --addr "$ADDR" --path /first-contact \
    --body '{"speed":0.5,"distance":0.9,"visibility":0.25}')"
echo "$FC_METRICS_OFF" | grep -q 'X-Rvz-Cache: miss'
[ "$(echo "$FC_METRICS_ON" | tail -n 1)" = "$(echo "$FC_METRICS_OFF" | tail -n 1)" ] \
    || { echo "--no-metrics changed the result bytes"; exit 1; }
"$RVZ" client --addr "$ADDR" --path /shutdown --method POST >/dev/null
wait "$SERVE_PID"
rm -f "$SERVE_LOG"

echo "==> durability smoke (SIGKILL serve -> warm start; SIGKILL sweep -> bit-identical resume)"
DUR_DIR="$(mktemp -d -t rvz_durability_smoke.XXXXXX)"
# --- serve: kill the process outright and warm-start from its snapshot.
SNAP="$DUR_DIR/cache.snap"
SERVE_LOG="$DUR_DIR/serve1.log"
"$RVZ" serve --port 0 --workers 2 --snapshot "$SNAP" --snapshot-interval-s 1 \
    > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^rvz serve listening on //p' "$SERVE_LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "durable serve did not start"; cat "$SERVE_LOG"; exit 1; }
FIRST="$("$RVZ" client --addr "$ADDR" --path /first-contact \
    --body '{"speed":0.5,"distance":0.9,"visibility":0.25}')"
echo "$FIRST" | grep -q 'X-Rvz-Cache: miss'
# Wait for a periodic snapshot that already carries the cached entry,
# then SIGKILL mid-flight (no drain, no final snapshot — the periodic
# write must carry the state).
SNAP_OK=""
for _ in $(seq 1 100); do
    if "$RVZ" client --addr "$ADDR" --path /stats \
        | grep -q '"persisted_entries":[1-9]'; then SNAP_OK=1; break; fi
    sleep 0.1
done
[ -n "$SNAP_OK" ] || { echo "no periodic snapshot captured the entry"; exit 1; }
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_LOG2="$DUR_DIR/serve2.log"
"$RVZ" serve --port 0 --workers 2 --snapshot "$SNAP" --snapshot-interval-s 1 \
    > "$SERVE_LOG2" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^rvz serve listening on //p' "$SERVE_LOG2" | head -n 1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted serve did not start"; cat "$SERVE_LOG2"; exit 1; }
# The restore must be warm (or salvaged if the kill raced the writer —
# never a refusal to boot), and the previously-cached orbit must answer
# byte-identically as a hit, without an engine run.
grep -Eq 'restore: (warm|salvaged)' "$SERVE_LOG2"
AGAIN="$("$RVZ" client --addr "$ADDR" --path /first-contact \
    --body '{"speed":0.5,"distance":0.9,"visibility":0.25}')"
echo "$AGAIN" | grep -q 'X-Rvz-Cache: hit'
[ "$(echo "$FIRST" | tail -n 1)" = "$(echo "$AGAIN" | tail -n 1)" ] \
    || { echo "warm-start answer diverged from the computed one"; exit 1; }
"$RVZ" client --addr "$ADDR" --path /stats | grep -q '"durability"'
"$RVZ" client --addr "$ADDR" --path /shutdown --method POST >/dev/null
wait "$SERVE_PID"
# --- sweep: kill mid-checkpoint, resume, demand bit-identical artifacts.
SWEEP_FLAGS="--speeds 0.5,0.6,0.7,0.8,0.9,1.0 --clocks 0.6,1.0 --phis 0,1.5
    --chis +1 --distances 0.9 --r 0.25 --max-steps 20000 --horizon-rounds 6"
# shellcheck disable=SC2086
"$RVZ" sweep $SWEEP_FLAGS --threads 1 --out "$DUR_DIR/reference" >/dev/null
# shellcheck disable=SC2086
"$RVZ" sweep $SWEEP_FLAGS --threads 2 --out "$DUR_DIR/resumed" \
    --checkpoint "$DUR_DIR/sweep.ckpt" >/dev/null 2>&1 &
SWEEP_PID=$!
for _ in $(seq 1 200); do
    [ -s "$DUR_DIR/sweep.ckpt" ] && break
    kill -0 "$SWEEP_PID" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$SWEEP_PID" 2>/dev/null || true
wait "$SWEEP_PID" 2>/dev/null || true
# shellcheck disable=SC2086
"$RVZ" sweep $SWEEP_FLAGS --threads 4 --out "$DUR_DIR/resumed" \
    --checkpoint "$DUR_DIR/sweep.ckpt" --resume > "$DUR_DIR/resume.log"
grep -q 'checkpoint:' "$DUR_DIR/resume.log" \
    || { echo "resumed sweep did not report checkpoint stats"; exit 1; }
cmp "$DUR_DIR/reference.jsonl" "$DUR_DIR/resumed.jsonl" \
    || { echo "resumed sweep JSONL diverged from the uninterrupted run"; exit 1; }
cmp "$DUR_DIR/reference.csv" "$DUR_DIR/resumed.csv" \
    || { echo "resumed sweep CSV diverged from the uninterrupted run"; exit 1; }
rm -rf "$DUR_DIR"

echo "==> rvz loadtest --quick --check-overload (smoke: schema v3 artifact, shed-not-collapse at 2x)"
SERVE_BENCH="$(mktemp -t bench_serve_smoke.XXXXXX.json)"
# --check-overload makes the binary itself fail unless the 2x arm sheds
# explicitly (nonzero 503s), keeps accepting, and holds the accepted
# p99 within 5x of the 1x arm's — shed-not-collapse, with no hang
# (the closed loop and both open-loop arms are time-bounded).
"$RVZ" loadtest --quick --check-overload --out "$SERVE_BENCH" >/dev/null
grep -q '"schema":"rvz-bench-serve/v3"' "$SERVE_BENCH"
grep -q '"name":"cached"' "$SERVE_BENCH"
grep -q '"name":"no-cache"' "$SERVE_BENCH"
grep -q '"speedup":' "$SERVE_BENCH"
grep -q '"latency_histogram":' "$SERVE_BENCH"
grep -q '"buckets":' "$SERVE_BENCH"
grep -q '"overload":' "$SERVE_BENCH"
grep -q '"offered_rps":' "$SERVE_BENCH"
grep -q '"shed_rate":' "$SERVE_BENCH"
grep -q '"accepted_latency_us":' "$SERVE_BENCH"
grep -q '"multiplier":2' "$SERVE_BENCH"
rm -f "$SERVE_BENCH"
# The committed artifact must be schema v3 as well, histograms included.
grep -q '"schema":"rvz-bench-serve/v3"' BENCH_serve.json
grep -q '"latency_histogram":' BENCH_serve.json
grep -q '"overload":' BENCH_serve.json

echo "CI OK"
