#!/usr/bin/env sh
# CI gate for the plane-rendezvous workspace.
#
#   ./ci.sh
#
# Runs the full verification stack. Everything works offline: the
# workspace has no external dependencies (see ARCHITECTURE.md,
# "Offline-build constraints").

set -eu

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
