//! A tiny blocking HTTP/1.1 client for `rvz serve`: the `rvz client`
//! subcommand, the CI smoke test and the `rvz loadtest` closed-loop
//! generator all speak through this (the workspace ships its own client
//! so the whole serve stack stays dependency-free and testable offline).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Transport timeouts for [`HttpClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Maximum time to establish the TCP connection.
    pub connect_timeout: Duration,
    /// Maximum time to wait for response bytes once connected.
    pub read_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
        }
    }
}

impl ClientOptions {
    /// Both timeouts set to `timeout` (how `--timeout-ms` maps in).
    pub fn uniform(timeout: Duration) -> ClientOptions {
        ClientOptions {
            connect_timeout: timeout,
            read_timeout: timeout,
        }
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl ClientResponse {
    /// The first header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent keep-alive connection to a server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`) with default
    /// timeouts ([`ClientOptions::default`]).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        HttpClient::connect_with(addr, &ClientOptions::default())
    }

    /// Connects to `addr` honoring the given connect/read timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection failures, including connect timeout.
    pub fn connect_with(addr: &str, opts: &ClientOptions) -> std::io::Result<HttpClient> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("address `{addr}` resolved to nothing"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, opts.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.read_timeout))?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: rvz\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed before status line"));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
        })
    }
}

/// One-shot convenience: connect, send, read, close.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.request(method, path, body)
}

/// One-shot convenience with explicit timeouts.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    opts: &ClientOptions,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect_with(addr, opts)?.request(method, path, body)
}
