//! A tiny blocking HTTP/1.1 client for `rvz serve`: the `rvz client`
//! subcommand, the CI smoke test and the `rvz loadtest` closed-loop
//! generator all speak through this (the workspace ships its own client
//! so the whole serve stack stays dependency-free and testable offline).

use rvz_experiments::SplitMix64;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Transport timeouts for [`HttpClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Maximum time to establish the TCP connection.
    pub connect_timeout: Duration,
    /// Maximum time to wait for response bytes once connected.
    pub read_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
        }
    }
}

impl ClientOptions {
    /// Both timeouts set to `timeout` (how `--timeout-ms` maps in).
    pub fn uniform(timeout: Duration) -> ClientOptions {
        ClientOptions {
            connect_timeout: timeout,
            read_timeout: timeout,
        }
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl ClientResponse {
    /// The first header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent keep-alive connection to a server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`) with default
    /// timeouts ([`ClientOptions::default`]).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        HttpClient::connect_with(addr, &ClientOptions::default())
    }

    /// Connects to `addr` honoring the given connect/read timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection failures, including connect timeout.
    pub fn connect_with(addr: &str, opts: &ClientOptions) -> std::io::Result<HttpClient> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("address `{addr}` resolved to nothing"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, opts.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.read_timeout))?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: rvz\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed before status line"));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
        })
    }
}

/// Retry discipline for shed (503) responses: capped exponential
/// backoff with deterministic jitter, honoring the server's
/// `Retry-After` hint when it is longer than the local backoff.
///
/// Only 503 triggers a retry — it is the one status the server sends
/// for *transient* overload (admission control), and the shed happens
/// before any engine work, so replaying is always safe. Other errors
/// (4xx, 5xx, transport failures) surface immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast, the default).
    pub retries: u32,
    /// First backoff step; doubles each retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The default policy with `retries` attempts (how `--retries`
    /// maps in).
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry attempt `attempt` (0-based), given the
    /// server's `Retry-After` hint in seconds (if any): the larger of
    /// the hint and the jittered, capped exponential backoff.
    ///
    /// Jitter multiplies the backoff by a factor in `[0.5, 1.0)` drawn
    /// from a per-policy [`SplitMix64`] stream, so synchronized
    /// clients de-correlate instead of re-stampeding the server, while
    /// a pinned seed keeps tests and loadtests reproducible.
    pub fn delay(&self, attempt: u32, retry_after_s: Option<u64>) -> Duration {
        let backoff = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let jitter = 0.5 + 0.5 * SplitMix64::new(self.seed).split(attempt as u64).next_f64();
        let jittered = backoff.mul_f64(jitter);
        match retry_after_s {
            Some(s) => jittered.max(Duration::from_secs(s)),
            None => jittered,
        }
    }
}

/// Parses a `Retry-After` header value (whole seconds; the only form
/// `rvz serve` emits).
fn retry_after_s(resp: &ClientResponse) -> Option<u64> {
    resp.header("retry-after").and_then(|v| v.parse().ok())
}

/// One-shot request with 503 retries per `policy`: each attempt uses a
/// fresh connection (the server closes shed connections), sleeping the
/// policy's delay between attempts. Returns the final response —
/// still 503 if every attempt was shed.
///
/// # Errors
///
/// Propagates connection and protocol failures (not retried).
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    opts: &ClientOptions,
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    let mut resp = request_with(addr, method, path, body, opts)?;
    for attempt in 0..policy.retries {
        if resp.status != 503 {
            break;
        }
        std::thread::sleep(policy.delay(attempt, retry_after_s(&resp)));
        resp = request_with(addr, method, path, body, opts)?;
    }
    Ok(resp)
}

/// One-shot convenience: connect, send, read, close.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.request(method, path, body)
}

/// One-shot convenience with explicit timeouts.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    opts: &ClientOptions,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect_with(addr, opts)?.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_jitters_and_caps() {
        let policy = RetryPolicy::with_retries(8);
        let mut prev = Duration::ZERO;
        for attempt in 0..8 {
            let d = policy.delay(attempt, None);
            let nominal = policy.base.saturating_mul(1 << attempt).min(policy.cap);
            assert!(d >= nominal.mul_f64(0.5), "attempt {attempt}: {d:?}");
            assert!(d < nominal, "jitter factor is strictly below 1.0");
            assert!(d <= policy.cap);
            if nominal < policy.cap {
                assert!(
                    d > prev.mul_f64(0.5),
                    "roughly increasing: {d:?} vs {prev:?}"
                );
            }
            prev = d;
        }
        // Deterministic: the same policy yields the same schedule.
        assert_eq!(policy.delay(3, None), policy.delay(3, None));
    }

    #[test]
    fn retry_after_hint_wins_when_longer() {
        let policy = RetryPolicy::default();
        assert!(policy.delay(0, Some(5)) >= Duration::from_secs(5));
        // A zero hint falls back to the local backoff.
        assert!(policy.delay(0, Some(0)) >= policy.base.mul_f64(0.5));
        let resp = ClientResponse {
            status: 503,
            headers: vec![("retry-after".to_string(), "2".to_string())],
            body: String::new(),
        };
        assert_eq!(retry_after_s(&resp), Some(2));
        let none = ClientResponse {
            status: 200,
            headers: vec![],
            body: String::new(),
        };
        assert_eq!(retry_after_s(&none), None);
    }
}
