//! The sharded LRU result cache keyed by canonical scenarios.
//!
//! Each shard is an independent `Mutex` around a classic linked-list LRU
//! (slab-backed, O(1) get/insert/evict), so concurrent workers touching
//! different orbits never contend. Shard selection uses the key's own
//! deterministic [`CacheKey::mix`] rather than the process-seeded
//! standard hasher, so a key lands on the same shard in every run.
//!
//! Misses are **single-flight**: the first thread to miss a key claims
//! it and computes; threads missing the same key meanwhile block on the
//! shard's condvar and pick up the finished value instead of re-running
//! the engine. This is what turns a thundering herd of symmetric twins
//! into one engine run. (Correctness never depends on it — values are
//! pure functions of their key — it only avoids duplicate work.)

use rvz_experiments::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Aggregate cache counters (monotone; read by `/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Lookups that waited for a concurrent computation of the same key
    /// (single-flight joins; counted as hits as well).
    pub joined: u64,
    /// Entries currently resident.
    pub entries: usize,
}

const NIL: u32 = u32::MAX;

struct Node<V> {
    key: CacheKey,
    value: V,
    prev: u32,
    next: u32,
}

/// One LRU shard: slab of nodes + intrusive recency list + index.
struct Shard<V> {
    map: HashMap<CacheKey, u32>,
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    head: u32, // most recent
    tail: u32, // least recent
    pending: Vec<CacheKey>,
}

impl<V: Clone> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            pending: Vec::new(),
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<V> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.nodes[i as usize].value.clone())
    }

    /// Inserts (or refreshes) a value; returns `true` if an eviction
    /// occurred.
    fn insert(&mut self, key: CacheKey, value: V, capacity: usize) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i as usize].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "capacity ≥ 1 and map non-empty");
            self.unlink(lru);
            let old = &self.nodes[lru as usize];
            self.map.remove(&old.key);
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }
}

/// The sharded, single-flight LRU cache.
pub struct ResultCache<V> {
    shards: Vec<(Mutex<Shard<V>>, Condvar)>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    joined: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// Creates a cache holding at most `capacity` entries across
    /// `shards` shards (both floored at 1; shards rounded to a power of
    /// two).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let shard_capacity = capacity.max(1).div_ceil(shards);
        ResultCache {
            shards: (0..shards)
                .map(|_| (Mutex::new(Shard::new()), Condvar::new()))
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            joined: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &(Mutex<Shard<V>>, Condvar) {
        let i = (key.mix() as usize) & (self.shards.len() - 1);
        &self.shards[i]
    }

    /// Looks the key up, refreshing recency; counts a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let value = self.probe(key);
        match value {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    /// Looks the key up (refreshing recency) **without** touching the
    /// hit/miss counters — for batch resolvers that dedup misses and
    /// account for them via [`ResultCache::record`] so `misses` keeps
    /// meaning "engine runs".
    pub fn probe(&self, key: &CacheKey) -> Option<V> {
        let (lock, _) = self.shard(key);
        lock.lock().expect("cache shard poisoned").get(key)
    }

    /// Adds to the hit/miss counters in bulk (the batch-resolver
    /// companion of [`ResultCache::probe`]).
    pub fn record(&self, hits: u64, misses: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Inserts a computed value.
    pub fn insert(&self, key: CacheKey, value: V) {
        let (lock, cvar) = self.shard(&key);
        let evicted = {
            let mut shard = lock.lock().expect("cache shard poisoned");
            shard.pending.retain(|k| k != &key);
            shard.insert(key, value, self.shard_capacity)
        };
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        cvar.notify_all();
    }

    /// Returns the cached value or computes it exactly once across all
    /// concurrent callers of the same key (single-flight).
    ///
    /// The boolean is `true` when the value came from the cache (either
    /// resident or joined from a concurrent computation) and `false`
    /// when this caller ran `compute`.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: CacheKey, compute: F) -> (V, bool) {
        self.get_or_compute_if(key, compute, |_| true)
    }

    /// [`ResultCache::get_or_compute`] with a cacheability predicate:
    /// the computed value is returned to the caller either way, but is
    /// only *inserted* when `cacheable` approves it (e.g. a
    /// deadline-exhausted engine outcome is an artifact of this
    /// request's wall clock and must never answer a future request).
    ///
    /// When the value is rejected the single-flight claim is released
    /// and waiters retry — each then computes under its own conditions
    /// instead of inheriting a non-reusable result.
    pub fn get_or_compute_if<F, P>(&self, key: CacheKey, compute: F, cacheable: P) -> (V, bool)
    where
        F: FnOnce() -> V,
        P: FnOnce(&V) -> bool,
    {
        let (lock, cvar) = self.shard(&key);
        {
            let mut shard = lock.lock().expect("cache shard poisoned");
            let mut waited = false;
            loop {
                if let Some(v) = shard.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.joined.fetch_add(1, Ordering::Relaxed);
                    }
                    return (v, true);
                }
                if shard.pending.contains(&key) {
                    // Someone else is computing this key: wait and retry.
                    waited = true;
                    shard = cvar.wait(shard).expect("cache shard poisoned");
                    continue;
                }
                shard.pending.push(key);
                break;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // If `compute` panics, release the claim so waiters retry
        // instead of hanging forever.
        struct Unclaim<'a, V: Clone> {
            cache: &'a ResultCache<V>,
            key: CacheKey,
            armed: bool,
        }
        impl<V: Clone> Drop for Unclaim<'_, V> {
            fn drop(&mut self) {
                if self.armed {
                    let (lock, cvar) = self.cache.shard(&self.key);
                    lock.lock()
                        .expect("cache shard poisoned")
                        .pending
                        .retain(|k| k != &self.key);
                    cvar.notify_all();
                }
            }
        }
        let mut guard = Unclaim {
            cache: self,
            key,
            armed: true,
        };
        let value = compute();
        if cacheable(&value) {
            guard.armed = false;
            self.insert(key, value.clone());
        } else {
            // Let the guard release the claim: waiters wake, find the
            // key absent, and run their own computation.
            drop(guard);
        }
        (value, false)
    }

    /// Exports every resident entry in recency order: least- to
    /// most-recently-used within each shard, shards in index order.
    ///
    /// Re-inserting the entries in this exact order into an equally
    /// configured cache reproduces every shard's LRU list (keys land on
    /// their shard by [`CacheKey::mix`], and within a shard the last
    /// insert is the most recent) — the property the snapshot
    /// save→load fidelity tests assert. Pending single-flight claims
    /// live outside the node slab and are excluded by construction;
    /// counters are not part of the export (they describe this
    /// process's history, not the cache contents).
    pub fn export(&self) -> Vec<(CacheKey, V)> {
        let mut out = Vec::new();
        for (lock, _) in &self.shards {
            let shard = lock.lock().expect("cache shard poisoned");
            let mut i = shard.tail;
            while i != NIL {
                let node = &shard.nodes[i as usize];
                out.push((node.key, node.value.clone()));
                i = node.prev;
            }
        }
        out
    }

    /// A consistent snapshot of the counters plus resident-entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|(lock, _)| lock.lock().expect("cache shard poisoned").map.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_experiments::{canonicalize, ScenarioGrid, DEFAULT_GRID};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn keys(n: usize) -> Vec<CacheKey> {
        let speeds: Vec<f64> = (0..n).map(|i| 0.25 + 0.015625 * i as f64).collect();
        ScenarioGrid::new()
            .speeds(&speeds)
            .build()
            .iter()
            .map(|s| canonicalize(s, DEFAULT_GRID).key)
            .collect()
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(16, 2);
        let k = keys(1)[0];
        assert_eq!(cache.get(&k), None);
        cache.insert(k, 42u64);
        assert_eq!(cache.get(&k), Some(42));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard, capacity 2.
        let cache = ResultCache::new(2, 1);
        let ks = keys(3);
        cache.insert(ks[0], 0u64);
        cache.insert(ks[1], 1u64);
        assert_eq!(cache.get(&ks[0]), Some(0), "refresh k0");
        cache.insert(ks[2], 2u64); // must evict k1, the stalest
        assert_eq!(cache.get(&ks[1]), None);
        assert_eq!(cache.get(&ks[0]), Some(0));
        assert_eq!(cache.get(&ks[2]), Some(2));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn reinserting_a_key_updates_in_place() {
        let cache = ResultCache::new(2, 1);
        let k = keys(1)[0];
        cache.insert(k, 1u64);
        cache.insert(k, 2u64);
        assert_eq!(cache.get(&k), Some(2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn eviction_churn_reuses_slots() {
        let cache = ResultCache::new(4, 1);
        let ks = keys(64);
        for (i, k) in ks.iter().enumerate() {
            cache.insert(*k, i as u64);
        }
        // Only the four most recent survive.
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(cache.get(k).is_some(), i >= 60, "key {i}");
        }
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(cache.stats().evictions, 60);
    }

    #[test]
    fn single_flight_computes_once_under_contention() {
        let cache = Arc::new(ResultCache::new(64, 4));
        let k = keys(1)[0];
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                let (v, _) = cache.get_or_compute(k, || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    7u64
                });
                v
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "engine ran once");
    }

    #[test]
    fn export_preserves_recency_and_reimport_reproduces_eviction_order() {
        // Single shard so the recency order is globally observable.
        let cache = ResultCache::new(4, 1);
        let ks = keys(5);
        for (i, k) in ks.iter().enumerate().take(4) {
            cache.insert(*k, i as u64);
        }
        // Refresh k0: eviction order becomes k1, k2, k3, k0.
        assert_eq!(cache.get(&ks[0]), Some(0));
        let exported = cache.export();
        assert_eq!(
            exported.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1, 2, 3, 0],
            "export walks least- to most-recent"
        );

        // Re-import into a fresh cache and push one more key: the same
        // entry (k1, the stalest) must fall out.
        let restored = ResultCache::new(4, 1);
        for (k, v) in exported {
            restored.insert(k, v);
        }
        restored.insert(ks[4], 4u64);
        assert_eq!(restored.get(&ks[1]), None, "k1 was the LRU on both sides");
        for (i, k) in ks.iter().enumerate() {
            if i != 1 {
                assert_eq!(restored.get(k), Some(i as u64), "key {i}");
            }
        }
    }

    #[test]
    fn export_skips_inflight_single_flight_claims() {
        let cache = Arc::new(ResultCache::new(16, 1));
        let ks = keys(2);
        cache.insert(ks[0], 1u64);
        let started = Arc::new(std::sync::Barrier::new(2));
        let worker = {
            let cache = Arc::clone(&cache);
            let started = Arc::clone(&started);
            let key = ks[1];
            std::thread::spawn(move || {
                cache.get_or_compute(key, || {
                    started.wait();
                    // Hold the claim open while the main thread exports.
                    std::thread::sleep(std::time::Duration::from_millis(60));
                    2u64
                })
            })
        };
        started.wait();
        let exported = cache.export();
        assert_eq!(
            exported.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![ks[0]],
            "a pending claim is not an entry and must never be exported"
        );
        assert_eq!(worker.join().unwrap(), (2, false));
        assert_eq!(cache.export().len(), 2, "after completion it is");
    }

    #[test]
    fn shard_selection_is_deterministic() {
        let cache = ResultCache::<u64>::new(128, 8);
        for k in keys(16) {
            let a = (k.mix() as usize) & (cache.shards.len() - 1);
            let b = (k.mix() as usize) & (cache.shards.len() - 1);
            assert_eq!(a, b);
        }
    }
}
