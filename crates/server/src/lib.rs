//! # rvz-server
//!
//! `rvz serve`: a zero-dependency concurrent query service over the
//! rendezvous engine, with a **symmetry-canonicalized result cache**.
//!
//! The ROADMAP's north star is serving heavy query traffic, and the
//! engine (after the cursor and envelope-pruning work) answers a single
//! scenario fast; the remaining lever is recognizing that most of a
//! realistic query stream is *redundant*. The paper's own theory says
//! why: scenarios differing only in the unknown attributes are related
//! by exact symmetries — role swap with the joint speed/clock/distance
//! rescale, chirality reflection, placement gauges — so a diverse
//! stream collapses onto few orbits. The service keys its cache by the
//! canonical orbit representative ([`rvz_experiments::canonicalize`])
//! and transports the one cached answer along the symmetry to every
//! member of the orbit.
//!
//! ```text
//! TcpListener ── accept thread ──► mpsc queue ──► worker pool
//!                                                    │ parse HTTP + JSON  (http)
//!                                                    ▼
//!                                     Scenario ── canonicalize ──► CacheKey
//!                                                    │                 │
//!                                                    ▼                 ▼
//!                                          inverse transform ◄── sharded LRU
//!                                                    ▲                 │ miss
//!                                                    │                 ▼
//!                                                    └──────── engine (run_sweep)
//! ```
//!
//! Module map: [`http`] (wire format), [`cache`] (sharded LRU +
//! single-flight), [`service`] (endpoints, admission control and the
//! determinism contract), [`server`] (listener, bounded connection
//! queue, workers, load shedding, graceful drain), [`client`] (the
//! blocking client used by `rvz client`, the CI smoke and
//! `rvz loadtest`), [`faults`] (deterministic seeded fault injection
//! for the overload/panic-isolation test suite), [`snapshot`]
//! (crash-safe cache snapshots for warm restarts).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod client;
pub mod faults;
pub mod http;
pub mod server;
pub mod service;
pub mod snapshot;

pub use cache::{CacheStats, ResultCache};
pub use client::{request, ClientOptions, ClientResponse, HttpClient, RetryPolicy};
pub use faults::{FaultPlan, FaultSite, FaultState};
pub use http::{Request, Response};
pub use server::{spawn, spawn_with, ServerHandle, ServerOptions};
pub use service::{Control, Service, ServiceOptions};
pub use snapshot::{
    engine_fingerprint, read_snapshot, write_snapshot, RestoreOutcome, SnapshotData,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
