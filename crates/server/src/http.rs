//! A minimal HTTP/1.1 implementation on blocking `std::io` streams.
//!
//! Only what the query service needs, hand-rolled so the workspace stays
//! dependency-free: request-line + header parsing, `Content-Length`
//! bodies, keep-alive connection reuse, and deterministic response
//! serialization. No chunked transfer, no TLS, no percent-decoding
//! beyond `%XX` in query values — the service speaks plain JSON over
//! loopback-style links.
//!
//! Input limits ([`MAX_HEADER_BYTES`], [`MAX_BODY_BYTES`]) bound memory
//! per connection so a misbehaving client cannot balloon a worker.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (a `/sweep` batch of ~10⁴ scenarios
/// fits comfortably).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// The path component, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names mapped to their raw values.
    pub headers: HashMap<String, String>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query value under `key`, if any.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked to close the connection after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection before sending a request line
    /// (normal at the end of a keep-alive session).
    ConnectionClosed,
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// A size limit was exceeded.
    TooLarge(&'static str),
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::ConnectionClosed => write!(f, "connection closed"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::TooLarge(what) => write!(f, "request {what} too large"),
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

fn malformed(m: impl Into<String>) -> RequestError {
    RequestError::Malformed(m.into())
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// [`RequestError::ConnectionClosed`] on a clean EOF before any byte of
/// the request line; the other variants for protocol violations, limit
/// overruns and transport failures.
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Request, RequestError> {
    let mut header_bytes = 0usize;
    let request_line = match read_line(stream, &mut header_bytes)? {
        None => return Err(RequestError::ConnectionClosed),
        Some(line) if line.is_empty() => return Err(malformed("empty request line")),
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| malformed("missing path"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version `{version}`")));
    }

    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = parse_query(query_string);

    let mut headers = HashMap::new();
    loop {
        let line = read_line(stream, &mut header_bytes)?
            .ok_or_else(|| malformed("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed(format!("header without colon: `{line}`")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let body = match headers.get("content-length") {
        None => Vec::new(),
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| malformed("invalid content-length"))?;
            if len > MAX_BODY_BYTES {
                return Err(RequestError::TooLarge("body"));
            }
            let mut body = vec![0u8; len];
            stream.read_exact(&mut body)?;
            body
        }
    };

    Ok(Request {
        method,
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line; `None` on clean EOF at a
/// line boundary.
fn read_line<R: BufRead>(
    stream: &mut R,
    header_bytes: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let available = stream.fill_buf()?;
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(malformed("connection closed mid-line"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        line.extend_from_slice(&available[..take]);
        stream.consume(take);
        *header_bytes += take;
        if *header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge("header"));
        }
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            return Ok(Some(
                String::from_utf8(line).map_err(|_| malformed("non-UTF-8 header bytes"))?,
            ));
        }
    }
}

/// Parses `a=1&b=2` with minimal `%XX` and `+` decoding.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body (JSON everywhere except the `/metrics` exposition).
    pub body: String,
    /// The `Content-Type` value (JSON unless built via
    /// [`Response::ok_text`]).
    pub content_type: &'static str,
    /// Extra `name: value` headers (e.g. the cache marker).
    pub extra_headers: Vec<(String, String)>,
    /// Whether to advertise `Connection: close`.
    pub close: bool,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn ok(body: String) -> Response {
        Response {
            status: 200,
            body,
            content_type: "application/json",
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A 200 response with a plain-text body under an explicit content
    /// type (the Prometheus exposition on `/metrics`).
    pub fn ok_text(body: String, content_type: &'static str) -> Response {
        Response {
            content_type,
            ..Response::ok(body)
        }
    }

    /// An error response carrying `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = rvz_experiments::Json::obj(vec![(
            "error",
            rvz_experiments::Json::Str(message.to_string()),
        )])
        .render();
        Response {
            status,
            body,
            content_type: "application/json",
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response onto the stream (status line,
    /// `Content-Type`, `Content-Length`, extras).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to<W: Write>(&self, stream: &mut W) -> io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        };
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(
            stream,
            "Connection: {}\r\n\r\n",
            if self.close { "close" } else { "keep-alive" }
        )?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let r =
            parse("GET /feasibility?v=0.5&tau=1&label=a+b%21 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/feasibility");
        assert_eq!(r.query_value("v"), Some("0.5"));
        assert_eq!(r.query_value("tau"), Some("1"));
        assert_eq!(r.query_value("label"), Some("a b!"));
        assert_eq!(r.query_value("missing"), None);
        assert!(r.body.is_empty());
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse(
            "POST /sweep HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\n{\"a\":[1,2]}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":[1,2]}");
        assert!(r.wants_close());
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let r = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert!(matches!(parse(""), Err(RequestError::ConnectionClosed)));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nBadHeader\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let huge_header = format!(
            "GET /x HTTP/1.1\r\nPad: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            parse(&huge_header),
            Err(RequestError::TooLarge("header"))
        ));
        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&huge_body),
            Err(RequestError::TooLarge("body"))
        ));
    }

    #[test]
    fn responses_serialize_with_length_and_headers() {
        let mut out = Vec::new();
        Response::ok("{\"ok\":true}".into())
            .header("X-Rvz-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Rvz-Cache: hit\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_responses_carry_a_json_error() {
        let mut out = Vec::new();
        let mut resp = Response::error(404, "no such endpoint");
        resp.close = true;
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"no such endpoint\"}"));
    }
}
