//! Crash-safe cache snapshots: persist the symmetry-canonicalized
//! result cache (and the compiled-program orbit keys) across restarts.
//!
//! ## Why this is sound
//!
//! A [`CacheKey`] *is* the canonical scenario — the exact bit patterns
//! of every attribute of the orbit representative — and a cached
//! [`SimOutcome`] is a pure function of that key under the service's
//! engine options. A snapshot therefore never goes stale: restoring an
//! entry is byte-identical to recomputing it, **provided the engine
//! configuration matches**. The configuration is pinned by an engine
//! fingerprint in the snapshot's first record; a mismatch (different
//! grid, horizon, tolerance, step budget, prune flag or piece budget)
//! cold-starts rather than serving answers computed under different
//! options.
//!
//! ## Format
//!
//! ```text
//! "RVZSNAP1"  magic, 8 bytes
//! version     u32 LE
//! record*     len u32 LE | crc32 u32 LE | payload (len bytes)
//! ```
//!
//! Payload kinds (first byte): `0` = meta (engine fingerprint plus
//! the expected record counts, must be the first record), `1` = result
//! entry (key + outcome, fixed width), `2` = program orbit key. The
//! counts let a restore tell a complete-but-small snapshot apart from
//! one truncated exactly at a record boundary (which CRC framing alone
//! cannot see). Records appear in cache recency order
//! (least- to most-recent per shard), so replaying inserts reproduces
//! every shard's LRU list exactly.
//!
//! ## Crash consistency
//!
//! Writing goes through [`DurableFile`]: temp sibling + `fsync` +
//! atomic rename, so a reader only ever sees a complete previous
//! snapshot or a complete new one. Reading still assumes nothing: a
//! torn, truncated, bit-flipped or version-skewed file is detected
//! per-record (length framing + CRC), the valid prefix is salvaged,
//! and the outcome is reported as `cold`, `warm` or `salvaged n` — the
//! server never refuses to start over a bad snapshot.

use rvz_experiments::durable::{
    crc32, fnv1a64, read_file_faulty, DiskFaults, DurableFile, FNV_OFFSET_BASIS,
};
use rvz_experiments::{Algorithm, CacheKey};
use rvz_model::Chirality;
use rvz_sim::SimOutcome;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RVZSNAP1";

/// Snapshot format version (bumped on any layout change).
pub const SNAPSHOT_VERSION: u32 = 1;

const KIND_META: u8 = 0;
const KIND_RESULT: u8 = 1;
const KIND_PROGRAM: u8 = 2;

/// Everything a snapshot persists: result-cache entries and the
/// program cache's orbit keys, each in recency order (least- to
/// most-recently-used per shard).
///
/// Program *bodies* are deliberately not persisted — a compiled
/// program is large and cheap to re-stream lazily, and the key alone
/// restores the cache's shape (entry count, recency, capacity
/// pressure). Restored program slots hold `None` until the first miss
/// re-streams them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotData {
    /// Result-cache entries. Deadline outcomes are never included (they
    /// are wall-clock artifacts and are never cached to begin with).
    pub results: Vec<(CacheKey, SimOutcome)>,
    /// Program-cache orbit keys.
    pub program_keys: Vec<CacheKey>,
}

/// How a boot-time restore went; reported in the banner and `/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// Nothing restored. The reason distinguishes the benign case (no
    /// snapshot yet) from rejection (corrupt header, version skew,
    /// fingerprint mismatch).
    Cold {
        /// Why the restore produced nothing.
        reason: String,
    },
    /// The whole snapshot decoded cleanly.
    Warm {
        /// Result entries restored.
        results: usize,
        /// Program orbit keys restored.
        programs: usize,
    },
    /// A valid prefix was restored; the damaged tail was discarded.
    Salvaged {
        /// Result entries restored.
        results: usize,
        /// Program orbit keys restored.
        programs: usize,
        /// Bytes discarded after the last valid record.
        dropped_bytes: usize,
    },
}

impl RestoreOutcome {
    /// The compact `cold|warm|salvaged {n}` label used by the boot
    /// banner and `/stats`.
    pub fn label(&self) -> String {
        match self {
            RestoreOutcome::Cold { .. } => "cold".to_string(),
            RestoreOutcome::Warm { .. } => "warm".to_string(),
            RestoreOutcome::Salvaged {
                results, programs, ..
            } => format!("salvaged {}", results + programs),
        }
    }

    /// Entries restored (results + program keys).
    pub fn entries(&self) -> usize {
        match self {
            RestoreOutcome::Cold { .. } => 0,
            RestoreOutcome::Warm { results, programs }
            | RestoreOutcome::Salvaged {
                results, programs, ..
            } => results + programs,
        }
    }
}

impl std::fmt::Display for RestoreOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreOutcome::Cold { reason } => write!(f, "cold ({reason})"),
            RestoreOutcome::Warm { results, programs } => {
                write!(f, "warm ({results} results, {programs} program keys)")
            }
            RestoreOutcome::Salvaged {
                results,
                programs,
                dropped_bytes,
            } => write!(
                f,
                "salvaged {} ({results} results, {programs} program keys; \
                 {dropped_bytes} damaged bytes dropped)",
                results + programs
            ),
        }
    }
}

/// Digest of the engine configuration a snapshot's entries were
/// computed under. Anything that can change a cached byte is folded
/// in: the canonicalization grid, the engine window and budgets, the
/// prune flag, and the compiled-path piece budget (compiled and cursor
/// paths agree only to ~1e-6, so byte-identity needs the same path
/// selection).
pub fn engine_fingerprint(
    cache_grid: f64,
    contact: &rvz_sim::ContactOptions,
    compile_pieces: usize,
) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    for x in [
        SNAPSHOT_VERSION as u64,
        cache_grid.to_bits(),
        contact.tolerance.to_bits(),
        contact.horizon.to_bits(),
        contact.max_steps,
        contact.prune as u64,
        compile_pieces as u64,
    ] {
        h = fnv1a64(&x.to_le_bytes(), h);
    }
    h
}

fn push_key(buf: &mut Vec<u8>, key: &CacheKey) {
    buf.push(match key.algorithm {
        Algorithm::WaitAndSearch => 0,
        Algorithm::UniversalSearch => 1,
    });
    buf.push(match key.chirality {
        Chirality::Consistent => 0,
        Chirality::Mirrored => 1,
    });
    for b in key.bits {
        buf.extend_from_slice(&b.to_le_bytes());
    }
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("length checked"))
}

const KEY_BYTES: usize = 2 + 6 * 8;

fn parse_key(buf: &[u8]) -> Option<CacheKey> {
    if buf.len() < KEY_BYTES {
        return None;
    }
    let algorithm = match buf[0] {
        0 => Algorithm::WaitAndSearch,
        1 => Algorithm::UniversalSearch,
        _ => return None,
    };
    let chirality = match buf[1] {
        0 => Chirality::Consistent,
        1 => Chirality::Mirrored,
        _ => return None,
    };
    let mut bits = [0u64; 6];
    for (i, b) in bits.iter_mut().enumerate() {
        *b = read_u64(buf, 2 + 8 * i);
    }
    Some(CacheKey {
        algorithm,
        chirality,
        bits,
    })
}

/// Outcome tag + three fixed-width words. Deadline outcomes have no
/// encoding on purpose: they must never be persisted.
fn push_outcome(buf: &mut Vec<u8>, outcome: &SimOutcome) -> bool {
    let (tag, a, b, steps) = match *outcome {
        SimOutcome::Contact {
            time,
            distance,
            steps,
        } => (0u8, time, distance, steps),
        SimOutcome::Horizon {
            min_distance,
            min_distance_time,
            steps,
        } => (1, min_distance, min_distance_time, steps),
        SimOutcome::StepBudget {
            time,
            min_distance,
            steps,
        } => (2, time, min_distance, steps),
        SimOutcome::Deadline { .. } => return false,
    };
    buf.push(tag);
    buf.extend_from_slice(&a.to_bits().to_le_bytes());
    buf.extend_from_slice(&b.to_bits().to_le_bytes());
    buf.extend_from_slice(&steps.to_le_bytes());
    true
}

const OUTCOME_BYTES: usize = 1 + 3 * 8;

fn parse_outcome(buf: &[u8]) -> Option<SimOutcome> {
    if buf.len() < OUTCOME_BYTES {
        return None;
    }
    let a = f64::from_bits(read_u64(buf, 1));
    let b = f64::from_bits(read_u64(buf, 9));
    let steps = read_u64(buf, 17);
    Some(match buf[0] {
        0 => SimOutcome::Contact {
            time: a,
            distance: b,
            steps,
        },
        1 => SimOutcome::Horizon {
            min_distance: a,
            min_distance_time: b,
            steps,
        },
        2 => SimOutcome::StepBudget {
            time: a,
            min_distance: b,
            steps,
        },
        _ => return None, // Deadline (or garbage) must not be restored.
    })
}

fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes a snapshot to bytes (pure; see [`write_snapshot`] for
/// the durable path).
pub fn encode_snapshot(fingerprint: u64, data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        8 + 4 + (8 + 9) + (8 + 1 + KEY_BYTES + OUTCOME_BYTES) * data.results.len(),
    );
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    let mut meta = vec![KIND_META];
    meta.extend_from_slice(&fingerprint.to_le_bytes());
    let persisted_results = data
        .results
        .iter()
        .filter(|(_, o)| !matches!(o, SimOutcome::Deadline { .. }))
        .count();
    meta.extend_from_slice(&(persisted_results as u32).to_le_bytes());
    meta.extend_from_slice(&(data.program_keys.len() as u32).to_le_bytes());
    push_record(&mut out, &meta);
    let mut payload = Vec::with_capacity(1 + KEY_BYTES + OUTCOME_BYTES);
    for (key, outcome) in &data.results {
        payload.clear();
        payload.push(KIND_RESULT);
        push_key(&mut payload, key);
        if !push_outcome(&mut payload, outcome) {
            continue; // deadline outcome: skip, never persist
        }
        push_record(&mut out, &payload);
    }
    for key in &data.program_keys {
        payload.clear();
        payload.push(KIND_PROGRAM);
        push_key(&mut payload, key);
        push_record(&mut out, &payload);
    }
    out
}

/// Writes a snapshot durably: encode, stage to `<path>.tmp`, `fsync`,
/// atomically rename over `path`.
///
/// # Errors
///
/// On any failure (including injected disk faults) the previous
/// snapshot at `path` is left intact.
pub fn write_snapshot(
    path: &Path,
    fingerprint: u64,
    data: &SnapshotData,
    faults: Option<Arc<DiskFaults>>,
) -> io::Result<()> {
    let bytes = encode_snapshot(fingerprint, data);
    let mut file = DurableFile::create(path, faults)?;
    file.write_all(&bytes)?;
    file.commit()
}

/// Decodes a snapshot image, salvaging the valid record prefix.
pub fn decode_snapshot(bytes: &[u8], fingerprint: u64) -> (SnapshotData, RestoreOutcome) {
    let cold = |reason: &str| {
        (
            SnapshotData::default(),
            RestoreOutcome::Cold {
                reason: reason.to_string(),
            },
        )
    };
    if bytes.len() < 12 {
        return cold("snapshot too short for a header");
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return cold("bad magic (not a snapshot file)");
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if version != SNAPSHOT_VERSION {
        return cold(&format!(
            "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
        ));
    }
    let mut data = SnapshotData::default();
    let mut offset = 12usize;
    let mut first = true;
    let mut clean = true;
    let mut expected = (0usize, 0usize);
    while offset < bytes.len() {
        let Some(payload) = next_record(bytes, &mut offset) else {
            clean = false;
            break;
        };
        let ok = match payload.first() {
            Some(&KIND_META) if first => {
                if payload.len() != 17 {
                    return cold("malformed meta record");
                }
                let stored = read_u64(payload, 1);
                if stored != fingerprint {
                    return cold(
                        "engine fingerprint mismatch (grid or engine options changed); \
                         snapshot entries would not be byte-identical to recompute",
                    );
                }
                expected = (
                    u32::from_le_bytes(payload[9..13].try_into().expect("length checked")) as usize,
                    u32::from_le_bytes(payload[13..17].try_into().expect("length checked"))
                        as usize,
                );
                true
            }
            Some(&KIND_RESULT) if !first => decode_result(payload, &mut data),
            Some(&KIND_PROGRAM) if !first => decode_program(payload, &mut data),
            _ => false,
        };
        if !ok {
            clean = false;
            break;
        }
        first = false;
    }
    if first {
        // Header but no meta record: nothing trustworthy.
        return cold("snapshot holds no meta record");
    }
    if clean && expected == (data.results.len(), data.program_keys.len()) {
        let outcome = RestoreOutcome::Warm {
            results: data.results.len(),
            programs: data.program_keys.len(),
        };
        (data, outcome)
    } else {
        // Either a record failed its frame check, or the file ended
        // cleanly but short of the counts the meta record promised
        // (truncation at a record boundary).
        let outcome = RestoreOutcome::Salvaged {
            results: data.results.len(),
            programs: data.program_keys.len(),
            dropped_bytes: bytes.len() - offset,
        };
        (data, outcome)
    }
}

/// Pulls the next CRC-validated record payload, advancing `offset`
/// only on success (so a salvage can report where the valid prefix
/// ends).
fn next_record<'a>(bytes: &'a [u8], offset: &mut usize) -> Option<&'a [u8]> {
    let at = *offset;
    if bytes.len() - at < 8 {
        return None; // torn length/crc prefix
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("length checked")) as usize;
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("length checked"));
    let start = at + 8;
    let end = start.checked_add(len)?;
    if end > bytes.len() {
        return None; // torn payload
    }
    let payload = &bytes[start..end];
    if crc32(payload) != crc {
        return None; // corruption
    }
    *offset = end;
    Some(payload)
}

fn decode_result(payload: &[u8], data: &mut SnapshotData) -> bool {
    if payload.len() != 1 + KEY_BYTES + OUTCOME_BYTES {
        return false;
    }
    let Some(key) = parse_key(&payload[1..]) else {
        return false;
    };
    let Some(outcome) = parse_outcome(&payload[1 + KEY_BYTES..]) else {
        return false;
    };
    data.results.push((key, outcome));
    true
}

fn decode_program(payload: &[u8], data: &mut SnapshotData) -> bool {
    if payload.len() != 1 + KEY_BYTES {
        return false;
    }
    let Some(key) = parse_key(&payload[1..]) else {
        return false;
    };
    data.program_keys.push(key);
    true
}

/// Reads and decodes the snapshot at `path`, degrading gracefully: any
/// failure (missing file, injected read corruption, torn content)
/// produces a `Cold`/`Salvaged` outcome, never an error — boot must
/// proceed regardless.
pub fn read_snapshot(
    path: &Path,
    fingerprint: u64,
    faults: Option<&Arc<DiskFaults>>,
) -> (SnapshotData, RestoreOutcome) {
    match read_file_faulty(path, faults) {
        Ok(bytes) => decode_snapshot(&bytes, fingerprint),
        Err(e) if e.kind() == io::ErrorKind::NotFound => (
            SnapshotData::default(),
            RestoreOutcome::Cold {
                reason: "no snapshot yet".to_string(),
            },
        ),
        Err(e) => (
            SnapshotData::default(),
            RestoreOutcome::Cold {
                reason: format!("cannot read snapshot: {e}"),
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_experiments::{canonicalize, ScenarioGrid, DEFAULT_GRID};

    fn keys(n: usize) -> Vec<CacheKey> {
        let speeds: Vec<f64> = (0..n).map(|i| 0.25 + 0.015625 * i as f64).collect();
        ScenarioGrid::new()
            .speeds(&speeds)
            .build()
            .iter()
            .map(|s| canonicalize(s, DEFAULT_GRID).key)
            .collect()
    }

    fn sample() -> SnapshotData {
        let ks = keys(5);
        SnapshotData {
            results: vec![
                (
                    ks[0],
                    SimOutcome::Contact {
                        time: 1.25,
                        distance: 0.0078125,
                        steps: 42,
                    },
                ),
                (
                    ks[1],
                    SimOutcome::Horizon {
                        min_distance: 0.5,
                        min_distance_time: 3.5,
                        steps: 1000,
                    },
                ),
                (
                    ks[2],
                    SimOutcome::StepBudget {
                        time: 9.0,
                        min_distance: 0.125,
                        steps: 300_000,
                    },
                ),
            ],
            program_keys: vec![ks[3], ks[4]],
        }
    }

    const FP: u64 = 0xDEAD_BEEF_0BAD_F00D;

    #[test]
    fn round_trip_is_exact_and_warm() {
        let data = sample();
        let bytes = encode_snapshot(FP, &data);
        let (back, outcome) = decode_snapshot(&bytes, FP);
        assert_eq!(back, data, "bit patterns survive exactly");
        assert_eq!(
            outcome,
            RestoreOutcome::Warm {
                results: 3,
                programs: 2
            }
        );
        assert_eq!(outcome.label(), "warm");
        assert_eq!(outcome.entries(), 5);
    }

    #[test]
    fn every_truncation_point_salvages_a_valid_prefix() {
        let data = sample();
        let bytes = encode_snapshot(FP, &data);
        for cut in 0..bytes.len() {
            let (partial, outcome) = decode_snapshot(&bytes[..cut], FP);
            // Salvage must never fabricate entries...
            assert!(partial.results.len() <= data.results.len());
            assert!(partial.program_keys.len() <= data.program_keys.len());
            // ...and every salvaged entry must be a true prefix.
            assert_eq!(partial.results[..], data.results[..partial.results.len()]);
            assert_eq!(
                partial.program_keys[..],
                data.program_keys[..partial.program_keys.len()]
            );
            match outcome {
                RestoreOutcome::Warm { .. } => {
                    assert_eq!(cut, bytes.len(), "only the full file is warm")
                }
                RestoreOutcome::Cold { .. } => assert_eq!(
                    partial.results.len() + partial.program_keys.len(),
                    0,
                    "cold restores nothing"
                ),
                RestoreOutcome::Salvaged { .. } => {}
            }
        }
        // The untruncated file is warm.
        assert!(matches!(
            decode_snapshot(&bytes, FP).1,
            RestoreOutcome::Warm { .. }
        ));
    }

    #[test]
    fn single_bit_corruption_is_caught_at_the_damaged_record() {
        let data = sample();
        let clean = encode_snapshot(FP, &data);
        // Flip a byte inside the *second* result record's payload:
        // header (12) + meta record (8 + 17) + first result record
        // (8 + 1 + KEY_BYTES + OUTCOME_BYTES) puts us at its frame.
        let mut bytes = clean.clone();
        let second_record = 12 + (8 + 17) + (8 + 1 + KEY_BYTES + OUTCOME_BYTES);
        bytes[second_record + 8 + 10] ^= 0x10;
        let (partial, outcome) = decode_snapshot(&bytes, FP);
        match outcome {
            RestoreOutcome::Salvaged {
                results,
                dropped_bytes,
                ..
            } => {
                assert_eq!(
                    results, 1,
                    "the first record survives, the damaged one stops"
                );
                assert!(dropped_bytes > 0);
            }
            other => panic!("expected salvage, got {other:?}"),
        }
        assert_eq!(partial.results[..], data.results[..partial.results.len()]);
        assert!(outcome.label().starts_with("salvaged "));
    }

    #[test]
    fn version_and_fingerprint_skew_cold_start() {
        let data = sample();
        let bytes = encode_snapshot(FP, &data);

        let (d, o) = decode_snapshot(&bytes, FP ^ 1);
        assert_eq!(d, SnapshotData::default());
        assert!(
            matches!(&o, RestoreOutcome::Cold { reason } if reason.contains("fingerprint")),
            "{o:?}"
        );

        let mut skewed = bytes.clone();
        skewed[8] = 0xFF; // version
        let (_, o) = decode_snapshot(&skewed, FP);
        assert!(
            matches!(&o, RestoreOutcome::Cold { reason } if reason.contains("version")),
            "{o:?}"
        );

        let (_, o) = decode_snapshot(b"not a snapshot at all", FP);
        assert!(matches!(&o, RestoreOutcome::Cold { reason } if reason.contains("magic")));
        let (_, o) = decode_snapshot(b"", FP);
        assert!(matches!(o, RestoreOutcome::Cold { .. }));
        assert_eq!(o.label(), "cold");
    }

    #[test]
    fn deadline_outcomes_are_never_encoded() {
        let ks = keys(2);
        let data = SnapshotData {
            results: vec![
                (
                    ks[0],
                    SimOutcome::Deadline {
                        time: 1.0,
                        min_distance: 0.5,
                        steps: 10,
                    },
                ),
                (
                    ks[1],
                    SimOutcome::Contact {
                        time: 2.0,
                        distance: 0.25,
                        steps: 7,
                    },
                ),
            ],
            program_keys: vec![],
        };
        let bytes = encode_snapshot(FP, &data);
        let (back, outcome) = decode_snapshot(&bytes, FP);
        assert_eq!(back.results.len(), 1, "only the contact survives");
        assert!(matches!(back.results[0].1, SimOutcome::Contact { .. }));
        assert!(matches!(outcome, RestoreOutcome::Warm { .. }));
    }

    #[test]
    fn durable_write_then_read_round_trips_and_survives_torn_rename() {
        use rvz_experiments::durable::{DiskFaultPlan, DiskFaultSite};
        let dir = std::env::temp_dir().join(format!(
            "rvz-snapshot-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        let data = sample();
        write_snapshot(&path, FP, &data, None).unwrap();
        let (back, outcome) = read_snapshot(&path, FP, None);
        assert_eq!(back, data);
        assert!(matches!(outcome, RestoreOutcome::Warm { .. }));

        // A torn rename during the *next* snapshot keeps the old one.
        let faults = Arc::new(DiskFaults::new(DiskFaultPlan {
            seed: 5,
            torn_rename: 1.0,
            limit: 1,
            ..DiskFaultPlan::default()
        }));
        let bigger = SnapshotData {
            program_keys: keys(8),
            ..data.clone()
        };
        assert!(write_snapshot(&path, FP, &bigger, Some(Arc::clone(&faults))).is_err());
        assert_eq!(faults.injected(DiskFaultSite::TornRename), 1);
        let (back, outcome) = read_snapshot(&path, FP, None);
        assert_eq!(back, data, "previous snapshot intact after the fault");
        assert!(matches!(outcome, RestoreOutcome::Warm { .. }));

        // Missing file is a benign cold start.
        let (_, outcome) = read_snapshot(&dir.join("absent.snap"), FP, None);
        assert!(
            matches!(&outcome, RestoreOutcome::Cold { reason } if reason.contains("no snapshot")),
            "{outcome:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_covers_every_engine_knob() {
        let contact = rvz_sim::ContactOptions::default();
        let base = engine_fingerprint(DEFAULT_GRID, &contact, 1024);
        assert_eq!(base, engine_fingerprint(DEFAULT_GRID, &contact, 1024));
        assert_ne!(base, engine_fingerprint(DEFAULT_GRID / 2.0, &contact, 1024));
        assert_ne!(base, engine_fingerprint(DEFAULT_GRID, &contact, 0));
        for mutate in [
            |c: &mut rvz_sim::ContactOptions| c.tolerance *= 2.0,
            |c: &mut rvz_sim::ContactOptions| c.horizon += 1.0,
            |c: &mut rvz_sim::ContactOptions| c.max_steps += 1,
            |c: &mut rvz_sim::ContactOptions| c.prune = !c.prune,
        ] {
            let mut other = contact;
            mutate(&mut other);
            assert_ne!(base, engine_fingerprint(DEFAULT_GRID, &other, 1024));
        }
    }
}
