//! The TCP front end: listener, worker pool, graceful shutdown.
//!
//! One dedicated accept thread pushes connections onto an `mpsc`
//! channel; a fixed pool of workers pops them and runs each connection's
//! keep-alive loop to completion. Shutdown (a `POST /shutdown` request,
//! or [`ServerHandle::shutdown`]) is *graceful*: the flag flips, the
//! accept thread is woken by a loopback connection and stops, workers
//! finish the request in flight (answering it with `Connection: close`)
//! and drain, and [`ServerHandle::join`] returns once every thread has
//! exited. Connections still queued but never started are closed
//! unserved — their clients see a clean EOF and can retry elsewhere.

use crate::http::{read_request, RequestError, Response};
use crate::service::{Control, Service};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read timeout: a stalled peer cannot pin a worker
/// forever (the keep-alive loop closes the connection on expiry).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A running server; dropping the handle does *not* stop the server —
/// call [`ServerHandle::shutdown`] or send `POST /shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves `--port 0` to the ephemeral
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process inspection in tests and the
    /// loadtest harness).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Triggers graceful shutdown and waits for every thread to exit.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
        self.join();
    }

    /// Waits for the server to stop (after an external `/shutdown`).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// `true` once shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Binds `addr` and spawns the accept thread plus `workers` connection
/// handlers (floored at 1).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, service: Service, workers: usize) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let service = Arc::new(service);
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            loop {
                // Holding the lock only for the pop keeps workers
                // independent while serving.
                let stream = rx.lock().expect("connection queue poisoned").recv();
                match stream {
                    Ok(stream) => {
                        if shutdown.load(Ordering::SeqCst) {
                            // Drain unserved connections on shutdown.
                            continue;
                        }
                        serve_connection(stream, &service, &shutdown, local);
                    }
                    Err(_) => return, // accept thread gone and queue empty
                }
            }
        }));
    }

    {
        let shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break; // the wake-up connection (or any later one)
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure; keep listening.
                    }
                }
            }
            // Dropping `tx` lets workers drain and exit.
        }));
    }

    Ok(ServerHandle {
        addr: local,
        service,
        shutdown,
        threads,
    })
}

/// Runs one connection's keep-alive loop.
fn serve_connection(
    stream: TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(RequestError::ConnectionClosed) => return,
            Err(RequestError::Io(_)) => return, // timeout or reset
            Err(RequestError::TooLarge(what)) => {
                let mut resp = Response::error(413, &format!("request {what} too large"));
                resp.close = true;
                let _ = resp.write_to(&mut writer);
                return;
            }
            Err(e @ RequestError::Malformed(_)) => {
                let mut resp = Response::error(400, &e.to_string());
                resp.close = true;
                let _ = resp.write_to(&mut writer);
                return;
            }
        };
        let client_close = request.wants_close();
        let (mut response, control) = service.handle(&request);
        let shutting_down = control == Control::Shutdown || shutdown.load(Ordering::SeqCst);
        response.close = response.close || client_close || shutting_down;
        if response.write_to(&mut writer).is_err() {
            return;
        }
        if control == Control::Shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake_accept(local);
        }
        if response.close {
            return;
        }
    }
}

/// Unblocks the accept loop after the shutdown flag flips.
fn wake_accept(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}
