//! The TCP front end: listener, worker pool, admission control,
//! graceful shutdown.
//!
//! One dedicated accept thread pushes connections onto an `mpsc`
//! channel; a fixed pool of workers pops them and runs each connection's
//! keep-alive loop to completion. The queue between them is **bounded**
//! ([`ServerOptions::queue_depth`]): when it is full the accept thread
//! *sheds* the connection with `503 Service Unavailable` +
//! `Retry-After` instead of queueing it behind an unbounded backlog —
//! under overload clients get a fast, explicit signal rather than a
//! slow timeout.
//!
//! Workers are **panic-isolated**: a request handler that panics costs
//! that request a `500` (with `Connection: close`) but never a worker
//! thread, and a worker that dies while holding the queue lock leaves a
//! *poisoned* mutex that the surviving workers recover from instead of
//! cascading (`PoisonError::into_inner` — the queue itself is an `mpsc`
//! receiver whose state cannot be corrupted by an interrupted pop).
//!
//! Shutdown (a `POST /shutdown` request, or [`ServerHandle::shutdown`])
//! is *graceful with a deadline*: the flag flips, the accept thread is
//! woken by a loopback connection and stops, workers finish the request
//! in flight (answering it with `Connection: close`) and drain, and
//! [`ServerHandle::join`] returns once every thread has exited — or
//! after [`ServerOptions::drain`], detaching whatever is still wedged
//! (`join` returns `false` in that case). Connections still queued but
//! never started are closed unserved — their clients see a clean EOF
//! and can retry elsewhere.

use crate::faults::{FaultPlan, FaultSite, FaultState};
use crate::http::{read_request, RequestError, Response};
use crate::service::{Control, Service};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection read timeout: a stalled peer cannot pin a worker
/// forever (the keep-alive loop closes the connection on expiry).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Tuning for [`spawn_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerOptions {
    /// Connection-handler threads (floored at 1).
    pub workers: usize,
    /// Maximum connections admitted but not yet picked up by a worker;
    /// beyond it the accept thread sheds with `503` + `Retry-After`
    /// (floored at 1).
    pub queue_depth: usize,
    /// How long [`ServerHandle::join`] waits for workers to drain after
    /// shutdown before detaching them.
    pub drain: Duration,
    /// Deterministic fault injection (tests/CI only; `None` in
    /// production costs one null check per site).
    pub faults: Option<FaultPlan>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 4,
            queue_depth: 1024,
            drain: Duration::from_secs(5),
            faults: None,
        }
    }
}

/// A running server; dropping the handle does *not* stop the server —
/// call [`ServerHandle::shutdown`] or send `POST /shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    shed: Arc<AtomicU64>,
    drain: Duration,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves `--port 0` to the ephemeral
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process inspection in tests and the
    /// loadtest harness).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Connections shed at the accept queue (503 before any worker).
    pub fn shed_connections(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Triggers graceful shutdown and waits for the drain; returns
    /// `true` when every thread exited within the drain deadline.
    pub fn shutdown(self) -> bool {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
        self.join()
    }

    /// Waits for the server to stop (after an external `/shutdown`).
    ///
    /// Blocks indefinitely while the server is simply alive; once
    /// shutdown is initiated the workers get [`ServerOptions::drain`]
    /// to finish their requests in flight. Returns `true` on a clean
    /// drain, `false` if any thread had to be detached (it dies with
    /// the process).
    pub fn join(mut self) -> bool {
        // The accept thread (pushed last) exits promptly once shutdown
        // is initiated; waiting on it without a deadline is "the server
        // is alive", not a drain.
        if let Some(accept) = self.threads.pop() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + self.drain;
        let mut clean = true;
        for t in self.threads {
            while !t.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if t.is_finished() {
                let _ = t.join();
            } else {
                clean = false; // detached: reclaimed at process exit
            }
        }
        clean
    }

    /// `true` once shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Binds `addr` and spawns the accept thread plus `workers` connection
/// handlers (floored at 1) with default admission and drain settings.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, service: Service, workers: usize) -> std::io::Result<ServerHandle> {
    spawn_with(
        addr,
        service,
        &ServerOptions {
            workers,
            ..ServerOptions::default()
        },
    )
}

/// Binds `addr` and spawns the accept thread plus the worker pool under
/// explicit [`ServerOptions`].
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn_with(
    addr: &str,
    service: Service,
    opts: &ServerOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let service = Arc::new(service);
    let shutdown = Arc::new(AtomicBool::new(false));
    let shed = Arc::new(AtomicU64::new(0));
    let queued = Arc::new(AtomicUsize::new(0));
    // Let `/stats` and `/metrics` read the accept-queue depth and the
    // queue-shed count without plumbing the handle into the service.
    service.attach_server_gauges(Arc::clone(&queued), Arc::clone(&shed));
    let workers = opts.workers.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let faults = opts
        .faults
        .filter(|p| p.is_active())
        .map(|p| Arc::new(FaultState::new(p)));

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let queued = Arc::clone(&queued);
        let faults = faults.clone();
        threads.push(std::thread::spawn(move || {
            loop {
                // Holding the lock only for the pop keeps workers
                // independent while serving. A sibling that panicked
                // mid-pop poisons the mutex; the receiver underneath is
                // still consistent, so recover rather than cascade.
                let stream = {
                    let queue = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    let stream = queue.recv();
                    if stream.is_ok() {
                        queued.fetch_sub(1, Ordering::SeqCst);
                        if let Some(f) = &faults {
                            if f.fires(FaultSite::WorkerPanic) {
                                panic!("injected fault: worker panic while holding the queue lock");
                            }
                        }
                    }
                    stream
                };
                match stream {
                    Ok(stream) => {
                        if shutdown.load(Ordering::SeqCst) {
                            // Drain unserved connections on shutdown.
                            continue;
                        }
                        serve_connection(stream, &service, &shutdown, local, faults.as_deref());
                    }
                    Err(_) => return, // accept thread gone and queue empty
                }
            }
        }));
    }

    {
        let shutdown = Arc::clone(&shutdown);
        let shed = Arc::clone(&shed);
        let queued = Arc::clone(&queued);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break; // the wake-up connection (or any later one)
                }
                match stream {
                    Ok(stream) => {
                        // Reserve a queue slot; on overflow shed the
                        // connection right here with an explicit 503
                        // instead of letting the backlog grow without
                        // bound.
                        if queued.fetch_add(1, Ordering::SeqCst) >= queue_depth {
                            queued.fetch_sub(1, Ordering::SeqCst);
                            shed.fetch_add(1, Ordering::Relaxed);
                            rvz_obs::counter!("rvz_shed_total", "cause" => "queue").inc();
                            shed_connection(stream);
                            continue;
                        }
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure; keep listening.
                    }
                }
            }
            // Dropping `tx` lets workers drain and exit.
        }));
    }

    Ok(ServerHandle {
        addr: local,
        service,
        shutdown,
        shed,
        drain: opts.drain,
        threads,
    })
}

/// Answers an over-admission connection with `503` + `Retry-After` and
/// closes it. Runs on the accept thread, so every I/O step is bounded
/// by a short timeout — a slow peer must not stall accepting.
fn shed_connection(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut resp = Response::error(503, "server overloaded: connection queue full");
    resp = resp.header("Retry-After", "1");
    resp.close = true;
    let mut stream = stream;
    if resp.write_to(&mut stream).is_err() {
        return;
    }
    // Lingering close: the client has (or is about to have) request
    // bytes in flight that nobody will read. Closing with unread data
    // in the receive buffer makes the kernel send RST, which can
    // destroy the 503 before the client reads it — so signal FIN,
    // then drain until the peer closes (bounded by the read timeout
    // and a hard deadline).
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 512];
    while let Ok(n) = std::io::Read::read(&mut stream, &mut sink) {
        if n == 0 || Instant::now() >= deadline {
            break;
        }
    }
}

/// Runs one connection's keep-alive loop.
fn serve_connection(
    stream: TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
    local: SocketAddr,
    faults: Option<&FaultState>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(RequestError::ConnectionClosed) => return,
            Err(RequestError::Io(_)) => return, // timeout or reset
            Err(RequestError::TooLarge(what)) => {
                let mut resp = Response::error(413, &format!("request {what} too large"));
                resp.close = true;
                let _ = resp.write_to(&mut writer);
                return;
            }
            Err(e @ RequestError::Malformed(_)) => {
                let mut resp = Response::error(400, &e.to_string());
                resp.close = true;
                let _ = resp.write_to(&mut writer);
                return;
            }
        };
        let client_close = request.wants_close();
        // Panic isolation: a handler panic costs this request a 500,
        // never the worker. The service holds no lock across `handle`
        // (its cache claims release on unwind), so the shared state
        // stays consistent and `AssertUnwindSafe` is sound.
        let handled =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.handle(&request)));
        let (mut response, control) = match handled {
            Ok(answer) => answer,
            Err(_) => {
                let mut resp = Response::error(500, "internal error: request handler panicked");
                resp.close = true;
                (resp, Control::Continue)
            }
        };
        let shutting_down = control == Control::Shutdown || shutdown.load(Ordering::SeqCst);
        response.close = response.close || client_close || shutting_down;
        if let Some(f) = faults {
            if f.fires(FaultSite::ConnReset) {
                // Injected transport failure: drop the connection with
                // the response unsent (the client sees a truncated
                // stream).
                return;
            }
        }
        if response.write_to(&mut writer).is_err() {
            return;
        }
        if control == Control::Shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake_accept(local);
        }
        if response.close {
            return;
        }
    }
}

/// Unblocks the accept loop after the shutdown flag flips.
fn wake_accept(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}
