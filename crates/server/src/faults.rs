//! Deterministic, seeded fault injection for the serve stack.
//!
//! The overload and panic-isolation guarantees of the server are only
//! worth committing if they are *exercised*: a worker that panics while
//! holding the connection-queue lock, a request handler that panics
//! mid-dispatch, a cache compute that dies, a connection that resets
//! before the response bytes land, an engine that suddenly takes ten
//! times longer. This module provides the injection points for all of
//! those, driven by a single [`FaultPlan`] — a seed plus per-site
//! rates — so a failing run reproduces from its seed alone.
//!
//! The durable-state layer adds four **disk** sites (short write, torn
//! rename, read corruption, fsync failure) whose machinery lives in
//! [`rvz_experiments::durable`] so the sweep checkpoint shares it; here
//! they ride the same spec grammar (`short_write=…`, `torn_rename=…`,
//! `read_corrupt=…`, `fsync_fail=…`, sharing `seed` and `limit`) and
//! surface through [`FaultState::disk`].
//!
//! ## Zero cost when off
//!
//! Every injection point is guarded by an `Option<Arc<FaultState>>`
//! that is `None` in production: the fast path pays one pointer-null
//! check and touches no RNG, no atomics, no clock.
//!
//! ## Determinism
//!
//! Each site keeps its own decision counter; the `n`-th decision at a
//! site is a pure function of `(seed, site, n)` via a split
//! [`SplitMix64`] stream, so the *sequence* of injected faults per site
//! is identical across runs. (Which request draws which decision
//! depends on arrival order; single-threaded drivers — the CI suite —
//! are fully deterministic end to end.)

use rvz_experiments::{DiskFaultPlan, DiskFaults, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside a worker's queue-pop critical section — the worker
    /// dies *while holding the queue lock*, poisoning it. Exercises the
    /// pool's poison recovery.
    WorkerPanic,
    /// Panic inside [`Service::handle`](crate::Service::handle)
    /// dispatch. Exercises per-request `catch_unwind` isolation.
    HandlerPanic,
    /// Panic inside the result cache's compute closure. Exercises the
    /// single-flight claim release (waiters must not hang).
    CacheFail,
    /// Drop the connection instead of writing the response — the client
    /// sees a truncated/reset stream.
    ConnReset,
    /// Sleep before running the engine (artificial engine latency).
    EngineDelay,
}

const SITE_COUNT: usize = 5;

/// Per-site salt so split streams never collide across sites.
const SITE_SALT: [u64; SITE_COUNT] = [
    0x5752_4B50_414E_4943, // "WRKPANIC"
    0x484E_444C_5041_4E49, // "HNDLPANI"
    0x4341_4348_4546_4149, // "CACHEFAI"
    0x434F_4E4E_5245_5345, // "CONNRESE"
    0x454E_4744_454C_4159, // "ENGDELAY"
];

/// The seeded fault plan: rates in `[0, 1]` per site, a shared seed,
/// and an optional cap on total injections per site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every site's decision stream.
    pub seed: u64,
    /// Rate of [`FaultSite::WorkerPanic`].
    pub worker_panic: f64,
    /// Rate of [`FaultSite::HandlerPanic`].
    pub handler_panic: f64,
    /// Rate of [`FaultSite::CacheFail`].
    pub cache_fail: f64,
    /// Rate of [`FaultSite::ConnReset`].
    pub conn_reset: f64,
    /// Rate of [`FaultSite::EngineDelay`].
    pub delay_rate: f64,
    /// Injected engine latency per [`FaultSite::EngineDelay`] firing.
    pub delay_ms: u64,
    /// Disk-fault sites (`short_write`, `torn_rename`, `read_corrupt`,
    /// `fsync_fail`), hitting the snapshot/journal I/O paths through
    /// [`rvz_experiments::durable`]. Shares this plan's `seed` and
    /// `limit`.
    pub disk: DiskFaultPlan,
    /// Maximum injections per site (`0` = unlimited).
    pub limit: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            worker_panic: 0.0,
            handler_panic: 0.0,
            cache_fail: 0.0,
            conn_reset: 0.0,
            delay_rate: 0.0,
            delay_ms: 0,
            disk: DiskFaultPlan::default(),
            limit: 0,
        }
    }
}

impl FaultPlan {
    /// Parses a `key=value[,key=value...]` spec, e.g.
    /// `seed=42,handler_panic=0.1,delay_rate=0.2,delay_ms=5,limit=3`.
    ///
    /// In-process site keys: `seed`, `worker_panic`, `handler_panic`,
    /// `cache_fail`, `conn_reset`, `delay_rate`, `delay_ms`, `limit`.
    /// Disk site keys (see [`rvz_experiments::DiskFaultSite`]):
    /// `short_write`, `torn_rename`, `read_corrupt`, `fsync_fail` —
    /// sharing the same `seed` and `limit`. Rates must lie in `[0, 1]`;
    /// unknown keys are rejected eagerly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause and key, e.g.
    /// `in fault spec clause `worker_panic=2`: fault spec key
    /// `worker_panic` must be in [0, 1], got 2`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let clause = part.trim();
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault spec clause `{clause}` is not `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            plan.apply(key, value)
                .map_err(|e| format!("in fault spec clause `{clause}`: {e}"))?;
        }
        plan.disk.seed = plan.seed;
        plan.disk.limit = plan.limit;
        Ok(plan)
    }

    fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        let int = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("fault spec key `{key}` expects an integer, got `{value}`"))
        };
        let rate = || -> Result<f64, String> {
            let r: f64 = value
                .parse()
                .map_err(|_| format!("fault spec key `{key}` expects a number, got `{value}`"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("fault spec key `{key}` must be in [0, 1], got {r}"));
            }
            Ok(r)
        };
        match key {
            "seed" => self.seed = int()?,
            "worker_panic" => self.worker_panic = rate()?,
            "handler_panic" => self.handler_panic = rate()?,
            "cache_fail" => self.cache_fail = rate()?,
            "conn_reset" => self.conn_reset = rate()?,
            "delay_rate" => self.delay_rate = rate()?,
            "delay_ms" => self.delay_ms = int()?,
            "limit" => self.limit = int()?,
            "short_write" | "torn_rename" | "read_corrupt" | "fsync_fail" => {
                // Disk sites live in the shared durable layer; its
                // parser validates the rate, and `parse` copies the
                // plan-wide seed/limit over afterwards.
                self.disk.apply(key, value)?;
            }
            _ => {
                return Err(format!(
                    "unknown fault spec key `{key}` (expected seed, worker_panic, \
                     handler_panic, cache_fail, conn_reset, delay_rate, delay_ms, \
                     short_write, torn_rename, read_corrupt, fsync_fail, limit)"
                ))
            }
        }
        Ok(())
    }

    /// `true` when at least one site (in-process or disk) can fire.
    pub fn is_active(&self) -> bool {
        self.worker_panic > 0.0
            || self.handler_panic > 0.0
            || self.cache_fail > 0.0
            || self.conn_reset > 0.0
            || self.delay_rate > 0.0
            || self.disk.is_active()
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::WorkerPanic => self.worker_panic,
            FaultSite::HandlerPanic => self.handler_panic,
            FaultSite::CacheFail => self.cache_fail,
            FaultSite::ConnReset => self.conn_reset,
            FaultSite::EngineDelay => self.delay_rate,
        }
    }
}

/// The `rvz_faults_injected_total{site=…}` counter for an in-process
/// site (one macro call site per label value so each handle caches
/// independently; the disk sites count themselves inside
/// [`rvz_experiments::durable`]).
fn injected_metric(site: FaultSite) -> &'static rvz_obs::Counter {
    use rvz_obs::counter;
    match site {
        FaultSite::WorkerPanic => {
            counter!("rvz_faults_injected_total", "site" => "worker_panic")
        }
        FaultSite::HandlerPanic => {
            counter!("rvz_faults_injected_total", "site" => "handler_panic")
        }
        FaultSite::CacheFail => counter!("rvz_faults_injected_total", "site" => "cache_fail"),
        FaultSite::ConnReset => counter!("rvz_faults_injected_total", "site" => "conn_reset"),
        FaultSite::EngineDelay => {
            counter!("rvz_faults_injected_total", "site" => "engine_delay")
        }
    }
}

/// Touches all nine `rvz_faults_injected_total{site=…}` counters (five
/// in-process, four disk) so a fresh `/metrics` scrape lists the family
/// before any fault fires.
pub(crate) fn preregister_injected_metrics() {
    for site in [
        FaultSite::WorkerPanic,
        FaultSite::HandlerPanic,
        FaultSite::CacheFail,
        FaultSite::ConnReset,
        FaultSite::EngineDelay,
    ] {
        let _ = injected_metric(site);
    }
    rvz_experiments::durable::preregister_fault_metrics();
}

/// Runtime fault state: the plan plus per-site decision/injection
/// counters (shared across the worker pool via `Arc`).
pub struct FaultState {
    plan: FaultPlan,
    decisions: [AtomicU64; SITE_COUNT],
    injected: [AtomicU64; SITE_COUNT],
    /// Disk-site runtime state (`None` when no disk rate is set), shared
    /// with every [`rvz_experiments::DurableFile`]/journal the process
    /// opens.
    disk: Option<Arc<DiskFaults>>,
}

impl FaultState {
    /// Builds the runtime state for a plan.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            disk: plan
                .disk
                .is_active()
                .then(|| Arc::new(DiskFaults::new(plan.disk))),
            plan,
            decisions: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The shared disk-fault state, for threading into the durable I/O
    /// layer (`None` when no disk site is armed — the zero-cost-off
    /// discipline carries through).
    pub fn disk(&self) -> Option<Arc<DiskFaults>> {
        self.disk.clone()
    }

    /// Decides (deterministically per site-visit index) whether this
    /// visit to `site` injects a fault, honoring the plan's `limit`.
    pub fn fires(&self, site: FaultSite) -> bool {
        let rate = self.plan.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let n = self.decisions[site as usize].fetch_add(1, Ordering::Relaxed);
        if SplitMix64::new(self.plan.seed ^ SITE_SALT[site as usize])
            .split(n)
            .next_f64()
            >= rate
        {
            return false;
        }
        if self.plan.limit > 0 {
            // Reserve one slot under the cap; give it back on overrun.
            if self.injected[site as usize].fetch_add(1, Ordering::Relaxed) >= self.plan.limit {
                self.injected[site as usize].fetch_sub(1, Ordering::Relaxed);
                return false;
            }
        } else {
            self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
        }
        injected_metric(site).inc();
        true
    }

    /// How many faults have been injected at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site as usize].load(Ordering::Relaxed)
    }

    /// The configured artificial engine latency.
    pub fn delay(&self) -> Duration {
        Duration::from_millis(self.plan.delay_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_key() {
        let plan = FaultPlan::parse(
            "seed=42, worker_panic=0.25, handler_panic=1, cache_fail=0.5, \
             conn_reset=0.1, delay_rate=0.75, delay_ms=7, limit=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.worker_panic, 0.25);
        assert_eq!(plan.handler_panic, 1.0);
        assert_eq!(plan.cache_fail, 0.5);
        assert_eq!(plan.conn_reset, 0.1);
        assert_eq!(plan.delay_rate, 0.75);
        assert_eq!(plan.delay_ms, 7);
        assert_eq!(plan.limit, 3);
        assert!(plan.is_active());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn parse_rejects_bad_specs_naming_the_key() {
        for (spec, needle) in [
            ("bogus=1", "unknown fault spec key `bogus`"),
            ("worker_panic=2", "must be in [0, 1]"),
            ("worker_panic=-0.5", "must be in [0, 1]"),
            ("seed=abc", "expects an integer"),
            ("handler_panic", "not `key=value`"),
            ("delay_ms=1.5", "expects an integer"),
            ("short_write=7", "must be in [0, 1]"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec:?} -> {err}");
        }
    }

    #[test]
    fn parse_errors_name_the_offending_clause() {
        // A multi-clause spec must point at the clause that failed, not
        // just the key (clauses can repeat keys or hold typos).
        let err = FaultPlan::parse("seed=1, handler_panic=0.5, conn_reset=1.5").unwrap_err();
        assert!(
            err.contains("in fault spec clause `conn_reset=1.5`"),
            "{err}"
        );
        assert!(err.contains("`conn_reset` must be in [0, 1]"), "{err}");
        let err = FaultPlan::parse("seed=1,read_corrupt=nope").unwrap_err();
        assert!(err.contains("clause `read_corrupt=nope`"), "{err}");
    }

    #[test]
    fn disk_sites_share_seed_and_limit_and_arm_the_state() {
        let plan = FaultPlan::parse("seed=9,fsync_fail=1,short_write=0.5,limit=3").unwrap();
        assert!(plan.is_active());
        assert_eq!(plan.disk.seed, 9, "disk sites draw from the plan seed");
        assert_eq!(plan.disk.limit, 3, "and honor the shared limit");
        assert_eq!(plan.disk.fsync_fail, 1.0);
        assert_eq!(plan.disk.short_write, 0.5);
        let state = FaultState::new(plan);
        let disk = state.disk().expect("disk rates arm the shared state");
        assert!(disk.fires(rvz_experiments::DiskFaultSite::FsyncFail));

        // No disk rates: the durable layer sees `None` and pays nothing.
        let state = FaultState::new(FaultPlan::parse("seed=9,handler_panic=1").unwrap());
        assert!(state.disk().is_none());
    }

    #[test]
    fn decision_sequences_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 7,
            handler_panic: 0.5,
            ..FaultPlan::default()
        };
        let a = FaultState::new(plan);
        let b = FaultState::new(plan);
        let seq = |s: &FaultState| -> Vec<bool> {
            (0..64).map(|_| s.fires(FaultSite::HandlerPanic)).collect()
        };
        let sa = seq(&a);
        assert_eq!(sa, seq(&b), "same seed, same decision sequence");
        assert!(sa.iter().any(|&f| f) && sa.iter().any(|&f| !f));
        // A different seed gives a different sequence.
        let c = FaultState::new(FaultPlan { seed: 8, ..plan });
        assert_ne!(sa, seq(&c));
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan {
            seed: 3,
            handler_panic: 0.5,
            cache_fail: 0.5,
            ..FaultPlan::default()
        };
        let s = FaultState::new(plan);
        let h: Vec<bool> = (0..64).map(|_| s.fires(FaultSite::HandlerPanic)).collect();
        let c: Vec<bool> = (0..64).map(|_| s.fires(FaultSite::CacheFail)).collect();
        assert_ne!(h, c, "per-site salts must decorrelate the streams");
    }

    #[test]
    fn limit_caps_total_injections() {
        let plan = FaultPlan {
            seed: 1,
            handler_panic: 1.0,
            limit: 2,
            ..FaultPlan::default()
        };
        let s = FaultState::new(plan);
        let fired: usize = (0..16).filter(|_| s.fires(FaultSite::HandlerPanic)).count();
        assert_eq!(fired, 2);
        assert_eq!(s.injected(FaultSite::HandlerPanic), 2);
    }

    #[test]
    fn zero_rate_site_never_fires_or_counts() {
        let s = FaultState::new(FaultPlan {
            seed: 9,
            worker_panic: 1.0,
            ..FaultPlan::default()
        });
        for _ in 0..32 {
            assert!(!s.fires(FaultSite::ConnReset));
        }
        assert_eq!(s.injected(FaultSite::ConnReset), 0);
        assert!(s.fires(FaultSite::WorkerPanic));
    }
}
