//! The query service: endpoint dispatch over the `Scenario → canonical
//! key → cache → engine` pipeline.
//!
//! ## Determinism contract
//!
//! Every response body is a pure function of the request. A cache miss
//! simulates the query's **canonical representative** (a pure function
//! of the query, see [`rvz_experiments::canonicalize`]) under the
//! service's fixed engine options, then maps the outcome back through
//! the orbit's inverse transform; a cache hit returns the stored value
//! of that same computation. Identical requests therefore produce
//! byte-identical JSON regardless of worker count, arrival order or
//! cache state. Mutable observability (hit/miss markers, counters)
//! lives in the `X-Rvz-Cache` response header and the `/stats`
//! endpoint, never in a result body.
//!
//! ## Engine-frame semantics
//!
//! The engine options (horizon, tolerance, step budget) apply **in the
//! canonical frame**: two orbit-mates share one cache entry exactly
//! because they share one canonical simulation, so a query whose
//! description is the `τ`-scaled twin of the representative sees the
//! horizon scaled by the same `τ` its times are. This is the
//! cache-coherence argument from attribute symmetry: the orbit is
//! served by *one* answer, transported along the symmetry.

use crate::cache::{CacheStats, ResultCache};
use crate::faults::{FaultPlan, FaultSite, FaultState};
use crate::http::{Request, Response};
use crate::snapshot::{
    engine_fingerprint, read_snapshot, write_snapshot, RestoreOutcome, SnapshotData,
};
use rvz_experiments::{
    breaker_token, orbit_key, record_to_json, run_sweep, scenario_from_json, Algorithm, Json,
    Scenario, Summary, SweepOptions, SweepRecord, DEFAULT_GRID,
};
use rvz_model::{feasibility, Chirality, RobotAttributes};
use rvz_sim::{
    first_contact_batch_soa, try_first_contact_programs, Budget, ContactOptions, EngineScratch,
    SimOutcome,
};
use rvz_trajectory::{Compile, CompileOptions, CompiledProgram, ProgramSoA};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A lowered program shared between the program cache and in-flight
/// queries.
type SharedProgram = Arc<CompiledProgram>;

/// Tuning for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOptions {
    /// Maximum resident cache entries (across all shards).
    pub cache_capacity: usize,
    /// Shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Canonicalization grid step (snapped to a power of two;
    /// `≤ 0` for bit-exact keys). Defaults to [`DEFAULT_GRID`].
    pub cache_grid: f64,
    /// Disables the cache entirely: every request simulates its
    /// canonical representative (the A/B baseline for `rvz loadtest`).
    pub no_cache: bool,
    /// Engine options and batch thread count for cache misses.
    ///
    /// `sweep.compile_pieces` doubles as the piece budget of the
    /// service's **compiled-program cache** (`0` disables it). Beside
    /// the result cache, the service keeps compiled programs: the
    /// **reference** program (the common algorithm from the origin, a
    /// function of the algorithm and the service horizon alone) is
    /// lowered **at most once per algorithm for the process lifetime**
    /// — including the negative result, so a horizon too deep for the
    /// budget is probed exactly once and every later query skips
    /// straight to the cursor path — and its SoA arena (feeding the
    /// lane/batch kernels) is built from it exactly once more. Each
    /// orbit's frame-warped **partner** is lowered eagerly on a miss,
    /// to the full budget-capped depth, and cached under the same
    /// canonical key as its result, so warm misses replay on the
    /// cached handle; since the partner cache shares the result
    /// cache's capacity and access pattern, a partner is evicted no
    /// later than its result — a fresh miss on an evicted orbit
    /// re-lowers the partner (to the same depth, hence byte-identical
    /// replies) but never re-lowers the reference (the dominant cost).
    /// The service owns all lowering itself: the executor's own
    /// compiled path is disabled at construction so no per-request
    /// worker ever re-lowers a reference.
    pub sweep: SweepOptions,
    /// Per-request wall-clock deadline for engine work. Each request
    /// gets a fresh [`Budget`] starting at dispatch; an exhausted one
    /// surfaces as an `"outcome":"deadline"` record (HTTP 200). A
    /// deadline outcome is **never cached** — it reflects this
    /// request's wall clock, not the scenario — so the determinism
    /// contract ("byte-identical responses regardless of cache state")
    /// continues to hold for every cached byte.
    pub deadline: Option<Duration>,
    /// Maximum concurrent engine-heavy requests (`/first-contact`,
    /// `/sweep`); beyond it requests are shed with `503` +
    /// `Retry-After`. `0` disables the limit.
    pub max_inflight: usize,
    /// Deterministic fault injection (tests/CI only; `None` in
    /// production costs one null check per site).
    pub faults: Option<FaultPlan>,
    /// Disables the observability surface: `/metrics` and
    /// `/trace/recent` answer 404 exactly like unknown endpoints, and
    /// service-level counters stop recording. Response bodies and every
    /// other header are byte-identical either way (`X-Rvz-Trace` is
    /// always attached — its sequence is deterministic, not sampled).
    pub no_metrics: bool,
    /// Structured slow-query log threshold: requests whose total
    /// handling time reaches this many milliseconds emit one JSONL line
    /// on stderr (trace ID, endpoint, status, canonical orbit digest,
    /// engine path/steps, cache outcome). `None` disables the log.
    pub slow_log_ms: Option<u64>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_capacity: 65_536,
            cache_shards: 16,
            cache_grid: DEFAULT_GRID,
            no_cache: false,
            sweep: SweepOptions::default(),
            deadline: None,
            max_inflight: 0,
            faults: None,
            no_metrics: false,
            slow_log_ms: None,
        }
    }
}

/// What the connection loop should do after sending the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Begin graceful shutdown (a `/shutdown` request was accepted).
    Shutdown,
}

/// The shared, thread-safe query service.
pub struct Service {
    opts: ServiceOptions,
    /// The program-cache piece budget, taken from
    /// `sweep.compile_pieces` at construction (the copy inside `opts`
    /// is zeroed so executor fallbacks never lower independently).
    compile_pieces: usize,
    cache: ResultCache<SimOutcome>,
    /// Partner-program cache: one frame-warped partner program at full
    /// (piece-budget-capped) coverage — or a remembered lowering
    /// refusal — per canonical orbit, keyed like the result cache.
    programs: ResultCache<Option<SharedProgram>>,
    /// Reference programs, one per [`Algorithm`]: a pure function of
    /// the algorithm and the service horizon, lowered at most once for
    /// the process lifetime.
    reference: [OnceLock<Option<SharedProgram>>; 2],
    /// SoA arenas of the reference programs, built at most once per
    /// algorithm and shared by the lane/batch kernels across requests.
    reference_soa: [OnceLock<Option<Arc<ProgramSoA>>>; 2],
    /// How many reference lowerings actually ran (observability: stays
    /// at ≤ 2 no matter how many orbits stream through).
    reference_lowerings: AtomicU64,
    requests: AtomicU64,
    /// Engine-heavy requests currently inside their handler.
    inflight: AtomicUsize,
    /// Requests shed by the in-flight limit (503s).
    shed: AtomicU64,
    /// Requests whose engine work hit the wall-clock deadline.
    deadline_outcomes: AtomicU64,
    /// When this service was constructed (`/stats` uptime).
    start: Instant,
    /// Deterministic trace-ID sequence for requests that arrive without
    /// an `X-Rvz-Trace` header. A counter, not a clock or RNG, so two
    /// services fed the same request sequence emit identical headers —
    /// the wire byte-identity the `--no-metrics` gate is tested against.
    trace_seq: AtomicU64,
    /// The accept loop's live queue depth, attached by the server at
    /// spawn (absent for a bare in-process service).
    server_queued: OnceLock<Arc<AtomicUsize>>,
    /// Connections shed at the accept queue, attached alongside.
    server_shed: OnceLock<Arc<AtomicU64>>,
    /// Fault-injection state, built from `opts.faults` (`None` off).
    faults: Option<Arc<FaultState>>,
    /// Durability observability (restore outcome, snapshot-write
    /// bookkeeping); `None` inside until snapshots are used.
    durability: Mutex<Durability>,
}

/// Snapshot/restore bookkeeping behind [`Service::durability`], fed by
/// [`Service::restore_from`] and [`Service::write_snapshot_to`] and
/// reported under `/stats` → `durability`.
#[derive(Debug, Default)]
struct Durability {
    /// `Some` once a boot-time restore was attempted.
    restore: Option<RestoreOutcome>,
    /// When the last successful snapshot write finished.
    last_snapshot: Option<Instant>,
    /// Entries persisted by the last successful snapshot write.
    persisted_entries: usize,
    /// Successful snapshot writes.
    writes: u64,
    /// Failed snapshot writes (the previous snapshot stays intact).
    write_failures: u64,
}

impl Service {
    /// Creates a service with the given tuning.
    pub fn new(mut opts: ServiceOptions) -> Self {
        // The service owns lowering (reference OnceLock + partner
        // cache); the executor must never attempt its own per-worker
        // reference lowering on a fallback path.
        let compile_pieces = opts.sweep.compile_pieces;
        opts.sweep.compile_pieces = 0;
        let faults = opts
            .faults
            .filter(|p| p.is_active())
            .map(|p| Arc::new(FaultState::new(p)));
        preregister_metrics();
        Service {
            cache: ResultCache::new(opts.cache_capacity, opts.cache_shards),
            programs: ResultCache::new(opts.cache_capacity, opts.cache_shards),
            reference: [OnceLock::new(), OnceLock::new()],
            reference_soa: [OnceLock::new(), OnceLock::new()],
            reference_lowerings: AtomicU64::new(0),
            compile_pieces,
            opts,
            requests: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            deadline_outcomes: AtomicU64::new(0),
            start: Instant::now(),
            trace_seq: AtomicU64::new(1),
            server_queued: OnceLock::new(),
            server_shed: OnceLock::new(),
            faults,
            durability: Mutex::new(Durability::default()),
        }
    }

    /// Attaches the accept loop's live queue-depth and shed counters so
    /// `/stats` and `/metrics` can report them. Idempotent — the first
    /// attachment wins (one service, one server).
    pub fn attach_server_gauges(&self, queued: Arc<AtomicUsize>, shed: Arc<AtomicU64>) {
        let _ = self.server_queued.set(queued);
        let _ = self.server_shed.set(shed);
    }

    /// The engine-configuration digest pinning this service's cached
    /// bytes: a snapshot restores only under an identical fingerprint
    /// (see [`crate::snapshot`]).
    pub fn engine_fingerprint(&self) -> u64 {
        engine_fingerprint(
            self.opts.cache_grid,
            &self.opts.sweep.contact,
            self.compile_pieces,
        )
    }

    /// Captures the current cache state for a snapshot: result entries
    /// and program orbit keys, each in per-shard recency order.
    /// In-flight single-flight claims and deadline outcomes are never
    /// included (claims are not values; deadlines are never cached).
    pub fn snapshot_data(&self) -> SnapshotData {
        SnapshotData {
            results: self.cache.export(),
            program_keys: self
                .programs
                .export()
                .into_iter()
                .map(|(key, _)| key)
                .collect(),
        }
    }

    /// Restores caches from the snapshot at `path` (if any), degrading
    /// gracefully: corrupt or mismatched snapshots cold-start. Returns
    /// the outcome; it is also kept for `/stats` and the boot banner.
    ///
    /// Program entries are restored as *placeholders* (`None`): the
    /// first miss on the orbit re-streams the partner program, while
    /// the cache's entry count and recency order match the snapshotted
    /// process exactly.
    pub fn restore_from(&self, path: &Path) -> RestoreOutcome {
        let disk = self.faults.as_ref().and_then(|f| f.disk());
        let (data, outcome) = read_snapshot(path, self.engine_fingerprint(), disk.as_ref());
        for (key, value) in data.results {
            self.cache.insert(key, value);
        }
        for key in data.program_keys {
            self.programs.insert(key, None);
        }
        let mut d = self.durability.lock().expect("durability poisoned");
        d.restore = Some(outcome.clone());
        outcome
    }

    /// Writes a snapshot of the current cache state to `path` (durable:
    /// temp + fsync + atomic rename). On failure the previous snapshot
    /// is left intact and the failure is counted, never propagated to
    /// request handling.
    ///
    /// # Errors
    ///
    /// Returns the I/O error (including injected disk faults) for the
    /// caller's log line.
    pub fn write_snapshot_to(&self, path: &Path) -> std::io::Result<usize> {
        let data = self.snapshot_data();
        let entries = data.results.len() + data.program_keys.len();
        let disk = self.faults.as_ref().and_then(|f| f.disk());
        let result = write_snapshot(path, self.engine_fingerprint(), &data, disk);
        let mut d = self.durability.lock().expect("durability poisoned");
        match result {
            Ok(()) => {
                d.last_snapshot = Some(Instant::now());
                d.persisted_entries = entries;
                d.writes += 1;
                Ok(entries)
            }
            Err(e) => {
                d.write_failures += 1;
                Err(e)
            }
        }
    }

    /// The last boot-restore outcome, if a restore was attempted.
    pub fn restore_outcome(&self) -> Option<RestoreOutcome> {
        self.durability
            .lock()
            .expect("durability poisoned")
            .restore
            .clone()
    }

    /// The configured options.
    pub fn options(&self) -> &ServiceOptions {
        &self.opts
    }

    /// Cache counters (also served under `/stats`).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Partner-program cache counters (also served under `/stats`).
    pub fn program_stats(&self) -> CacheStats {
        self.programs.stats()
    }

    /// How many reference lowerings have run (at most one per algorithm).
    pub fn reference_lowerings(&self) -> u64 {
        self.reference_lowerings.load(Ordering::Relaxed)
    }

    /// Handles one request: trace-ID stamping, dispatch, then request
    /// metrics and the slow-query log.
    ///
    /// Every response carries an `X-Rvz-Trace` header — echoed from the
    /// client's `X-Rvz-Trace` when it parses as 16 hex digits, drawn
    /// from a deterministic per-service sequence otherwise — so the
    /// wire bytes do not depend on whether metrics are enabled.
    ///
    /// May panic under injected faults ([`FaultSite::HandlerPanic`]);
    /// the connection loop isolates that panic to a `500` for this
    /// request.
    pub fn handle(&self, req: &Request) -> (Response, Control) {
        let started = Instant::now();
        let trace = self.trace_id_for(req);
        rvz_obs::set_trace_id(trace);
        rvz_sim::telemetry::clear_last();
        LAST_ORBIT.with(|o| o.set(None));
        rvz_obs::span!("request");
        let (response, control) = self.dispatch(req);
        let response = response.header("X-Rvz-Trace", &format!("{trace:016x}"));
        let elapsed = started.elapsed();
        if !self.opts.no_metrics {
            record_request_metrics(&response, elapsed);
        }
        if let Some(limit) = self.opts.slow_log_ms {
            if elapsed.as_millis() as u64 >= limit {
                slow_log(req, &response, trace, elapsed);
            }
        }
        (response, control)
    }

    /// The trace ID for one request: the client's (16 hex digits)
    /// echoed, or the next value of the deterministic sequence.
    fn trace_id_for(&self, req: &Request) -> u64 {
        if let Some(raw) = req.headers.get("x-rvz-trace") {
            if raw.trim().len() == 16 {
                if let Ok(n) = u64::from_str_radix(raw.trim(), 16) {
                    return n;
                }
            }
        }
        self.trace_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Endpoint dispatch (the body of [`Service::handle`] minus the
    /// per-request observability wrapper).
    fn dispatch(&self, req: &Request) -> (Response, Control) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            if f.fires(FaultSite::HandlerPanic) {
                panic!("injected fault: request handler panic");
            }
        }
        let metrics_on = !self.opts.no_metrics;
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::ok(Json::obj(vec![("ok", Json::Bool(true))]).render()),
            ("GET", "/stats") => self.stats_response(),
            ("GET", "/metrics") if metrics_on => self.metrics_response(),
            ("GET", "/trace/recent") if metrics_on => trace_recent_response(req),
            (_, "/metrics" | "/trace/recent") if metrics_on => {
                Response::error(405, "method not allowed for this endpoint")
            }
            ("GET", "/feasibility") => self.feasibility_from_query(req),
            ("POST", "/feasibility") => self.feasibility_from_body(req),
            ("POST", "/first-contact") => self.with_admission(|| self.first_contact(req)),
            ("POST", "/sweep") => self.with_admission(|| self.sweep(req)),
            ("POST", "/shutdown") => {
                let body = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("shutting_down", Json::Bool(true)),
                ])
                .render();
                let mut resp = Response::ok(body);
                resp.close = true;
                return (resp, Control::Shutdown);
            }
            (
                _,
                "/healthz" | "/stats" | "/feasibility" | "/first-contact" | "/sweep" | "/shutdown",
            ) => Response::error(405, "method not allowed for this endpoint"),
            // Includes /metrics and /trace/recent under --no-metrics:
            // the observability surface disappears indistinguishably
            // from an endpoint that never existed.
            _ => Response::error(404, "no such endpoint"),
        };
        (response, Control::Continue)
    }

    /// Runs an engine-heavy endpoint under the in-flight limit,
    /// shedding with `503` + `Retry-After` when it is exceeded. The
    /// slot is released on unwind too (injected handler faults must not
    /// leak admission capacity).
    fn with_admission(&self, run: impl FnOnce() -> Response) -> Response {
        let max = self.opts.max_inflight;
        if max == 0 {
            return run();
        }
        if self.inflight.fetch_add(1, Ordering::SeqCst) >= max {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.shed.fetch_add(1, Ordering::Relaxed);
            if !self.opts.no_metrics {
                rvz_obs::counter!("rvz_shed_total", "cause" => "max_inflight").inc();
            }
            return Response::error(503, "server overloaded: engine in-flight limit reached")
                .header("Retry-After", "1");
        }
        struct Release<'a>(&'a AtomicUsize);
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _slot = Release(&self.inflight);
        run()
    }

    /// The engine options for one request: the service's tuning plus a
    /// fresh wall-clock [`Budget`] when a deadline is configured.
    fn request_contact(&self) -> ContactOptions {
        match self.opts.deadline {
            Some(limit) => self.opts.sweep.contact.with_budget(Budget::new(limit)),
            None => self.opts.sweep.contact,
        }
    }

    /// Requests shed by the in-flight limit so far.
    pub fn shed_requests(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    fn stats_response(&self) -> Response {
        let stats = self.cache.stats();
        let programs = self.programs.stats();
        let body = Json::obj(vec![
            (
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            ("uptime_s", Json::Num(self.start.elapsed().as_secs_f64())),
            (
                "build",
                Json::obj(vec![
                    ("version", Json::Str(env!("CARGO_PKG_VERSION").to_string())),
                    (
                        "engine_fingerprint",
                        Json::Str(format!("{:016x}", self.engine_fingerprint())),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(!self.opts.no_cache)),
                    ("entries", Json::Num(stats.entries as f64)),
                    ("capacity", Json::Num(self.opts.cache_capacity as f64)),
                    ("hits", Json::Num(stats.hits as f64)),
                    ("misses", Json::Num(stats.misses as f64)),
                    ("evictions", Json::Num(stats.evictions as f64)),
                    ("joined", Json::Num(stats.joined as f64)),
                    ("grid", Json::Num(self.opts.cache_grid)),
                ]),
            ),
            (
                "programs",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.compile_pieces > 0)),
                    ("entries", Json::Num(programs.entries as f64)),
                    ("piece_budget", Json::Num(self.compile_pieces as f64)),
                    ("hits", Json::Num(programs.hits as f64)),
                    ("misses", Json::Num(programs.misses as f64)),
                    (
                        "reference_lowerings",
                        Json::Num(self.reference_lowerings() as f64),
                    ),
                ]),
            ),
            (
                "admission",
                Json::obj(vec![
                    ("max_inflight", Json::Num(self.opts.max_inflight as f64)),
                    (
                        "inflight",
                        Json::Num(self.inflight.load(Ordering::SeqCst) as f64),
                    ),
                    ("shed", Json::Num(self.shed_requests() as f64)),
                    (
                        "queue_depth",
                        Json::Num(
                            self.server_queued
                                .get()
                                .map_or(-1.0, |q| q.load(Ordering::Relaxed) as f64),
                        ),
                    ),
                    (
                        "shed_by_cause",
                        Json::obj(vec![
                            (
                                "queue",
                                Json::Num(
                                    self.server_shed
                                        .get()
                                        .map_or(0.0, |s| s.load(Ordering::Relaxed) as f64),
                                ),
                            ),
                            ("max_inflight", Json::Num(self.shed_requests() as f64)),
                            (
                                "deadline",
                                Json::Num(self.deadline_outcomes.load(Ordering::Relaxed) as f64),
                            ),
                        ]),
                    ),
                    (
                        "deadline_ms",
                        Json::Num(self.opts.deadline.map_or(0.0, |d| d.as_secs_f64() * 1e3)),
                    ),
                ]),
            ),
            ("durability", self.durability_json()),
        ])
        .render();
        Response::ok(body)
    }

    /// `GET /metrics`: the full registry as Prometheus text exposition
    /// (format v0.0.4). Point-in-time gauges — uptime, in-flight and
    /// queue depth, cache sizes — are written at scrape time; counters
    /// and histograms accumulate as requests flow.
    fn metrics_response(&self) -> Response {
        use rvz_obs::gauge;
        gauge!("rvz_uptime_seconds").set(self.start.elapsed().as_secs() as i64);
        gauge!("rvz_inflight").set(self.inflight.load(Ordering::SeqCst) as i64);
        gauge!("rvz_cache_entries").set(self.cache.stats().entries as i64);
        gauge!("rvz_program_cache_entries").set(self.programs.stats().entries as i64);
        gauge!("rvz_queue_depth").set(
            self.server_queued
                .get()
                .map_or(0, |q| q.load(Ordering::Relaxed)) as i64,
        );
        gauge!("rvz_shed_connections").set(
            self.server_shed
                .get()
                .map_or(0, |s| s.load(Ordering::Relaxed)) as i64,
        );
        Response::ok_text(rvz_obs::render(), "text/plain; version=0.0.4")
    }

    /// The `/stats` → `durability` object: whether snapshots are in
    /// use, how the boot restore went (`cold|warm|salvaged {n}`), how
    /// stale the last snapshot is, and write bookkeeping.
    fn durability_json(&self) -> Json {
        let d = self.durability.lock().expect("durability poisoned");
        let restore = match &d.restore {
            None => Json::Str("none".to_string()),
            Some(outcome) => Json::Str(outcome.label()),
        };
        let restored = d.restore.as_ref().map_or(0, |o| o.entries());
        Json::obj(vec![
            ("enabled", Json::Bool(d.restore.is_some())),
            ("restore", restore),
            ("restored_entries", Json::Num(restored as f64)),
            (
                "snapshot_age_s",
                match d.last_snapshot {
                    None => Json::Num(-1.0),
                    Some(at) => Json::Num(at.elapsed().as_secs_f64()),
                },
            ),
            ("persisted_entries", Json::Num(d.persisted_entries as f64)),
            ("writes", Json::Num(d.writes as f64)),
            ("write_failures", Json::Num(d.write_failures as f64)),
        ])
    }

    fn feasibility_from_query(&self, req: &Request) -> Response {
        let parse_f64 = |key: &str, default: f64| -> Result<f64, String> {
            match req.query_value(key) {
                None => Ok(default),
                Some(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| format!("query parameter `{key}` expects a number, got `{raw}`")),
            }
        };
        let attrs = (|| -> Result<RobotAttributes, String> {
            // A typo'd parameter must not silently answer for the
            // default scenario (same contract as the CLI's flag registry).
            if let Some((unknown, _)) = req
                .query
                .iter()
                .find(|(k, _)| !matches!(k.as_str(), "v" | "tau" | "phi" | "chi"))
            {
                return Err(format!(
                    "unknown query parameter `{unknown}` (expected v, tau, phi, chi)"
                ));
            }
            let v = parse_f64("v", 1.0)?;
            let tau = parse_f64("tau", 1.0)?;
            let phi = parse_f64("phi", 0.0)?;
            let chi = match req.query_value("chi") {
                None => Chirality::Consistent,
                Some(raw) => rvz_experiments::parse_chirality(raw)?,
            };
            if !(v > 0.0 && v.is_finite() && tau > 0.0 && tau.is_finite()) {
                return Err("`v` and `tau` must be positive and finite".into());
            }
            if !phi.is_finite() {
                return Err("`phi` must be finite".into());
            }
            Ok(RobotAttributes::new(v, tau, phi, chi))
        })();
        match attrs {
            Ok(attrs) => self.feasibility_response(&attrs),
            Err(e) => Response::error(400, &e),
        }
    }

    fn feasibility_from_body(&self, req: &Request) -> Response {
        match parse_body(&req.body).and_then(|json| scenario_from_json(&json)) {
            Ok(scenario) => self.feasibility_response(&scenario.attributes()),
            Err(e) => Response::error(400, &e),
        }
    }

    fn feasibility_response(&self, attrs: &RobotAttributes) -> Response {
        let verdict = feasibility(attrs);
        // The verdict-level orbit: the full attribute quotient under
        // which the answer is provably constant.
        let probe = Scenario {
            speed: attrs.speed(),
            time_unit: attrs.time_unit(),
            orientation: attrs.orientation(),
            chirality: attrs.chirality(),
            ..reference_scenario()
        };
        let orbit = orbit_key(&probe, self.opts.cache_grid);
        let body = Json::obj(vec![
            (
                "attributes",
                Json::obj(vec![
                    ("speed", Json::Num(attrs.speed())),
                    ("time_unit", Json::Num(attrs.time_unit())),
                    ("orientation", Json::Num(attrs.orientation())),
                    ("chirality", Json::Str(attrs.chirality().to_string())),
                ]),
            ),
            ("feasible", Json::Bool(verdict.is_feasible())),
            ("breaker", Json::Str(breaker_token(&verdict).to_string())),
            ("verdict", Json::Str(verdict.to_string())),
            (
                "orbit",
                Json::obj(vec![
                    ("time_unit", Json::Num(f64::from_bits(orbit.time_unit))),
                    ("speed", Json::Num(f64::from_bits(orbit.speed))),
                    ("orientation", Json::Num(f64::from_bits(orbit.orientation))),
                    ("chirality", Json::Str(orbit.chirality.to_string())),
                ]),
            ),
        ])
        .render();
        Response::ok(body)
    }

    /// Answers one scenario through the canonical cache; returns the
    /// record, the canonical reduction it travelled through, and
    /// whether the outcome came from the cache.
    fn answer(&self, scenario: &Scenario) -> (SweepRecord, rvz_experiments::Canonical, bool) {
        let canonical = scenario.canonicalize(self.opts.cache_grid);
        let contact = self.request_contact();
        let (outcome, hit) = if self.opts.no_cache {
            // The A/B baseline bypasses the result cache *and* the
            // compiled-program path: every request runs the cursor
            // engine from scratch, so the loadtest speedup measures the
            // whole caching+compilation stack against the bare engine.
            (self.simulate(&canonical.scenario, &contact), false)
        } else {
            self.cache.get_or_compute_if(
                canonical.key,
                || {
                    if let Some(f) = &self.faults {
                        if f.fires(FaultSite::CacheFail) {
                            panic!("injected fault: cache compute failure");
                        }
                    }
                    self.simulate_with_key(&canonical.scenario, Some(canonical.key), &contact)
                },
                // A deadline outcome reflects this request's wall
                // clock, not the scenario: caching it would serve a
                // timeout to future requests that had time to finish.
                |outcome| !matches!(outcome, SimOutcome::Deadline { .. }),
            )
        };
        let record = SweepRecord {
            scenario: *scenario,
            feasibility: feasibility(&scenario.attributes()),
            outcome: canonical.transform.apply(outcome),
        };
        LAST_ORBIT.with(|o| o.set(Some(orbit_digest(&canonical.key))));
        if matches!(record.outcome, SimOutcome::Deadline { .. }) {
            self.count_deadlines(1);
        }
        if !self.opts.no_metrics {
            cache_counter(self.opts.no_cache, hit).inc();
        }
        (record, canonical, hit)
    }

    /// Counts wall-clock deadline outcomes (the third shed cause in
    /// `/stats` → `admission.shed_by_cause`).
    fn count_deadlines(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.deadline_outcomes.fetch_add(n, Ordering::Relaxed);
        if !self.opts.no_metrics {
            rvz_obs::counter!("rvz_shed_total", "cause" => "deadline").add(n);
        }
    }

    fn simulate(&self, canonical: &Scenario, contact: &ContactOptions) -> SimOutcome {
        self.simulate_with_key(canonical, None, contact)
    }

    /// Simulates the canonical representative: through the cached
    /// compiled programs when possible (key provided and the orbit
    /// lowers under the budget), otherwise through the cursor-path
    /// sweep executor. Both paths are deterministic functions of the
    /// scenario, so responses stay pure functions of the query.
    fn simulate_with_key(
        &self,
        canonical: &Scenario,
        key: Option<rvz_experiments::CacheKey>,
        contact: &ContactOptions,
    ) -> SimOutcome {
        if let Some(f) = &self.faults {
            if f.fires(FaultSite::EngineDelay) {
                // Injected engine latency: the request spends extra
                // wall clock inside "the engine" (drives deadline and
                // overload paths deterministically in tests).
                std::thread::sleep(f.delay());
            }
        }
        if let Some(key) = key {
            if self.compile_pieces > 0 {
                if let Some(outcome) = self.simulate_compiled(canonical, key, contact) {
                    return outcome;
                }
            }
        }
        // opts.sweep.compile_pieces was zeroed at construction: the
        // executor never lowers on the service's behalf.
        let single = SweepOptions {
            threads: 1,
            contact: *contact,
            ..self.opts.sweep
        };
        run_sweep(std::slice::from_ref(canonical), &single)[0].outcome
    }

    /// The compiled fast path: the cached reference against the
    /// orbit's partner program, resolved **kernel-first**. The query
    /// runs as a one-element [`first_contact_batch_soa`] batch — the
    /// *same* entry point `/sweep` groups route through, so a
    /// representative produces identical bytes whether it arrives
    /// alone or inside a batch (the batch kernel's per-pair decisions,
    /// including the window-table disproof, are independent of the
    /// other batch members). A kernel refusal (the advancement outran
    /// the piece-budget-capped coverage) falls back to the scalar
    /// ladder over the same pieces, and `None` hands the query to the
    /// cursor executor.
    ///
    /// The partner handle always holds the orbit's *full*
    /// (budget-capped) lowering — [`Self::partner_program`] upgrades
    /// anything shallower — so which engine resolves a representative
    /// is a pure function of the scenario and the engine options,
    /// never of cache history: the determinism contract holds for
    /// every cached byte.
    fn simulate_compiled(
        &self,
        canonical: &Scenario,
        key: rvz_experiments::CacheKey,
        contact: &ContactOptions,
    ) -> Option<SimOutcome> {
        let reference = Arc::clone(self.reference_for(canonical.algorithm).as_ref()?);
        let partner = self.partner_program(canonical, key)?;
        let mut scratch = EngineScratch::new();
        if let Some(arena) = self.reference_soa_for(canonical.algorithm) {
            let partner_arena = ProgramSoA::from_program(&partner);
            if let Some(outcome) = first_contact_batch_soa(
                &arena,
                std::slice::from_ref(&partner_arena),
                canonical.visibility,
                contact,
                &mut scratch,
            )
            .pop()
            .flatten()
            {
                return Some(outcome);
            }
        }
        try_first_contact_programs(
            &reference,
            &partner,
            canonical.visibility,
            contact,
            &mut scratch,
        )
    }

    /// Routes a `/sweep` miss batch through the SoA batch kernel: all
    /// representatives sharing an algorithm and a visibility radius
    /// resolve in one [`first_contact_batch_soa`] call that streams
    /// the shared reference arena once (window tables disprove
    /// far-infeasible cells without touching their pieces). Cells the
    /// kernel refuses stay `None` for the per-representative ladder,
    /// which resolves them identically by construction.
    fn batch_compiled(
        &self,
        missing: &[Scenario],
        missing_index: &std::collections::HashMap<rvz_experiments::CacheKey, usize>,
        contact: &ContactOptions,
        computed: &mut [Option<SimOutcome>],
    ) {
        let mut groups: std::collections::HashMap<(usize, u64), (Vec<usize>, Vec<ProgramSoA>)> =
            std::collections::HashMap::new();
        for (key, &j) in missing_index {
            let rep = &missing[j];
            let slot = match rep.algorithm {
                Algorithm::WaitAndSearch => 0,
                Algorithm::UniversalSearch => 1,
            };
            if self.reference_soa_for(rep.algorithm).is_none() {
                continue;
            }
            let Some(partner) = self.partner_program(rep, *key) else {
                continue;
            };
            let (indices, partners) = groups.entry((slot, rep.visibility.to_bits())).or_default();
            indices.push(j);
            partners.push(ProgramSoA::from_program(&partner));
        }
        let mut scratch = EngineScratch::new();
        for ((slot, radius_bits), (indices, partners)) in &groups {
            let algorithm = if *slot == 0 {
                Algorithm::WaitAndSearch
            } else {
                Algorithm::UniversalSearch
            };
            let arena = self
                .reference_soa_for(algorithm)
                .expect("grouped only under a built arena");
            let outcomes = first_contact_batch_soa(
                &arena,
                partners,
                f64::from_bits(*radius_bits),
                contact,
                &mut scratch,
            );
            for (&j, outcome) in indices.iter().zip(outcomes) {
                computed[j] = outcome;
            }
        }
    }

    /// The orbit's partner program at full (piece-budget-capped)
    /// coverage. A cached handle is replayed when it either covers the
    /// horizon or already spent the whole piece budget (eager lowering
    /// is deterministic, so such a handle is byte-for-byte what a
    /// fresh lowering would produce); anything shallower — absent, or
    /// a pre-upgrade query-depth freeze — is lowered eagerly and
    /// upgrades the cache slot. A remembered lowering refusal stays a
    /// hit and keeps handing the orbit to the cursor path.
    ///
    /// Unlike `get_or_compute`, concurrent misses of one orbit may
    /// both lower (the last insert wins the slot); both produce the
    /// same handle, so responses stay pure.
    fn partner_program(
        &self,
        canonical: &Scenario,
        key: rvz_experiments::CacheKey,
    ) -> Option<SharedProgram> {
        let horizon = self.opts.sweep.contact.horizon;
        if let Some(slot) = self.programs.probe(&key) {
            match slot {
                Some(partner)
                    if partner.covers(horizon) || partner.pieces().len() >= self.compile_pieces =>
                {
                    self.programs.record(1, 0);
                    return Some(partner);
                }
                Some(_) => {} // shallow handle: fall through and upgrade
                None => {
                    self.programs.record(1, 0);
                    return None;
                }
            }
        }
        self.programs.record(0, 1);
        let instance = canonical.instance().ok()?;
        let copts = self.compile_options();
        let compiled = match canonical.algorithm {
            Algorithm::WaitAndSearch => instance
                .attributes()
                .frame_warp(rvz_core::WaitAndSearch, instance.offset())
                .compile(&copts),
            Algorithm::UniversalSearch => instance
                .attributes()
                .frame_warp(rvz_search::UniversalSearch, instance.offset())
                .compile(&copts),
        };
        let shared = compiled.ok().map(Arc::new);
        self.programs.insert(key, shared.clone());
        shared
    }

    fn compile_options(&self) -> CompileOptions {
        CompileOptions::to_horizon(self.opts.sweep.contact.horizon).max_pieces(self.compile_pieces)
    }

    /// The reference program for an algorithm, lowered at most once for
    /// the process lifetime. A truncated reference would refuse every
    /// disproof-shaped query, so only horizon-covering lowerings are
    /// kept.
    fn reference_for(&self, algorithm: Algorithm) -> &Option<SharedProgram> {
        let slot = match algorithm {
            Algorithm::WaitAndSearch => 0,
            Algorithm::UniversalSearch => 1,
        };
        self.reference[slot].get_or_init(|| {
            self.reference_lowerings.fetch_add(1, Ordering::Relaxed);
            let copts = self.compile_options();
            let compiled = match algorithm {
                Algorithm::WaitAndSearch => rvz_core::WaitAndSearch.compile(&copts),
                Algorithm::UniversalSearch => rvz_search::UniversalSearch.compile(&copts),
            };
            compiled
                .ok()
                .filter(|p| p.covers(self.opts.sweep.contact.horizon))
                .map(Arc::new)
        })
    }

    /// The reference program's SoA arena, built at most once per
    /// algorithm (a pure function of the reference program) and shared
    /// by the lane kernel and the `/sweep` batch kernel.
    fn reference_soa_for(&self, algorithm: Algorithm) -> Option<Arc<ProgramSoA>> {
        let slot = match algorithm {
            Algorithm::WaitAndSearch => 0,
            Algorithm::UniversalSearch => 1,
        };
        self.reference_soa[slot]
            .get_or_init(|| {
                self.reference_for(algorithm)
                    .as_ref()
                    .map(|p| Arc::new(ProgramSoA::from_program(p)))
            })
            .clone()
    }

    fn first_contact(&self, req: &Request) -> Response {
        let scenario = match parse_body(&req.body).and_then(|json| scenario_from_json(&json)) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };
        let (record, canonical, hit) = self.answer(&scenario);
        let body = Json::obj(vec![
            ("record", record_to_json(&record)),
            (
                "canonical",
                Json::obj(vec![
                    ("swapped", Json::Bool(canonical.swapped)),
                    ("time_scale", Json::Num(canonical.transform.time_scale)),
                    (
                        "distance_scale",
                        Json::Num(canonical.transform.distance_scale),
                    ),
                ]),
            ),
        ])
        .render();
        Response::ok(body).header("X-Rvz-Cache", cache_marker(self.opts.no_cache, hit))
    }

    fn sweep(&self, req: &Request) -> Response {
        let scenarios = match parse_body(&req.body).and_then(|json| {
            let list = json
                .get("scenarios")
                .and_then(Json::as_array)
                .ok_or("body must be {\"scenarios\": [...]}")?
                .to_vec();
            if list.is_empty() {
                return Err("`scenarios` must be non-empty".into());
            }
            list.iter()
                .enumerate()
                .map(|(i, v)| {
                    let mut s = scenario_from_json(v).map_err(|e| format!("scenario #{i}: {e}"))?;
                    if v.get("id").is_none() {
                        s.id = i as u64;
                    }
                    Ok(s)
                })
                .collect::<Result<Vec<Scenario>, String>>()
        }) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };

        // Resolve each scenario against the cache; batch the distinct
        // missing representatives through one `run_sweep` call. Probes
        // bypass the per-lookup counters so that `misses` keeps meaning
        // "engine runs" — orbit-mates deduped within the batch count as
        // one miss, which is also what the response header reports.
        let canonicals: Vec<_> = scenarios
            .iter()
            .map(|s| s.canonicalize(self.opts.cache_grid))
            .collect();
        let mut outcomes: Vec<Option<SimOutcome>> = vec![None; scenarios.len()];
        let mut hits = 0u64;
        if !self.opts.no_cache {
            for (i, c) in canonicals.iter().enumerate() {
                if let Some(outcome) = self.cache.probe(&c.key) {
                    outcomes[i] = Some(outcome);
                    hits += 1;
                }
            }
        }
        let mut missing: Vec<Scenario> = Vec::new();
        let mut missing_index: std::collections::HashMap<rvz_experiments::CacheKey, usize> =
            std::collections::HashMap::new();
        for (i, c) in canonicals.iter().enumerate() {
            if outcomes[i].is_none() && !missing_index.contains_key(&c.key) {
                missing_index.insert(c.key, missing.len());
                let mut rep = c.scenario;
                rep.id = missing.len() as u64;
                missing.push(rep);
            }
        }
        let misses = missing.len() as u64;
        if !self.opts.no_cache {
            self.cache.record(hits, misses);
            if !self.opts.no_metrics {
                cache_counter(false, true).add(hits);
                cache_counter(false, false).add(misses);
            }
        } else if !self.opts.no_metrics {
            cache_counter(true, false).add(scenarios.len() as u64);
        }
        let contact = self.request_contact();
        if !missing.is_empty() {
            // Resolve representatives through the service's own compiled
            // path first (the per-process reference and the partner
            // cache), so a batch never re-lowers what the single-query
            // path already memoized; whatever refuses goes through the
            // executor with its own lowering disabled — the executor
            // would otherwise rebuild (and, at deep horizons, discard) a
            // reference per worker per request.
            //
            // Representatives sharing an algorithm and a visibility
            // radius route through the SoA **batch kernel** in one
            // streaming pass over the shared reference arena (window
            // tables disprove far-infeasible cells wholesale); kernel
            // refusals and leftovers fall back to the per-representative
            // ladder below, which resolves identically by construction.
            let mut computed: Vec<Option<SimOutcome>> = vec![None; missing.len()];
            if !self.opts.no_cache && self.compile_pieces > 0 {
                self.batch_compiled(&missing, &missing_index, &contact, &mut computed);
                for (key, &j) in &missing_index {
                    if computed[j].is_none() {
                        computed[j] = self.simulate_compiled(&missing[j], *key, &contact);
                    }
                }
            }
            let leftover: Vec<Scenario> = missing
                .iter()
                .enumerate()
                .filter(|(j, _)| computed[*j].is_none())
                .map(|(idx, rep)| Scenario {
                    id: idx as u64,
                    ..*rep
                })
                .collect();
            if !leftover.is_empty() {
                // opts.sweep.compile_pieces is zeroed at construction:
                // the executor runs leftovers on the cursor path.
                let sweep = SweepOptions {
                    contact,
                    ..self.opts.sweep
                };
                for record in run_sweep(&leftover, &sweep) {
                    computed[record.scenario.id as usize] = Some(record.outcome);
                }
            }
            let computed: Vec<SimOutcome> =
                computed.into_iter().map(|o| o.expect("resolved")).collect();
            for (key, &j) in &missing_index {
                // Deadline outcomes are wall-clock artifacts of this
                // request; never let them answer future queries.
                if !self.opts.no_cache && !matches!(computed[j], SimOutcome::Deadline { .. }) {
                    self.cache.insert(*key, computed[j]);
                }
            }
            for (i, c) in canonicals.iter().enumerate() {
                if outcomes[i].is_none() {
                    let j = *missing_index.get(&c.key).expect("every miss was batched");
                    outcomes[i] = Some(computed[j]);
                }
            }
        }

        let records: Vec<SweepRecord> = scenarios
            .iter()
            .zip(&canonicals)
            .zip(&outcomes)
            .map(|((s, c), outcome)| SweepRecord {
                scenario: *s,
                feasibility: feasibility(&s.attributes()),
                outcome: c.transform.apply(outcome.expect("resolved above")),
            })
            .collect();
        let summary = Summary::from_records(&records);
        self.count_deadlines(summary.deadlines as u64);
        let body = Json::obj(vec![
            (
                "records",
                Json::Arr(records.iter().map(record_to_json).collect()),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("total", Json::Num(summary.total as f64)),
                    ("contacts", Json::Num(summary.contacts as f64)),
                    ("horizons", Json::Num(summary.horizons as f64)),
                    ("step_budgets", Json::Num(summary.step_budgets as f64)),
                    ("deadlines", Json::Num(summary.deadlines as f64)),
                    ("consistent", Json::Num(summary.consistent as f64)),
                ]),
            ),
        ])
        .render();
        Response::ok(body).header("X-Rvz-Cache", &format!("hits={hits};misses={misses}"))
    }
}

thread_local! {
    /// The canonical-orbit digest of this thread's most recent
    /// [`Service::answer`] call, for the slow-query log (cache hits
    /// have no engine telemetry, but they do have an orbit).
    static LAST_ORBIT: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// FNV-1a digest of a canonical cache key — a compact, stable orbit
/// identifier for log lines (the full key is six f64 bit patterns).
fn orbit_digest(key: &rvz_experiments::CacheKey) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let fold = |h: u64, w: u64| -> u64 {
        let mut h = h ^ w;
        for _ in 0..8 {
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    };
    h = fold(
        h,
        matches!(key.algorithm, Algorithm::UniversalSearch) as u64,
    );
    h = fold(h, matches!(key.chirality, Chirality::Mirrored) as u64);
    for &w in &key.bits {
        h = fold(h, w);
    }
    h
}

/// Per-request counters and the latency histogram (called once per
/// [`Service::handle`] unless the service runs with `no_metrics`).
fn record_request_metrics(resp: &Response, elapsed: Duration) {
    use rvz_obs::{counter, histogram};
    counter!("rvz_requests_total").inc();
    status_counter(resp.status).inc();
    histogram!("rvz_request_duration_us").observe(elapsed.as_micros() as u64);
}

/// The `rvz_responses_total{status=…}` counter for a status code (one
/// macro call site per label value so each handle caches
/// independently).
fn status_counter(status: u16) -> &'static rvz_obs::Counter {
    use rvz_obs::counter;
    match status {
        200 => counter!("rvz_responses_total", "status" => "200"),
        400 => counter!("rvz_responses_total", "status" => "400"),
        404 => counter!("rvz_responses_total", "status" => "404"),
        405 => counter!("rvz_responses_total", "status" => "405"),
        413 => counter!("rvz_responses_total", "status" => "413"),
        500 => counter!("rvz_responses_total", "status" => "500"),
        503 => counter!("rvz_responses_total", "status" => "503"),
        _ => counter!("rvz_responses_total", "status" => "other"),
    }
}

/// The `rvz_cache_requests_total{outcome=…}` counter matching
/// [`cache_marker`]'s labels.
fn cache_counter(no_cache: bool, hit: bool) -> &'static rvz_obs::Counter {
    use rvz_obs::counter;
    match (no_cache, hit) {
        (true, _) => counter!("rvz_cache_requests_total", "outcome" => "bypass"),
        (false, true) => counter!("rvz_cache_requests_total", "outcome" => "hit"),
        (false, false) => counter!("rvz_cache_requests_total", "outcome" => "miss"),
    }
}

/// Touches every metric family the service can emit so a `/metrics`
/// scrape lists them all from the first request — CI greps for family
/// names before it has driven any faults or engine paths.
fn preregister_metrics() {
    use rvz_obs::{counter, histogram};
    let _ = counter!("rvz_requests_total");
    let _ = histogram!("rvz_request_duration_us");
    for status in [200, 400, 404, 405, 413, 500, 503, 0] {
        let _ = status_counter(status);
    }
    let _ = cache_counter(true, false);
    let _ = cache_counter(false, true);
    let _ = cache_counter(false, false);
    let _ = counter!("rvz_shed_total", "cause" => "queue");
    let _ = counter!("rvz_shed_total", "cause" => "max_inflight");
    let _ = counter!("rvz_shed_total", "cause" => "deadline");
    crate::faults::preregister_injected_metrics();
    rvz_sim::telemetry::preregister_metrics();
}

/// `GET /trace/recent`: the flight-recorder ring as JSON, newest span
/// first (`?n=` caps the count, default 64).
fn trace_recent_response(req: &Request) -> Response {
    let max = req
        .query_value("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64)
        .min(rvz_obs::RING_CAPACITY);
    let events: Vec<Json> = rvz_obs::recent(max)
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("span", Json::Str(e.name.to_string())),
                ("trace", Json::Str(format!("{:016x}", e.trace_id))),
                ("start_us", Json::Num(e.start_us as f64)),
                ("dur_us", Json::Num(e.dur_us as f64)),
                ("thread", Json::Num(f64::from(e.thread))),
                ("depth", Json::Num(f64::from(e.depth))),
            ])
        })
        .collect();
    Response::ok(Json::obj(vec![("events", Json::Arr(events))]).render())
}

/// One structured JSONL line on stderr for a request that crossed the
/// slow-query threshold: trace ID, endpoint, status, total time, cache
/// outcome, the canonical orbit digest, and the engine work profile
/// when an engine ran.
fn slow_log(req: &Request, resp: &Response, trace: u64, elapsed: Duration) {
    let cache = resp
        .extra_headers
        .iter()
        .find(|(n, _)| n == "X-Rvz-Cache")
        .map_or("-", |(_, v)| v.as_str());
    let mut line = format!(
        "{{\"slow_query\":true,\"trace\":\"{trace:016x}\",\"method\":\"{}\",\"path\":\"{}\",\
         \"status\":{},\"total_ms\":{:.3},\"cache\":\"{cache}\"",
        req.method,
        req.path,
        resp.status,
        elapsed.as_secs_f64() * 1e3,
    );
    if let Some(orbit) = LAST_ORBIT.with(|o| o.get()) {
        line.push_str(&format!(",\"orbit\":\"{orbit:016x}\""));
    }
    if let Some(t) = rvz_sim::telemetry::last() {
        line.push_str(&format!(
            ",\"engine_path\":\"{}\",\"engine_outcome\":\"{}\",\"steps\":{},\
             \"envelope_queries\":{},\"pruned_intervals\":{}",
            t.path.label(),
            t.outcome,
            t.steps,
            t.envelope_queries,
            t.pruned_intervals,
        ));
    }
    line.push('}');
    eprintln!("{line}");
}

fn cache_marker(no_cache: bool, hit: bool) -> &'static str {
    match (no_cache, hit) {
        (true, _) => "bypass",
        (false, true) => "hit",
        (false, false) => "miss",
    }
}

fn reference_scenario() -> Scenario {
    rvz_experiments::ScenarioGrid::new().build()[0]
}

fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body must be UTF-8".to_string())?;
    if text.trim().is_empty() {
        // An absent body denotes the all-defaults query.
        return Ok(Json::Obj(Vec::new()));
    }
    rvz_experiments::json::parse(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn request(method: &str, path: &str, body: &str) -> Request {
        let (path, query_string) = path.split_once('?').unwrap_or((path, ""));
        let query = query_string
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| {
                let (k, v) = p.split_once('=').unwrap_or((p, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn test_options() -> ServiceOptions {
        // Cheap engine settings so unit tests stay fast.
        ServiceOptions {
            sweep: SweepOptions {
                threads: 1,
                contact: rvz_sim::ContactOptions {
                    max_steps: 20_000,
                    horizon: rvz_core::completion_time(6),
                    ..SweepOptions::default().contact
                },
                ..SweepOptions::default()
            },
            ..ServiceOptions::default()
        }
    }

    fn service() -> Service {
        Service::new(test_options())
    }

    #[test]
    fn healthz_and_stats_respond() {
        let svc = service();
        let (resp, flow) = svc.handle(&request("GET", "/healthz", ""));
        assert_eq!((resp.status, flow), (200, Control::Continue));
        assert_eq!(resp.body, r#"{"ok":true}"#);
        let (resp, _) = svc.handle(&request("GET", "/stats", ""));
        assert!(resp.body.contains("\"requests\":2"));
        assert!(resp.body.contains("\"enabled\":true"));
    }

    #[test]
    fn feasibility_get_matches_theorem4() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/feasibility?tau=0.5", ""));
        assert!(resp.body.contains("\"feasible\":true"));
        assert!(resp.body.contains("\"breaker\":\"clocks\""));
        let (resp, _) = svc.handle(&request("GET", "/feasibility", ""));
        assert!(resp.body.contains("\"feasible\":false"));
        // The reciprocal clock lands in the same verdict orbit.
        let (a, _) = svc.handle(&request("GET", "/feasibility?tau=0.5", ""));
        let (b, _) = svc.handle(&request("GET", "/feasibility?tau=2", ""));
        let orbit = |body: &str| body.split("\"orbit\"").nth(1).unwrap().to_string();
        assert_eq!(orbit(&a.body), orbit(&b.body));
    }

    #[test]
    fn feasibility_rejects_bad_input_without_panicking() {
        let svc = service();
        for query in [
            "/feasibility?v=-1",
            "/feasibility?v=zoom",
            "/feasibility?tau=0",
            "/feasibility?phi=inf",
            "/feasibility?chi=2",
            // A typo'd key must not silently answer the default query.
            "/feasibility?taw=0.5",
        ] {
            let (resp, _) = svc.handle(&request("GET", query, ""));
            assert_eq!(resp.status, 400, "query {query}");
        }
        let (resp, _) = svc.handle(&request("POST", "/feasibility", "{\"speed\":-3}"));
        assert_eq!(resp.status, 400);
        let (resp, _) = svc.handle(&request("POST", "/feasibility", "not json"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn first_contact_is_deterministic_and_caches_twins() {
        let svc = service();
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let (first, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(first.status, 200);
        assert!(first.body.contains("\"outcome\":\"contact\""));
        assert_eq!(header(&first, "X-Rvz-Cache"), "miss");

        let (again, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(again.body, first.body, "identical queries, identical bytes");
        assert_eq!(header(&again, "X-Rvz-Cache"), "hit");

        // The role-swapped twin: same orbit, one cache entry, outcome
        // mapped through the inverse transform (v·τ = 0.5 here).
        let scenario =
            rvz_experiments::scenario_from_json(&rvz_experiments::json::parse(body).unwrap())
                .unwrap();
        let (twin, transform) = scenario.role_swap();
        let twin_body = format!(
            concat!(
                "{{\"speed\":{},\"time_unit\":{},\"orientation\":{},\"chirality\":\"{}\",",
                "\"distance\":{},\"bearing\":{},\"visibility\":{}}}"
            ),
            twin.speed,
            twin.time_unit,
            twin.orientation,
            twin.chirality,
            twin.distance,
            twin.bearing,
            twin.visibility,
        );
        let (resp, _) = svc.handle(&request("POST", "/first-contact", &twin_body));
        assert_eq!(
            header(&resp, "X-Rvz-Cache"),
            "hit",
            "the symmetric twin must resolve to the same cache entry"
        );
        assert!(resp.body.contains("\"swapped\":true") || transform.is_identity());
        let stats = svc.cache_stats();
        assert_eq!(stats.entries, 1, "one orbit, one entry");
    }

    #[test]
    fn sweep_batches_and_dedups_symmetric_families() {
        let svc = service();
        // Scenario #1 is the role-swap twin of scenario #0 (v·τ = 0.5,
        // bearing π/3 + π); scenario #2 is a genuinely different cell.
        let body = r#"{"scenarios":[
            {"speed":0.5,"distance":0.9,"visibility":0.25},
            {"speed":2,"distance":1.8,"visibility":0.5,"bearing":4.188790204786391},
            {"speed":0.5,"distance":0.9,"visibility":0.25,"bearing":2.0}
        ]}"#;
        let (resp, _) = svc.handle(&request("POST", "/sweep", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"total\":3"));
        // Records come back in query order with dense default ids.
        assert!(resp.body.contains("\"id\":0"));
        assert!(resp.body.contains("\"id\":2"));
        assert_eq!(
            header(&resp, "X-Rvz-Cache"),
            "hits=0;misses=2",
            "the symmetric family funnels into one engine run"
        );
        let (resp2, _) = svc.handle(&request("POST", "/sweep", body));
        assert_eq!(resp2.body, resp.body);
        assert_eq!(header(&resp2, "X-Rvz-Cache"), "hits=3;misses=0");
    }

    #[test]
    fn sweep_bytes_match_across_batch_and_single_resolution() {
        // The determinism contract across the batch-kernel routing: a
        // representative must produce identical bytes whether it
        // resolves inside a `/sweep` group, as a singleton batch via
        // `/first-contact`, or replays from the cache afterwards. The
        // far scenario exercises the window-table disproof; the near
        // ones the lane kernel proper.
        let body = r#"{"scenarios":[
            {"speed":0.5,"distance":0.9,"visibility":0.25},
            {"speed":0.75,"distance":1.2,"visibility":0.3},
            {"speed":0.6,"distance":400.0,"visibility":0.25}
        ]}"#;
        let cold = service();
        let (via_batch, _) = cold.handle(&request("POST", "/sweep", body));
        assert_eq!(via_batch.status, 200, "{}", via_batch.body);

        let warm = service();
        for single in [
            r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#,
            r#"{"speed":0.6,"distance":400.0,"visibility":0.25}"#,
        ] {
            let (resp, _) = warm.handle(&request("POST", "/first-contact", single));
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
        // This sweep mixes cache hits (seeded by the single-query
        // path) with one genuine batch-kernel miss.
        let (mixed, _) = warm.handle(&request("POST", "/sweep", body));
        assert_eq!(header(&mixed, "X-Rvz-Cache"), "hits=2;misses=1");
        assert_eq!(via_batch.body, mixed.body);
    }

    #[test]
    fn sweep_rejects_malformed_batches() {
        let svc = service();
        for body in [
            "",
            "{}",
            r#"{"scenarios":[]}"#,
            r#"{"scenarios":[{"speed":-1}]}"#,
            r#"{"scenarios":"many"}"#,
        ] {
            let (resp, _) = svc.handle(&request("POST", "/sweep", body));
            assert_eq!(resp.status, 400, "body {body:?} -> {}", resp.body);
        }
    }

    #[test]
    fn warm_misses_reuse_cached_programs() {
        // A horizon the reference lowering covers: the compiled path
        // engages. The durable guarantee is the shared *reference*
        // program — lowered once for the process no matter how many
        // orbits stream through or get evicted; partners are cached
        // per orbit but share the result cache's eviction, so an
        // evicted orbit re-lowers its (cheap) partner only.
        let svc = Service::new(ServiceOptions {
            sweep: SweepOptions {
                threads: 1,
                contact: rvz_sim::ContactOptions {
                    horizon: rvz_search::times::rounds_total(4),
                    max_steps: 100_000,
                    ..rvz_sim::ContactOptions::default()
                },
                ..SweepOptions::default()
            },
            // Capacity 1 with 1 shard: the second distinct orbit evicts
            // the first result, but programs live in their own cache.
            cache_capacity: 1,
            cache_shards: 1,
            ..ServiceOptions::default()
        });
        let body_a = r#"{"algorithm":"alg4","speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let body_b = r#"{"algorithm":"alg4","speed":0.75,"distance":0.9,"visibility":0.25}"#;
        let (first, _) = svc.handle(&request("POST", "/first-contact", body_a));
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(svc.program_stats().misses, 1, "first miss lowers a partner");
        assert_eq!(svc.reference_lowerings(), 1, "and the shared reference");
        let (_, _) = svc.handle(&request("POST", "/first-contact", body_b));
        // A second orbit lowers its own partner but *shares* the
        // reference program — the big arena is never lowered twice.
        assert_eq!(svc.program_stats().misses, 2);
        assert_eq!(svc.reference_lowerings(), 1, "reference must be shared");
        let (again, _) = svc.handle(&request("POST", "/first-contact", body_a));
        assert_eq!(header(&again, "X-Rvz-Cache"), "miss", "result was evicted");
        assert_eq!(again.body, first.body, "same query, same bytes");
        assert_eq!(
            svc.reference_lowerings(),
            1,
            "a warm miss re-runs the engine without re-lowering the reference"
        );
        // With capacity 1 the partner was evicted alongside its result:
        // the re-miss re-lowers the partner (and only the partner).
        assert_eq!(svc.program_stats().misses, 3);
        let (stats, _) = svc.handle(&request("GET", "/stats", ""));
        assert!(
            stats.body.contains("\"reference_lowerings\":1"),
            "{}",
            stats.body
        );
    }

    #[test]
    fn no_cache_mode_bypasses_the_cache() {
        let svc = Service::new(ServiceOptions {
            no_cache: true,
            ..test_options()
        });
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let (a, _) = svc.handle(&request("POST", "/first-contact", body));
        let (b, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(a.body, b.body);
        assert_eq!(header(&a, "X-Rvz-Cache"), "bypass");
        assert_eq!(header(&b, "X-Rvz-Cache"), "bypass");
        assert_eq!(svc.cache_stats().entries, 0);
    }

    #[test]
    fn unknown_paths_and_methods_are_distinguished() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/nope", ""));
        assert_eq!(resp.status, 404);
        let (resp, _) = svc.handle(&request("DELETE", "/sweep", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn shutdown_signals_the_control_flow() {
        let svc = service();
        let (resp, flow) = svc.handle(&request("POST", "/shutdown", ""));
        assert_eq!(flow, Control::Shutdown);
        assert!(resp.close);
        assert!(resp.body.contains("\"shutting_down\":true"));
    }

    #[test]
    fn deadline_outcomes_surface_and_are_never_cached() {
        // A zero budget expires before the first check boundary. The
        // scenario is the fully symmetric (infeasible) twin with a huge
        // horizon and pruning off, so every engine path has to *step*
        // its way forward — past the 1024-step check — rather than
        // resolving from envelopes or compiled strides.
        let options = || {
            let mut opts = test_options();
            opts.sweep.contact.prune = false;
            opts.sweep.contact.horizon = 1e9;
            opts
        };
        let mut opts = options();
        opts.deadline = Some(std::time::Duration::ZERO);
        let svc = Service::new(opts);
        let body = r#"{"speed":1,"distance":0.9,"visibility":0.25}"#;
        let (resp, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(
            resp.body.contains("\"outcome\":\"deadline\""),
            "{}",
            resp.body
        );
        assert_eq!(header(&resp, "X-Rvz-Cache"), "miss");
        // A deadline artifact must not answer the next request.
        let (again, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(header(&again, "X-Rvz-Cache"), "miss", "deadline was cached");
        assert_eq!(svc.cache_stats().entries, 0);

        // The same scenario without a deadline runs to its step budget
        // (no deadline token) and caches normally.
        let healthy = Service::new(options());
        let (resp, _) = healthy.handle(&request("POST", "/first-contact", body));
        assert!(
            !resp.body.contains("\"outcome\":\"deadline\""),
            "{}",
            resp.body
        );
        assert_eq!(healthy.cache_stats().entries, 1);
    }

    #[test]
    fn inflight_limit_sheds_with_503_and_retry_after() {
        use crate::faults::FaultPlan;
        let mut opts = test_options();
        opts.max_inflight = 1;
        opts.no_cache = true;
        // Every engine run sleeps 200ms, guaranteeing overlap.
        opts.faults = Some(FaultPlan {
            seed: 1,
            delay_rate: 1.0,
            delay_ms: 200,
            ..FaultPlan::default()
        });
        let svc = std::sync::Arc::new(Service::new(opts));
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let bg = {
            let svc = std::sync::Arc::clone(&svc);
            std::thread::spawn(move || {
                let (resp, _) = svc.handle(&request("POST", "/first-contact", body));
                resp.status
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        let (resp, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert_eq!(header(&resp, "Retry-After"), "1");
        assert!(resp.body.contains("in-flight"));
        assert_eq!(bg.join().unwrap(), 200, "the admitted request completes");
        assert_eq!(svc.shed_requests(), 1);
        // The slot was released: a fresh request is admitted again.
        let (resp, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(resp.status, 200);
    }

    fn header<'a>(resp: &'a Response, name: &str) -> &'a str {
        resp.extra_headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }

    #[test]
    fn snapshot_restore_serves_byte_identical_hits_without_engine_runs() {
        let dir = std::env::temp_dir().join(format!("rvz-svc-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        // A horizon the reference lowering covers, so the compiled
        // path engages and the program cache fills alongside results.
        let program_options = || ServiceOptions {
            sweep: SweepOptions {
                threads: 1,
                contact: rvz_sim::ContactOptions {
                    horizon: rvz_search::times::rounds_total(4),
                    max_steps: 100_000,
                    ..rvz_sim::ContactOptions::default()
                },
                ..SweepOptions::default()
            },
            ..ServiceOptions::default()
        };
        let svc = Service::new(program_options());
        let bodies: Vec<String> = [0.5f64, 0.625, 0.75]
            .iter()
            .map(|v| {
                format!(
                    "{{\"algorithm\":\"alg4\",\"speed\":{v},\"distance\":0.9,\"visibility\":0.25}}"
                )
            })
            .collect();
        let mut answers = Vec::new();
        for body in &bodies {
            let (resp, _) = svc.handle(&request("POST", "/first-contact", body));
            assert_eq!(resp.status, 200);
            assert_eq!(header(&resp, "X-Rvz-Cache"), "miss");
            answers.push(resp.body);
        }
        assert_eq!(svc.program_stats().entries, 3, "partners were cached");
        let entries = svc.write_snapshot_to(&path).unwrap();
        assert_eq!(
            entries,
            svc.cache_stats().entries + svc.program_stats().entries
        );

        // A fresh process: restore must be warm, and every previously
        // answered query must come back byte-identical as a cache hit
        // with zero engine runs (misses stay 0).
        let restored = Service::new(program_options());
        let outcome = restored.restore_from(&path);
        assert!(matches!(outcome, RestoreOutcome::Warm { .. }), "{outcome}");
        assert_eq!(restored.cache_stats().entries, svc.cache_stats().entries);
        assert_eq!(
            restored.program_stats().entries,
            svc.program_stats().entries,
            "program orbit keys restore as placeholders"
        );
        for (body, expected) in bodies.iter().zip(&answers) {
            let (resp, _) = restored.handle(&request("POST", "/first-contact", body));
            assert_eq!(
                &resp.body, expected,
                "restore is byte-identical to recompute"
            );
            assert_eq!(header(&resp, "X-Rvz-Cache"), "hit");
        }
        assert_eq!(
            restored.cache_stats().misses,
            0,
            "no engine ran after restore"
        );

        let (stats, _) = restored.handle(&request("GET", "/stats", ""));
        assert!(
            stats.body.contains("\"restore\":\"warm\""),
            "{}",
            stats.body
        );
        assert!(
            stats.body.contains("\"restored_entries\":6"),
            "{}",
            stats.body
        );

        // A service under *different* engine options must refuse the
        // snapshot (cold) rather than serve non-reproducible bytes.
        let mut skewed = program_options();
        skewed.sweep.contact.max_steps += 1;
        let cold = Service::new(skewed);
        let outcome = cold.restore_from(&path);
        assert!(matches!(outcome, RestoreOutcome::Cold { .. }), "{outcome}");
        assert_eq!(cold.cache_stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_restore_preserves_eviction_order_across_processes() {
        let dir = std::env::temp_dir().join(format!("rvz-svc-lru-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        // A tiny single-shard cache so recency is observable through
        // eviction.
        let mut opts = test_options();
        opts.cache_capacity = 3;
        opts.cache_shards = 1;
        let svc = Service::new(opts);
        let body = |v: f64| format!("{{\"speed\":{v},\"distance\":0.9,\"visibility\":0.25}}");
        for v in [0.5, 0.625, 0.75] {
            svc.handle(&request("POST", "/first-contact", &body(v)));
        }
        // Refresh the oldest entry so it is MRU at snapshot time.
        svc.handle(&request("POST", "/first-contact", &body(0.5)));
        svc.write_snapshot_to(&path).unwrap();

        let mut opts = test_options();
        opts.cache_capacity = 3;
        opts.cache_shards = 1;
        let restored = Service::new(opts);
        restored.restore_from(&path);
        // A new insert must evict the restored LRU (0.625), not the
        // refreshed 0.5: recency order survived the round trip.
        restored.handle(&request("POST", "/first-contact", &body(0.875)));
        let (resp, _) = restored.handle(&request("POST", "/first-contact", &body(0.5)));
        assert_eq!(header(&resp, "X-Rvz-Cache"), "hit", "MRU survived");
        let (resp, _) = restored.handle(&request("POST", "/first-contact", &body(0.625)));
        assert_eq!(header(&resp, "X-Rvz-Cache"), "miss", "LRU was evicted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_report_durability_defaults_when_snapshots_are_off() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/stats", ""));
        assert!(resp.body.contains("\"durability\""), "{}", resp.body);
        assert!(resp.body.contains("\"restore\":\"none\""), "{}", resp.body);
        assert!(resp.body.contains("\"snapshot_age_s\":-1"), "{}", resp.body);
    }

    #[test]
    fn stats_report_uptime_build_and_shed_causes() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/stats", ""));
        assert!(resp.body.contains("\"uptime_s\""), "{}", resp.body);
        assert!(resp.body.contains("\"build\""), "{}", resp.body);
        assert!(
            resp.body.contains("\"engine_fingerprint\""),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("\"queue_depth\":-1"), "{}", resp.body);
        assert!(resp.body.contains("\"shed_by_cause\""), "{}", resp.body);
    }

    #[test]
    fn every_response_carries_a_trace_id_and_echoes_the_clients() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/healthz", ""));
        let trace = header(&resp, "X-Rvz-Trace");
        assert_eq!(trace.len(), 16, "trace ID is 16 hex digits: {trace}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));

        // A well-formed client trace ID is echoed verbatim.
        let mut req = request("GET", "/healthz", "");
        req.headers
            .insert("x-rvz-trace".to_string(), "00000000deadbeef".to_string());
        let (resp, _) = svc.handle(&req);
        assert_eq!(header(&resp, "X-Rvz-Trace"), "00000000deadbeef");

        // A malformed one falls back to the deterministic sequence.
        let mut req = request("GET", "/healthz", "");
        req.headers
            .insert("x-rvz-trace".to_string(), "not-a-trace".to_string());
        let (resp, _) = svc.handle(&req);
        assert_ne!(header(&resp, "X-Rvz-Trace"), "not-a-trace");
        assert_eq!(header(&resp, "X-Rvz-Trace").len(), 16);
    }

    #[test]
    fn metrics_endpoint_serves_the_exposition() {
        let svc = service();
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let (resp, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(resp.status, 200);
        let (scrape, _) = svc.handle(&request("GET", "/metrics", ""));
        assert_eq!(scrape.status, 200, "{}", scrape.body);
        assert_eq!(scrape.content_type, "text/plain; version=0.0.4");
        // Every family the service can emit is present from the first
        // scrape (preregistered), even those with zero increments.
        for family in [
            "# TYPE rvz_requests_total counter",
            "# TYPE rvz_request_duration_us histogram",
            "rvz_responses_total{status=\"200\"}",
            "rvz_cache_requests_total{outcome=\"miss\"}",
            "rvz_engine_queries_total",
            "rvz_faults_injected_total",
            "rvz_shed_total{cause=\"max_inflight\"}",
        ] {
            assert!(scrape.body.contains(family), "scrape missing {family}");
        }
        // Method guard: the observability endpoints are GET-only.
        let (resp, _) = svc.handle(&request("POST", "/metrics", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn trace_recent_serves_the_flight_recorder() {
        let svc = service();
        // The handle() wrapper records a "request" span per request.
        let (resp, _) = svc.handle(&request("GET", "/healthz", ""));
        assert_eq!(resp.status, 200);
        let (resp, _) = svc.handle(&request("GET", "/trace/recent?n=5", ""));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = rvz_experiments::json::parse(&resp.body).unwrap();
        let events = parsed
            .get("events")
            .and_then(Json::as_array)
            .expect("events array");
        assert!(events.len() <= 5, "?n= caps the event count");
        assert!(!events.is_empty(), "the healthz request recorded a span");
        for e in events {
            for key in ["span", "trace", "start_us", "dur_us", "thread", "depth"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
            }
        }
    }

    #[test]
    fn no_metrics_responses_are_byte_identical_and_endpoints_hidden() {
        let on = Service::new(test_options());
        let off = Service::new(ServiceOptions {
            no_metrics: true,
            ..test_options()
        });
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        // Identical request sequences: every byte of every response —
        // body, status, and headers including X-Rvz-Trace — agrees.
        for req in [
            request("POST", "/first-contact", body),
            request("POST", "/first-contact", body),
            request("GET", "/feasibility?tau=0.5", ""),
            request("GET", "/healthz", ""),
        ] {
            let (a, _) = on.handle(&req);
            let (b, _) = off.handle(&req);
            assert_eq!(a.status, b.status, "{}", req.path);
            assert_eq!(a.body, b.body, "{}", req.path);
            assert_eq!(a.extra_headers, b.extra_headers, "{}", req.path);
        }
        // The observability endpoints answer exactly like unknown paths.
        let (unknown, _) = off.handle(&request("GET", "/no-such-endpoint", ""));
        for path in ["/metrics", "/trace/recent"] {
            let (hidden, _) = off.handle(&request("GET", path, ""));
            assert_eq!(hidden.status, 404, "{path}");
            assert_eq!(hidden.body, unknown.body, "{path}");
            assert_eq!(hidden.content_type, unknown.content_type, "{path}");
        }
    }
}
