//! The query service: endpoint dispatch over the `Scenario → canonical
//! key → cache → engine` pipeline.
//!
//! ## Determinism contract
//!
//! Every response body is a pure function of the request. A cache miss
//! simulates the query's **canonical representative** (a pure function
//! of the query, see [`rvz_experiments::canonicalize`]) under the
//! service's fixed engine options, then maps the outcome back through
//! the orbit's inverse transform; a cache hit returns the stored value
//! of that same computation. Identical requests therefore produce
//! byte-identical JSON regardless of worker count, arrival order or
//! cache state. Mutable observability (hit/miss markers, counters)
//! lives in the `X-Rvz-Cache` response header and the `/stats`
//! endpoint, never in a result body.
//!
//! ## Engine-frame semantics
//!
//! The engine options (horizon, tolerance, step budget) apply **in the
//! canonical frame**: two orbit-mates share one cache entry exactly
//! because they share one canonical simulation, so a query whose
//! description is the `τ`-scaled twin of the representative sees the
//! horizon scaled by the same `τ` its times are. This is the
//! cache-coherence argument from attribute symmetry: the orbit is
//! served by *one* answer, transported along the symmetry.

use crate::cache::{CacheStats, ResultCache};
use crate::http::{Request, Response};
use rvz_experiments::{
    breaker_token, orbit_key, record_to_json, run_sweep, scenario_from_json, Json, Scenario,
    Summary, SweepOptions, SweepRecord, DEFAULT_GRID,
};
use rvz_model::{feasibility, Chirality, RobotAttributes};
use rvz_sim::SimOutcome;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOptions {
    /// Maximum resident cache entries (across all shards).
    pub cache_capacity: usize,
    /// Shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Canonicalization grid step (snapped to a power of two;
    /// `≤ 0` for bit-exact keys). Defaults to [`DEFAULT_GRID`].
    pub cache_grid: f64,
    /// Disables the cache entirely: every request simulates its
    /// canonical representative (the A/B baseline for `rvz loadtest`).
    pub no_cache: bool,
    /// Engine options and batch thread count for cache misses.
    pub sweep: SweepOptions,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_capacity: 65_536,
            cache_shards: 16,
            cache_grid: DEFAULT_GRID,
            no_cache: false,
            sweep: SweepOptions::default(),
        }
    }
}

/// What the connection loop should do after sending the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Begin graceful shutdown (a `/shutdown` request was accepted).
    Shutdown,
}

/// The shared, thread-safe query service.
pub struct Service {
    opts: ServiceOptions,
    cache: ResultCache<SimOutcome>,
    requests: AtomicU64,
}

impl Service {
    /// Creates a service with the given tuning.
    pub fn new(opts: ServiceOptions) -> Self {
        Service {
            cache: ResultCache::new(opts.cache_capacity, opts.cache_shards),
            opts,
            requests: AtomicU64::new(0),
        }
    }

    /// The configured options.
    pub fn options(&self) -> &ServiceOptions {
        &self.opts
    }

    /// Cache counters (also served under `/stats`).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Dispatches one request.
    pub fn handle(&self, req: &Request) -> (Response, Control) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::ok(Json::obj(vec![("ok", Json::Bool(true))]).render()),
            ("GET", "/stats") => self.stats_response(),
            ("GET", "/feasibility") => self.feasibility_from_query(req),
            ("POST", "/feasibility") => self.feasibility_from_body(req),
            ("POST", "/first-contact") => self.first_contact(req),
            ("POST", "/sweep") => self.sweep(req),
            ("POST", "/shutdown") => {
                let body = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("shutting_down", Json::Bool(true)),
                ])
                .render();
                let mut resp = Response::ok(body);
                resp.close = true;
                return (resp, Control::Shutdown);
            }
            (
                _,
                "/healthz" | "/stats" | "/feasibility" | "/first-contact" | "/sweep" | "/shutdown",
            ) => Response::error(405, "method not allowed for this endpoint"),
            _ => Response::error(404, "no such endpoint"),
        };
        (response, Control::Continue)
    }

    fn stats_response(&self) -> Response {
        let stats = self.cache.stats();
        let body = Json::obj(vec![
            (
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(!self.opts.no_cache)),
                    ("entries", Json::Num(stats.entries as f64)),
                    ("capacity", Json::Num(self.opts.cache_capacity as f64)),
                    ("hits", Json::Num(stats.hits as f64)),
                    ("misses", Json::Num(stats.misses as f64)),
                    ("evictions", Json::Num(stats.evictions as f64)),
                    ("joined", Json::Num(stats.joined as f64)),
                    ("grid", Json::Num(self.opts.cache_grid)),
                ]),
            ),
        ])
        .render();
        Response::ok(body)
    }

    fn feasibility_from_query(&self, req: &Request) -> Response {
        let parse_f64 = |key: &str, default: f64| -> Result<f64, String> {
            match req.query_value(key) {
                None => Ok(default),
                Some(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| format!("query parameter `{key}` expects a number, got `{raw}`")),
            }
        };
        let attrs = (|| -> Result<RobotAttributes, String> {
            // A typo'd parameter must not silently answer for the
            // default scenario (same contract as the CLI's flag registry).
            if let Some((unknown, _)) = req
                .query
                .iter()
                .find(|(k, _)| !matches!(k.as_str(), "v" | "tau" | "phi" | "chi"))
            {
                return Err(format!(
                    "unknown query parameter `{unknown}` (expected v, tau, phi, chi)"
                ));
            }
            let v = parse_f64("v", 1.0)?;
            let tau = parse_f64("tau", 1.0)?;
            let phi = parse_f64("phi", 0.0)?;
            let chi = match req.query_value("chi") {
                None => Chirality::Consistent,
                Some(raw) => rvz_experiments::parse_chirality(raw)?,
            };
            if !(v > 0.0 && v.is_finite() && tau > 0.0 && tau.is_finite()) {
                return Err("`v` and `tau` must be positive and finite".into());
            }
            if !phi.is_finite() {
                return Err("`phi` must be finite".into());
            }
            Ok(RobotAttributes::new(v, tau, phi, chi))
        })();
        match attrs {
            Ok(attrs) => self.feasibility_response(&attrs),
            Err(e) => Response::error(400, &e),
        }
    }

    fn feasibility_from_body(&self, req: &Request) -> Response {
        match parse_body(&req.body).and_then(|json| scenario_from_json(&json)) {
            Ok(scenario) => self.feasibility_response(&scenario.attributes()),
            Err(e) => Response::error(400, &e),
        }
    }

    fn feasibility_response(&self, attrs: &RobotAttributes) -> Response {
        let verdict = feasibility(attrs);
        // The verdict-level orbit: the full attribute quotient under
        // which the answer is provably constant.
        let probe = Scenario {
            speed: attrs.speed(),
            time_unit: attrs.time_unit(),
            orientation: attrs.orientation(),
            chirality: attrs.chirality(),
            ..reference_scenario()
        };
        let orbit = orbit_key(&probe, self.opts.cache_grid);
        let body = Json::obj(vec![
            (
                "attributes",
                Json::obj(vec![
                    ("speed", Json::Num(attrs.speed())),
                    ("time_unit", Json::Num(attrs.time_unit())),
                    ("orientation", Json::Num(attrs.orientation())),
                    ("chirality", Json::Str(attrs.chirality().to_string())),
                ]),
            ),
            ("feasible", Json::Bool(verdict.is_feasible())),
            ("breaker", Json::Str(breaker_token(&verdict).to_string())),
            ("verdict", Json::Str(verdict.to_string())),
            (
                "orbit",
                Json::obj(vec![
                    ("time_unit", Json::Num(f64::from_bits(orbit.time_unit))),
                    ("speed", Json::Num(f64::from_bits(orbit.speed))),
                    ("orientation", Json::Num(f64::from_bits(orbit.orientation))),
                    ("chirality", Json::Str(orbit.chirality.to_string())),
                ]),
            ),
        ])
        .render();
        Response::ok(body)
    }

    /// Answers one scenario through the canonical cache; returns the
    /// record, the canonical reduction it travelled through, and
    /// whether the outcome came from the cache.
    fn answer(&self, scenario: &Scenario) -> (SweepRecord, rvz_experiments::Canonical, bool) {
        let canonical = scenario.canonicalize(self.opts.cache_grid);
        let (outcome, hit) = if self.opts.no_cache {
            (self.simulate(&canonical.scenario), false)
        } else {
            self.cache
                .get_or_compute(canonical.key, || self.simulate(&canonical.scenario))
        };
        let record = SweepRecord {
            scenario: *scenario,
            feasibility: feasibility(&scenario.attributes()),
            outcome: canonical.transform.apply(outcome),
        };
        (record, canonical, hit)
    }

    fn simulate(&self, canonical: &Scenario) -> SimOutcome {
        let single = SweepOptions {
            threads: 1,
            ..self.opts.sweep
        };
        run_sweep(std::slice::from_ref(canonical), &single)[0].outcome
    }

    fn first_contact(&self, req: &Request) -> Response {
        let scenario = match parse_body(&req.body).and_then(|json| scenario_from_json(&json)) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };
        let (record, canonical, hit) = self.answer(&scenario);
        let body = Json::obj(vec![
            ("record", record_to_json(&record)),
            (
                "canonical",
                Json::obj(vec![
                    ("swapped", Json::Bool(canonical.swapped)),
                    ("time_scale", Json::Num(canonical.transform.time_scale)),
                    (
                        "distance_scale",
                        Json::Num(canonical.transform.distance_scale),
                    ),
                ]),
            ),
        ])
        .render();
        Response::ok(body).header("X-Rvz-Cache", cache_marker(self.opts.no_cache, hit))
    }

    fn sweep(&self, req: &Request) -> Response {
        let scenarios = match parse_body(&req.body).and_then(|json| {
            let list = json
                .get("scenarios")
                .and_then(Json::as_array)
                .ok_or("body must be {\"scenarios\": [...]}")?
                .to_vec();
            if list.is_empty() {
                return Err("`scenarios` must be non-empty".into());
            }
            list.iter()
                .enumerate()
                .map(|(i, v)| {
                    let mut s = scenario_from_json(v).map_err(|e| format!("scenario #{i}: {e}"))?;
                    if v.get("id").is_none() {
                        s.id = i as u64;
                    }
                    Ok(s)
                })
                .collect::<Result<Vec<Scenario>, String>>()
        }) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };

        // Resolve each scenario against the cache; batch the distinct
        // missing representatives through one `run_sweep` call. Probes
        // bypass the per-lookup counters so that `misses` keeps meaning
        // "engine runs" — orbit-mates deduped within the batch count as
        // one miss, which is also what the response header reports.
        let canonicals: Vec<_> = scenarios
            .iter()
            .map(|s| s.canonicalize(self.opts.cache_grid))
            .collect();
        let mut outcomes: Vec<Option<SimOutcome>> = vec![None; scenarios.len()];
        let mut hits = 0u64;
        if !self.opts.no_cache {
            for (i, c) in canonicals.iter().enumerate() {
                if let Some(outcome) = self.cache.probe(&c.key) {
                    outcomes[i] = Some(outcome);
                    hits += 1;
                }
            }
        }
        let mut missing: Vec<Scenario> = Vec::new();
        let mut missing_index: std::collections::HashMap<rvz_experiments::CacheKey, usize> =
            std::collections::HashMap::new();
        for (i, c) in canonicals.iter().enumerate() {
            if outcomes[i].is_none() && !missing_index.contains_key(&c.key) {
                missing_index.insert(c.key, missing.len());
                let mut rep = c.scenario;
                rep.id = missing.len() as u64;
                missing.push(rep);
            }
        }
        let misses = missing.len() as u64;
        if !self.opts.no_cache {
            self.cache.record(hits, misses);
        }
        if !missing.is_empty() {
            let computed = run_sweep(&missing, &self.opts.sweep);
            for (key, &j) in &missing_index {
                if !self.opts.no_cache {
                    self.cache.insert(*key, computed[j].outcome);
                }
            }
            for (i, c) in canonicals.iter().enumerate() {
                if outcomes[i].is_none() {
                    let j = *missing_index.get(&c.key).expect("every miss was batched");
                    outcomes[i] = Some(computed[j].outcome);
                }
            }
        }

        let records: Vec<SweepRecord> = scenarios
            .iter()
            .zip(&canonicals)
            .zip(&outcomes)
            .map(|((s, c), outcome)| SweepRecord {
                scenario: *s,
                feasibility: feasibility(&s.attributes()),
                outcome: c.transform.apply(outcome.expect("resolved above")),
            })
            .collect();
        let summary = Summary::from_records(&records);
        let body = Json::obj(vec![
            (
                "records",
                Json::Arr(records.iter().map(record_to_json).collect()),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("total", Json::Num(summary.total as f64)),
                    ("contacts", Json::Num(summary.contacts as f64)),
                    ("horizons", Json::Num(summary.horizons as f64)),
                    ("step_budgets", Json::Num(summary.step_budgets as f64)),
                    ("consistent", Json::Num(summary.consistent as f64)),
                ]),
            ),
        ])
        .render();
        Response::ok(body).header("X-Rvz-Cache", &format!("hits={hits};misses={misses}"))
    }
}

fn cache_marker(no_cache: bool, hit: bool) -> &'static str {
    match (no_cache, hit) {
        (true, _) => "bypass",
        (false, true) => "hit",
        (false, false) => "miss",
    }
}

fn reference_scenario() -> Scenario {
    rvz_experiments::ScenarioGrid::new().build()[0]
}

fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body must be UTF-8".to_string())?;
    if text.trim().is_empty() {
        // An absent body denotes the all-defaults query.
        return Ok(Json::Obj(Vec::new()));
    }
    rvz_experiments::json::parse(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn request(method: &str, path: &str, body: &str) -> Request {
        let (path, query_string) = path.split_once('?').unwrap_or((path, ""));
        let query = query_string
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| {
                let (k, v) = p.split_once('=').unwrap_or((p, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn test_options() -> ServiceOptions {
        // Cheap engine settings so unit tests stay fast.
        ServiceOptions {
            sweep: SweepOptions {
                threads: 1,
                contact: rvz_sim::ContactOptions {
                    max_steps: 20_000,
                    horizon: rvz_core::completion_time(6),
                    ..SweepOptions::default().contact
                },
            },
            ..ServiceOptions::default()
        }
    }

    fn service() -> Service {
        Service::new(test_options())
    }

    #[test]
    fn healthz_and_stats_respond() {
        let svc = service();
        let (resp, flow) = svc.handle(&request("GET", "/healthz", ""));
        assert_eq!((resp.status, flow), (200, Control::Continue));
        assert_eq!(resp.body, r#"{"ok":true}"#);
        let (resp, _) = svc.handle(&request("GET", "/stats", ""));
        assert!(resp.body.contains("\"requests\":2"));
        assert!(resp.body.contains("\"enabled\":true"));
    }

    #[test]
    fn feasibility_get_matches_theorem4() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/feasibility?tau=0.5", ""));
        assert!(resp.body.contains("\"feasible\":true"));
        assert!(resp.body.contains("\"breaker\":\"clocks\""));
        let (resp, _) = svc.handle(&request("GET", "/feasibility", ""));
        assert!(resp.body.contains("\"feasible\":false"));
        // The reciprocal clock lands in the same verdict orbit.
        let (a, _) = svc.handle(&request("GET", "/feasibility?tau=0.5", ""));
        let (b, _) = svc.handle(&request("GET", "/feasibility?tau=2", ""));
        let orbit = |body: &str| body.split("\"orbit\"").nth(1).unwrap().to_string();
        assert_eq!(orbit(&a.body), orbit(&b.body));
    }

    #[test]
    fn feasibility_rejects_bad_input_without_panicking() {
        let svc = service();
        for query in [
            "/feasibility?v=-1",
            "/feasibility?v=zoom",
            "/feasibility?tau=0",
            "/feasibility?phi=inf",
            "/feasibility?chi=2",
            // A typo'd key must not silently answer the default query.
            "/feasibility?taw=0.5",
        ] {
            let (resp, _) = svc.handle(&request("GET", query, ""));
            assert_eq!(resp.status, 400, "query {query}");
        }
        let (resp, _) = svc.handle(&request("POST", "/feasibility", "{\"speed\":-3}"));
        assert_eq!(resp.status, 400);
        let (resp, _) = svc.handle(&request("POST", "/feasibility", "not json"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn first_contact_is_deterministic_and_caches_twins() {
        let svc = service();
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let (first, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(first.status, 200);
        assert!(first.body.contains("\"outcome\":\"contact\""));
        assert_eq!(header(&first, "X-Rvz-Cache"), "miss");

        let (again, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(again.body, first.body, "identical queries, identical bytes");
        assert_eq!(header(&again, "X-Rvz-Cache"), "hit");

        // The role-swapped twin: same orbit, one cache entry, outcome
        // mapped through the inverse transform (v·τ = 0.5 here).
        let scenario =
            rvz_experiments::scenario_from_json(&rvz_experiments::json::parse(body).unwrap())
                .unwrap();
        let (twin, transform) = scenario.role_swap();
        let twin_body = format!(
            concat!(
                "{{\"speed\":{},\"time_unit\":{},\"orientation\":{},\"chirality\":\"{}\",",
                "\"distance\":{},\"bearing\":{},\"visibility\":{}}}"
            ),
            twin.speed,
            twin.time_unit,
            twin.orientation,
            twin.chirality,
            twin.distance,
            twin.bearing,
            twin.visibility,
        );
        let (resp, _) = svc.handle(&request("POST", "/first-contact", &twin_body));
        assert_eq!(
            header(&resp, "X-Rvz-Cache"),
            "hit",
            "the symmetric twin must resolve to the same cache entry"
        );
        assert!(resp.body.contains("\"swapped\":true") || transform.is_identity());
        let stats = svc.cache_stats();
        assert_eq!(stats.entries, 1, "one orbit, one entry");
    }

    #[test]
    fn sweep_batches_and_dedups_symmetric_families() {
        let svc = service();
        // Scenario #1 is the role-swap twin of scenario #0 (v·τ = 0.5,
        // bearing π/3 + π); scenario #2 is a genuinely different cell.
        let body = r#"{"scenarios":[
            {"speed":0.5,"distance":0.9,"visibility":0.25},
            {"speed":2,"distance":1.8,"visibility":0.5,"bearing":4.188790204786391},
            {"speed":0.5,"distance":0.9,"visibility":0.25,"bearing":2.0}
        ]}"#;
        let (resp, _) = svc.handle(&request("POST", "/sweep", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"total\":3"));
        // Records come back in query order with dense default ids.
        assert!(resp.body.contains("\"id\":0"));
        assert!(resp.body.contains("\"id\":2"));
        assert_eq!(
            header(&resp, "X-Rvz-Cache"),
            "hits=0;misses=2",
            "the symmetric family funnels into one engine run"
        );
        let (resp2, _) = svc.handle(&request("POST", "/sweep", body));
        assert_eq!(resp2.body, resp.body);
        assert_eq!(header(&resp2, "X-Rvz-Cache"), "hits=3;misses=0");
    }

    #[test]
    fn sweep_rejects_malformed_batches() {
        let svc = service();
        for body in [
            "",
            "{}",
            r#"{"scenarios":[]}"#,
            r#"{"scenarios":[{"speed":-1}]}"#,
            r#"{"scenarios":"many"}"#,
        ] {
            let (resp, _) = svc.handle(&request("POST", "/sweep", body));
            assert_eq!(resp.status, 400, "body {body:?} -> {}", resp.body);
        }
    }

    #[test]
    fn no_cache_mode_bypasses_the_cache() {
        let svc = Service::new(ServiceOptions {
            no_cache: true,
            ..test_options()
        });
        let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;
        let (a, _) = svc.handle(&request("POST", "/first-contact", body));
        let (b, _) = svc.handle(&request("POST", "/first-contact", body));
        assert_eq!(a.body, b.body);
        assert_eq!(header(&a, "X-Rvz-Cache"), "bypass");
        assert_eq!(header(&b, "X-Rvz-Cache"), "bypass");
        assert_eq!(svc.cache_stats().entries, 0);
    }

    #[test]
    fn unknown_paths_and_methods_are_distinguished() {
        let svc = service();
        let (resp, _) = svc.handle(&request("GET", "/nope", ""));
        assert_eq!(resp.status, 404);
        let (resp, _) = svc.handle(&request("DELETE", "/sweep", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn shutdown_signals_the_control_flow() {
        let svc = service();
        let (resp, flow) = svc.handle(&request("POST", "/shutdown", ""));
        assert_eq!(flow, Control::Shutdown);
        assert!(resp.close);
        assert!(resp.body.contains("\"shutting_down\":true"));
    }

    fn header<'a>(resp: &'a Response, name: &str) -> &'a str {
        resp.extra_headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }
}
