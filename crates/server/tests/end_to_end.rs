//! End-to-end tests of the serve stack over real loopback sockets:
//! spawn, query concurrently, assert determinism and orbit collapse,
//! shut down gracefully.

use rvz_experiments::SweepOptions;
use rvz_server::{client, HttpClient, Service, ServiceOptions};
use std::sync::Arc;

fn test_options() -> ServiceOptions {
    ServiceOptions {
        sweep: SweepOptions {
            threads: 1,
            contact: rvz_sim::ContactOptions {
                max_steps: 20_000,
                horizon: rvz_core::completion_time(6),
                ..SweepOptions::default().contact
            },
            ..SweepOptions::default()
        },
        ..ServiceOptions::default()
    }
}

fn start(workers: usize) -> rvz_server::ServerHandle {
    rvz_server::spawn("127.0.0.1:0", Service::new(test_options()), workers)
        .expect("bind an ephemeral port")
}

#[test]
fn health_stats_and_feasibility_over_the_wire() {
    let server = start(2);
    let addr = server.addr().to_string();

    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, r#"{"ok":true}"#);

    let verdict = client::request(&addr, "GET", "/feasibility?tau=0.5&v=1", None).unwrap();
    assert_eq!(verdict.status, 200);
    assert!(verdict.body.contains("\"breaker\":\"clocks\""));

    let stats = client::request(&addr, "GET", "/stats", None).unwrap();
    assert!(stats.body.contains("\"requests\":"));

    server.shutdown();
}

#[test]
fn metrics_scrape_and_trace_ids_over_the_wire() {
    let server = start(2);
    let addr = server.addr().to_string();

    let resp = client::request(&addr, "GET", "/feasibility?tau=0.5", None).unwrap();
    assert_eq!(resp.status, 200);
    let trace = resp
        .header("x-rvz-trace")
        .expect("every response is traced");
    assert_eq!(trace.len(), 16, "trace: {trace}");
    assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));

    let scrape = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(scrape.status, 200);
    assert_eq!(
        scrape.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    for family in [
        "rvz_requests_total",
        "rvz_request_duration_us",
        "rvz_cache_requests_total",
        "rvz_engine_queries_total",
        "rvz_uptime_seconds",
    ] {
        assert!(scrape.body.contains(family), "scrape missing {family}");
    }

    let traces = client::request(&addr, "GET", "/trace/recent?n=8", None).unwrap();
    assert_eq!(traces.status, 200);
    assert!(traces.body.contains("\"events\":"), "{}", traces.body);

    server.shutdown();
}

#[test]
fn keep_alive_connections_serve_many_requests() {
    let server = start(2);
    let mut conn = HttpClient::connect(&server.addr().to_string()).unwrap();
    for i in 0..20 {
        let resp = conn
            .request("GET", "/feasibility?v=0.5", None)
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"breaker\":\"speeds\""));
    }
    server.shutdown();
}

#[test]
fn concurrent_identical_queries_return_byte_identical_json() {
    let server = start(8);
    let addr = Arc::new(server.addr().to_string());
    let body = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;

    let mut handles = Vec::new();
    for _ in 0..8 {
        let addr = Arc::clone(&addr);
        handles.push(std::thread::spawn(move || {
            let mut conn = HttpClient::connect(&addr).unwrap();
            (0..5)
                .map(|_| {
                    let resp = conn.request("POST", "/first-contact", Some(body)).unwrap();
                    assert_eq!(resp.status, 200);
                    resp.body
                })
                .collect::<Vec<String>>()
        }));
    }
    let mut bodies: Vec<String> = Vec::new();
    for h in handles {
        bodies.extend(h.join().unwrap());
    }
    let first = &bodies[0];
    assert!(first.contains("\"outcome\":\"contact\""));
    assert!(
        bodies.iter().all(|b| b == first),
        "responses differ across threads"
    );

    // Single-flight plus cache: 40 identical queries, one engine run.
    let stats = server.service().cache_stats();
    assert_eq!(stats.misses, 1, "engine ran more than once: {stats:?}");
    assert_eq!(stats.entries, 1);

    server.shutdown();
}

#[test]
fn symmetric_twins_hit_one_cache_entry_over_the_wire() {
    let server = start(2);
    let addr = server.addr().to_string();

    // v·τ = 0.75: the twin description is (v=4/3, d=1.2, r=1/3, β=β₀+π).
    let base = r#"{"speed":0.75,"distance":0.9,"visibility":0.25,"bearing":0.5}"#;
    let twin = format!(
        r#"{{"speed":{},"distance":{},"visibility":{},"bearing":{}}}"#,
        1.0 / 0.75,
        0.9 / 0.75,
        0.25 / 0.75,
        0.5 + std::f64::consts::PI,
    );

    let first = client::request(&addr, "POST", "/first-contact", Some(base)).unwrap();
    assert_eq!(first.header("x-rvz-cache"), Some("miss"));
    let second = client::request(&addr, "POST", "/first-contact", Some(&twin)).unwrap();
    assert_eq!(
        second.header("x-rvz-cache"),
        Some("hit"),
        "the role-swapped twin must share the cache entry"
    );
    assert!(second.body.contains("\"swapped\":true") || first.body.contains("\"swapped\":true"));

    // The twin's answer is the base answer transported along the
    // symmetry: time × τ (= 1 here ⇒ equal times), distance × v·τ.
    let time = |body: &str| -> f64 {
        body.split("\"time\":")
            .nth(1)
            .unwrap()
            .split([',', '}'])
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let (t_base, t_twin) = (time(&first.body), time(&second.body));
    assert!(
        (t_base - t_twin).abs() <= 1e-9 * (1.0 + t_base),
        "τ = 1 twins must report identical times, got {t_base} vs {t_twin}"
    );

    assert_eq!(server.service().cache_stats().entries, 1);
    server.shutdown();
}

#[test]
fn sweep_endpoint_batches_over_the_wire() {
    let server = start(2);
    let addr = server.addr().to_string();
    let body = r#"{"scenarios":[
        {"speed":0.5,"distance":0.9,"visibility":0.25},
        {"time_unit":0.6,"distance":0.9,"visibility":0.25}
    ]}"#;
    let resp = client::request(&addr, "POST", "/sweep", Some(body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"total\":2"));
    assert!(resp.body.contains("\"consistent\":2"));
    assert_eq!(resp.header("x-rvz-cache"), Some("hits=0;misses=2"));

    // Every record in the response is valid sink-schema JSON.
    let parsed = rvz_experiments::json::parse(&resp.body).unwrap();
    let records = parsed.get("records").and_then(|r| r.as_array()).unwrap();
    assert_eq!(records.len(), 2);
    for record in records {
        rvz_experiments::record_from_json(record).expect("wire records parse as sink records");
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_json_errors_not_crashes() {
    let server = start(1);
    let addr = server.addr().to_string();
    let resp = client::request(&addr, "POST", "/first-contact", Some("{\"speed\":-2}")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"error\""));
    let resp = client::request(&addr, "GET", "/no-such", None).unwrap();
    assert_eq!(resp.status, 404);
    // The server is still healthy afterwards.
    let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn post_shutdown_stops_the_server_gracefully() {
    let server = start(4);
    let addr = server.addr().to_string();

    let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);

    let resp = client::request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"shutting_down\":true"));
    assert_eq!(resp.header("connection"), Some("close"));

    // All threads exit; afterwards the port no longer accepts work.
    server.join();
    let refused = client::request(&addr, "GET", "/healthz", None);
    assert!(
        refused.is_err() || refused.unwrap().status == 0,
        "listener should be gone after graceful shutdown"
    );
}
