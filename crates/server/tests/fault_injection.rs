//! Deterministic fault-injection tests of the serve stack, driven by
//! seeded [`rvz_server::FaultPlan`]s over real loopback sockets: worker
//! panics (queue-lock poisoning), handler panics, cache-compute
//! failures, connection resets, queue overflow shedding, and the drain
//! deadline. Every plan here uses rate `1.0` with a `limit`, so the
//! injected faults are exactly the first `limit` visits to the site —
//! fully deterministic regardless of seed or interleaving.

use rvz_experiments::SweepOptions;
use rvz_server::{client, FaultPlan, HttpClient, Service, ServiceOptions};
use rvz_server::{spawn_with, ServerHandle, ServerOptions};
use std::time::Duration;

const BODY: &str = r#"{"speed":0.5,"distance":0.9,"visibility":0.25}"#;

fn service_options() -> ServiceOptions {
    ServiceOptions {
        sweep: SweepOptions {
            threads: 1,
            contact: rvz_sim::ContactOptions {
                max_steps: 20_000,
                horizon: rvz_core::completion_time(6),
                ..SweepOptions::default().contact
            },
            ..SweepOptions::default()
        },
        ..ServiceOptions::default()
    }
}

fn start(service: ServiceOptions, server: &ServerOptions) -> ServerHandle {
    spawn_with("127.0.0.1:0", Service::new(service), server).expect("bind an ephemeral port")
}

/// One fault plan: rate 1.0 at a single site, capped at `limit` shots.
fn one_site(site: &str, limit: u64) -> FaultPlan {
    FaultPlan::parse(&format!("seed=42,{site}=1,limit={limit}")).unwrap()
}

#[test]
fn worker_panic_poisons_the_queue_but_the_server_keeps_answering() {
    // Regression for the pool death spiral: a worker that panics while
    // holding the queue lock poisons it; survivors must recover the
    // lock instead of unwinding one after another.
    let server = start(
        service_options(),
        &ServerOptions {
            workers: 2,
            faults: Some(one_site("worker_panic", 1)),
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();

    // The first pop panics with the connection in hand: its client sees
    // a clean close before any status line.
    let first = client::request(&addr, "GET", "/healthz", None);
    assert!(first.is_err(), "the sacrificed connection must not answer");

    // Every request after the panic is served by survivors that locked
    // the poisoned mutex. Run enough to need the queue repeatedly.
    for i in 0..10 {
        let resp = client::request(&addr, "GET", "/healthz", None)
            .unwrap_or_else(|e| panic!("post-poison request {i} failed: {e}"));
        assert_eq!(resp.status, 200);
    }
    let resp = client::request(&addr, "POST", "/first-contact", Some(BODY)).unwrap();
    assert_eq!(resp.status, 200);
    assert!(server.shutdown(), "drain should be clean");
}

#[test]
fn handler_panic_costs_one_500_never_the_worker() {
    // HandlerPanic fires inside `Service::handle`, reached through the
    // worker's `catch_unwind` — so it rides on the service options.
    let server = start(
        ServiceOptions {
            faults: Some(one_site("handler_panic", 1)),
            ..service_options()
        },
        &ServerOptions {
            workers: 1,
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();
    let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("panicked"), "{}", resp.body);
    assert_eq!(resp.header("connection"), Some("close"));
    // The single worker survived the panic and keeps serving.
    for _ in 0..5 {
        let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200);
    }
    assert!(server.shutdown());
}

#[test]
fn cache_compute_failure_releases_the_single_flight_claim() {
    let server = start(
        ServiceOptions {
            faults: Some(one_site("cache_fail", 1)),
            ..service_options()
        },
        &ServerOptions {
            workers: 4,
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();

    // The first compute dies: that request gets the panic-isolation
    // 500. The claim must be released on unwind, so the retry computes
    // fresh (miss), and the one after that hits.
    let resp = client::request(&addr, "POST", "/first-contact", Some(BODY)).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    let resp = client::request(&addr, "POST", "/first-contact", Some(BODY)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-rvz-cache"), Some("miss"));
    let resp = client::request(&addr, "POST", "/first-contact", Some(BODY)).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-rvz-cache"), Some("hit"));
    assert!(server.shutdown());
}

#[test]
fn cache_compute_failure_does_not_strand_concurrent_waiters() {
    let server = start(
        ServiceOptions {
            faults: Some(one_site("cache_fail", 1)),
            ..service_options()
        },
        &ServerOptions {
            workers: 6,
            ..ServerOptions::default()
        },
    );
    let addr = std::sync::Arc::new(server.addr().to_string());

    // Six concurrent identical queries race into the single-flight
    // claim; the first compute panics. Nobody may hang: the victim gets
    // a 500, everyone else either recomputes or joins a good result.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let addr = std::sync::Arc::clone(&addr);
            std::thread::spawn(move || {
                client::request(&addr, "POST", "/first-contact", Some(BODY))
                    .expect("transport should survive a compute panic")
                    .status
            })
        })
        .collect();
    let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 500),
        "unexpected statuses: {statuses:?}"
    );
    assert!(
        statuses.iter().filter(|s| **s == 200).count() >= 5,
        "at most one request pays for the injected failure: {statuses:?}"
    );
    assert!(server.shutdown());
}

#[test]
fn connection_reset_truncates_one_response_then_recovers() {
    let server = start(
        service_options(),
        &ServerOptions {
            workers: 1,
            faults: Some(one_site("conn_reset", 1)),
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();
    let first = client::request(&addr, "GET", "/healthz", None);
    assert!(first.is_err(), "the reset connection must see truncation");
    let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(server.shutdown());
}

#[test]
fn queue_overflow_sheds_503_with_retry_after_and_recovers() {
    let server = start(
        service_options(),
        &ServerOptions {
            workers: 1,
            queue_depth: 1,
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();

    // Pin the single worker with a keep-alive connection (the pool is
    // connection-granular: the worker stays in this connection's loop).
    let mut pinned = HttpClient::connect(&addr).unwrap();
    assert_eq!(pinned.request("GET", "/healthz", None).unwrap().status, 200);

    // Fill the one queue slot with an idle connection...
    let waiting = HttpClient::connect(&addr).unwrap();
    // ...then the next arrival must be shed at the accept thread.
    let shed = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("overloaded"), "{}", shed.body);
    assert_eq!(server.shed_connections(), 1);

    // Releasing the worker drains the queue: the waiting connection is
    // served, and fresh arrivals are admitted again.
    drop(pinned);
    let mut waiting = waiting;
    assert_eq!(
        waiting.request("GET", "/healthz", None).unwrap().status,
        200,
        "the queued connection must be served after the worker frees"
    );
    // Release the worker again (keep-alive pins it) before probing.
    drop(waiting);
    let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(server.shutdown());
}

#[test]
fn drain_deadline_detaches_a_wedged_worker_instead_of_hanging() {
    // The engine sleeps 1.5s per request (injected latency); the drain
    // allows 100ms. Shutdown must come back `false` promptly — the
    // wedged worker is detached, not joined.
    let server = start(
        ServiceOptions {
            faults: Some(FaultPlan::parse("seed=7,delay_rate=1,delay_ms=1500").unwrap()),
            no_cache: true,
            ..service_options()
        },
        &ServerOptions {
            workers: 2,
            drain: Duration::from_millis(100),
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();
    let busy = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let _ = client::request(&addr, "POST", "/first-contact", Some(BODY));
        })
    };
    // Let the slow request reach the engine before initiating shutdown.
    std::thread::sleep(Duration::from_millis(200));
    let started = std::time::Instant::now();
    let clean = server.shutdown();
    assert!(!clean, "a worker sleeping past the drain must be detached");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "join must respect the drain deadline, took {:?}",
        started.elapsed()
    );
    busy.join().unwrap();
}

#[test]
fn injected_faults_bump_their_site_counters() {
    use rvz_obs::counter;
    // The counters are process-global and other tests in this binary
    // inject faults concurrently, so assert deltas with `>=`.
    let handler_before = counter!("rvz_faults_injected_total", "site" => "handler_panic").get();
    let reset_before = counter!("rvz_faults_injected_total", "site" => "conn_reset").get();

    let server = start(
        ServiceOptions {
            faults: Some(one_site("handler_panic", 3)),
            ..service_options()
        },
        &ServerOptions {
            workers: 1,
            faults: Some(one_site("conn_reset", 1)),
            ..ServerOptions::default()
        },
    );
    let addr = server.addr().to_string();
    let mut failures = 0;
    for _ in 0..8 {
        match client::request(&addr, "GET", "/healthz", None) {
            Ok(resp) if resp.status == 500 => failures += 1, // handler panic
            Ok(resp) => assert_eq!(resp.status, 200),
            Err(_) => failures += 1, // injected reset
        }
    }
    // 3 panics + 1 reset, but the reset can land on an already-panicked
    // request (one client-visible failure, two injections).
    assert!((3..=4).contains(&failures), "got {failures} failures");
    assert!(server.shutdown());

    let handler_after = counter!("rvz_faults_injected_total", "site" => "handler_panic").get();
    let reset_after = counter!("rvz_faults_injected_total", "site" => "conn_reset").get();
    assert!(
        handler_after >= handler_before + 3,
        "handler_panic injections must be counted: {handler_before} -> {handler_after}"
    );
    assert!(
        reset_after > reset_before,
        "conn_reset injections must be counted: {reset_before} -> {reset_after}"
    );
}

#[test]
fn clean_shutdown_reports_a_clean_drain() {
    let server = start(service_options(), &ServerOptions::default());
    let addr = server.addr().to_string();
    assert_eq!(
        client::request(&addr, "GET", "/healthz", None)
            .unwrap()
            .status,
        200
    );
    assert!(server.shutdown(), "idle workers drain within the deadline");
}
