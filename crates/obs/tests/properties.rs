//! Property tests for the metrics core: histogram bucket boundaries,
//! merge associativity, concurrent counter reconciliation, and
//! line-by-line validity of the Prometheus exposition output.
//!
//! The workspace vendors no property-testing crate, so the tests drive
//! a seeded SplitMix64 generator over wide value ranges instead — the
//! failures (if any) reproduce exactly.

use rvz_obs::{
    bucket_index, bucket_upper_bound, counter, histogram, registry, render, HistogramSnapshot,
    BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64: the workspace's standard seeded generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn bucket_boundaries_cover_u64_exactly() {
    // Bucket upper bounds are strictly increasing and end at u64::MAX.
    for i in 1..BUCKETS {
        assert!(
            bucket_upper_bound(i - 1) < bucket_upper_bound(i),
            "bounds not increasing at {i}"
        );
    }
    assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);

    // Every value lands in the unique bucket whose bound brackets it.
    let check = |v: u64| {
        let i = bucket_index(v);
        assert!(
            v <= bucket_upper_bound(i),
            "{v} above its bucket bound {}",
            bucket_upper_bound(i)
        );
        if i > 0 {
            assert!(
                v > bucket_upper_bound(i - 1),
                "{v} at or below the previous bound {}",
                bucket_upper_bound(i - 1)
            );
        }
        // Relative bucketing error is bounded at 25%.
        if v >= 4 {
            let bound = bucket_upper_bound(i) as f64;
            assert!(
                bound <= 1.25 * v as f64 + 1.0,
                "bucket bound {bound} overshoots {v} by more than 25%"
            );
        }
    };
    // Exhaustive over the small range, seeded-random over the rest.
    for v in 0..65_536u64 {
        check(v);
    }
    let mut state = 0x0b5e_55ed_c0ff_ee00u64;
    for _ in 0..200_000 {
        check(splitmix64(&mut state));
    }
    // Exact powers of two and their neighbors at every octave.
    for o in 2..64 {
        let p = 1u64 << o;
        for v in [p - 1, p, p + 1, p + (p >> 2), p + (p >> 1)] {
            check(v);
        }
    }
    check(u64::MAX);
}

#[test]
fn bucket_index_is_monotone() {
    let mut state = 0x5eed_5eed_5eed_5eedu64;
    for _ in 0..100_000 {
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            bucket_index(lo) <= bucket_index(hi),
            "bucket_index not monotone: {lo} -> {}, {hi} -> {}",
            bucket_index(lo),
            bucket_index(hi)
        );
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    let sample = |seed: u64, n: usize| {
        let mut state = seed;
        HistogramSnapshot::from_values((0..n).map(|_| splitmix64(&mut state) >> 32))
    };
    for seed in 0..32u64 {
        let a = sample(seed * 3 + 1, 257);
        let b = sample(seed * 3 + 2, 129);
        let c = sample(seed * 3 + 3, 511);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge not associative at seed {seed}");

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge not commutative at seed {seed}");

        // The merge preserved every observation.
        assert_eq!(left.count, a.count + b.count + c.count);
        assert_eq!(left.buckets.iter().sum::<u64>(), left.count);
    }
}

#[test]
fn percentiles_bracket_the_true_order_statistics() {
    let mut state = 0xdead_beef_dead_beefu64;
    let mut values: Vec<u64> = (0..10_000).map(|_| splitmix64(&mut state) >> 20).collect();
    let snap = HistogramSnapshot::from_values(values.iter().copied());
    values.sort_unstable();
    for p in [50.0, 90.0, 99.0, 100.0] {
        let est = snap.percentile(p).expect("non-empty");
        let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize - 1;
        let truth = values[rank];
        // The estimate is the bucket's upper bound: at least the true
        // order statistic, and within the 25% bucketing error above it.
        assert!(est >= truth, "p{p}: estimate {est} below true {truth}");
        assert!(
            est as f64 <= 1.25 * truth as f64 + 4.0,
            "p{p}: estimate {est} overshoots true {truth}"
        );
    }
    assert_eq!(HistogramSnapshot::default().percentile(50.0), None);
}

#[test]
fn concurrent_counters_reconcile_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let c = counter!("obs_prop_concurrent_total");
    let h = histogram!("obs_prop_concurrent_us");
    let observed_sum = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let observed_sum = &observed_sum;
            scope.spawn(move || {
                let mut state = t as u64 + 1;
                let mut local_sum = 0u64;
                for _ in 0..PER_THREAD {
                    c.inc();
                    let v = splitmix64(&mut state) % 1_000_000;
                    h.observe(v);
                    local_sum += v;
                }
                observed_sum.fetch_add(local_sum, Ordering::Relaxed);
            });
        }
    });
    // Every increment from every thread is visible after the join:
    // sharding must lose nothing.
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snap.sum, observed_sum.into_inner());
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

/// A line-by-line validator for the subset of Prometheus text
/// exposition v0.0.4 we emit: `# TYPE name kind` comments and
/// `name{labels} value` samples.
fn validate_exposition(text: &str) {
    let ident = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !s.starts_with(|c: char| c.is_ascii_digit())
    };
    let mut typed: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    for (ln, line) in text.lines().enumerate() {
        assert!(!line.is_empty(), "line {ln}: empty line");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE has a name");
            let kind = parts.next().expect("TYPE has a kind");
            assert!(parts.next().is_none(), "line {ln}: trailing TYPE tokens");
            assert!(ident(name), "line {ln}: bad family name {name:?}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "line {ln}: bad kind {kind:?}"
            );
            assert!(
                typed.insert(name, kind).is_none(),
                "line {ln}: duplicate TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "line {ln}: unexpected comment");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').expect("balanced label braces");
                (name, Some(labels))
            }
            None => (series, None),
        };
        assert!(ident(name), "line {ln}: bad metric name {name:?}");
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label is k=v");
                assert!(ident(k), "line {ln}: bad label name {k:?}");
                assert!(
                    v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                    "line {ln}: unquoted label value {v:?}"
                );
            }
        }
        // Our values are integers (counts and microseconds).
        assert!(
            value.parse::<i64>().is_ok(),
            "line {ln}: non-numeric value {value:?}"
        );
        // Every sample belongs to a declared family (histograms via
        // their _bucket/_sum/_count suffixes).
        let family_declared = typed.contains_key(name)
            || [("_bucket"), ("_sum"), ("_count")].iter().any(|s| {
                name.strip_suffix(s)
                    .is_some_and(|base| typed.get(base) == Some(&"histogram"))
            });
        assert!(family_declared, "line {ln}: sample {name} has no TYPE");
    }
}

#[test]
fn exposition_output_is_valid_line_by_line() {
    counter!("obs_prop_expo_total").add(42);
    registry()
        .counter("obs_prop_expo_labeled_total", &[("site", "short_write")])
        .add(3);
    registry().gauge("obs_prop_expo_inflight", &[]).set(7);
    let h = histogram!("obs_prop_expo_latency_us");
    for v in [0, 1, 5, 100, 10_000, 1_000_000] {
        h.observe(v);
    }
    let text = render();
    assert!(text.contains("obs_prop_expo_total 42"));
    assert!(text.contains("obs_prop_expo_labeled_total{site=\"short_write\"} 3"));
    assert!(text.contains("obs_prop_expo_latency_us_count 6"));
    validate_exposition(&text);

    // Histogram buckets are cumulative and end at count.
    let mut last = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("obs_prop_expo_latency_us_bucket{le=\"") {
            let value: u64 = rest
                .rsplit_once(' ')
                .expect("bucket value")
                .1
                .parse()
                .expect("numeric bucket");
            assert!(value >= last, "buckets not cumulative");
            last = value;
        }
    }
    assert_eq!(last, 6, "+Inf bucket equals count");
}
