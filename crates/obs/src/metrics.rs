//! Lock-free counters, gauges and fixed-bucket log-linear histograms,
//! plus the global registry that names them.
//!
//! Everything here is built for the engine's hot path: recording a
//! metric is a handful of relaxed atomic operations and **never
//! allocates** once the metric handle exists (the allocation gate in
//! `rvz-sim/tests/alloc_gate.rs` runs with telemetry recording live).
//! Handles are `&'static` — the registry leaks each metric exactly once
//! — so call sites cache them in a `OnceLock` (the
//! [`counter!`](crate::counter), [`gauge!`](crate::gauge) and
//! [`histogram!`](crate::histogram) macros do this per call site) and the
//! registry mutex is touched only on first use.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global kill switch (`rvz … --no-metrics`). When off, counters,
/// histograms, spans and the flight recorder all become no-ops; gauges
/// still store (they are written at scrape time, and with metrics off
/// nothing scrapes them).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is recording enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flips the global recording switch (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Shards per counter: enough to keep an 8–16 worker pool off each
/// other's cache lines without bloating every counter.
const SHARDS: usize = 16;

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

/// The writing thread's home shard, assigned round-robin at first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    HOME.with(|h| *h)
}

/// A monotone event counter, sharded across cache lines.
///
/// `add` is one relaxed `fetch_add` on the calling thread's home shard;
/// `get` sums the shards (reads may land between two writers' updates —
/// totals are eventually exact once writers quiesce, which is the
/// contract a scrape needs).
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    pub(crate) fn new() -> Self {
        Counter {
            shards: [const { Shard(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Adds `n` events (no-op when recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time signed value (queue depth, in-flight requests).
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Stores the current value (gauges ignore the kill switch — they
    /// are written at scrape time, not on the hot path).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The stored value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution bits: 2 → four linear sub-buckets per octave,
/// bounding the relative bucketing error at 25%.
const SUB_BITS: u32 = 2;

/// Total bucket count covering all of `u64` (indices 0..=251): four
/// exact small-value buckets plus four sub-buckets for each of the 62
/// octaves `2..=63`.
pub const BUCKETS: usize = 4 + (64 - SUB_BITS as usize) * 4;

/// The bucket index recording value `v`: exact for `v < 4`, then
/// log-linear — octave `⌊log₂ v⌋` split into four linear sub-buckets.
/// Consecutive values map to the same or adjacent buckets; the scheme
/// covers all of `u64` in [`BUCKETS`] buckets with ≤ 25% relative
/// error.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (octave - 2)) & 3) as usize;
        (octave - 1) * 4 + sub
    }
}

/// The largest value bucket `i` records (inclusive). Together with
/// [`bucket_index`]: `bucket_upper_bound(bucket_index(v)) >= v` and the
/// previous bucket's bound is `< v`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < 4 {
        i as u64
    } else {
        let octave = i / 4 + 1;
        let sub = (i % 4) as u64;
        ((1u64 << octave) - 1) + (sub + 1) * (1u64 << (octave - 2))
    }
}

/// A fixed-bucket log-linear histogram: 252 atomic buckets covering all
/// of `u64` with ≤ 25% relative error, plus exact `count` and `sum`.
///
/// `observe` is three relaxed `fetch_add`s — no locks, no allocation,
/// no floating point. Merging two histograms is bucket-wise addition,
/// which is associative and commutative (property-tested), so per-worker
/// histograms can be combined in any order.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (no-op when recording is disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy for rendering and merging (concurrent
    /// writers may land between bucket and count reads; totals agree
    /// once writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Builds a snapshot directly from observations (for offline use,
    /// e.g. the loadtest latency recorder).
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Self {
        let mut snap = HistogramSnapshot::default();
        for v in values {
            snap.buckets[bucket_index(v)] += 1;
            snap.count += 1;
            snap.sum = snap.sum.saturating_add(v);
        }
        snap
    }

    /// Bucket-wise merge (associative and commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The upper bound of the bucket holding the `p`-th percentile
    /// (`0 < p <= 100`), or `None` on an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, for
    /// compact serialization.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

/// What a registry entry points at.
pub(crate) enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One named, labeled metric.
pub(crate) struct Entry {
    pub(crate) name: &'static str,
    pub(crate) labels: Vec<(&'static str, &'static str)>,
    pub(crate) metric: Metric,
}

/// The process-wide metric registry: names → leaked `&'static` metric
/// handles, deduplicated by `(name, labels)`.
///
/// The registry lock is taken only on handle lookup; the macros cache
/// the returned reference per call site, so steady-state recording
/// never touches it.
pub struct Registry {
    pub(crate) entries: Mutex<Vec<Entry>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: Mutex::new(Vec::new()),
    })
}

impl Registry {
    fn lookup<T, F, G>(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        make: F,
        cast: G,
    ) -> &'static T
    where
        F: FnOnce() -> Metric,
        G: Fn(&Metric) -> Option<&'static T>,
    {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return cast(&e.metric).unwrap_or_else(|| {
                panic!("metric {name} already registered as a {}", e.metric.kind())
            });
        }
        let metric = make();
        let handle = cast(&metric).expect("freshly made metric has the requested kind");
        entries.push(Entry {
            name,
            labels: labels.to_vec(),
            metric,
        });
        handle
    }

    /// The counter `name{labels}`, created (and leaked) on first use.
    pub fn counter(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> &'static Counter {
        self.lookup(
            name,
            labels,
            || Metric::Counter(Box::leak(Box::new(Counter::new()))),
            |m| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            },
        )
    }

    /// The gauge `name{labels}`, created (and leaked) on first use.
    pub fn gauge(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> &'static Gauge {
        self.lookup(
            name,
            labels,
            || Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
            |m| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            },
        )
    }

    /// The histogram `name{labels}`, created (and leaked) on first use.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> &'static Histogram {
        self.lookup(
            name,
            labels,
            || Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
            |m| match m {
                Metric::Histogram(h) => Some(*h),
                _ => None,
            },
        )
    }
}

/// A `&'static Counter` handle, registered on first execution of the
/// call site and cached in a per-site `OnceLock` thereafter.
#[macro_export]
macro_rules! counter {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__OBS_HANDLE.get_or_init(|| $crate::registry().counter($name, &[$(($k, $v)),*]))
    }};
}

/// A `&'static Gauge` handle, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__OBS_HANDLE.get_or_init(|| $crate::registry().gauge($name, &[$(($k, $v)),*]))
    }};
}

/// A `&'static Histogram` handle, cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        static __OBS_HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__OBS_HANDLE.get_or_init(|| $crate::registry().histogram($name, &[$(($k, $v)),*]))
    }};
}
