//! # rvz-obs
//!
//! Zero-dependency observability core for the plane-rendezvous stack:
//!
//! * [`metrics`] — lock-free [`Counter`]s (cache-line-sharded),
//!   [`Gauge`]s and fixed-bucket log-linear [`Histogram`]s in a global
//!   [`Registry`]; handles are `&'static` and the [`counter!`],
//!   [`gauge!`] and [`histogram!`] macros cache them per call site, so
//!   steady-state recording is a few relaxed atomics and **zero
//!   allocations** (the engine's allocation gate runs with recording
//!   live).
//! * [`span`](mod@span) — `span!("lower")` opens a scope guard whose drop records
//!   the duration, with a thread-local nesting stack and a per-thread
//!   trace id for request correlation.
//! * [`recorder`] — a bounded in-memory ring ("flight recorder") of the
//!   most recent [`TraceEvent`]s, served by `GET /trace/recent` and
//!   dumped beside sweep checkpoints.
//! * [`expo`] — hand-rolled Prometheus text exposition v0.0.4 behind
//!   `GET /metrics`.
//!
//! The whole crate honors one process-wide kill switch
//! ([`set_enabled`]`(false)`, wired to `--no-metrics`): recording
//! becomes a single relaxed load and the observed program's outputs are
//! byte-identical either way — recording is observation-only by
//! construction (no metric value ever feeds back into control flow).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod expo;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use expo::render;
pub use metrics::{
    bucket_index, bucket_upper_bound, enabled, registry, set_enabled, Counter, Gauge, Histogram,
    HistogramSnapshot, Registry, BUCKETS,
};
pub use recorder::{recent, TraceEvent, RING_CAPACITY};
pub use span::{enter, now_us, set_trace_id, thread_ord, trace_id, SpanGuard, MAX_DEPTH};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The kill-switch test flips process-global state; serialize every
    /// test in this module against it.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counter_macro_caches_one_handle() {
        let _guard = serial();
        let a = counter!("obs_unit_test_total");
        a.inc();
        let b = counter!("obs_unit_test_total");
        assert!(std::ptr::eq(a, b));
        assert!(a.get() >= 1);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let _guard = serial();
        let a = registry().counter("obs_unit_labeled_total", &[("site", "a")]);
        let b = registry().counter("obs_unit_labeled_total", &[("site", "b")]);
        assert!(!std::ptr::eq(a, b));
        a.add(3);
        b.add(5);
        assert!(a.get() >= 3 && b.get() >= 5);
    }

    #[test]
    fn spans_record_into_the_ring() {
        let _guard = serial();
        set_trace_id(0xfeed);
        {
            span!("obs_unit_outer");
            span!("obs_unit_inner");
        }
        set_trace_id(0);
        let events = recent(RING_CAPACITY);
        let inner = events
            .iter()
            .find(|e| e.name == "obs_unit_inner")
            .expect("inner span recorded");
        assert_eq!(inner.trace_id, 0xfeed);
        assert_eq!(inner.depth, 1);
        assert!(events.iter().any(|e| e.name == "obs_unit_outer"));
    }

    #[test]
    fn kill_switch_stops_recording() {
        let _guard = serial();
        let c = counter!("obs_unit_kill_total");
        set_enabled(false);
        c.inc();
        {
            span!("obs_unit_killed_span");
        }
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert!(!recent(RING_CAPACITY)
            .iter()
            .any(|e| e.name == "obs_unit_killed_span"));
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn render_emits_type_lines_and_values() {
        let _guard = serial();
        counter!("obs_unit_render_total").add(7);
        registry().gauge("obs_unit_render_gauge", &[]).set(-3);
        histogram!("obs_unit_render_us").observe(100);
        let text = render();
        assert!(text.contains("# TYPE obs_unit_render_total counter"));
        assert!(text.contains("# TYPE obs_unit_render_gauge gauge"));
        assert!(text.contains("obs_unit_render_gauge -3"));
        assert!(text.contains("# TYPE obs_unit_render_us histogram"));
        assert!(text.contains("obs_unit_render_us_bucket{le=\"+Inf\"}"));
        assert!(text.contains("obs_unit_render_us_count"));
    }
}
