//! The flight recorder: a bounded in-memory ring of the most recent
//! trace events.
//!
//! Writers claim a slot with one atomic `fetch_add` and take that
//! slot's own mutex only for the copy — two writers contend only when
//! they land on the same slot, i.e. when one has lapped the ring.
//! Pushing never allocates (event names are `&'static str`), so spans
//! inside the allocation-gated engine paths stay zero-alloc.
//!
//! Readers ([`recent`]) walk backwards from the write cursor and clone
//! out up to [`RING_CAPACITY`] events, newest first. A read races
//! in-flight writes benignly: each slot is copied under its mutex, so
//! every returned event is internally consistent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Slots in the ring.
pub const RING_CAPACITY: usize = 1024;

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span name (static — recording never allocates).
    pub name: &'static str,
    /// The recording thread's trace id at drop time (0 when none).
    pub trace_id: u64,
    /// Span start, µs since the process observation epoch.
    pub start_us: u64,
    /// Span duration in µs.
    pub dur_us: u64,
    /// Dense id of the recording thread.
    pub thread: u32,
    /// Span nesting depth at drop (0 = top level).
    pub depth: u8,
}

static HEAD: AtomicUsize = AtomicUsize::new(0);
static SLOTS: [Mutex<Option<TraceEvent>>; RING_CAPACITY] =
    [const { Mutex::new(None) }; RING_CAPACITY];

/// Records an event, overwriting the oldest once the ring is full.
/// No-op when recording is disabled.
pub fn push(event: TraceEvent) {
    if !crate::metrics::enabled() {
        return;
    }
    let slot = HEAD.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
    let mut guard = SLOTS[slot]
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    *guard = Some(event);
}

/// The most recent events, newest first, at most `max` (clamped to
/// [`RING_CAPACITY`]).
pub fn recent(max: usize) -> Vec<TraceEvent> {
    let max = max.min(RING_CAPACITY);
    let head = HEAD.load(Ordering::Relaxed);
    let mut events = Vec::with_capacity(max);
    for back in 1..=RING_CAPACITY {
        if events.len() >= max {
            break;
        }
        let slot = (head.wrapping_sub(back)) % RING_CAPACITY;
        let guard = SLOTS[slot]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(e) = *guard {
            events.push(e);
        }
    }
    events
}
