//! Hand-rolled Prometheus text exposition (format version 0.0.4).
//!
//! The output is deterministic: entries render sorted by name, then by
//! label set, with one `# TYPE` line per family. Histograms emit
//! cumulative `_bucket{le="…"}` series over the non-empty buckets plus
//! the mandatory `le="+Inf"`, then `_sum` and `_count`. Values are
//! integers (our metrics count events and microseconds), so no float
//! formatting ambiguity exists.

use crate::metrics::{bucket_upper_bound, registry, Metric};
use std::fmt::Write as _;

/// Renders one `name{labels}` prefix; `extra` appends a final label
/// (used for the histogram `le`).
fn series(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(&str, &str)],
    extra: Option<(&str, &str)>,
) {
    out.push_str(name);
    out.push_str(suffix);
    let total = labels.len() + usize::from(extra.is_some());
    if total > 0 {
        out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().copied().chain(extra) {
            if !first {
                out.push(',');
            }
            first = false;
            // Label values in our metrics are static identifiers; escape
            // anyway so the output is valid for any registered value.
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, "{k}=\"{escaped}\"");
        }
        out.push('}');
    }
    out.push(' ');
}

/// Renders the whole registry as Prometheus text exposition v0.0.4.
pub fn render() -> String {
    let entries = registry()
        .entries
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        entries[a]
            .name
            .cmp(entries[b].name)
            .then_with(|| entries[a].labels.cmp(&entries[b].labels))
    });

    let mut out = String::new();
    let mut last_name = "";
    for i in order {
        let e = &entries[i];
        if e.name != last_name {
            let kind = match &e.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", e.name);
            last_name = e.name;
        }
        match &e.metric {
            Metric::Counter(c) => {
                series(&mut out, e.name, "", &e.labels, None);
                let _ = writeln!(out, "{}", c.get());
            }
            Metric::Gauge(g) => {
                series(&mut out, e.name, "", &e.labels, None);
                let _ = writeln!(out, "{}", g.get());
            }
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                let mut cumulative = 0u64;
                for (i, &c) in snap.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let le = bucket_upper_bound(i).to_string();
                    series(&mut out, e.name, "_bucket", &e.labels, Some(("le", &le)));
                    let _ = writeln!(out, "{cumulative}");
                }
                series(&mut out, e.name, "_bucket", &e.labels, Some(("le", "+Inf")));
                let _ = writeln!(out, "{}", snap.count);
                series(&mut out, e.name, "_sum", &e.labels, None);
                let _ = writeln!(out, "{}", snap.sum);
                series(&mut out, e.name, "_count", &e.labels, None);
                let _ = writeln!(out, "{}", snap.count);
            }
        }
    }
    out
}
