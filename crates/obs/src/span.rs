//! The span API: `span!("lower")` opens a guard whose drop records the
//! span's duration into the flight recorder ring.
//!
//! Spans nest through a thread-local stack of fixed depth — entering a
//! span pushes its name, dropping pops it — so every recorded event
//! carries its nesting depth and threads never contend. The stack is a
//! fixed array (no allocation); spans deeper than [`MAX_DEPTH`] are
//! still timed but recorded at the capped depth.
//!
//! Each thread also carries a *trace id* (set per request by the
//! server, zero elsewhere) that is stamped onto every event the thread
//! records, correlating engine spans with the `X-Rvz-Trace` response
//! header and the slow-query log.

use crate::metrics::enabled;
use crate::recorder::{self, TraceEvent};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Maximum tracked span nesting per thread.
pub const MAX_DEPTH: usize = 16;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
    static THREAD_ORD: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Microseconds since the process-wide observation epoch (first use).
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A small dense id for the calling thread (assignment order).
pub fn thread_ord() -> u32 {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    THREAD_ORD.with(|t| {
        if t.get() == u32::MAX {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed) as u32);
        }
        t.get()
    })
}

/// Stamps the calling thread's trace id (0 clears it). Events recorded
/// by this thread carry the id until it is reset.
pub fn set_trace_id(id: u64) {
    TRACE_ID.with(|t| t.set(id));
}

/// The calling thread's current trace id (0 when none).
pub fn trace_id() -> u64 {
    TRACE_ID.with(|t| t.get())
}

/// An open span; dropping it records the duration. Construct through
/// [`enter`] or the [`span!`](crate::span!) macro.
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    /// `false` when recording was disabled at entry: the drop is free.
    active: bool,
}

/// Opens a span named `name`; the returned guard records a
/// [`TraceEvent`] when dropped.
pub fn enter(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start_us: 0,
            active: false,
        };
    }
    DEPTH.with(|d| d.set(d.get().saturating_add(1).min(MAX_DEPTH)));
    SpanGuard {
        name,
        start_us: now_us(),
        active: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get().saturating_sub(1);
            d.set(depth);
            depth
        });
        recorder::push(TraceEvent {
            name: self.name,
            trace_id: trace_id(),
            start_us: self.start_us,
            dur_us: now_us().saturating_sub(self.start_us),
            thread: thread_ord(),
            depth: depth as u8,
        });
    }
}

/// Opens a span for the rest of the enclosing scope:
/// `span!("lower");` — the guard drops (and records) at scope exit.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span::enter($name);
    };
}
