//! # rvz-trajectory
//!
//! Continuous-time trajectory substrate for the `plane-rendezvous`
//! workspace.
//!
//! The paper describes every algorithm as a single parametric trajectory
//! `S(t)`: a unit-speed curve in the plane built from straight legs, full
//! circle traversals and waiting periods. Both robots execute the *same*
//! `S(t)`, each within its own reference frame; the frame differences
//! (speed `v`, clock `τ`, orientation `φ`, chirality `χ` — Lemma 4) are a
//! linear map plus a time dilation applied to `S`.
//!
//! This crate provides:
//!
//! * [`Segment`] — the three primitive motions (line, arc, wait) with exact
//!   arc-length parameterization;
//! * [`Path`] — a finite contiguous sequence of segments with `O(log n)`
//!   random-access evaluation, built via [`PathBuilder`];
//! * [`Trajectory`] — the object-safe evaluation trait shared by finite
//!   paths, closed-form infinite algorithms (in `rvz-search`/`rvz-core`)
//!   and baselines;
//! * [`FrameWarp`] — Lemma 4 as a combinator: `t ↦ b + M·S(t/σ)`;
//! * [`StreamCursor`] — sequential evaluation of a lazy segment stream,
//!   used to cross-check the closed-form random-access implementations;
//! * [`MonotoneTrajectory`] / [`Cursor`] — amortized-O(1) forward
//!   evaluation with piece introspection, the substrate of the
//!   simulator's analytic fast path (see the [`monotone`] module docs
//!   for the cursor contract);
//! * [`CompiledProgram`] / [`Compile`] — the flat piecewise IR: a
//!   trajectory lowered (warps and clock drifts applied at lowering
//!   time) into an arena of pieces with a baked envelope tree, the
//!   substrate of the simulator's monomorphic zero-allocation engine.
//!   Curved motions lower to certified approximate pieces carrying a
//!   proven error bound when [`CompileOptions::approx_tolerance`] is
//!   set (see the [`program`] module docs);
//! * [`LazyProgram`] — the streaming counterpart: the same pieces
//!   materialized on demand behind the dense start-time index, so
//!   compile cost is proportional to the time a query actually examines
//!   rather than the horizon (see the [`lazy`] module docs).
//!
//! ## Example
//!
//! ```
//! use rvz_trajectory::{PathBuilder, Trajectory};
//! use rvz_geometry::Vec2;
//!
//! // Out along x, around the unit circle, and back: SearchCircle(1).
//! let path = PathBuilder::at(Vec2::ZERO)
//!     .line_to(Vec2::new(1.0, 0.0))
//!     .full_circle(Vec2::ZERO)
//!     .line_to(Vec2::ZERO)
//!     .build();
//! let expected = 2.0 * (std::f64::consts::PI + 1.0);
//! assert!((path.duration() - expected).abs() < 1e-12);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cursor;
pub mod drift;
pub mod func;
pub mod lazy;
pub mod monotone;
pub mod path;
pub mod program;
pub mod segment;
pub mod soa;
pub mod warp;

pub use cursor::StreamCursor;
pub use drift::ClockDrift;
pub use func::FnTrajectory;
pub use lazy::LazyProgram;
pub use monotone::{
    Cursor, GenericCursor, MonotoneDyn, MonotoneGuard, MonotoneTrajectory, Motion, Probe,
};
pub use path::{Path, PathBuilder};
pub use program::{
    lower_program, sampled_chord_bound, Compile, CompileError, CompileOptions, CompiledProgram,
    Piece, ProgramCursor, ProgramView,
};
pub use segment::Segment;
pub use soa::{CircularLaw, ProgramSoA};
pub use warp::FrameWarp;

use rvz_geometry::Vec2;

/// A continuous motion of a point in the plane, evaluable at any time.
///
/// Implementations must satisfy, for all `0 ≤ s ≤ t`:
///
/// * **Continuity** — `position` is continuous in `t`;
/// * **Speed bound** — `|position(t) − position(s)| ≤ speed_bound()·(t−s)`;
/// * **Persistence** — finite trajectories hold their final position for
///   all `t ≥ duration()` (robots stop, they do not vanish).
///
/// The speed bound is what makes the simulator's conservative-advancement
/// contact detection sound, so implementations must treat it as a hard
/// invariant (it is property-tested in `rvz-sim`).
pub trait Trajectory {
    /// The position at time `t ≥ 0`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `t` is negative or NaN.
    fn position(&self, t: f64) -> Vec2;

    /// An upper bound on the instantaneous speed at every time.
    fn speed_bound(&self) -> f64;

    /// Total duration when the motion is finite; `None` for the paper's
    /// repeat-forever algorithms.
    fn duration(&self) -> Option<f64> {
        None
    }
}

impl<T: Trajectory + ?Sized> Trajectory for &T {
    fn position(&self, t: f64) -> Vec2 {
        (**self).position(t)
    }
    fn speed_bound(&self) -> f64 {
        (**self).speed_bound()
    }
    fn duration(&self) -> Option<f64> {
        (**self).duration()
    }
}

impl<T: Trajectory + ?Sized> Trajectory for Box<T> {
    fn position(&self, t: f64) -> Vec2 {
        (**self).position(t)
    }
    fn speed_bound(&self) -> f64 {
        (**self).speed_bound()
    }
    fn duration(&self) -> Option<f64> {
        (**self).duration()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn trait_is_object_safe_and_blanket_impls_forward() {
        let path = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(2.0, 0.0))
            .build();
        let boxed: Box<dyn Trajectory> = Box::new(path.clone());
        assert_eq!(boxed.position(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(boxed.duration(), Some(2.0));
        let by_ref: &dyn Trajectory = &path;
        assert_eq!(by_ref.position(2.0), Vec2::new(2.0, 0.0));
        assert_eq!(by_ref.speed_bound(), 1.0);
    }
}
