//! Streaming lowering: [`LazyProgram`] materializes pieces on demand.
//!
//! The eager [`CompiledProgram`] pays its whole
//! lowering cost up front — 10⁵–10⁶ pieces and a baked envelope tree —
//! before the first probe, even when the query resolves in the first
//! round. A [`LazyProgram`] drains the *same* piece producer
//! (`program::PieceStream`) behind the same dense start-time index, but
//! only as far as queries actually reach:
//!
//! * **probes** materialize pieces up to the probe time;
//! * **envelope queries** materialize up to the window end (a pruning
//!   disproof therefore still pays for the span it certifies — but
//!   incrementally, shared across every later query, and only when the
//!   engine really asks);
//! * **round marks** are precomputed once (they are closed-form per
//!   schedule, not derived from pieces).
//!
//! Because both consumers drain one producer, the materialized prefix
//! is bit-identical to the eager lowering — enforced by the
//! prefix-equivalence tests below and in `tests/`.
//!
//! ## Allocation discipline
//!
//! The compiled engine's zero-alloc-per-query gate stays intact: a
//! probe or envelope query on already-materialized time allocates
//! nothing. Growth allocations happen only at arena-chunk boundaries
//! (amortized-doubling `Vec` growth plus one envelope box per
//! [`CHUNK_PIECES`] pieces) and are counted separately in
//! [`LazyProgram::chunk_allocs`], which the bench reports alongside the
//! per-query counters.
//!
//! ## Envelopes without a baked tree
//!
//! The eager program bakes a segment tree once lowering is complete; a
//! streaming arena cannot (its leaf count keeps growing). Instead the
//! lazy arena keeps one union box per completed chunk of
//! [`CHUNK_PIECES`] pieces: an envelope query unions the partial
//! boundary chunks piece-by-piece (≤ 2·[`CHUNK_PIECES`] cheap box
//! computations) and the interior in whole-chunk steps. Beyond the
//! covered span the box grows at the speed bound, exactly like the
//! eager program's, so look-aheads across an exhausted boundary remain
//! sound.
//!
//! ## Exhaustion
//!
//! Construction always succeeds. If the producer refuses mid-stream —
//! piece budget, a curved span without an approx tolerance, an
//! uncertifiable bound, a stalled cursor — the error is recorded and
//! coverage simply stops growing: [`ProgramView::covers`] returns
//! `false` past the frontier and the engine refuses the query (`None`),
//! never guessing. [`LazyProgram::exhausted`] exposes the recorded
//! reason.

use crate::monotone::{Cursor, Probe};
use crate::program::{
    assemble_program, grow_box, probe_pieces, Compile, CompileError, CompileOptions,
    CompiledProgram, CurvedApprox, LoweredStep, Piece, PieceStream, ProgramView,
};
use rvz_geometry::{Aabb, Vec2};
use std::cell::RefCell;

/// Pieces per envelope chunk: boundary scans touch at most `2·CHUNK`
/// pieces per query, and one `Aabb` is stored per chunk.
pub const CHUNK_PIECES: usize = 256;

/// A program whose piece arena materializes on demand.
///
/// Construct with [`LazyProgram::new`]; drive it through the
/// [`ProgramView`] facade (the compiled engine does) or the convenience
/// accessors below. Interior mutability makes every query `&self`; the
/// type is intentionally **not** `Sync` — one lazy program per worker,
/// exactly like an engine scratch.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{CompileOptions, LazyProgram, PathBuilder, ProgramView};
/// use rvz_geometry::Vec2;
///
/// let path = PathBuilder::at(Vec2::ZERO)
///     .line_to(Vec2::new(4.0, 0.0))
///     .wait(1.0)
///     .build();
/// let lazy = LazyProgram::new(&path, CompileOptions::to_horizon(10.0));
/// assert_eq!(lazy.materialized_pieces(), 0); // nothing until a query
/// let mut idx = 0;
/// assert_eq!(lazy.probe_from(&mut idx, 1.5).position, Vec2::new(1.5, 0.0));
/// assert!(lazy.materialized_pieces() >= 1);
/// ```
pub struct LazyProgram<'a> {
    opts: CompileOptions,
    speed_bound: f64,
    state: RefCell<LazyState<'a>>,
}

struct LazyState<'a> {
    stream: PieceStream<'a, Box<dyn Cursor + 'a>>,
    pieces: Vec<Piece>,
    starts: Vec<f64>,
    /// Union box of each completed chunk of [`CHUNK_PIECES`] pieces.
    chunk_boxes: Vec<Aabb>,
    /// Union box of the still-filling tail chunk.
    open_box: Aabb,
    /// Time covered by materialized pieces.
    end_time: f64,
    rest: Option<Vec2>,
    /// Why materialization stopped early, if it did.
    exhausted: Option<CompileError>,
    /// The producer reached the horizon (or the rest state).
    finished: bool,
    /// Precomputed round marks (filtered to the horizon; trimmed to the
    /// covered span once the trajectory is known to rest).
    marks: Vec<f64>,
    /// Capacity-growth allocations, counted separately from the
    /// per-query budget (which is zero once warm).
    chunk_allocs: u64,
}

impl<'a> LazyProgram<'a> {
    /// Wraps a compilable source. Never fails: lowering problems are
    /// recorded as [`LazyProgram::exhausted`] when (and if) queries
    /// reach them.
    ///
    /// # Panics
    ///
    /// As for [`CompileOptions::to_horizon`] — invalid horizon or piece
    /// budget.
    pub fn new(source: &'a dyn Compile, opts: CompileOptions) -> Self {
        assert!(
            opts.horizon > 0.0 && opts.horizon.is_finite(),
            "compile horizon must be positive and finite, got {}",
            opts.horizon
        );
        assert!(opts.max_pieces > 0, "piece budget must be positive");
        let mut marks: Vec<f64> = source
            .round_marks(opts.horizon)
            .into_iter()
            .filter(|&m| m.is_finite() && m > 0.0 && m <= opts.horizon)
            .collect();
        marks.sort_by(f64::total_cmp);
        marks.dedup();
        let handler = opts.approx_tolerance.map(|eps| CurvedApprox {
            position: Box::new(move |t| source.position(t)) as Box<dyn Fn(f64) -> Vec2 + 'a>,
            bound: Box::new(move |a, b| source.chord_error_bound(a, b)),
            eps,
        });
        let stream = PieceStream::new(source.dyn_cursor(), handler, opts.horizon);
        LazyProgram {
            opts,
            speed_bound: source.speed_bound(),
            state: RefCell::new(LazyState {
                stream,
                pieces: Vec::new(),
                starts: Vec::new(),
                chunk_boxes: Vec::new(),
                open_box: Aabb::EMPTY,
                end_time: 0.0,
                rest: None,
                exhausted: None,
                finished: false,
                marks,
                chunk_allocs: 0,
            }),
        }
    }

    /// The options the arena lowers under.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Materializes pieces until the arena covers `t` (or the producer
    /// finishes/refuses). Queries do this implicitly; exposed for
    /// warm-up and tests.
    pub fn drive_to(&self, t: f64) {
        let mut state = self.state.borrow_mut();
        ensure(&mut state, &self.opts, t);
    }

    /// Number of pieces materialized so far.
    pub fn materialized_pieces(&self) -> usize {
        self.state.borrow().pieces.len()
    }

    /// Time covered by materialized pieces.
    pub fn covered_end(&self) -> f64 {
        self.state.borrow().end_time
    }

    /// The rest position, once discovered.
    pub fn rest(&self) -> Option<Vec2> {
        self.state.borrow().rest
    }

    /// Why materialization stopped early, if it did.
    pub fn exhausted(&self) -> Option<CompileError> {
        self.state.borrow().exhausted
    }

    /// Arena-growth allocations so far (capacity doublings and chunk
    /// boxes) — the amortized cost excluded from the per-query
    /// zero-alloc budget and reported separately by the bench.
    pub fn chunk_allocs(&self) -> u64 {
        self.state.borrow().chunk_allocs
    }

    /// A snapshot of the materialized piece prefix (clones; test and
    /// diagnostic use).
    pub fn pieces_snapshot(&self) -> Vec<Piece> {
        self.state.borrow().pieces.clone()
    }

    /// Bakes the materialized prefix into an eager [`CompiledProgram`]
    /// — pieces, start index, envelope tree — without re-running the
    /// lowering.
    ///
    /// Pieces, probes, and envelope queries behave exactly like an
    /// eager lowering truncated at [`LazyProgram::covered_end`]: the
    /// frozen handle answers everything the lazy program materialized
    /// and refuses beyond. The **round marks keep the lazy view's full
    /// list** (up to the compile horizon) rather than truncating at the
    /// frontier: an identical engine query replayed against the frozen
    /// handle then seeds identical pruning windows, visits identical
    /// times, and reproduces the lazy run's outcome bit for bit. Unlike
    /// the lazy program the result is `Send + Sync`, so it can be
    /// shared across threads (the `rvz serve` partner cache freezes
    /// each query's materialized depth this way).
    pub fn freeze(&self) -> CompiledProgram {
        let state = self.state.borrow();
        assemble_program(
            state.pieces.clone(),
            state.marks.clone(),
            state.rest,
            self.speed_bound,
            Some(self.opts.horizon),
        )
    }

    /// A snapshot of the round marks currently in effect.
    pub fn marks_snapshot(&self) -> Vec<f64> {
        self.state.borrow().marks.clone()
    }

    /// Forward probe driven by an external index; identical to
    /// [`crate::CompiledProgram::probe_from`] on the shared prefix.
    pub fn probe_from(&self, index: &mut usize, t: f64) -> Probe {
        ProgramView::probe_from(self, index, t)
    }

    /// The swept envelope over `[t0, t1]`; see
    /// [`crate::CompiledProgram::envelope_box`].
    pub fn envelope_box(&self, t0: f64, t1: f64) -> Aabb {
        ProgramView::envelope_box(self, t0, t1)
    }
}

impl std::fmt::Debug for LazyProgram<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("LazyProgram")
            .field("horizon", &self.opts.horizon)
            .field("pieces", &state.pieces.len())
            .field("end_time", &state.end_time)
            .field("rest", &state.rest)
            .field("exhausted", &state.exhausted)
            .field("chunk_allocs", &state.chunk_allocs)
            .finish_non_exhaustive()
    }
}

/// Pulls pieces until the arena covers past `t`, the producer finishes,
/// or it refuses.
fn ensure(state: &mut LazyState<'_>, opts: &CompileOptions, t: f64) {
    while state.rest.is_none()
        && state.exhausted.is_none()
        && !state.finished
        && state.end_time <= t
    {
        pull(state, opts);
    }
}

/// Materializes exactly one producer event.
fn pull(state: &mut LazyState<'_>, opts: &CompileOptions) {
    match state.stream.next_step() {
        Ok(LoweredStep::Piece { piece, counted }) => {
            if counted && state.pieces.len() == opts.max_pieces {
                // The budget exhausts coverage instead of erroring: the
                // engine refuses queries past the frontier, exactly as
                // with an eager truncated program.
                state.exhausted = Some(CompileError::Budget {
                    pieces: state.pieces.len(),
                    covered: piece.t0,
                });
                return;
            }
            rvz_obs::counter!("rvz_streamed_pieces_total").inc();
            let pieces_cap = state.pieces.capacity();
            let starts_cap = state.starts.capacity();
            state.pieces.push(piece);
            state.starts.push(piece.t0);
            if state.pieces.capacity() != pieces_cap {
                state.chunk_allocs += 1;
            }
            if state.starts.capacity() != starts_cap {
                state.chunk_allocs += 1;
            }
            state.end_time = piece.t1;
            state.open_box = state.open_box.union(&piece.bounding_box());
            if state.pieces.len().is_multiple_of(CHUNK_PIECES) {
                let boxes_cap = state.chunk_boxes.capacity();
                state.chunk_boxes.push(state.open_box);
                if state.chunk_boxes.capacity() != boxes_cap {
                    state.chunk_allocs += 1;
                }
                state.open_box = Aabb::EMPTY;
            }
        }
        Ok(LoweredStep::Rest(p)) => {
            state.rest = Some(p);
            state.finished = true;
            // Match the eager lowering's mark filter (`m <= end_time`)
            // now that the final span is known.
            let end = state.end_time;
            state.marks.retain(|&m| m <= end);
        }
        Ok(LoweredStep::Finished) => {
            state.finished = true;
        }
        Err(e) => {
            state.exhausted = Some(e);
        }
    }
}

/// Union of the materialized piece boxes in the inclusive index range
/// `[l, r]`: whole chunks through the stored chunk boxes, boundary
/// leftovers piece by piece.
fn range_box(state: &LazyState<'_>, l: usize, r: usize) -> Aabb {
    let mut acc = Aabb::EMPTY;
    let mut i = l;
    while i <= r {
        if i.is_multiple_of(CHUNK_PIECES) && i + CHUNK_PIECES - 1 <= r {
            let chunk = i / CHUNK_PIECES;
            if let Some(b) = state.chunk_boxes.get(chunk) {
                acc = acc.union(b);
                i += CHUNK_PIECES;
                continue;
            }
        }
        acc = acc.union(&state.pieces[i].bounding_box());
        i += 1;
    }
    acc
}

/// Mirrors `CompiledProgram::piece_index_at` over the materialized
/// prefix.
fn piece_index_at(state: &LazyState<'_>, t: f64) -> usize {
    state
        .starts
        .partition_point(|&s| s <= t)
        .saturating_sub(1)
        .min(state.pieces.len().saturating_sub(1))
}

/// Mirrors `CompiledProgram::envelope_within` over the materialized
/// prefix.
fn envelope_within(state: &LazyState<'_>, t0: f64, t1: f64) -> Aabb {
    let i0 = piece_index_at(state, t0);
    let i1 = piece_index_at(state, t1);
    let first = state.pieces[i0].chunk_box(t0, t1.min(state.pieces[i0].t1));
    if i0 == i1 {
        return first;
    }
    let last = state.pieces[i1].chunk_box(state.pieces[i1].t0, t1);
    let mut acc = first.union(&last);
    if i1 > i0 + 1 {
        acc = acc.union(&range_box(state, i0 + 1, i1 - 1));
    }
    acc
}

impl ProgramView for LazyProgram<'_> {
    fn speed_bound(&self) -> f64 {
        self.speed_bound
    }

    fn approx_eps(&self) -> f64 {
        // A priori bound: chords never exceed the requested tolerance,
        // and the engine needs the bound *before* the pieces exist.
        self.opts.approx_tolerance.unwrap_or(0.0)
    }

    fn covers(&self, t: f64) -> bool {
        let mut state = self.state.borrow_mut();
        ensure(&mut state, &self.opts, t);
        state.rest.is_some() || (t <= state.end_time && !state.pieces.is_empty())
    }

    fn covered_end(&self) -> f64 {
        self.state.borrow().end_time
    }

    fn probe_from(&self, index: &mut usize, t: f64) -> Probe {
        let mut state = self.state.borrow_mut();
        ensure(&mut state, &self.opts, t);
        probe_pieces(
            &state.pieces,
            &state.starts,
            state.rest,
            state.end_time,
            index,
            t,
        )
    }

    fn envelope_box(&self, t0: f64, t1: f64) -> Aabb {
        let mut state = self.state.borrow_mut();
        let t1 = t1.max(t0);
        ensure(&mut state, &self.opts, t1);
        let state = &*state;
        if state.pieces.is_empty() {
            return Aabb::point(state.rest.unwrap_or(Vec2::ZERO));
        }
        if let Some(p) = state.rest {
            if t0 >= state.end_time {
                return Aabb::point(p);
            }
            return envelope_within(state, t0, t1.min(state.end_time));
        }
        if t0 >= state.end_time {
            let anchor = state.pieces[state.pieces.len() - 1].position_at(state.end_time);
            return grow_box(Aabb::point(anchor), self.speed_bound, t1 - state.end_time);
        }
        if t1 > state.end_time {
            let base = envelope_within(state, t0, state.end_time);
            return grow_box(base, self.speed_bound, t1 - state.end_time);
        }
        envelope_within(state, t0, t1)
    }

    fn next_mark_after(&self, t: f64) -> Option<f64> {
        let state = self.state.borrow();
        let i = state.marks.partition_point(|&m| m <= t);
        state.marks.get(i).copied()
    }

    fn is_streaming(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompiledProgram, PathBuilder, Trajectory};
    use std::f64::consts::PI;

    fn sample_path() -> crate::Path {
        PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(3.0, 0.0))
            .arc_around(Vec2::new(3.0, 1.0), PI)
            .wait(0.5)
            .line_to(Vec2::new(-2.0, 2.0))
            .full_circle(Vec2::ZERO)
            .build()
    }

    fn eager(source: &dyn Compile, opts: &CompileOptions) -> CompiledProgram {
        source.compile(opts).unwrap()
    }

    #[test]
    fn nothing_materializes_before_queries() {
        let p = sample_path();
        let lazy = LazyProgram::new(&p, CompileOptions::to_horizon(100.0));
        assert_eq!(lazy.materialized_pieces(), 0);
        assert_eq!(lazy.covered_end(), 0.0);
        assert!(lazy.exhausted().is_none());
    }

    #[test]
    fn probes_match_eager_prefix_bit_for_bit() {
        let p = sample_path();
        let opts = CompileOptions::to_horizon(100.0);
        let full = eager(&p, &opts);
        let lazy = LazyProgram::new(&p, opts);
        let mut idx = 0;
        let mut eager_idx = 0;
        let horizon = p.duration() + 1.0;
        for i in 0..=777 {
            let t = horizon * i as f64 / 777.0;
            let lp = lazy.probe_from(&mut idx, t);
            let ep = full.probe_from(&mut eager_idx, t);
            assert_eq!(lp, ep, "probe mismatch at t={t}");
        }
        // The materialized prefix is the eager arena, piece for piece.
        let prefix = lazy.pieces_snapshot();
        assert_eq!(&full.pieces()[..prefix.len()], &prefix[..]);
        assert_eq!(lazy.rest(), full.rest());
    }

    #[test]
    fn materialization_tracks_query_depth() {
        // A long wait keeps the piece count proportional to coverage.
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 0.0))
            .line_to(Vec2::new(1.0, 1.0))
            .line_to(Vec2::new(0.0, 1.0))
            .wait(50.0)
            .build();
        let lazy = LazyProgram::new(&p, CompileOptions::to_horizon(100.0));
        let mut idx = 0;
        let _ = lazy.probe_from(&mut idx, 0.5);
        assert_eq!(lazy.materialized_pieces(), 1);
        let _ = lazy.probe_from(&mut idx, 2.5);
        assert_eq!(lazy.materialized_pieces(), 3);
    }

    #[test]
    fn envelopes_match_eager_and_grow_past_exhaustion() {
        let p = sample_path();
        let opts = CompileOptions::to_horizon(100.0);
        let full = eager(&p, &opts);
        let lazy = LazyProgram::new(&p, opts);
        let horizon = p.duration() + 1.0;
        for w in 0..31 {
            let t0 = horizon * w as f64 / 31.0;
            for span in [0.05, 0.9, 4.2, horizon] {
                let lb = lazy.envelope_box(t0, t0 + span);
                let eb = full.envelope_box(t0, t0 + span);
                // Both contain the truth; the lazy chunk union may be
                // at most equal (chunk boxes union the same leaves).
                for i in 0..=20 {
                    let t = (t0 + span * i as f64 / 20.0).min(horizon);
                    assert!(
                        lb.contains(p.position(t), 1e-9),
                        "lazy envelope [{t0}, {}] misses t={t}",
                        t0 + span
                    );
                }
                assert_eq!(lb, eb, "envelope mismatch at [{t0}, {}]", t0 + span);
            }
        }
    }

    #[test]
    fn budget_exhaustion_refuses_instead_of_guessing() {
        let p = sample_path();
        let opts = CompileOptions::to_horizon(100.0).max_pieces(2);
        let lazy = LazyProgram::new(&p, opts);
        assert!(ProgramView::covers(&lazy, 1.0));
        assert!(!ProgramView::covers(&lazy, 99.0));
        assert!(matches!(
            lazy.exhausted(),
            Some(CompileError::Budget { pieces: 2, .. })
        ));
        // The covered prefix still answers.
        let mut idx = 0;
        assert_eq!(lazy.probe_from(&mut idx, 0.5).position, p.position(0.5));
    }

    #[test]
    fn curved_sources_without_tolerance_exhaust_cleanly() {
        let t = crate::FnTrajectory::new(|t| Vec2::new(t.cos(), t.sin()), 1.0);
        let lazy = LazyProgram::new(&t, CompileOptions::to_horizon(10.0));
        assert!(!ProgramView::covers(&lazy, 1.0));
        assert_eq!(lazy.exhausted(), Some(CompileError::Curved { at: 0.0 }));
        // Envelope queries stay sound via the speed bound even with an
        // empty arena... which has no anchor, so they report the rest
        // point convention (empty arena + no rest = Vec2::ZERO point);
        // the engine never gets here because covers() already refused.
    }

    #[test]
    fn warm_queries_do_not_touch_the_stream() {
        let p = sample_path();
        let lazy = LazyProgram::new(&p, CompileOptions::to_horizon(100.0));
        lazy.drive_to(p.duration() + 1.0);
        let allocs_before = lazy.chunk_allocs();
        let pieces_before = lazy.materialized_pieces();
        let mut idx = 0;
        for i in 0..=500 {
            let t = (p.duration() + 1.0) * i as f64 / 500.0;
            let _ = lazy.probe_from(&mut idx, t);
        }
        assert_eq!(lazy.materialized_pieces(), pieces_before);
        assert_eq!(lazy.chunk_allocs(), allocs_before);
    }

    #[test]
    fn freeze_equals_eager_lowering_truncated_at_the_frontier() {
        let p = sample_path();
        let lazy = LazyProgram::new(&p, CompileOptions::to_horizon(100.0));
        let mut idx = 0;
        let _ = lazy.probe_from(&mut idx, 4.0);
        let frozen = lazy.freeze();
        assert_eq!(frozen.pieces(), &lazy.pieces_snapshot()[..]);
        assert_eq!(frozen.end_time(), lazy.covered_end());

        // The frozen prefix is bit-identical to an eager lowering whose
        // horizon is the materialized frontier.
        let end = frozen.end_time();
        let truncated = eager(&p, &CompileOptions::to_horizon(end));
        assert_eq!(frozen.pieces(), truncated.pieces());
        assert_eq!(frozen.rest(), truncated.rest());
        let (mut i1, mut i2) = (0, 0);
        for i in 0..=100 {
            let t = end * i as f64 / 100.0;
            assert_eq!(
                ProgramView::probe_from(&frozen, &mut i1, t),
                ProgramView::probe_from(&truncated, &mut i2, t)
            );
            assert_eq!(frozen.envelope_box(t, end), truncated.envelope_box(t, end));
        }
        // Replay semantics: the frozen handle keeps the lazy view's
        // full mark list so identical queries seed identical windows.
        let mut walked = Vec::new();
        let mut m = ProgramView::next_mark_after(&frozen, 0.0);
        while let Some(mark) = m {
            walked.push(mark);
            m = ProgramView::next_mark_after(&frozen, mark);
        }
        assert_eq!(walked, lazy.marks_snapshot());
    }

    #[test]
    fn chunk_boxes_agree_with_per_piece_union_across_boundaries() {
        // More pieces than one chunk: a path of many tiny legs.
        let mut builder = PathBuilder::at(Vec2::ZERO);
        for i in 0..(3 * CHUNK_PIECES) {
            let x = (i + 1) as f64 * 0.01;
            let y = if i % 2 == 0 { 0.1 } else { -0.1 };
            builder = builder.line_to(Vec2::new(x, y));
        }
        let p = builder.build();
        let opts = CompileOptions::to_horizon(1e4).max_pieces(1 << 20);
        let full = eager(&p, &opts);
        let lazy = LazyProgram::new(&p, opts);
        let d = p.duration();
        for (a, b) in [
            (0.0, d),
            (0.3, d * 0.9),
            (d * 0.4, d * 0.6),
            (0.0, d * 0.03),
        ] {
            assert_eq!(
                lazy.envelope_box(a, b),
                full.envelope_box(a, b),
                "range [{a}, {b}]"
            );
        }
    }
}
