//! The primitive motions: straight legs, circle arcs and waits.
//!
//! All of the paper's algorithms decompose into exactly these three
//! primitives, each traversed at **unit speed** in the executing robot's
//! own reference frame (speed differences are applied afterwards by
//! [`FrameWarp`](crate::FrameWarp)). Durations therefore equal arc
//! lengths.

use rvz_geometry::Vec2;

/// One primitive motion, parameterized by local elapsed time `u ∈ [0, duration]`.
///
/// `Line` and `Arc` move at unit speed; `Wait` is stationary. Degenerate
/// segments (zero-length lines, zero-radius arcs, zero waits) are allowed
/// and have zero duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Segment {
    /// Straight unit-speed motion from `from` to `to`.
    Line {
        /// Start point.
        from: Vec2,
        /// End point.
        to: Vec2,
    },
    /// Unit-speed motion along a circle.
    ///
    /// The point starts at angle `start_angle` (radians, measured at the
    /// center) and sweeps through the signed angle `sweep` (positive =
    /// counter-clockwise). The arc length, and hence duration, is
    /// `radius·|sweep|`.
    Arc {
        /// Circle center.
        center: Vec2,
        /// Circle radius (must be ≥ 0).
        radius: f64,
        /// Angle of the starting point, radians.
        start_angle: f64,
        /// Signed angular extent, radians; positive is counter-clockwise.
        sweep: f64,
    },
    /// Remaining stationary at `position` for `duration` time units.
    Wait {
        /// Where the robot waits.
        position: Vec2,
        /// How long it waits (must be ≥ 0).
        duration: f64,
    },
}

impl Segment {
    /// Convenience constructor for a straight leg.
    pub fn line(from: Vec2, to: Vec2) -> Self {
        Segment::Line { from, to }
    }

    /// Convenience constructor for a full counter-clockwise circle starting
    /// at angle `start_angle`.
    pub fn full_circle(center: Vec2, radius: f64, start_angle: f64) -> Self {
        Segment::Arc {
            center,
            radius,
            start_angle,
            sweep: std::f64::consts::TAU,
        }
    }

    /// Convenience constructor for a wait.
    pub fn wait(position: Vec2, duration: f64) -> Self {
        Segment::Wait { position, duration }
    }

    /// The duration of this segment (equal to its arc length for moving
    /// segments, since motion is at unit speed).
    pub fn duration(&self) -> f64 {
        match *self {
            Segment::Line { from, to } => from.distance(to),
            Segment::Arc { radius, sweep, .. } => radius * sweep.abs(),
            Segment::Wait { duration, .. } => duration,
        }
    }

    /// The position where this segment begins.
    pub fn start(&self) -> Vec2 {
        match *self {
            Segment::Line { from, .. } => from,
            Segment::Arc {
                center,
                radius,
                start_angle,
                ..
            } => center + Vec2::from_polar(radius, start_angle),
            Segment::Wait { position, .. } => position,
        }
    }

    /// The position where this segment ends.
    pub fn end(&self) -> Vec2 {
        match *self {
            Segment::Line { to, .. } => to,
            Segment::Arc {
                center,
                radius,
                start_angle,
                sweep,
            } => center + Vec2::from_polar(radius, start_angle + sweep),
            Segment::Wait { position, .. } => position,
        }
    }

    /// Position after `u` time units within this segment.
    ///
    /// `u` is clamped to `[0, duration]`, so querying slightly past the end
    /// (as the floating-point path index occasionally does) returns the
    /// endpoint rather than extrapolating.
    pub fn position_at(&self, u: f64) -> Vec2 {
        let d = self.duration();
        let u = u.clamp(0.0, d);
        match *self {
            Segment::Line { from, to } => {
                if d == 0.0 {
                    from
                } else {
                    from.lerp(to, u / d)
                }
            }
            Segment::Arc {
                center,
                radius,
                start_angle,
                sweep,
            } => {
                if d == 0.0 {
                    self.start()
                } else {
                    // Angular progress is arc length / radius, signed by the
                    // sweep direction.
                    let angle = start_angle + sweep.signum() * (u / radius);
                    center + Vec2::from_polar(radius, angle)
                }
            }
            Segment::Wait { position, .. } => position,
        }
    }

    /// The smallest reasonable disk containing the whole segment.
    ///
    /// Exact for lines and waits; for arcs it is the chord-midpoint disk
    /// when the sweep is at most a half turn and the full circle disk
    /// otherwise (the smallest enclosing disk of a > π arc *is* the
    /// circle's disk).
    pub fn bounding_disk(&self) -> rvz_geometry::Disk {
        self.chunk_disk(0.0, self.duration())
    }

    /// A sound bounding disk for the sub-span `[u0, u1]` of this segment
    /// (local times, clamped to `[0, duration]`).
    ///
    /// This is the leaf of the swept-envelope hierarchy: on a line or
    /// wait it is the exact smallest disk; on an arc chunk spanning the
    /// angle `σ ≤ π` it is the chord-midpoint disk of radius
    /// `R·sin(σ/2)` — within a factor ~2 of the chunk's own extent, which
    /// is what lets the contact engine certify separation *through* the
    /// big circle traversals of the dyadic schedules instead of crawling
    /// them at the conservative rate.
    pub fn chunk_disk(&self, u0: f64, u1: f64) -> rvz_geometry::Disk {
        use rvz_geometry::Disk;
        let d = self.duration();
        let u0 = u0.clamp(0.0, d);
        let u1 = u1.clamp(u0, d);
        match *self {
            Segment::Line { .. } => Disk::spanning(self.position_at(u0), self.position_at(u1)),
            Segment::Wait { position, .. } => Disk::point(position),
            Segment::Arc {
                center,
                radius,
                start_angle,
                sweep,
            } => {
                if radius == 0.0 {
                    return Disk::point(self.start());
                }
                let sign = sweep.signum();
                let a0 = start_angle + sign * (u0 / radius);
                Disk::arc_chunk(center, radius, a0, sign * ((u1 - u0) / radius))
            }
        }
    }

    /// `true` when the robot is stationary for the whole segment.
    pub fn is_stationary(&self) -> bool {
        match self {
            Segment::Wait { .. } => true,
            _ => self.duration() == 0.0,
        }
    }

    /// Validates the numeric invariants (finite endpoints, non-negative
    /// radius/duration), returning a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Segment::Line { from, to } => {
                if !from.is_finite() || !to.is_finite() {
                    return Err(format!("line endpoints not finite: {from} -> {to}"));
                }
            }
            Segment::Arc {
                center,
                radius,
                start_angle,
                sweep,
            } => {
                if !center.is_finite()
                    || !radius.is_finite()
                    || !start_angle.is_finite()
                    || !sweep.is_finite()
                {
                    return Err("arc parameters not finite".to_string());
                }
                if radius < 0.0 {
                    return Err(format!("arc radius negative: {radius}"));
                }
            }
            Segment::Wait { position, duration } => {
                if !position.is_finite() || !duration.is_finite() {
                    return Err("wait parameters not finite".to_string());
                }
                if duration < 0.0 {
                    return Err(format!("wait duration negative: {duration}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn line_duration_is_length() {
        let s = Segment::line(Vec2::ZERO, Vec2::new(3.0, 4.0));
        assert_eq!(s.duration(), 5.0);
        assert_eq!(s.start(), Vec2::ZERO);
        assert_eq!(s.end(), Vec2::new(3.0, 4.0));
    }

    #[test]
    fn line_midpoint() {
        let s = Segment::line(Vec2::new(1.0, 1.0), Vec2::new(3.0, 1.0));
        assert_eq!(s.position_at(1.0), Vec2::new(2.0, 1.0));
    }

    #[test]
    fn degenerate_line_is_stationary() {
        let s = Segment::line(Vec2::UNIT_X, Vec2::UNIT_X);
        assert_eq!(s.duration(), 0.0);
        assert!(s.is_stationary());
        assert_eq!(s.position_at(0.0), Vec2::UNIT_X);
    }

    #[test]
    fn arc_duration_is_arc_length() {
        let s = Segment::full_circle(Vec2::ZERO, 2.0, 0.0);
        assert_approx_eq!(s.duration(), 2.0 * TAU);
    }

    #[test]
    fn arc_quarter_turn_positions() {
        let s = Segment::Arc {
            center: Vec2::ZERO,
            radius: 1.0,
            start_angle: 0.0,
            sweep: FRAC_PI_2,
        };
        assert!((s.start() - Vec2::UNIT_X).norm() < 1e-15);
        assert!((s.end() - Vec2::UNIT_Y).norm() < 1e-15);
        // Halfway through the quarter turn: 45°.
        let mid = s.position_at(s.duration() / 2.0);
        let expected = Vec2::from_polar(1.0, FRAC_PI_2 / 2.0);
        assert!((mid - expected).norm() < 1e-15);
    }

    #[test]
    fn clockwise_arc_moves_clockwise() {
        let s = Segment::Arc {
            center: Vec2::ZERO,
            radius: 1.0,
            start_angle: 0.0,
            sweep: -PI,
        };
        assert!((s.end() - Vec2::from_polar(1.0, -PI)).norm() < 1e-12);
        let quarter = s.position_at(FRAC_PI_2);
        assert!((quarter - Vec2::new(0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn arc_unit_speed() {
        let s = Segment::Arc {
            center: Vec2::new(1.0, -2.0),
            radius: 3.0,
            start_angle: 0.7,
            sweep: 2.0,
        };
        let h = 1e-6;
        let u = 1.3;
        let v = (s.position_at(u + h) - s.position_at(u)).norm() / h;
        assert!((v - 1.0).abs() < 1e-5, "speed {v}");
    }

    #[test]
    fn wait_holds_position() {
        let s = Segment::wait(Vec2::new(5.0, 5.0), 7.0);
        assert_eq!(s.duration(), 7.0);
        assert!(s.is_stationary());
        assert_eq!(s.position_at(0.0), Vec2::new(5.0, 5.0));
        assert_eq!(s.position_at(3.5), Vec2::new(5.0, 5.0));
        assert_eq!(s.start(), s.end());
    }

    #[test]
    fn position_clamps_outside_range() {
        let s = Segment::line(Vec2::ZERO, Vec2::UNIT_X);
        assert_eq!(s.position_at(-1.0), Vec2::ZERO);
        assert_eq!(s.position_at(99.0), Vec2::UNIT_X);
    }

    #[test]
    fn zero_radius_arc_is_degenerate() {
        let s = Segment::Arc {
            center: Vec2::UNIT_Y,
            radius: 0.0,
            start_angle: 1.0,
            sweep: TAU,
        };
        assert_eq!(s.duration(), 0.0);
        assert!(s.is_stationary());
        assert_eq!(s.position_at(0.0), Vec2::UNIT_Y);
    }

    #[test]
    fn validation_catches_bad_segments() {
        assert!(Segment::line(Vec2::ZERO, Vec2::UNIT_X).validate().is_ok());
        assert!(Segment::line(Vec2::new(f64::NAN, 0.0), Vec2::ZERO)
            .validate()
            .is_err());
        assert!(Segment::Arc {
            center: Vec2::ZERO,
            radius: -1.0,
            start_angle: 0.0,
            sweep: 1.0
        }
        .validate()
        .is_err());
        assert!(Segment::wait(Vec2::ZERO, -2.0).validate().is_err());
    }

    /// Every segment kind's chunk disk must contain every sampled point
    /// of the chunk — the leaf soundness obligation of the envelope
    /// hierarchy.
    #[test]
    fn chunk_disks_contain_dense_samples() {
        let segments = [
            Segment::line(Vec2::new(-2.0, 1.0), Vec2::new(3.0, -4.0)),
            Segment::wait(Vec2::new(0.5, 0.5), 3.0),
            Segment::full_circle(Vec2::new(1.0, -1.0), 2.5, 0.7),
            Segment::Arc {
                center: Vec2::ZERO,
                radius: 4.0,
                start_angle: 1.0,
                sweep: -2.3,
            },
        ];
        for seg in &segments {
            let d = seg.duration();
            for (f0, f1) in [(0.0, 1.0), (0.1, 0.35), (0.5, 0.95), (0.3, 0.3)] {
                let (u0, u1) = (f0 * d, f1 * d);
                let disk = seg.chunk_disk(u0, u1);
                for i in 0..=50 {
                    let u = u0 + (u1 - u0) * i as f64 / 50.0;
                    assert!(
                        disk.contains(seg.position_at(u), 1e-9),
                        "{seg:?}: chunk [{u0}, {u1}] misses u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn arc_chunk_disk_is_tight_for_small_spans() {
        // A short chunk of a huge circle must get a small disk — this is
        // what makes envelope certificates beat the conservative step on
        // the big sweeps.
        let seg = Segment::full_circle(Vec2::ZERO, 100.0, 0.0);
        let disk = seg.chunk_disk(0.0, 2.0); // arc length 2 on radius 100
        assert!(disk.radius < 1.01, "radius {}", disk.radius);
        // A > π chunk degrades to the full circle's disk.
        let big = seg.chunk_disk(0.0, 100.0 * PI * 1.5);
        assert_eq!(big.radius, 100.0);
        assert_eq!(big.center, Vec2::ZERO);
    }

    #[test]
    fn bounding_disk_covers_whole_segment() {
        let seg = Segment::full_circle(Vec2::new(2.0, 0.0), 1.0, 0.0);
        let disk = seg.bounding_disk();
        assert_eq!(disk.center, Vec2::new(2.0, 0.0));
        assert_eq!(disk.radius, 1.0);
        let line = Segment::line(Vec2::ZERO, Vec2::new(4.0, 0.0)).bounding_disk();
        assert_eq!(line.center, Vec2::new(2.0, 0.0));
        assert_eq!(line.radius, 2.0);
    }
}
