//! The flat piecewise IR: trajectories compiled to one arena of pieces.
//!
//! Every schedule in the paper — dyadic wait-and-search rounds,
//! Algorithm 7 phases, the universal search — is a finite composition of
//! affine legs, circular arcs and waits. The cursor layer
//! ([`crate::monotone`]) already *exposes* that structure one piece at a
//! time; this module lowers it **once** into a [`CompiledProgram`]:
//!
//! * a flat arena of [`Piece`]s (`t0`, `t1`, start position, exact
//!   [`Motion`] law), with every combinator — [`FrameWarp`](crate::FrameWarp)
//!   frames, [`ClockDrift`](crate::ClockDrift) reparameterizations —
//!   applied **at lowering time**, so downstream consumers see plain
//!   warped pieces and never pay the matrix/clock arithmetic per probe;
//! * a **baked envelope tree** — a flattened binary union tree over the
//!   per-piece bounding disks — answering swept-envelope queries over any
//!   `[t0, t1]` in `O(log n)` with zero per-query allocation (the cursor
//!   layer's `Path` tree is built lazily *per cursor*; here it is built
//!   once per program);
//! * **round marks**: the coarse schedule boundaries (search rounds,
//!   Algorithm 7 phases) recorded as times, which the engine uses to seed
//!   its pruning windows at the schedule's natural granularity.
//!
//! ## Lowering, budgets, and certified curved pieces
//!
//! [`Compile::compile`] drives the trajectory's own monotone cursor from
//! `t = 0` and records each reported piece. Lowering is bounded by a
//! [`CompileOptions`] horizon and piece budget: the dyadic schedules hold
//! Θ(4ᵏ) segments in round `k`, so compiling a deep horizon eagerly is
//! *deliberately* refused (or truncated — see
//! [`CompileOptions::truncate`]) rather than silently materializing
//! millions of pieces. The eager lowering is one consumer of the shared
//! piece producer; [`crate::LazyProgram`] drains the same producer *on
//! demand*, so compile cost is proportional to the time a query actually
//! examines rather than the horizon.
//!
//! Trajectories that expose a [`Motion::Curved`] piece (the Archimedean
//! spiral, arbitrary `FnTrajectory` closures) have no exact closed-form
//! pieces. By default they refuse to lower and keep running on the
//! generic cursor path. When [`CompileOptions::approx_tolerance`] is
//! set, curved spans instead lower to **certified approximate pieces**:
//! affine chords carrying a proven pointwise error bound
//! [`Piece::eps`], produced by adaptive subdivision against
//! [`Compile::chord_error_bound`]. Every certificate the engine emits
//! then folds the program's [`CompiledProgram::approx_eps`] into its
//! contact threshold and the per-piece envelopes are expanded by `eps`,
//! so compiled results remain certificates (see `ARCHITECTURE.md` for
//! the soundness argument). Trajectories whose error cannot be bounded
//! (a closure violating its declared speed bound) refuse with
//! [`CompileError::Uncertifiable`] rather than emitting an unsound
//! bound.
//!
//! A compiled program is itself a [`Trajectory`] +
//! [`MonotoneTrajectory`](crate::MonotoneTrajectory)
//! over its covered span, so it flows through every existing engine
//! entry point; the dedicated monomorphic fast path lives in
//! `rvz_sim::compiled` and is generic over [`ProgramView`], the facade
//! shared by eager and lazy programs.

use crate::monotone::{Cursor, MonotoneDyn, MonotoneGuard, Motion, Probe};
use crate::Trajectory;
use rvz_geometry::{Aabb, Disk, Vec2};
use std::fmt;

/// One entry of the flat arena: a motion law on `[t0, t1]`, exact or
/// certified-approximate.
///
/// The law is evaluable in closed form: an affine piece moves at a
/// constant velocity from [`Piece::pos0`]; a circular piece follows the
/// stored circle from the stored phase. [`Motion::Curved`] never appears
/// in a compiled program — curved spans either refuse to lower or lower
/// to affine chords with a proven error bound [`Piece::eps`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Piece {
    /// Global start time of the piece.
    pub t0: f64,
    /// Global end time of the piece (`> t0`).
    pub t1: f64,
    /// Position at `t0`.
    pub pos0: Vec2,
    /// The motion law, with circular phases anchored at `t0`.
    pub motion: Motion,
    /// Certified pointwise error bound: the source trajectory stays
    /// within `eps` of this piece's law at every time in `[t0, t1]`.
    /// `0.0` for exact pieces; positive only for the affine chords a
    /// curved span lowers to under
    /// [`CompileOptions::approx_tolerance`]. Envelopes
    /// ([`Piece::bounding_box`], [`Piece::chunk_disk`]) are expanded by
    /// `eps` so they contain the *true* curve, and the engine folds the
    /// program-wide maximum into its contact threshold.
    pub eps: f64,
}

impl Piece {
    /// The exact position at global time `t ∈ [t0, t1]`.
    #[inline]
    pub fn position_at(&self, t: f64) -> Vec2 {
        let u = t - self.t0;
        match self.motion {
            Motion::Affine { velocity } => self.pos0 + velocity * u,
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } => center + Vec2::from_polar(radius, angle + angular_velocity * u),
            Motion::Curved => {
                unreachable!("compiled programs never hold curved pieces (curved spans refuse or lower to certified affine chords)")
            }
        }
    }

    /// A cursor-style [`Probe`] at global time `t ∈ [t0, t1)`: the
    /// position plus the motion law **rebased** to `t` (circular phases
    /// advance with the probe, exactly as the cursor contract requires).
    #[inline]
    pub fn probe_at(&self, t: f64) -> Probe {
        let u = t - self.t0;
        let (position, motion) = match self.motion {
            Motion::Affine { velocity } => (self.pos0 + velocity * u, self.motion),
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } => {
                let phase = angle + angular_velocity * u;
                (
                    center + Vec2::from_polar(radius, phase),
                    Motion::Circular {
                        center,
                        radius,
                        angular_velocity,
                        angle: phase,
                    },
                )
            }
            Motion::Curved => {
                unreachable!("compiled programs never hold curved pieces (curved spans refuse or lower to certified affine chords)")
            }
        };
        Probe {
            position,
            piece_end: self.t1,
            motion,
        }
    }

    /// The bounding disk of the whole piece, expanded by [`Piece::eps`]
    /// so it contains the true curve of an approximate piece.
    pub fn disk(&self) -> Disk {
        self.chunk_disk(self.t0, self.t1)
    }

    /// A bounding box of the whole piece (the baked-tree leaf),
    /// expanded by [`Piece::eps`].
    pub fn bounding_box(&self) -> Aabb {
        self.chunk_box(self.t0, self.t1)
    }

    /// A bounding box of the sub-interval `[a, b] ⊆ [t0, t1]`: exact
    /// for affine pieces, the arc-chunk disk's box for circular ones —
    /// in both cases expanded by [`Piece::eps`], so approximate pieces
    /// still bound the true curve.
    pub fn chunk_box(&self, a: f64, b: f64) -> Aabb {
        match self.motion {
            Motion::Affine { velocity } => {
                let ua = a - self.t0;
                let from = self.pos0 + velocity * ua;
                let tight = Aabb::spanning(from, from + velocity * (b - a).max(0.0));
                if self.eps > 0.0 {
                    tight.expanded(self.eps)
                } else {
                    tight
                }
            }
            _ => Aabb::from_disk(&self.chunk_disk(a, b)),
        }
    }

    /// The bounding disk of the sub-interval `[a, b] ⊆ [t0, t1]`,
    /// expanded by [`Piece::eps`].
    pub fn chunk_disk(&self, a: f64, b: f64) -> Disk {
        let ua = a - self.t0;
        let span = (b - a).max(0.0);
        let tight = match self.motion {
            Motion::Affine { velocity } => {
                let from = self.pos0 + velocity * ua;
                if velocity == Vec2::ZERO || span == 0.0 {
                    Disk::point(from)
                } else {
                    Disk::spanning(from, from + velocity * span)
                }
            }
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } => Disk::arc_chunk(
                center,
                radius,
                angle + angular_velocity * ua,
                angular_velocity * span,
            ),
            Motion::Curved => {
                unreachable!("compiled programs never hold curved pieces (curved spans refuse or lower to certified affine chords)")
            }
        };
        if self.eps > 0.0 {
            tight.expanded(self.eps)
        } else {
            tight
        }
    }
}

/// Tuning for [`Compile::compile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Lowering stops once the pieces cover this global time (the
    /// engine's query horizon; finite trajectories may finish earlier
    /// and rest).
    pub horizon: f64,
    /// Hard cap on materialized pieces. The dyadic schedules hold Θ(4ᵏ)
    /// segments per round, so an unbounded lowering of a deep horizon
    /// would silently eat memory; hitting the cap either truncates or
    /// fails, per [`CompileOptions::truncate`].
    pub max_pieces: usize,
    /// What to do when the piece budget trips before the horizon:
    /// `true` returns a **partial** program covering a prefix (usable by
    /// the engine's partial entry point, which reports "insufficient
    /// coverage" instead of a wrong answer); `false` returns
    /// [`CompileError::Budget`].
    pub truncate: bool,
    /// `Some(ε)` enables certified lowering of [`Motion::Curved`] spans:
    /// each span is adaptively subdivided into affine chords whose
    /// proven pointwise error ([`Compile::chord_error_bound`]) is at
    /// most `ε`, recorded per piece in [`Piece::eps`]. `None` (the
    /// default) keeps the exact-only behavior: curved spans refuse with
    /// [`CompileError::Curved`].
    pub approx_tolerance: Option<f64>,
}

impl CompileOptions {
    /// Options lowering up to `horizon` with the default piece budget
    /// (`65 536`) and truncation enabled.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is positive and finite.
    pub fn to_horizon(horizon: f64) -> Self {
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "compile horizon must be positive and finite, got {horizon}"
        );
        CompileOptions {
            horizon,
            max_pieces: 65_536,
            truncate: true,
            approx_tolerance: None,
        }
    }

    /// Replaces the piece budget.
    ///
    /// # Panics
    ///
    /// Panics when `max_pieces` is zero.
    pub fn max_pieces(mut self, max_pieces: usize) -> Self {
        assert!(max_pieces > 0, "piece budget must be positive");
        self.max_pieces = max_pieces;
        self
    }

    /// Sets the on-budget behavior (see [`CompileOptions::truncate`]).
    pub fn truncate(mut self, truncate: bool) -> Self {
        self.truncate = truncate;
        self
    }

    /// Enables certified approximate lowering of curved spans with
    /// pointwise error at most `eps` (see
    /// [`CompileOptions::approx_tolerance`]).
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite.
    pub fn approx_tolerance(mut self, eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps.is_finite(),
            "approx tolerance must be positive and finite, got {eps}"
        );
        self.approx_tolerance = Some(eps);
        self
    }
}

/// Why a trajectory could not be lowered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompileError {
    /// The trajectory exposed a [`Motion::Curved`] piece at the given
    /// time — no closed form exists, so it stays on the cursor path.
    Curved {
        /// The global time of the unloweable piece.
        at: f64,
    },
    /// The piece budget tripped before the horizon (and
    /// [`CompileOptions::truncate`] was off).
    Budget {
        /// Pieces materialized before giving up.
        pieces: usize,
        /// Global time covered by those pieces.
        covered: f64,
    },
    /// The cursor reported a piece that does not advance time — a
    /// cursor-contract violation surfaced as an error rather than an
    /// infinite loop.
    Stalled {
        /// The time at which lowering stopped making progress.
        at: f64,
    },
    /// Certified lowering was requested but no sound error bound could
    /// be established for a curved span, even at the smallest usable
    /// subdivision step — e.g. a closure that violates its declared
    /// speed bound. Refusing is the only sound answer: emitting a
    /// guessed bound would turn compiled certificates into lies.
    Uncertifiable {
        /// The global time at which certification failed.
        at: f64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Curved { at } => {
                write!(f, "curved piece at t={at}: no closed-form lowering")
            }
            CompileError::Budget { pieces, covered } => {
                write!(
                    f,
                    "piece budget hit after {pieces} pieces (covered t={covered})"
                )
            }
            CompileError::Stalled { at } => write!(f, "cursor stalled at t={at}"),
            CompileError::Uncertifiable { at } => {
                write!(f, "no sound error bound for the curved span at t={at}")
            }
        }
    }
}

/// A trajectory lowered to the flat piecewise IR.
///
/// Pieces tile `[0, end_time]` contiguously; after `end_time` the
/// program either rests forever at a fixed point (finite trajectories)
/// or is **uncovered** (a truncated lowering of an infinite schedule —
/// see [`CompiledProgram::covers`]).
///
/// # Example
///
/// ```
/// use rvz_trajectory::program::{Compile, CompileOptions};
/// use rvz_trajectory::{PathBuilder, Trajectory};
/// use rvz_geometry::Vec2;
///
/// let path = PathBuilder::at(Vec2::ZERO)
///     .line_to(Vec2::new(2.0, 0.0))
///     .wait(1.0)
///     .build();
/// let program = path.compile(&CompileOptions::to_horizon(10.0)).unwrap();
/// assert_eq!(program.pieces().len(), 2);
/// assert!(program.covers(1e9)); // finite: rests forever after t = 3
/// assert_eq!(program.position(1.5), Vec2::new(1.5, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    pieces: Vec<Piece>,
    /// `starts[i] == pieces[i].t0`, kept densely for cache-friendly
    /// binary searches (a `Piece` is 48 bytes; envelope queries locate
    /// twice per call).
    starts: Vec<f64>,
    /// Flattened binary union tree over per-piece bounding boxes: node
    /// `i` covers nodes `2i`/`2i+1`, leaves sit at `size + piece_index`,
    /// missing leaves hold [`Aabb::EMPTY`] (the union identity). Baked
    /// at compile time — envelope queries allocate nothing, and a box
    /// union is four branchless min/max ops.
    tree: Vec<Aabb>,
    size: usize,
    /// Time covered by the arena (`pieces.last().t1`, or `0` for an
    /// immediately-resting trajectory).
    end_time: f64,
    /// `Some(p)`: the trajectory holds `p` forever after `end_time`.
    rest: Option<Vec2>,
    speed_bound: f64,
    /// Coarse schedule boundaries (round/phase starts) within the
    /// covered span, strictly increasing.
    marks: Vec<f64>,
    /// The largest [`Piece::eps`] in the arena (`0.0` for an exact
    /// program).
    approx_eps: f64,
}

impl CompiledProgram {
    /// The piece arena.
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// Global time up to which the arena is exact.
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// The rest position, when the trajectory finishes within the
    /// compiled span and holds its final position forever.
    pub fn rest(&self) -> Option<Vec2> {
        self.rest
    }

    /// The wrapped trajectory's speed bound.
    pub fn speed_bound(&self) -> f64 {
        self.speed_bound
    }

    /// The largest certified error bound in the arena: positions (and
    /// probes) are within `approx_eps` of the source trajectory at every
    /// covered time. `0.0` for an exactly lowered program.
    pub fn approx_eps(&self) -> f64 {
        self.approx_eps
    }

    /// The recorded round marks (coarse schedule boundaries).
    pub fn round_marks(&self) -> &[f64] {
        &self.marks
    }

    /// The baked envelope tree and its leaf offset, for transposers
    /// that keep the piece set (and hence the leaf boxes) identical —
    /// cloning the baked tree skips re-deriving every arc-chunk disk.
    pub(crate) fn baked_tree(&self) -> (&[Aabb], usize) {
        (&self.tree, self.size)
    }

    /// `true` when every query in `[0, t]` is answerable exactly: the
    /// arena reaches `t`, or the trajectory rests before it.
    pub fn covers(&self, t: f64) -> bool {
        self.rest.is_some() || t <= self.end_time
    }

    /// The first round mark strictly after `t`, if any.
    pub fn next_mark_after(&self, t: f64) -> Option<f64> {
        let i = self.marks.partition_point(|&m| m <= t);
        self.marks.get(i).copied()
    }

    /// Index of the piece containing `t` (clamped to the last piece for
    /// `t ≥ end_time`; meaningless for empty arenas).
    pub fn piece_index_at(&self, t: f64) -> usize {
        self.starts
            .partition_point(|&s| s <= t)
            .saturating_sub(1)
            .min(self.pieces.len().saturating_sub(1))
    }

    /// Forward probe driven by an external index (the engine's inlined
    /// cursor): advances `index` past finished pieces and reports the
    /// active piece at `t`, or the permanent rest.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `t` lies beyond the covered span of a
    /// truncated program; callers gate on [`CompiledProgram::covers`].
    #[inline]
    pub fn probe_from(&self, index: &mut usize, t: f64) -> Probe {
        probe_pieces(
            &self.pieces,
            &self.starts,
            self.rest,
            self.end_time,
            index,
            t,
        )
    }

    /// The swept envelope over `[t0, t1]` as a bounding box: contains
    /// the position at every covered time in the interval.
    ///
    /// Purely functional (`&self`, zero allocation): partial chunks of
    /// the boundary pieces plus an `O(log n)` union over the baked tree,
    /// every union four branchless min/max ops. Beyond the covered span
    /// the box grows at the speed bound — sound for any continuation, so
    /// envelope look-aheads may cross the truncation boundary even
    /// though probes may not.
    pub fn envelope_box(&self, t0: f64, t1: f64) -> Aabb {
        let t1 = t1.max(t0);
        if self.pieces.is_empty() {
            // Rest-only program (or empty trajectory pinned at a point).
            return Aabb::point(self.rest.unwrap_or(Vec2::ZERO));
        }
        if let Some(p) = self.rest {
            if t0 >= self.end_time {
                return Aabb::point(p);
            }
            // Positions after `end_time` equal the final piece's end, so
            // clamping is exact, not just sound.
            return self.envelope_within(t0, t1.min(self.end_time));
        }
        if t0 >= self.end_time {
            // Entirely uncovered: all we know is the end point plus the
            // speed bound.
            let anchor = self.pieces[self.pieces.len() - 1].position_at(self.end_time);
            return grow_box(Aabb::point(anchor), self.speed_bound, t1 - self.end_time);
        }
        if t1 > self.end_time {
            let base = self.envelope_within(t0, self.end_time);
            return grow_box(base, self.speed_bound, t1 - self.end_time);
        }
        self.envelope_within(t0, t1)
    }

    /// [`CompiledProgram::envelope_box`] as a disk, for the
    /// [`Cursor`] envelope contract (the circumscribed disk of the box —
    /// at most √2 looser, always sound).
    pub fn envelope(&self, t0: f64, t1: f64) -> Disk {
        self.envelope_box(t0, t1).to_disk()
    }

    /// [`CompiledProgram::envelope_box`] restricted to the covered span.
    fn envelope_within(&self, t0: f64, t1: f64) -> Aabb {
        let i0 = self.piece_index_at(t0);
        let i1 = self.piece_index_at(t1);
        let first = self.pieces[i0].chunk_box(t0, t1.min(self.pieces[i0].t1));
        if i0 == i1 {
            return first;
        }
        let last = self.pieces[i1].chunk_box(self.pieces[i1].t0, t1);
        let mut acc = first.union(&last);
        if i1 > i0 + 1 {
            acc = acc.union(&self.tree_query(i0 + 1, i1 - 1));
        }
        acc
    }

    /// Union of the piece boxes in the inclusive index range `[l, r]`.
    fn tree_query(&self, l: usize, r: usize) -> Aabb {
        tree_range_union(&self.tree, self.size, l, r)
    }
}

/// Bakes the flattened binary union tree over per-piece bounding boxes
/// (leaves at `size + i`, parents the union of their children). Shared
/// by [`assemble_program`] and the SoA arena so both lay the tree out
/// identically.
pub(crate) fn bake_tree(boxes: impl ExactSizeIterator<Item = Aabb>) -> (Vec<Aabb>, usize) {
    let size = boxes.len().next_power_of_two().max(1);
    let mut tree = vec![Aabb::EMPTY; 2 * size];
    for (i, b) in boxes.enumerate() {
        tree[size + i] = b;
    }
    for i in (1..size).rev() {
        tree[i] = tree[2 * i].union(&tree[2 * i + 1]);
    }
    (tree, size)
}

/// Union over the inclusive leaf range `[l, r]` of a baked tree:
/// iterative segment-tree walk, every union four branchless min/max ops.
pub(crate) fn tree_range_union(tree: &[Aabb], size: usize, l: usize, r: usize) -> Aabb {
    let mut l = l + size;
    let mut r = r + size + 1;
    let mut acc = Aabb::EMPTY;
    while l < r {
        if l & 1 == 1 {
            acc = acc.union(&tree[l]);
            l += 1;
        }
        if r & 1 == 1 {
            r -= 1;
            acc = acc.union(&tree[r]);
        }
        l >>= 1;
        r >>= 1;
    }
    acc
}

/// The shared indexed probe walk over a piece arena: a short linear walk
/// (the common case: the next piece or the one after), then a binary
/// search over the remaining starts — a pruning skip can jump an entire
/// Θ(4ᵏ) round, and walking it piece by piece would swamp the query.
/// Used by both [`CompiledProgram::probe_from`] and the lazy arena, so
/// the two answer identically on identical piece prefixes.
#[inline]
pub(crate) fn probe_pieces(
    pieces: &[Piece],
    starts: &[f64],
    rest: Option<Vec2>,
    end_time: f64,
    index: &mut usize,
    t: f64,
) -> Probe {
    let n = pieces.len();
    let mut i = *index;
    let mut hops = 0;
    while i < n && t >= pieces[i].t1 {
        i += 1;
        hops += 1;
        if hops == 8 && i < n && t >= pieces[i].t1 {
            i += starts[i..].partition_point(|&s| s <= t);
            i = i.saturating_sub(1).max(*index);
            // The found piece may already be finished (t == its t1
            // exactly); let the loop's next test settle it.
            while i < n && t >= pieces[i].t1 {
                i += 1;
            }
            break;
        }
    }
    *index = i;
    if i == n {
        debug_assert!(
            rest.is_some() || t <= end_time * (1.0 + 16.0 * f64::EPSILON),
            "probe at t={t} beyond the covered span {end_time}"
        );
        return match rest {
            Some(p) => Probe::resting(p),
            // `t == end_time` on a truncated program: the boundary
            // itself still evaluates on the final piece.
            None => pieces[n - 1].probe_at(t.min(end_time)),
        };
    }
    pieces[i].probe_at(t)
}

/// A box grown to stay sound `span` time units past its certificate,
/// at speed `s` (∞-safe).
pub(crate) fn grow_box(base: Aabb, s: f64, span: f64) -> Aabb {
    if s == 0.0 || span <= 0.0 {
        return base;
    }
    let extra = if span.is_finite() {
        s * span
    } else {
        f64::INFINITY
    };
    base.expanded(extra)
}

impl Trajectory for CompiledProgram {
    /// The exact position within the covered span; past a truncated
    /// span the final covered position is held (debug builds assert
    /// coverage instead — gate on [`CompiledProgram::covers`]).
    fn position(&self, t: f64) -> Vec2 {
        debug_assert!(t >= 0.0 && !t.is_nan(), "position requires t >= 0, got {t}");
        if t >= self.end_time || self.pieces.is_empty() {
            if let Some(p) = self.rest {
                return p;
            }
            debug_assert!(
                t <= self.end_time * (1.0 + 16.0 * f64::EPSILON),
                "position at t={t} beyond the covered span {}",
                self.end_time
            );
            return match self.pieces.last() {
                Some(p) => p.position_at(self.end_time),
                None => Vec2::ZERO,
            };
        }
        self.pieces[self.piece_index_at(t)].position_at(t)
    }

    fn speed_bound(&self) -> f64 {
        self.speed_bound
    }

    fn duration(&self) -> Option<f64> {
        self.rest.map(|_| self.end_time)
    }
}

/// The monotone cursor of a [`CompiledProgram`]: one forward index, no
/// lazy state (the envelope tree is baked), no allocation.
#[derive(Debug, Clone)]
pub struct ProgramCursor<'a> {
    program: &'a CompiledProgram,
    index: usize,
    guard: MonotoneGuard,
}

impl Cursor for ProgramCursor<'_> {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        self.program.probe_from(&mut self.index, t)
    }

    fn speed_bound(&self) -> f64 {
        self.program.speed_bound
    }

    fn envelope(&mut self, t0: f64, t1: f64) -> Disk {
        self.program.envelope(t0, t1)
    }
}

impl crate::monotone::MonotoneTrajectory for CompiledProgram {
    type Cursor<'a> = ProgramCursor<'a>;

    fn cursor(&self) -> ProgramCursor<'_> {
        ProgramCursor {
            program: self,
            index: 0,
            guard: MonotoneGuard::default(),
        }
    }
}

/// The facade the compiled engine (`rvz_sim::compiled`) is generic
/// over: everything a first-contact query needs from a program arena,
/// implemented by the eager [`CompiledProgram`] and the streaming
/// [`crate::LazyProgram`].
///
/// The contract mirrors the eager program's: [`ProgramView::covers`] is
/// the *extend-and-check* coverage test — a lazy implementation may
/// materialize pieces to answer it, so a `true` return promises that
/// probes up to `t` are now answerable. Probes and envelope queries on
/// a lazy view likewise materialize on demand; beyond an exhausted
/// coverage boundary, envelope queries stay sound by growing at the
/// speed bound while probes are out of contract (engine callers gate
/// every advance on `covers`).
pub trait ProgramView {
    /// The wrapped trajectory's speed bound.
    fn speed_bound(&self) -> f64;

    /// An upper bound on every [`Piece::eps`] the view can expose: the
    /// engine folds `a.approx_eps() + b.approx_eps()` into its contact
    /// threshold. Must never increase after a query has started (the
    /// eager program reports its arena maximum; the lazy program
    /// reports the requested compile tolerance a priori).
    fn approx_eps(&self) -> f64;

    /// Extend-and-check coverage: `true` promises every probe in
    /// `[0, t]` is answerable exactly.
    fn covers(&self, t: f64) -> bool;

    /// The time currently covered by materialized pieces (for
    /// diagnostics and panic messages).
    fn covered_end(&self) -> f64;

    /// Forward probe driven by an external index; see
    /// [`CompiledProgram::probe_from`].
    fn probe_from(&self, index: &mut usize, t: f64) -> Probe;

    /// The swept envelope over `[t0, t1]` as a bounding box; see
    /// [`CompiledProgram::envelope_box`].
    fn envelope_box(&self, t0: f64, t1: f64) -> Aabb;

    /// The first round mark strictly after `t`, if any.
    fn next_mark_after(&self, t: f64) -> Option<f64>;

    /// `true` for views that materialize pieces on demand (the lazy
    /// program). Purely observational — engine telemetry uses it to
    /// attribute a query to the eager or streaming compiled path; it
    /// must never influence the answer.
    fn is_streaming(&self) -> bool {
        false
    }
}

macro_rules! forward_program_view {
    ($($ptr:ty),*) => {$(
        impl<T: ProgramView + ?Sized> ProgramView for $ptr {
            fn speed_bound(&self) -> f64 {
                (**self).speed_bound()
            }
            fn approx_eps(&self) -> f64 {
                (**self).approx_eps()
            }
            fn covers(&self, t: f64) -> bool {
                (**self).covers(t)
            }
            fn covered_end(&self) -> f64 {
                (**self).covered_end()
            }
            fn probe_from(&self, index: &mut usize, t: f64) -> Probe {
                (**self).probe_from(index, t)
            }
            fn envelope_box(&self, t0: f64, t1: f64) -> Aabb {
                (**self).envelope_box(t0, t1)
            }
            fn next_mark_after(&self, t: f64) -> Option<f64> {
                (**self).next_mark_after(t)
            }
            fn is_streaming(&self) -> bool {
                (**self).is_streaming()
            }
        }
    )*};
}

forward_program_view!(&T, Box<T>, std::rc::Rc<T>, std::sync::Arc<T>);

impl ProgramView for CompiledProgram {
    fn speed_bound(&self) -> f64 {
        CompiledProgram::speed_bound(self)
    }
    fn approx_eps(&self) -> f64 {
        CompiledProgram::approx_eps(self)
    }
    fn covers(&self, t: f64) -> bool {
        CompiledProgram::covers(self, t)
    }
    fn covered_end(&self) -> f64 {
        self.end_time()
    }
    fn probe_from(&self, index: &mut usize, t: f64) -> Probe {
        CompiledProgram::probe_from(self, index, t)
    }
    fn envelope_box(&self, t0: f64, t1: f64) -> Aabb {
        CompiledProgram::envelope_box(self, t0, t1)
    }
    fn next_mark_after(&self, t: f64) -> Option<f64> {
        CompiledProgram::next_mark_after(self, t)
    }
}

/// Lowering to the flat IR.
///
/// The default [`Compile::compile`] drives the trajectory's own monotone
/// cursor; implementors only override [`Compile::round_marks`] to expose
/// their coarse schedule boundaries (and may override `compile` itself
/// for bespoke lowerings). The trait is object-safe, so heterogeneous
/// collections can lower through `&dyn Compile`.
pub trait Compile: MonotoneDyn {
    /// Lowers the trajectory to a [`CompiledProgram`] covering
    /// `[0, opts.horizon]` (or the trajectory's full finite span).
    ///
    /// # Errors
    ///
    /// [`CompileError::Curved`] when the trajectory exposes curved
    /// pieces and [`CompileOptions::approx_tolerance`] is unset;
    /// [`CompileError::Uncertifiable`] when certification was requested
    /// but no sound chord bound exists; [`CompileError::Budget`] when
    /// the piece budget trips with truncation disabled;
    /// [`CompileError::Stalled`] on a cursor that stops advancing.
    fn compile(&self, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
        lower_program(self, opts)
    }

    /// Times of the trajectory's coarse schedule boundaries within
    /// `[0, horizon]` — search-round starts, Algorithm 7 phase edges.
    /// Used to seed the engine's pruning windows; empty by default
    /// (sound: marks are hints, never required).
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        let _ = horizon;
        Vec::new()
    }

    /// A proven pointwise bound on the distance between the trajectory
    /// and the **chord** of `[t0, t1]` (the affine piece interpolating
    /// `position(t0) → position(t1)`), valid at every time in the
    /// interval. `None` when no sound bound can be established; the
    /// certified lowering then subdivides further or refuses with
    /// [`CompileError::Uncertifiable`].
    ///
    /// The default is a sampled Lipschitz bound with a safety factor
    /// (see [`sampled_chord_bound`]): it checks the declared speed bound
    /// against the samples and refuses when the trajectory visibly
    /// violates it. Closed-form trajectories override this with exact
    /// curvature bounds (the Archimedean spiral in `rvz-baselines`).
    fn chord_error_bound(&self, t0: f64, t1: f64) -> Option<f64> {
        sampled_chord_bound(self, self.speed_bound(), t0, t1)
    }
}

impl<T: Compile + crate::MonotoneTrajectory + ?Sized> Compile for &T {
    fn compile(&self, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
        (**self).compile(opts)
    }
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        (**self).round_marks(horizon)
    }
    fn chord_error_bound(&self, t0: f64, t1: f64) -> Option<f64> {
        (**self).chord_error_bound(t0, t1)
    }
}

/// The default [`Compile::chord_error_bound`]: a sampled Lipschitz bound
/// with a safety factor.
///
/// The interval is sampled at 17 points. The bound is the largest
/// sampled deviation from the chord plus the worst possible excursion
/// *between* samples (half a sample step at the combined true/chord
/// speed), scaled by a 1.25 safety factor. Soundness rests on the
/// declared speed bound; as a cross-check, any adjacent sample pair
/// farther apart than the speed bound allows refuses outright (`None`)
/// — a non-Lipschitz spike must not receive a certificate. The
/// roundoff slack in that check scales with the positions' magnitude
/// (never a fixed absolute term): a fixed term would let a
/// speed-violating span pass once the adaptive subdivision shrinks the
/// interval below the slack, turning the refusal into a budget-burning
/// crawl of floor-sized "certified" chords over an uncertifiable span.
pub fn sampled_chord_bound<T: Trajectory + ?Sized>(
    trajectory: &T,
    speed_bound: f64,
    t0: f64,
    t1: f64,
) -> Option<f64> {
    const N: usize = 16;
    let dt = t1 - t0;
    if !t1.is_finite() || !speed_bound.is_finite() || dt.is_nan() || dt <= 0.0 || speed_bound < 0.0
    {
        return None;
    }
    let p0 = trajectory.position(t0);
    let p1 = trajectory.position(t1);
    let chord_v = (p1 - p0) / dt;
    let h = dt / N as f64;
    let mut max_dev = 0.0_f64;
    let mut prev = p0;
    let mut prev_t = t0;
    for i in 1..=N {
        let u = if i == N { t1 } else { t0 + h * i as f64 };
        let p = trajectory.position(u);
        let du = u - prev_t;
        // Adjacent samples farther apart than the declared speed bound
        // allows: the Lipschitz premise is false, refuse. The slack
        // covers evaluation roundoff only, so it scales with the
        // positions' magnitude and the span — not a fixed absolute
        // floor a shrinking subdivision could hide a violation under.
        let roundoff = 1e-12 * (p.norm().max(prev.norm()) + speed_bound * dt);
        if p.distance(prev) > speed_bound * du * (1.0 + 1e-9) + roundoff {
            return None;
        }
        let dev = (p - (p0 + chord_v * (u - t0))).norm();
        max_dev = max_dev.max(dev);
        prev = p;
        prev_t = u;
    }
    // Between samples the true point moves at most speed_bound·h/2 from
    // the nearest sample and the chord point at most |chord_v|·h/2.
    let between = 0.5 * h * (speed_bound + chord_v.norm());
    Some((max_dev + between) * 1.25)
}

/// The certified-approximation hooks a [`PieceStream`] uses to lower
/// [`Motion::Curved`] spans: random access into the source trajectory
/// plus its chord error bound, with the target tolerance.
pub(crate) struct CurvedApprox<'a> {
    /// Random-access position of the source trajectory.
    pub position: Box<dyn Fn(f64) -> Vec2 + 'a>,
    /// [`Compile::chord_error_bound`] of the source trajectory.
    pub bound: Box<dyn Fn(f64, f64) -> Option<f64> + 'a>,
    /// The requested pointwise tolerance (`> 0`, finite).
    pub eps: f64,
}

/// Adaptive-subdivision state across one [`Motion::Curved`] span.
#[derive(Debug, Clone, Copy)]
struct CurvedSpan {
    /// Where the curved cursor piece ends (clamped to the horizon).
    seg_end: f64,
    /// Subdivision frontier: chords up to here are already emitted.
    u: f64,
    /// Exact position at `u` (carried forward so chords tile
    /// continuously).
    pos_u: Vec2,
    /// Current adaptive step: halved until the bound certifies, doubled
    /// after each accepted chord.
    step: f64,
}

/// One event produced by a [`PieceStream`].
pub(crate) enum LoweredStep {
    /// The next piece. `counted` pieces are subject to the piece budget
    /// (the horizon-closing cut of an infinite moving piece is exempt,
    /// exactly as in the historical eager loop).
    Piece { piece: Piece, counted: bool },
    /// The trajectory rests forever at this position from the stream's
    /// current time on.
    Rest(Vec2),
    /// The horizon is covered; the stream will produce nothing further.
    Finished,
}

/// The single piece producer behind both the eager lowering and
/// [`crate::LazyProgram`]: drives a cursor forward, applies the ulp
/// stall nudges, and (when a [`CurvedApprox`] handler is present)
/// subdivides curved spans into certified affine chords. Because both
/// consumers drain the *same* producer, a lazy program's materialized
/// prefix is bit-identical to the eager lowering's.
pub(crate) struct PieceStream<'h, C> {
    cursor: C,
    handler: Option<CurvedApprox<'h>>,
    horizon: f64,
    t: f64,
    span: Option<CurvedSpan>,
    finished: bool,
}

impl<'h, C: Cursor> PieceStream<'h, C> {
    pub(crate) fn new(cursor: C, handler: Option<CurvedApprox<'h>>, horizon: f64) -> Self {
        PieceStream {
            cursor,
            handler,
            horizon,
            t: 0.0,
            span: None,
            finished: false,
        }
    }

    /// Produces the next lowering event.
    pub(crate) fn next_step(&mut self) -> Result<LoweredStep, CompileError> {
        if self.span.is_some() {
            return self.next_chord();
        }
        if self.finished {
            return Ok(LoweredStep::Finished);
        }
        let t = self.t;
        // The schedules' independently rounded closed forms can put a
        // piece boundary an ulp past the previous piece's reported end;
        // probing exactly there can land back on the finished piece.
        // Nudge forward by single ulps (bounded) before declaring a
        // stall — the sub-ulp time skew is far below the 1e-12 fidelity
        // the compiled positions are tested to.
        let mut p = self.cursor.probe(t);
        let mut probe_t = t;
        let mut bumps = 0;
        while p.piece_end <= t && bumps < 4 {
            probe_t = probe_t.next_up();
            p = self.cursor.probe(probe_t);
            bumps += 1;
        }
        if let Motion::Curved = p.motion {
            if self.handler.is_none() {
                return Err(CompileError::Curved { at: t });
            }
            if p.piece_end <= t {
                return Err(CompileError::Stalled { at: t });
            }
            let seg_end = p.piece_end.min(self.horizon);
            self.span = Some(CurvedSpan {
                seg_end,
                u: t,
                pos_u: p.position,
                step: (seg_end - t).min(1.0),
            });
            return self.next_chord();
        }
        if p.piece_end == f64::INFINITY {
            if p.motion
                == (Motion::Affine {
                    velocity: Vec2::ZERO,
                })
            {
                // Permanent rest: the trajectory finished.
                self.finished = true;
                return Ok(LoweredStep::Rest(p.position));
            }
            // An infinite moving piece (no trajectory in the workspace
            // produces one, but the contract allows it): close the
            // arena at the horizon.
            self.finished = true;
            self.t = self.horizon;
            return Ok(LoweredStep::Piece {
                piece: Piece {
                    t0: t,
                    t1: self.horizon,
                    pos0: p.position,
                    motion: p.motion,
                    eps: 0.0,
                },
                counted: false,
            });
        }
        if p.piece_end <= t {
            return Err(CompileError::Stalled { at: t });
        }
        let t1 = p.piece_end.min(self.horizon);
        if p.piece_end >= self.horizon {
            self.finished = true;
            self.t = self.horizon;
        } else {
            self.t = p.piece_end;
        }
        Ok(LoweredStep::Piece {
            piece: Piece {
                t0: t,
                t1,
                pos0: p.position,
                motion: p.motion,
                eps: 0.0,
            },
            counted: true,
        })
    }

    /// Emits the next certified chord of the active curved span.
    fn next_chord(&mut self) -> Result<LoweredStep, CompileError> {
        let mut span = self.span.expect("next_chord requires an active span");
        let handler = self
            .handler
            .as_ref()
            .expect("curved spans require an approx handler");
        let remaining = span.seg_end - span.u;
        let mut s = span.step.min(remaining);
        let (t1, bound) = loop {
            // Land exactly on the span end when the step reaches it, so
            // chords tile the span without a floating-point sliver.
            let t1 = if s >= remaining {
                span.seg_end
            } else {
                span.u + s
            };
            match (handler.bound)(span.u, t1) {
                Some(b) if b >= 0.0 && b.is_finite() && b <= handler.eps => break (t1, b),
                _ => {
                    s *= 0.5;
                    if !s.is_finite() || s <= (1.0 + span.u.abs()) * 1e-13 {
                        // Even near-degenerate steps cannot be bounded:
                        // refusing beats certifying a lie.
                        return Err(CompileError::Uncertifiable { at: span.u });
                    }
                }
            }
        };
        let pos1 = (handler.position)(t1);
        let dt = t1 - span.u;
        let piece = Piece {
            t0: span.u,
            t1,
            pos0: span.pos_u,
            motion: Motion::Affine {
                velocity: (pos1 - span.pos_u) / dt,
            },
            eps: bound,
        };
        if t1 >= span.seg_end {
            self.span = None;
            self.t = span.seg_end;
            if span.seg_end >= self.horizon {
                self.finished = true;
            }
        } else {
            span.u = t1;
            span.pos_u = pos1;
            span.step = s * 2.0;
            self.span = Some(span);
        }
        Ok(LoweredStep::Piece {
            piece,
            counted: true,
        })
    }
}

/// Lowers any [`Compile`] source to an eager [`CompiledProgram`],
/// including certified curved spans when
/// [`CompileOptions::approx_tolerance`] is set. This is the body of the
/// default [`Compile::compile`]; it exists as a free function so the
/// trait stays object-safe.
///
/// # Errors
///
/// As for [`Compile::compile`].
pub fn lower_program<T: Compile + ?Sized>(
    source: &T,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    rvz_obs::span!("lower");
    let marks = source.round_marks(opts.horizon);
    let handler = opts.approx_tolerance.map(|eps| CurvedApprox {
        position: Box::new(move |t| source.position(t)) as Box<dyn Fn(f64) -> Vec2 + '_>,
        bound: Box::new(move |a, b| source.chord_error_bound(a, b)),
        eps,
    });
    let program = lower_impl(
        &mut *source.dyn_cursor(),
        source.speed_bound(),
        marks,
        opts,
        handler,
    )?;
    rvz_obs::counter!("rvz_lowered_pieces_total").add(program.pieces().len() as u64);
    Ok(program)
}

/// The cursor-only lowering loop: walk a cursor piece by piece and bake
/// the arena, the envelope tree, and the marks. Curved pieces always
/// refuse here — certification needs random access into the source, so
/// it is only available through [`lower_program`] / [`Compile::compile`].
///
/// # Errors
///
/// As for [`Compile::compile`] (never
/// [`CompileError::Uncertifiable`]).
pub fn lower_from_cursor(
    cursor: &mut dyn Cursor,
    speed_bound: f64,
    marks: Vec<f64>,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    lower_impl(cursor, speed_bound, marks, opts, None)
}

fn lower_impl(
    cursor: &mut dyn Cursor,
    speed_bound: f64,
    marks: Vec<f64>,
    opts: &CompileOptions,
    handler: Option<CurvedApprox<'_>>,
) -> Result<CompiledProgram, CompileError> {
    assert!(
        opts.horizon > 0.0 && opts.horizon.is_finite(),
        "compile horizon must be positive and finite, got {}",
        opts.horizon
    );
    assert!(opts.max_pieces > 0, "piece budget must be positive");
    let mut stream = PieceStream::new(cursor, handler, opts.horizon);
    let mut pieces: Vec<Piece> = Vec::new();
    let mut rest = None;
    loop {
        match stream.next_step()? {
            LoweredStep::Piece { piece, counted } => {
                if counted && pieces.len() == opts.max_pieces {
                    if opts.truncate {
                        break;
                    }
                    return Err(CompileError::Budget {
                        pieces: pieces.len(),
                        covered: piece.t0,
                    });
                }
                pieces.push(piece);
            }
            LoweredStep::Rest(p) => {
                rest = Some(p);
                break;
            }
            LoweredStep::Finished => break,
        }
    }
    Ok(assemble_program(pieces, marks, rest, speed_bound, None))
}

/// Bakes a piece arena into a [`CompiledProgram`]: envelope tree,
/// dense start index, mark filtering. Shared by eager lowering and
/// [`crate::LazyProgram::freeze`].
///
/// `mark_end` overrides the mark cutoff: `None` keeps only marks within
/// the pieces' span (eager semantics), `Some(h)` keeps marks up to `h`
/// regardless of coverage (a frozen lazy prefix keeps its full mark
/// list so that replayed queries seed identical pruning windows).
pub(crate) fn assemble_program(
    pieces: Vec<Piece>,
    marks: Vec<f64>,
    rest: Option<Vec2>,
    speed_bound: f64,
    mark_end: Option<f64>,
) -> CompiledProgram {
    let end_time = pieces.last().map_or(0.0, |p| p.t1);
    let approx_eps = pieces.iter().fold(0.0_f64, |acc, p| acc.max(p.eps));

    // Bake the envelope tree.
    let (tree, size) = bake_tree(pieces.iter().map(Piece::bounding_box));

    // Keep only in-cutoff, strictly increasing marks.
    let cutoff = mark_end.unwrap_or(end_time);
    let mut marks: Vec<f64> = marks
        .into_iter()
        .filter(|&m| m.is_finite() && m > 0.0 && m <= cutoff)
        .collect();
    marks.sort_by(f64::total_cmp);
    marks.dedup();

    let starts = pieces.iter().map(|p| p.t0).collect();
    CompiledProgram {
        pieces,
        starts,
        tree,
        size,
        end_time,
        rest,
        speed_bound,
        marks,
        approx_eps,
    }
}

// ------------------------------------------------------------------
// Compile impls for the in-crate trajectory types. Schedule crates
// (rvz-search, rvz-core, rvz-sim, rvz-baselines) implement the trait
// for their own types next to their cursor impls.
// ------------------------------------------------------------------

impl Compile for crate::Path {
    /// Segment start times — paths have no coarser structure than their
    /// pieces, but the marks make multi-path concatenations align.
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.segment_start_time(i))
            .take_while(|&s| s <= horizon)
            .collect()
    }
}

impl<T: Compile + crate::MonotoneTrajectory> Compile for crate::FrameWarp<T> {
    /// Inner marks mapped through the time dilation: a boundary at local
    /// time `u` happens at global time `u·τ`.
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        let tau = self.time_scale();
        self.inner()
            .round_marks(horizon / tau)
            .into_iter()
            .map(|u| u * tau)
            .collect()
    }
}

impl<T: Compile + crate::MonotoneTrajectory> Compile for crate::ClockDrift<T> {
    /// Inner marks mapped through the inverse clock, plus the clock's
    /// own breakpoints (each starts a fresh run of pieces).
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        let local_horizon = self.local_time(horizon);
        let mut marks: Vec<f64> = self
            .inner()
            .round_marks(local_horizon)
            .into_iter()
            .map(|u| self.global_time(u))
            .collect();
        marks.extend(self.breakpoints());
        marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockDrift, FrameWarp, MonotoneTrajectory, PathBuilder};
    use rvz_geometry::Mat2;
    use std::f64::consts::PI;

    fn sample_path() -> crate::Path {
        PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(3.0, 0.0))
            .arc_around(Vec2::new(3.0, 1.0), PI)
            .wait(0.5)
            .line_to(Vec2::new(-2.0, 2.0))
            .full_circle(Vec2::ZERO)
            .build()
    }

    #[test]
    fn path_lowers_to_exact_pieces() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e4)).unwrap();
        assert_eq!(program.pieces().len(), p.len());
        assert_eq!(program.rest(), Some(p.end_position()));
        assert!(program.covers(f64::INFINITY));
        let horizon = p.duration() + 2.0;
        for i in 0..=2000 {
            let t = horizon * i as f64 / 2000.0;
            let d = program.position(t).distance(p.position(t));
            assert!(d < 1e-12, "mismatch at t={t}: {d}");
        }
    }

    #[test]
    fn program_cursor_honors_the_cursor_contract() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e4)).unwrap();
        let mut c = program.cursor();
        let horizon = p.duration() + 1.0;
        for i in 0..=997 {
            let t = horizon * i as f64 / 997.0;
            let probe = c.probe(t);
            assert!(probe.position.distance(p.position(t)) < 1e-12, "t={t}");
            assert!(probe.piece_end > t || probe.piece_end == f64::INFINITY);
        }
    }

    #[test]
    fn baked_envelopes_contain_positions() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e4)).unwrap();
        let horizon = p.duration() + 1.0;
        for w in 0..37 {
            let t0 = horizon * w as f64 / 37.0;
            for span in [0.05, 0.7, 3.9, horizon, f64::INFINITY] {
                let disk = program.envelope(t0, t0 + span);
                for i in 0..=25 {
                    let t = (t0 + span.min(horizon) * i as f64 / 25.0).min(horizon);
                    assert!(
                        disk.contains(p.position(t), 1e-9),
                        "envelope [{t0}, {}] misses t={t}",
                        t0 + span
                    );
                }
            }
        }
    }

    #[test]
    fn horizon_truncates_infinite_pieces() {
        // A path whose wait extends past the horizon: the piece is cut.
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 0.0))
            .wait(100.0)
            .build();
        let program = p.compile(&CompileOptions::to_horizon(5.0)).unwrap();
        assert_eq!(program.end_time(), 5.0);
        assert!(program.rest().is_none());
        assert!(program.covers(5.0));
        assert!(!program.covers(5.1));
        assert_eq!(program.position(5.0), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn budget_truncates_or_fails() {
        let p = sample_path();
        let opts = CompileOptions::to_horizon(1e4).max_pieces(2);
        let partial = p.compile(&opts).unwrap();
        assert_eq!(partial.pieces().len(), 2);
        assert!(partial.rest().is_none());
        assert!(!partial.covers(p.duration()));
        let strict = opts.truncate(false);
        assert_eq!(
            p.compile(&strict),
            Err(CompileError::Budget {
                pieces: 2,
                covered: partial.end_time(),
            })
        );
    }

    #[test]
    fn curved_trajectories_refuse_to_lower() {
        // Without an `approx_tolerance` the historical refusal stands...
        use crate::monotone::GenericCursor;
        let t = crate::FnTrajectory::new(|t| Vec2::new(t.cos(), t.sin()), 1.0);
        let err = lower_from_cursor(
            &mut GenericCursor::new(&t),
            1.0,
            Vec::new(),
            &CompileOptions::to_horizon(10.0),
        )
        .unwrap_err();
        assert_eq!(err, CompileError::Curved { at: 0.0 });
        assert!(err.to_string().contains("curved"));
        // ... with one, the same source lowers to certified chords whose
        // realized bound is within the requested tolerance.
        let opts = CompileOptions::to_horizon(6.0)
            .max_pieces(1 << 16)
            .approx_tolerance(1e-4);
        let program = t.compile(&opts).expect("certified chords lower");
        assert!(program.approx_eps() > 0.0 && program.approx_eps() <= 1e-4);
        for i in 0..=3000 {
            let u = 6.0 * i as f64 / 3000.0;
            let d = program.position(u).distance(t.position(u));
            assert!(d <= program.approx_eps() + 1e-12, "t={u}: {d}");
        }
    }

    #[test]
    fn hostile_closures_refuse_instead_of_guessing() {
        // A continuous kink that moves 50× faster than its declared
        // speed bound: the sampled Lipschitz premise is false, so no
        // subdivision step can certify a chord across (or inside) the
        // fast region. Lowering must refuse with `Uncertifiable`, never
        // emit a guessed ε.
        let spike = crate::FnTrajectory::new(
            |t| Vec2::new(if t > 0.5 { 50.0 * (t - 0.5) } else { 0.0 }, 0.0),
            1.0,
        );
        let opts = CompileOptions::to_horizon(1.0)
            .max_pieces(1 << 16)
            .approx_tolerance(1e-3);
        let err = spike.compile(&opts).unwrap_err();
        match err {
            CompileError::Uncertifiable { at } => {
                assert!((0.0..=1.0).contains(&at), "failure time {at} out of span");
            }
            other => panic!("expected Uncertifiable, got {other:?}"),
        }
    }

    #[test]
    fn warp_is_applied_at_lowering_time() {
        let inner = sample_path();
        let w = FrameWarp::new(
            inner.clone(),
            Mat2::rotation(0.7) * Mat2::scaling(1.3),
            Vec2::new(1.0, -2.0),
            0.8,
        );
        let program = w.compile(&CompileOptions::to_horizon(1e4)).unwrap();
        // Same piece count as the inner path: the warp adds no pieces,
        // it transforms them.
        assert_eq!(program.pieces().len(), inner.len());
        let horizon = w.duration().unwrap() + 1.0;
        for i in 0..=1500 {
            let t = horizon * i as f64 / 1500.0;
            let d = program.position(t).distance(w.position(t));
            assert!(d < 1e-12, "mismatch at t={t}: {d}");
        }
    }

    #[test]
    fn drift_stacks_lower_exactly() {
        let inner = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .wait(2.0)
            .line_to(Vec2::new(5.0, 5.0))
            .build();
        let stack = FrameWarp::new(
            ClockDrift::from_rates(inner, &[(3.0, 0.7), (2.0, 1.2)], 0.9),
            Mat2::chirality_reflection(-1.0) * Mat2::scaling(0.6),
            Vec2::new(0.5, 0.25),
            1.7,
        );
        let program = stack.compile(&CompileOptions::to_horizon(1e4)).unwrap();
        let horizon = stack.duration().unwrap() + 2.0;
        for i in 0..=2000 {
            let t = horizon * i as f64 / 2000.0;
            let d = program.position(t).distance(stack.position(t));
            assert!(d < 1e-12, "mismatch at t={t}: {d}");
        }
        // Envelopes survive the stack too.
        for w in 0..23 {
            let t0 = horizon * w as f64 / 23.0;
            let disk = program.envelope(t0, t0 + 2.1);
            for i in 0..=20 {
                let t = (t0 + 2.1 * i as f64 / 20.0).min(horizon);
                assert!(disk.contains(stack.position(t), 1e-9), "t={t}");
            }
        }
    }

    #[test]
    fn marks_are_filtered_and_sorted() {
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 0.0))
            .line_to(Vec2::new(1.0, 1.0))
            .build();
        let program = p.compile(&CompileOptions::to_horizon(10.0)).unwrap();
        // Path marks: segment starts at 0 (dropped: not > 0) and 1.
        assert_eq!(program.round_marks(), &[1.0]);
        assert_eq!(program.next_mark_after(0.0), Some(1.0));
        assert_eq!(program.next_mark_after(1.0), None);
    }

    #[test]
    fn stalled_cursors_error_out() {
        struct Stall;
        impl Cursor for Stall {
            fn probe(&mut self, _t: f64) -> Probe {
                Probe {
                    position: Vec2::ZERO,
                    piece_end: 0.0, // never advances, even under ulp nudges
                    motion: Motion::Affine {
                        velocity: Vec2::ZERO,
                    },
                }
            }
            fn speed_bound(&self) -> f64 {
                0.0
            }
        }
        let err = lower_from_cursor(
            &mut Stall,
            0.0,
            Vec::new(),
            &CompileOptions::to_horizon(1.0),
        )
        .unwrap_err();
        assert_eq!(err, CompileError::Stalled { at: 0.0 });
    }

    #[test]
    fn object_safe_lowering() {
        let p = sample_path();
        let dynamic: &dyn Compile = &p;
        let program = dynamic.compile(&CompileOptions::to_horizon(1e3)).unwrap();
        assert_eq!(program.pieces().len(), p.len());
    }
}
