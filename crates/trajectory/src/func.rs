//! Closure-backed trajectories.
//!
//! Closed-form motions that are awkward to decompose into line/arc
//! segments — the Archimedean-spiral baseline in `rvz-baselines`, ad-hoc
//! adversary motions in tests — implement [`Trajectory`]
//! through [`FnTrajectory`], which pairs a position closure with an
//! explicitly declared speed bound.

use crate::monotone::{Cursor, MonotoneGuard, MonotoneTrajectory, Motion, Probe};
use crate::Trajectory;
use rvz_geometry::Vec2;

/// A trajectory defined by an arbitrary `t ↦ position` closure.
///
/// The caller *declares* the speed bound; the conservative-advancement
/// simulator relies on it, so an understated bound will produce missed
/// contacts. The property tests in `rvz-sim` check declared bounds by
/// dense sampling.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{FnTrajectory, Trajectory};
/// use rvz_geometry::Vec2;
///
/// // Uniform motion to the right at speed 2.
/// let t = FnTrajectory::new(|t| Vec2::new(2.0 * t, 0.0), 2.0);
/// assert_eq!(t.position(3.0), Vec2::new(6.0, 0.0));
/// assert_eq!(t.speed_bound(), 2.0);
/// assert_eq!(t.duration(), None);
/// ```
#[derive(Clone)]
pub struct FnTrajectory<F> {
    f: F,
    speed_bound: f64,
    duration: Option<f64>,
}

impl<F: Fn(f64) -> Vec2> FnTrajectory<F> {
    /// Creates an infinite-duration trajectory from a closure and a speed
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `speed_bound` is negative or non-finite.
    pub fn new(f: F, speed_bound: f64) -> Self {
        assert!(
            speed_bound >= 0.0 && speed_bound.is_finite(),
            "speed bound must be finite and >= 0, got {speed_bound}"
        );
        FnTrajectory {
            f,
            speed_bound,
            duration: None,
        }
    }

    /// Creates a finite-duration trajectory. For `t ≥ duration` the
    /// closure is evaluated at `duration` (the motion holds its end).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or NaN, or the speed bound is
    /// invalid.
    pub fn with_duration(f: F, speed_bound: f64, duration: f64) -> Self {
        assert!(
            duration >= 0.0 && !duration.is_nan(),
            "duration must be >= 0, got {duration}"
        );
        let mut t = FnTrajectory::new(f, speed_bound);
        t.duration = Some(duration);
        t
    }
}

impl<F: Fn(f64) -> Vec2> Trajectory for FnTrajectory<F> {
    fn position(&self, t: f64) -> Vec2 {
        debug_assert!(t >= 0.0 && !t.is_nan(), "position requires t >= 0, got {t}");
        let t = match self.duration {
            Some(d) => t.min(d),
            None => t,
        };
        (self.f)(t)
    }

    fn speed_bound(&self) -> f64 {
        self.speed_bound
    }

    fn duration(&self) -> Option<f64> {
        self.duration
    }
}

/// Cursor over a closure-backed trajectory: the closure stays opaque
/// ([`Motion::Curved`]) while it runs, but the rest state after a finite
/// duration is reported as a permanent zero-velocity piece, so the
/// simulator can leap over it analytically.
#[derive(Debug, Clone)]
pub struct FnCursor<'a, F> {
    trajectory: &'a FnTrajectory<F>,
    guard: MonotoneGuard,
}

impl<F: Fn(f64) -> Vec2> Cursor for FnCursor<'_, F> {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        match self.trajectory.duration {
            Some(d) if t >= d => Probe::resting((self.trajectory.f)(d)),
            Some(d) => Probe {
                position: (self.trajectory.f)(t),
                piece_end: d,
                motion: Motion::Curved,
            },
            None => Probe {
                position: (self.trajectory.f)(t),
                piece_end: f64::INFINITY,
                motion: Motion::Curved,
            },
        }
    }

    fn speed_bound(&self) -> f64 {
        self.trajectory.speed_bound
    }
}

impl<F: Fn(f64) -> Vec2> MonotoneTrajectory for FnTrajectory<F> {
    type Cursor<'a>
        = FnCursor<'a, F>
    where
        F: 'a;

    fn cursor(&self) -> FnCursor<'_, F> {
        FnCursor {
            trajectory: self,
            guard: MonotoneGuard::default(),
        }
    }
}

/// Closure-backed trajectories lower through the default sampled chord
/// bound ([`crate::sampled_chord_bound`]): when
/// [`crate::CompileOptions::approx_tolerance`] is set, the curved spans
/// are adaptively subdivided into certified affine chords; without it,
/// lowering refuses with [`crate::CompileError::Curved`] exactly as
/// before. Closures whose samples contradict the declared speed bound
/// (non-Lipschitz spikes) fail certification and refuse with
/// [`crate::CompileError::Uncertifiable`] rather than emitting an
/// unsound bound.
impl<F: Fn(f64) -> Vec2> crate::Compile for FnTrajectory<F> {}

impl<F> std::fmt::Debug for FnTrajectory<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnTrajectory")
            .field("speed_bound", &self.speed_bound)
            .field("duration", &self.duration)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_closure_trajectory() {
        let t = FnTrajectory::new(|t| Vec2::new(t, t * t), 10.0);
        assert_eq!(t.position(2.0), Vec2::new(2.0, 4.0));
        assert_eq!(t.duration(), None);
    }

    #[test]
    fn finite_duration_clamps() {
        let t = FnTrajectory::with_duration(|t| Vec2::new(t, 0.0), 1.0, 3.0);
        assert_eq!(t.position(2.0), Vec2::new(2.0, 0.0));
        assert_eq!(t.position(5.0), Vec2::new(3.0, 0.0));
        assert_eq!(t.duration(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "speed bound must be finite")]
    fn invalid_speed_bound_panics() {
        let _ = FnTrajectory::new(|_| Vec2::ZERO, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "requires t >= 0")]
    fn negative_time_panics() {
        let t = FnTrajectory::new(|_| Vec2::ZERO, 1.0);
        let _ = t.position(-1.0);
    }

    #[test]
    fn cursor_matches_random_access_and_rests() {
        let t = FnTrajectory::with_duration(|t| Vec2::new(t, t * t), 10.0, 3.0);
        let mut c = t.cursor();
        for i in 0..50 {
            let time = i as f64 * 0.1;
            assert_eq!(c.probe(time).position, t.position(time));
        }
        let rest = c.probe(7.0);
        assert_eq!(rest.position, Vec2::new(3.0, 9.0));
        assert_eq!(rest.piece_end, f64::INFINITY);
        assert_eq!(
            rest.motion,
            Motion::Affine {
                velocity: Vec2::ZERO
            }
        );
    }

    #[test]
    fn debug_impl_mentions_fields() {
        let t = FnTrajectory::new(|_| Vec2::ZERO, 1.5);
        let s = format!("{t:?}");
        assert!(s.contains("speed_bound"));
        assert!(s.contains("1.5"));
    }
}
