//! Time-varying clocks — a future-work extension.
//!
//! The paper's model gives each robot a *constant* clock rate `τ`; its
//! conclusion lists "robots that may have alternative capabilities (e.g.
//! variable speed)" as future work, and its related-work section cites
//! the dynamic-compass literature where an attribute varies over time
//! within known bounds. [`ClockDrift`] models the clock-side analogue: a
//! robot whose local clock advances at a piecewise-constant, positive
//! rate. Composed under a [`FrameWarp`](crate::FrameWarp) it yields a
//! robot whose *effective* `τ` wanders inside `[min_rate, max_rate]`.
//!
//! The beyond-paper experiment in `tests/extensions_drift.rs` shows the
//! universal algorithm still succeeding when the drift band stays on one
//! side of 1 — and documents what happens when it straddles 1.

use crate::monotone::{Cursor, MonotoneGuard, MonotoneTrajectory, Motion, Probe};
use crate::Trajectory;
use rvz_geometry::Vec2;

/// A trajectory evaluated through a drifting local clock.
///
/// The wrapped motion `S(u)` is indexed by *local* time `u`; global time
/// `t` maps to local time through a piecewise-linear, strictly increasing
/// clock map `u = L(t)` defined by per-interval rates. After the last
/// interval the final rate continues forever.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{ClockDrift, FnTrajectory, Trajectory};
/// use rvz_geometry::Vec2;
///
/// // Unit-speed motion along x, but the local clock runs at rate 0.5
/// // for the first 10 global time units, then at rate 2.
/// let inner = FnTrajectory::new(|u| Vec2::new(u, 0.0), 1.0);
/// let drift = ClockDrift::from_rates(inner, &[(10.0, 0.5)], 2.0);
/// assert_eq!(drift.position(10.0), Vec2::new(5.0, 0.0));
/// assert_eq!(drift.position(11.0), Vec2::new(7.0, 0.0));
/// assert_eq!(drift.speed_bound(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDrift<T> {
    inner: T,
    /// `(global_end, local_end, rate)` per interval, cumulative; the last
    /// entry's rate extends beyond its end.
    intervals: Vec<(f64, f64, f64)>,
    /// Rate after the final breakpoint.
    tail_rate: f64,
    max_rate: f64,
    min_rate: f64,
}

impl<T> ClockDrift<T> {
    /// Builds a drift from `(global_duration, rate)` intervals followed by
    /// a tail rate that persists forever.
    ///
    /// # Panics
    ///
    /// Panics when any duration or rate is non-positive or non-finite.
    pub fn from_rates(inner: T, intervals: &[(f64, f64)], tail_rate: f64) -> Self {
        assert!(
            tail_rate > 0.0 && tail_rate.is_finite(),
            "tail rate must be positive and finite, got {tail_rate}"
        );
        let mut built = Vec::with_capacity(intervals.len());
        let mut g = 0.0_f64;
        let mut l = 0.0_f64;
        let mut max_rate = tail_rate;
        let mut min_rate = tail_rate;
        for &(duration, rate) in intervals {
            assert!(
                duration > 0.0 && duration.is_finite(),
                "interval duration must be positive and finite, got {duration}"
            );
            assert!(
                rate > 0.0 && rate.is_finite(),
                "clock rate must be positive and finite, got {rate}"
            );
            g += duration;
            l += duration * rate;
            built.push((g, l, rate));
            max_rate = max_rate.max(rate);
            min_rate = min_rate.min(rate);
        }
        ClockDrift {
            inner,
            intervals: built,
            tail_rate,
            max_rate,
            min_rate,
        }
    }

    /// The local-clock reading at global time `t`.
    pub fn local_time(&self, t: f64) -> f64 {
        assert!(t >= 0.0 && !t.is_nan(), "time must be >= 0, got {t}");
        // Find the first interval ending after t.
        let idx = self.intervals.partition_point(|&(g_end, _, _)| g_end <= t);
        if idx == 0 {
            match self.intervals.first() {
                Some(&(_, _, rate)) => t * rate,
                None => t * self.tail_rate,
            }
        } else {
            let (g_prev, l_prev, _) = self.intervals[idx - 1];
            let rate = match self.intervals.get(idx) {
                Some(&(_, _, rate)) => rate,
                None => self.tail_rate,
            };
            l_prev + (t - g_prev) * rate
        }
    }

    /// The global time at which the local clock reads `u` — the inverse
    /// of [`ClockDrift::local_time`] (well-defined: the clock map is
    /// strictly increasing).
    pub fn global_time(&self, u: f64) -> f64 {
        assert!(u >= 0.0 && !u.is_nan(), "local time must be >= 0, got {u}");
        let idx = self.intervals.partition_point(|&(_, l_end, _)| l_end <= u);
        if idx == 0 {
            match self.intervals.first() {
                Some(&(_, _, rate)) => u / rate,
                None => u / self.tail_rate,
            }
        } else {
            let (g_prev, l_prev, _) = self.intervals[idx - 1];
            let rate = match self.intervals.get(idx) {
                Some(&(_, _, rate)) => rate,
                None => self.tail_rate,
            };
            g_prev + (u - l_prev) / rate
        }
    }

    /// The global times of the clock-rate breakpoints, in order.
    pub fn breakpoints(&self) -> impl Iterator<Item = f64> + '_ {
        self.intervals.iter().map(|&(g_end, _, _)| g_end)
    }

    /// The largest instantaneous clock rate.
    pub fn max_rate(&self) -> f64 {
        self.max_rate
    }

    /// The smallest instantaneous clock rate.
    pub fn min_rate(&self) -> f64 {
        self.min_rate
    }

    /// The wrapped trajectory.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Trajectory> Trajectory for ClockDrift<T> {
    fn position(&self, t: f64) -> Vec2 {
        self.inner.position(self.local_time(t))
    }

    fn speed_bound(&self) -> f64 {
        // d/dt S(L(t)) = L'(t)·S'(L(t)), and L' ≤ max_rate everywhere.
        self.max_rate * self.inner.speed_bound()
    }

    fn duration(&self) -> Option<f64> {
        // The inner motion finishes when L(t) reaches its duration; with a
        // positive tail rate that always happens at a finite global time.
        self.inner.duration().map(|d_local| {
            // Invert L at d_local.
            let idx = self
                .intervals
                .partition_point(|&(_, l_end, _)| l_end <= d_local);
            if idx == 0 {
                match self.intervals.first() {
                    Some(&(_, _, rate)) => d_local / rate,
                    None => d_local / self.tail_rate,
                }
            } else {
                let (g_prev, l_prev, _) = self.intervals[idx - 1];
                let rate = match self.intervals.get(idx) {
                    Some(&(_, _, rate)) => rate,
                    None => self.tail_rate,
                };
                g_prev + (d_local - l_prev) / rate
            }
        })
    }
}

/// Cursor of a [`ClockDrift`]: tracks the active clock interval with a
/// forward-only index and drives the inner trajectory's cursor at local
/// time, so each probe costs O(1) instead of a binary search plus the
/// inner lookup.
///
/// An inner affine piece with velocity `v` seen through a clock running
/// at rate `ρ` is affine with velocity `ρ·v`; the piece ends at whichever
/// comes first, the clock breakpoint or the inner piece boundary.
#[derive(Debug, Clone)]
pub struct DriftCursor<'a, T: MonotoneTrajectory> {
    drift: &'a ClockDrift<T>,
    inner: T::Cursor<'a>,
    /// Index of the first interval whose global end exceeds the last
    /// query (== `intervals.len()` once in the tail).
    index: usize,
    /// Largest local time handed to the inner cursor so far. Crossing a
    /// clock breakpoint can make the piecewise-linear map retreat by an
    /// ulp (the cumulative sums round independently); clamping keeps the
    /// inner queries non-decreasing as its contract requires.
    last_local: f64,
    guard: MonotoneGuard,
}

impl<T: MonotoneTrajectory> Cursor for DriftCursor<'_, T> {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        let intervals = &self.drift.intervals;
        while self.index < intervals.len() && intervals[self.index].0 <= t {
            self.index += 1;
        }
        // Same arithmetic as `ClockDrift::local_time` for this interval.
        let (g_base, l_base) = if self.index == 0 {
            (0.0, 0.0)
        } else {
            let (g_prev, l_prev, _) = intervals[self.index - 1];
            (g_prev, l_prev)
        };
        let rate = match intervals.get(self.index) {
            Some(&(_, _, rate)) => rate,
            None => self.drift.tail_rate,
        };
        let local = (l_base + (t - g_base) * rate).max(self.last_local);
        self.last_local = local;
        let p = self.inner.probe(local);
        // The piece ends at the clock breakpoint or when the inner piece
        // ends, whichever is earlier (∞-safe: ∞ / rate = ∞).
        let interval_end = intervals
            .get(self.index)
            .map_or(f64::INFINITY, |&(g_end, _, _)| g_end);
        let inner_end_global = g_base + (p.piece_end - l_base) / rate;
        Probe {
            position: p.position,
            piece_end: interval_end.min(inner_end_global),
            motion: match p.motion {
                Motion::Affine { velocity } => Motion::Affine {
                    velocity: velocity * rate,
                },
                // A clock running at rate ρ leaves the circle in place
                // and scales the angular velocity.
                Motion::Circular {
                    center,
                    radius,
                    angular_velocity,
                    angle,
                } => Motion::Circular {
                    center,
                    radius,
                    angular_velocity: angular_velocity * rate,
                    angle,
                },
                Motion::Curved => Motion::Curved,
            },
        }
    }

    fn speed_bound(&self) -> f64 {
        self.drift.max_rate * self.inner.speed_bound()
    }

    /// A drifting clock reparameterizes time but never moves points, so
    /// the envelope is the inner trajectory's envelope over the mapped
    /// local interval `[L(t0), L(t1)]`.
    ///
    /// The start is folded into `last_local` exactly like a probe: the
    /// random-access `local_time` and the incremental probe arithmetic
    /// round independently, and the clamp keeps the inner cursor's
    /// queries non-decreasing across interleaved probes and envelopes.
    fn envelope(&mut self, t0: f64, t1: f64) -> rvz_geometry::Disk {
        let local0 = self.drift.local_time(t0).max(self.last_local);
        self.last_local = local0;
        let local1 = self.drift.local_time(t1.max(t0)).max(local0);
        self.inner.envelope(local0, local1)
    }
}

impl<T: MonotoneTrajectory> MonotoneTrajectory for ClockDrift<T> {
    type Cursor<'a>
        = DriftCursor<'a, T>
    where
        T: 'a;

    fn cursor(&self) -> Self::Cursor<'_> {
        DriftCursor {
            drift: self,
            inner: self.inner.cursor(),
            index: 0,
            last_local: 0.0,
            guard: MonotoneGuard::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnTrajectory, PathBuilder};

    fn ray() -> impl Trajectory + Clone {
        FnTrajectory::new(|u| Vec2::new(u, 0.0), 1.0)
    }

    #[test]
    fn constant_rate_is_plain_dilation() {
        let d = ClockDrift::from_rates(ray(), &[], 0.5);
        assert_eq!(d.local_time(4.0), 2.0);
        assert_eq!(d.position(4.0), Vec2::new(2.0, 0.0));
        assert_eq!(d.speed_bound(), 0.5);
        assert_eq!(d.min_rate(), 0.5);
        assert_eq!(d.max_rate(), 0.5);
    }

    #[test]
    fn piecewise_rates_accumulate() {
        // 10 @ 0.5 → local 5; then 5 @ 1.5 → local 12.5; tail 1.0.
        let d = ClockDrift::from_rates(ray(), &[(10.0, 0.5), (5.0, 1.5)], 1.0);
        assert_eq!(d.local_time(0.0), 0.0);
        assert_eq!(d.local_time(10.0), 5.0);
        assert_eq!(d.local_time(12.0), 8.0);
        assert_eq!(d.local_time(15.0), 12.5);
        assert_eq!(d.local_time(17.0), 14.5);
        assert_eq!(d.max_rate(), 1.5);
        assert_eq!(d.min_rate(), 0.5);
    }

    #[test]
    fn local_time_is_continuous_and_monotone() {
        let d = ClockDrift::from_rates(ray(), &[(3.0, 0.7), (2.0, 1.2), (4.0, 0.55)], 0.9);
        let mut prev = 0.0;
        let mut t = 0.0;
        while t < 15.0 {
            let l = d.local_time(t);
            assert!(l >= prev, "not monotone at t={t}");
            prev = l;
            t += 0.01;
        }
        // Continuity at a knot.
        let eps = 1e-9;
        assert!((d.local_time(3.0) - d.local_time(3.0 - eps)).abs() < 1e-6);
    }

    #[test]
    fn speed_bound_holds_under_drift() {
        let inner = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .line_to(Vec2::new(5.0, 5.0))
            .build();
        let d = ClockDrift::from_rates(inner, &[(2.0, 1.8), (2.0, 0.3)], 1.0);
        let bound = d.speed_bound();
        assert_eq!(bound, 1.8);
        let mut t = 0.0;
        while t < 12.0 {
            let step = 0.01;
            let moved = d.position(t).distance(d.position(t + step));
            assert!(moved <= bound * step + 1e-9, "t={t}");
            t += step;
        }
    }

    #[test]
    fn finite_inner_duration_inverts() {
        let inner = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(6.0, 0.0))
            .build();
        // Local duration 6; 10 global @ 0.5 covers local 5, rest at rate 2:
        // remaining local 1 takes 0.5 global ⇒ total 10.5.
        let d = ClockDrift::from_rates(inner, &[(10.0, 0.5)], 2.0);
        assert_eq!(d.duration(), Some(10.5));
        assert_eq!(d.position(10.5), Vec2::new(6.0, 0.0));
        assert_eq!(d.position(100.0), Vec2::new(6.0, 0.0));
    }

    #[test]
    fn cursor_matches_random_access_across_breakpoints() {
        let inner = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .wait(2.0)
            .line_to(Vec2::new(5.0, 5.0))
            .build();
        let d = ClockDrift::from_rates(inner, &[(3.0, 0.7), (2.0, 1.2), (4.0, 0.55)], 0.9);
        let mut c = d.cursor();
        for i in 0..=1000 {
            let t = 25.0 * i as f64 / 1000.0;
            let p = c.probe(t);
            assert!(
                p.position.distance(d.position(t)) < 1e-9,
                "mismatch at t={t}"
            );
            assert!(p.piece_end > t || p.piece_end == f64::INFINITY);
        }
    }

    #[test]
    fn cursor_scales_affine_velocity_by_rate() {
        let inner = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(100.0, 0.0))
            .build();
        let d = ClockDrift::from_rates(inner, &[(10.0, 0.5)], 2.0);
        let mut c = d.cursor();
        match c.probe(1.0).motion {
            Motion::Affine { velocity } => {
                assert!((velocity - Vec2::new(0.5, 0.0)).norm() < 1e-15)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Piece ends at the clock breakpoint, not the (later) leg end.
        assert_eq!(c.probe(1.0).piece_end, 10.0);
        match c.probe(11.0).motion {
            Motion::Affine { velocity } => {
                assert!((velocity - Vec2::new(2.0, 0.0)).norm() < 1e-15)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "clock rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ClockDrift::from_rates(ray(), &[(1.0, 0.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "interval duration must be positive")]
    fn zero_duration_rejected() {
        let _ = ClockDrift::from_rates(ray(), &[(0.0, 1.0)], 1.0);
    }
}
