//! Sequential evaluation of lazy segment streams.
//!
//! The paper's algorithms are *infinite* — Algorithm 4 repeats `Search(k)`
//! for `k = 1, 2, 3, …` forever. `rvz-search` and `rvz-core` expose them
//! both as closed-form random-access [`Trajectory`](crate::Trajectory)
//! implementations *and* as plain segment iterators. [`StreamCursor`]
//! walks such an iterator and answers position queries at non-decreasing
//! times; the test suites use it as an independent oracle for the
//! closed-form indexing.

use crate::segment::Segment;
use rvz_geometry::Vec2;

/// A forward-only evaluator over a stream of contiguous segments.
///
/// Queries must be issued at non-decreasing times; the cursor advances
/// through the stream lazily and never stores more than the current
/// segment. If the stream ends, the cursor holds the final position.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{Segment, StreamCursor};
/// use rvz_geometry::Vec2;
///
/// let segs = vec![
///     Segment::line(Vec2::ZERO, Vec2::UNIT_X),
///     Segment::wait(Vec2::UNIT_X, 2.0),
/// ];
/// let mut cursor = StreamCursor::new(segs.into_iter());
/// assert_eq!(cursor.position(0.5), Vec2::new(0.5, 0.0));
/// assert_eq!(cursor.position(2.0), Vec2::UNIT_X);
/// assert_eq!(cursor.position(99.0), Vec2::UNIT_X); // stream exhausted
/// ```
#[derive(Debug, Clone)]
pub struct StreamCursor<I: Iterator<Item = Segment>> {
    stream: I,
    current: Option<Segment>,
    /// Global time at which `current` began.
    segment_start: f64,
    /// Most recent query time (for monotonicity enforcement).
    last_query: f64,
    /// Final position once the stream is exhausted.
    resting: Vec2,
}

impl<I: Iterator<Item = Segment>> StreamCursor<I> {
    /// Creates a cursor at time `0` over `stream`.
    pub fn new(mut stream: I) -> Self {
        let current = stream.next();
        let resting = current.map_or(Vec2::ZERO, |s| s.start());
        StreamCursor {
            stream,
            current,
            segment_start: 0.0,
            last_query: 0.0,
            resting,
        }
    }

    /// Position at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, negative, or smaller than a previous query
    /// time (the cursor is forward-only).
    pub fn position(&mut self, t: f64) -> Vec2 {
        assert!(!t.is_nan() && t >= 0.0, "cursor time must be >= 0, got {t}");
        assert!(
            t >= self.last_query,
            "cursor queries must be non-decreasing: {t} after {}",
            self.last_query
        );
        self.last_query = t;
        loop {
            let Some(seg) = self.current else {
                return self.resting;
            };
            let end = self.segment_start + seg.duration();
            if t < end {
                return seg.position_at(t - self.segment_start);
            }
            // t is at or past this segment's end: move on. A query exactly
            // at a boundary is answered by the next segment's start, which
            // equals this segment's end by the contiguity invariant.
            self.advance(end);
        }
    }

    /// The global time at which the current segment began.
    pub fn current_segment_start(&self) -> f64 {
        self.segment_start
    }

    /// The segment currently under the cursor, if the stream is not
    /// exhausted.
    pub fn current_segment(&self) -> Option<Segment> {
        self.current
    }

    fn advance(&mut self, end: f64) {
        self.resting = self.current.map_or(self.resting, |s| s.end());
        self.current = self.stream.next();
        self.segment_start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_legs() -> Vec<Segment> {
        vec![
            Segment::line(Vec2::ZERO, Vec2::new(2.0, 0.0)),
            Segment::line(Vec2::new(2.0, 0.0), Vec2::new(2.0, 2.0)),
        ]
    }

    #[test]
    fn walks_through_segments() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        assert_eq!(c.position(0.0), Vec2::ZERO);
        assert_eq!(c.position(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(c.position(3.0), Vec2::new(2.0, 1.0));
        assert_eq!(c.position(4.0), Vec2::new(2.0, 2.0));
    }

    #[test]
    fn boundary_times_are_consistent() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        // t = 2.0 is the junction; both segments give (2, 0).
        assert_eq!(c.position(2.0), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn exhausted_stream_rests_at_final_position() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        assert_eq!(c.position(100.0), Vec2::new(2.0, 2.0));
        assert_eq!(c.position(200.0), Vec2::new(2.0, 2.0));
    }

    #[test]
    fn empty_stream_rests_at_origin() {
        let mut c = StreamCursor::new(std::iter::empty());
        assert_eq!(c.position(0.0), Vec2::ZERO);
        assert_eq!(c.position(10.0), Vec2::ZERO);
    }

    #[test]
    fn repeated_equal_times_are_allowed() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        assert_eq!(c.position(1.5), c.position(1.5));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn going_backwards_panics() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        let _ = c.position(3.0);
        let _ = c.position(1.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_time_panics() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        let _ = c.position(-1.0);
    }

    #[test]
    fn works_with_infinite_streams() {
        // An endless staircase: right 1, up 1, right 1, up 1, ...
        let stairs = (0..).map(|i| {
            let step = i / 2;
            let x = (step + (i % 2)) as f64;
            let y = step as f64;
            if i % 2 == 0 {
                Segment::line(Vec2::new(x, y), Vec2::new(x + 1.0, y))
            } else {
                Segment::line(Vec2::new(x, y), Vec2::new(x, y + 1.0))
            }
        });
        let mut c = StreamCursor::new(stairs);
        assert_eq!(c.position(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(c.position(2.0), Vec2::new(1.0, 1.0));
        assert_eq!(c.position(10.0), Vec2::new(5.0, 5.0));
        assert_eq!(c.position(10.5), Vec2::new(5.5, 5.0));
    }

    #[test]
    fn current_segment_introspection() {
        let mut c = StreamCursor::new(two_legs().into_iter());
        let _ = c.position(2.5);
        assert_eq!(c.current_segment_start(), 2.0);
        assert!(matches!(c.current_segment(), Some(Segment::Line { .. })));
    }
}
