//! Finite contiguous trajectories and their builder.
//!
//! A [`Path`] is a sequence of [`Segment`]s where each segment begins where
//! the previous one ended — the shape of every finite sub-procedure in the
//! paper (`SearchCircle`, `SearchAnnulus`, one round of `Search(k)`, …).
//! Evaluation at a time `t` does a binary search over precomputed
//! cumulative start times, so a path with millions of segments still
//! evaluates in `O(log n)`.

use crate::monotone::{segment_motion, Cursor, MonotoneGuard, MonotoneTrajectory, Probe};
use crate::segment::Segment;
use crate::Trajectory;
use rvz_geometry::{Disk, Vec2};

/// Maximum gap (in distance units) tolerated between consecutive segments
/// when building a path. The algorithms construct all junction points from
/// the same closed forms, so real gaps indicate a construction bug.
const CONTIGUITY_EPS: f64 = 1e-7;

/// A finite, contiguous, unit-speed trajectory.
///
/// Construct with [`PathBuilder`] (validating) or [`Path::from_segments`].
/// Implements [`Trajectory`]; after its total duration the path holds its
/// final position.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{Path, PathBuilder, Trajectory};
/// use rvz_geometry::Vec2;
///
/// let p = PathBuilder::at(Vec2::ZERO)
///     .line_to(Vec2::new(2.0, 0.0))
///     .wait(1.0)
///     .line_to(Vec2::new(2.0, 2.0))
///     .build();
/// assert_eq!(p.duration(), 5.0);
/// assert_eq!(p.position(2.5), Vec2::new(2.0, 0.0)); // mid-wait
/// assert_eq!(p.position(10.0), Vec2::new(2.0, 2.0)); // holds the end
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Path {
    segments: Vec<Segment>,
    /// `starts[i]` is the cumulative time at which `segments[i]` begins;
    /// one extra entry at the end holds the total duration.
    starts: Vec<f64>,
}

impl Path {
    /// An empty path pinned at the origin (zero duration).
    pub fn empty() -> Self {
        Path::default()
    }

    /// Builds a path from segments, checking contiguity and validity.
    ///
    /// # Panics
    ///
    /// Panics if any segment fails [`Segment::validate`] or if consecutive
    /// segments are not contiguous (end of one ≠ start of the next within
    /// a small tolerance). These are construction bugs, not runtime
    /// conditions, hence panics rather than `Result`.
    pub fn from_segments<I: IntoIterator<Item = Segment>>(segments: I) -> Self {
        let segments: Vec<Segment> = segments.into_iter().collect();
        let mut starts = Vec::with_capacity(segments.len() + 1);
        let mut t = 0.0_f64;
        let mut prev_end: Option<Vec2> = None;
        for (i, seg) in segments.iter().enumerate() {
            if let Err(e) = seg.validate() {
                panic!("invalid segment #{i}: {e}");
            }
            if let Some(pe) = prev_end {
                let gap = pe.distance(seg.start());
                assert!(
                    gap <= CONTIGUITY_EPS * (1.0 + pe.norm()),
                    "path discontinuity at segment #{i}: gap {gap} between {pe} and {}",
                    seg.start()
                );
            }
            starts.push(t);
            t += seg.duration();
            prev_end = Some(seg.end());
        }
        starts.push(t);
        Path { segments, starts }
    }

    /// Total duration (also total arc length plus waiting time).
    pub fn duration(&self) -> f64 {
        *self.starts.last().unwrap_or(&0.0)
    }

    /// The segments composing this path.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` when the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The starting position (origin for an empty path).
    pub fn start_position(&self) -> Vec2 {
        self.segments.first().map_or(Vec2::ZERO, |s| s.start())
    }

    /// The final position (origin for an empty path).
    pub fn end_position(&self) -> Vec2 {
        self.segments.last().map_or(Vec2::ZERO, |s| s.end())
    }

    /// The segment index active at time `t`, if the path is non-empty and
    /// `t < duration()`.
    pub fn segment_index_at(&self, t: f64) -> Option<usize> {
        if self.segments.is_empty() || t >= self.duration() {
            return None;
        }
        // partition_point returns the first index whose start exceeds t;
        // the active segment is the one before it.
        let idx = self.starts.partition_point(|&s| s <= t);
        Some(idx.saturating_sub(1).min(self.segments.len() - 1))
    }

    /// Concatenates another path onto the end of this one.
    ///
    /// # Panics
    ///
    /// Panics if `other` does not start where `self` ends (unless either
    /// is empty).
    pub fn concat(&self, other: &Path) -> Path {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        Path::from_segments(self.segments.iter().chain(other.segments.iter()).copied())
    }

    /// The cumulative start time of segment `i` (and `starts(len)` is the
    /// total duration).
    pub fn segment_start_time(&self, i: usize) -> f64 {
        self.starts[i]
    }
}

impl Trajectory for Path {
    fn position(&self, t: f64) -> Vec2 {
        debug_assert!(t >= 0.0 && !t.is_nan(), "position requires t >= 0, got {t}");
        match self.segment_index_at(t) {
            Some(i) => self.segments[i].position_at(t - self.starts[i]),
            None => self.end_position(),
        }
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }

    fn duration(&self) -> Option<f64> {
        Some(Path::duration(self))
    }
}

/// A flattened binary union tree over per-segment bounding disks: node
/// `i`'s disk contains nodes `2i` and `2i+1`, leaves sit at
/// `size + segment_index`. Any segment range unions in `O(log n)` tree
/// nodes — the [`Path`] level of the swept-envelope hierarchy.
#[derive(Debug, Clone)]
struct DiskTree {
    size: usize,
    nodes: Vec<Option<Disk>>,
}

fn union_opt(a: Option<Disk>, b: Option<Disk>) -> Option<Disk> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.union(&b)),
        (a, None) => a,
        (None, b) => b,
    }
}

impl DiskTree {
    fn build(segments: &[Segment]) -> DiskTree {
        let size = segments.len().next_power_of_two().max(1);
        let mut nodes = vec![None; 2 * size];
        for (i, seg) in segments.iter().enumerate() {
            nodes[size + i] = Some(seg.bounding_disk());
        }
        for i in (1..size).rev() {
            nodes[i] = union_opt(nodes[2 * i], nodes[2 * i + 1]);
        }
        DiskTree { size, nodes }
    }

    /// Union of the segment disks in the inclusive range `[l, r]`.
    fn query(&self, l: usize, r: usize) -> Option<Disk> {
        let mut l = l + self.size;
        let mut r = r + self.size + 1;
        let mut acc = None;
        while l < r {
            if l & 1 == 1 {
                acc = union_opt(acc, self.nodes[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                acc = union_opt(acc, self.nodes[r]);
            }
            l >>= 1;
            r >>= 1;
        }
        acc
    }
}

/// The [`MonotoneTrajectory`] cursor of a [`Path`]: a segment index that
/// only ever moves forward, replacing the per-query binary search with an
/// amortized-O(1) advance.
#[derive(Debug, Clone)]
pub struct PathCursor<'a> {
    path: &'a Path,
    /// Index of the segment containing the last query (== `len()` once
    /// the path has ended).
    index: usize,
    /// Built on the first multi-segment envelope query, then reused for
    /// the cursor's lifetime.
    tree: Option<DiskTree>,
    guard: MonotoneGuard,
}

impl Cursor for PathCursor<'_> {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        let starts = &self.path.starts;
        let n = self.path.segments.len();
        // Advance past finished segments (zero-duration segments have
        // equal consecutive starts and are skipped in the same loop).
        while self.index < n && t >= starts[self.index + 1] {
            self.index += 1;
        }
        if self.index == n {
            return Probe::resting(self.path.end_position());
        }
        let seg = &self.path.segments[self.index];
        let u = t - starts[self.index];
        Probe {
            position: seg.position_at(u),
            piece_end: starts[self.index + 1],
            motion: segment_motion(seg, u),
        }
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }

    /// Tight swept envelope: the exact chunk disk within one segment, a
    /// chunk–tree–chunk union across segments, a point once the path has
    /// ended. Random-access (`partition_point`) index lookups keep the
    /// forward probe state untouched, as the envelope contract requires.
    fn envelope(&mut self, t0: f64, t1: f64) -> Disk {
        let path = self.path;
        let duration = path.duration();
        if path.is_empty() || t0 >= duration {
            return Disk::point(path.end_position());
        }
        let t1 = t1.clamp(t0, duration);
        let starts = &path.starts;
        // First index whose start exceeds t, minus one — same arithmetic
        // as `segment_index_at`, but with the end clamp already applied.
        let locate = |t: f64| -> usize {
            starts
                .partition_point(|&s| s <= t)
                .saturating_sub(1)
                .min(path.segments.len() - 1)
        };
        let i0 = locate(t0);
        let i1 = locate(t1);
        let first = path.segments[i0].chunk_disk(t0 - starts[i0], t1 - starts[i0]);
        if i0 == i1 {
            return first;
        }
        let last = path.segments[i1].chunk_disk(0.0, t1 - starts[i1]);
        let mut acc = first.union(&last);
        if i1 > i0 + 1 {
            let tree = self
                .tree
                .get_or_insert_with(|| DiskTree::build(&path.segments));
            if let Some(mid) = tree.query(i0 + 1, i1 - 1) {
                acc = acc.union(&mid);
            }
        }
        acc
    }
}

impl MonotoneTrajectory for Path {
    type Cursor<'a> = PathCursor<'a>;

    fn cursor(&self) -> PathCursor<'_> {
        PathCursor {
            path: self,
            index: 0,
            tree: None,
            guard: MonotoneGuard::default(),
        }
    }
}

impl FromIterator<Segment> for Path {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        Path::from_segments(iter)
    }
}

/// Incremental, continuity-preserving construction of a [`Path`].
///
/// The builder tracks the current position, so each step only names its
/// *target*; discontinuities are impossible by construction.
///
/// # Example
///
/// ```
/// use rvz_trajectory::PathBuilder;
/// use rvz_geometry::Vec2;
///
/// // SearchCircle(δ) from the paper: out, around, back.
/// let delta = 0.5;
/// let p = PathBuilder::at(Vec2::ZERO)
///     .line_to(Vec2::new(delta, 0.0))
///     .full_circle(Vec2::ZERO)
///     .line_to(Vec2::ZERO)
///     .build();
/// assert!((p.duration() - 2.0 * (std::f64::consts::PI + 1.0) * delta).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PathBuilder {
    segments: Vec<Segment>,
    current: Vec2,
}

impl PathBuilder {
    /// Starts a path at `start`.
    pub fn at(start: Vec2) -> Self {
        PathBuilder {
            segments: Vec::new(),
            current: start,
        }
    }

    /// Starts a path at the origin.
    pub fn new() -> Self {
        PathBuilder::at(Vec2::ZERO)
    }

    /// The position the next segment will start from.
    pub fn current_position(&self) -> Vec2 {
        self.current
    }

    /// Appends a straight leg to `to`.
    pub fn line_to(mut self, to: Vec2) -> Self {
        self.segments.push(Segment::line(self.current, to));
        self.current = to;
        self
    }

    /// Appends a full counter-clockwise circle around `center` starting
    /// (and ending) at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the current position coincides with `center` (radius 0
    /// circles must be expressed as waits of zero duration instead).
    pub fn full_circle(mut self, center: Vec2) -> Self {
        let offset = self.current - center;
        let radius = offset.norm();
        assert!(
            radius > 0.0,
            "full_circle requires the current position to differ from the center"
        );
        self.segments
            .push(Segment::full_circle(center, radius, offset.angle()));
        self
    }

    /// Appends an arc around `center` through the signed angle `sweep`.
    pub fn arc_around(mut self, center: Vec2, sweep: f64) -> Self {
        let offset = self.current - center;
        let radius = offset.norm();
        let seg = Segment::Arc {
            center,
            radius,
            start_angle: offset.angle(),
            sweep,
        };
        self.current = seg.end();
        self.segments.push(seg);
        self
    }

    /// Appends a wait of `duration` at the current position.
    pub fn wait(mut self, duration: f64) -> Self {
        self.segments.push(Segment::wait(self.current, duration));
        self
    }

    /// Appends all segments of an existing path, which must start at the
    /// current position.
    pub fn append_path(mut self, path: &Path) -> Self {
        if !path.is_empty() {
            self.segments.extend_from_slice(path.segments());
            self.current = path.end_position();
        }
        self
    }

    /// Finishes construction, validating the assembled path.
    pub fn build(self) -> Path {
        Path::from_segments(self.segments)
    }
}

impl Default for PathBuilder {
    fn default() -> Self {
        PathBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use std::f64::consts::PI;

    fn l_path() -> Path {
        PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(2.0, 0.0))
            .line_to(Vec2::new(2.0, 1.0))
            .build()
    }

    #[test]
    fn empty_path() {
        let p = Path::empty();
        assert!(p.is_empty());
        assert_eq!(p.duration(), 0.0);
        assert_eq!(p.position(0.0), Vec2::ZERO);
        assert_eq!(p.position(5.0), Vec2::ZERO);
        assert_eq!(p.segment_index_at(0.0), None);
    }

    #[test]
    fn duration_is_sum_of_segments() {
        let p = l_path();
        assert_eq!(p.duration(), 3.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.segment_start_time(0), 0.0);
        assert_eq!(p.segment_start_time(1), 2.0);
    }

    #[test]
    fn position_within_and_past_end() {
        let p = l_path();
        assert_eq!(p.position(0.0), Vec2::ZERO);
        assert_eq!(p.position(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(p.position(2.5), Vec2::new(2.0, 0.5));
        assert_eq!(p.position(3.0), Vec2::new(2.0, 1.0));
        assert_eq!(p.position(100.0), Vec2::new(2.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "requires t >= 0")]
    fn negative_time_panics() {
        let _ = l_path().position(-0.1);
    }

    #[test]
    fn segment_boundaries_are_continuous() {
        let p = l_path();
        let eps = 1e-9;
        let at_boundary = p.position(2.0);
        let before = p.position(2.0 - eps);
        assert!(at_boundary.distance(before) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "discontinuity")]
    fn discontinuous_segments_panic() {
        let _ = Path::from_segments([
            Segment::line(Vec2::ZERO, Vec2::UNIT_X),
            Segment::line(Vec2::new(5.0, 5.0), Vec2::ZERO),
        ]);
    }

    #[test]
    #[should_panic(expected = "invalid segment")]
    fn invalid_segment_panics() {
        let _ = Path::from_segments([Segment::wait(Vec2::ZERO, -1.0)]);
    }

    #[test]
    fn builder_circle_roundtrip() {
        let p = PathBuilder::at(Vec2::new(1.0, 0.0))
            .full_circle(Vec2::ZERO)
            .build();
        assert_approx_eq!(p.duration(), 2.0 * PI);
        assert!((p.end_position() - Vec2::new(1.0, 0.0)).norm() < 1e-12);
        // Halfway around the circle.
        assert!((p.position(PI) - Vec2::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn builder_arc_updates_current() {
        let p = PathBuilder::at(Vec2::new(1.0, 0.0))
            .arc_around(Vec2::ZERO, PI)
            .line_to(Vec2::ZERO)
            .build();
        assert_approx_eq!(p.duration(), PI + 1.0);
    }

    #[test]
    #[should_panic(expected = "full_circle requires")]
    fn circle_at_center_panics() {
        let _ = PathBuilder::at(Vec2::ZERO).full_circle(Vec2::ZERO);
    }

    #[test]
    fn concat_paths() {
        let a = PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build();
        let b = PathBuilder::at(Vec2::UNIT_X)
            .line_to(Vec2::new(1.0, 1.0))
            .build();
        let c = a.concat(&b);
        assert_eq!(c.duration(), 2.0);
        assert_eq!(c.end_position(), Vec2::new(1.0, 1.0));
        // Concat with empty on either side is identity.
        assert_eq!(a.concat(&Path::empty()), a);
        assert_eq!(Path::empty().concat(&a), a);
    }

    #[test]
    fn append_path_in_builder() {
        let circle = PathBuilder::at(Vec2::new(1.0, 0.0))
            .full_circle(Vec2::ZERO)
            .build();
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 0.0))
            .append_path(&circle)
            .line_to(Vec2::ZERO)
            .build();
        assert_approx_eq!(p.duration(), 2.0 * (PI + 1.0));
    }

    #[test]
    fn zero_duration_segments_are_tolerated() {
        let p = Path::from_segments([
            Segment::line(Vec2::ZERO, Vec2::ZERO),
            Segment::wait(Vec2::ZERO, 0.0),
            Segment::line(Vec2::ZERO, Vec2::UNIT_X),
        ]);
        assert_eq!(p.duration(), 1.0);
        assert_eq!(p.position(0.5), Vec2::new(0.5, 0.0));
    }

    #[test]
    fn segment_index_lookup() {
        let p = l_path();
        assert_eq!(p.segment_index_at(0.0), Some(0));
        assert_eq!(p.segment_index_at(1.999), Some(0));
        assert_eq!(p.segment_index_at(2.0), Some(1));
        assert_eq!(p.segment_index_at(3.0), None);
    }

    #[test]
    fn cursor_matches_random_access_on_dense_grid() {
        use crate::MonotoneTrajectory;
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(2.0, 0.0))
            .arc_around(Vec2::new(2.0, 1.0), PI)
            .wait(0.5)
            .line_to(Vec2::ZERO)
            .build();
        let mut c = p.cursor();
        let horizon = p.duration() + 1.0;
        let n = 997;
        for i in 0..=n {
            let t = horizon * i as f64 / n as f64;
            let direct = p.position(t);
            let probed = c.probe(t);
            assert!(
                direct.distance(probed.position) < 1e-12,
                "mismatch at t={t}"
            );
            assert!(probed.piece_end > t || probed.piece_end == f64::INFINITY);
        }
    }

    #[test]
    fn cursor_reports_affine_pieces_and_rest() {
        use crate::{MonotoneTrajectory, Motion};
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(2.0, 0.0))
            .wait(1.0)
            .build();
        let mut c = p.cursor();
        let leg = c.probe(0.5);
        assert_eq!(leg.piece_end, 2.0);
        assert_eq!(
            leg.motion,
            Motion::Affine {
                velocity: Vec2::UNIT_X
            }
        );
        let wait = c.probe(2.5);
        assert_eq!(wait.piece_end, 3.0);
        assert_eq!(
            wait.motion,
            Motion::Affine {
                velocity: Vec2::ZERO
            }
        );
        let rest = c.probe(10.0);
        assert_eq!(rest.position, Vec2::new(2.0, 0.0));
        assert_eq!(rest.piece_end, f64::INFINITY);
    }

    #[test]
    fn cursor_skips_zero_duration_segments() {
        use crate::MonotoneTrajectory;
        let p = Path::from_segments([
            Segment::line(Vec2::ZERO, Vec2::ZERO),
            Segment::wait(Vec2::ZERO, 0.0),
            Segment::line(Vec2::ZERO, Vec2::UNIT_X),
        ]);
        let mut c = p.cursor();
        assert_eq!(c.probe(0.5).position, Vec2::new(0.5, 0.0));
    }

    #[test]
    fn cursor_envelope_contains_positions_across_segments() {
        use crate::MonotoneTrajectory;
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(3.0, 0.0))
            .arc_around(Vec2::new(3.0, 1.0), PI)
            .wait(0.5)
            .line_to(Vec2::new(-2.0, 2.0))
            .full_circle(Vec2::ZERO)
            .build();
        let mut c = p.cursor();
        let horizon = p.duration() + 1.0;
        let windows = 37;
        for w in 0..windows {
            let t0 = horizon * w as f64 / windows as f64;
            for span in [0.05, 0.7, 3.9, horizon] {
                // Envelope queries must not disturb the forward state, so
                // a fresh cursor is not needed per window.
                let disk = c.envelope(t0, t0 + span);
                for i in 0..=25 {
                    let t = t0 + span * i as f64 / 25.0;
                    assert!(
                        disk.contains(p.position(t), 1e-9),
                        "envelope [{t0}, {}] misses t={t}",
                        t0 + span
                    );
                }
            }
        }
        // The cursor still probes correctly after envelope queries.
        assert!(c.probe(horizon).position.distance(p.end_position()) < 1e-12);
    }

    #[test]
    fn envelope_within_single_segment_is_exact() {
        use crate::MonotoneTrajectory;
        let p = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let mut c = p.cursor();
        let disk = c.envelope(2.0, 6.0);
        assert!((disk.center - Vec2::new(4.0, 0.0)).norm() < 1e-12);
        assert!((disk.radius - 2.0).abs() < 1e-12);
        // Past the end: a point at the final position.
        let rest = c.envelope(20.0, 50.0);
        assert_eq!(rest.radius, 0.0);
        assert_eq!(rest.center, Vec2::new(10.0, 0.0));
    }

    #[test]
    fn from_iterator() {
        let p: Path = [Segment::line(Vec2::ZERO, Vec2::UNIT_X)]
            .into_iter()
            .collect();
        assert_eq!(p.duration(), 1.0);
    }
}
