//! Structure-of-arrays piece arena: the lane-kernel view of a program.
//!
//! The AoS [`Piece`] arena interleaves every
//! field of every piece (48 bytes apiece), so a kernel that only needs
//! start times and velocities drags the rest of the struct through the
//! cache and defeats autovectorization. [`ProgramSoA`] stores the same
//! arena as parallel `t0/t1/pos0x/pos0y/vx/vy/eps` arrays: the affine
//! distance-certificate kernels in `rvz_sim` stream four to eight
//! pieces per loop iteration out of contiguous `f64` lanes, and the
//! compiler vectorizes the branch-free inner loop on its own (measured,
//! not assumed — see `BENCH_engine.json`).
//!
//! Circular pieces are the cold minority (arc moves appear only in a
//! few schedules); they park their law in a **side table** indexed by a
//! `u32` sentinel column, so the hot affine lanes stay dense. Lane
//! kernels test `circ[i] == AFFINE` (a plain integer compare) and fall
//! back to the scalar cosine-law ladder for the rare circular interval.
//!
//! A `ProgramSoA` is built from any [`ProgramView`] — the eager
//! [`CompiledProgram`] copies its arena field-for-field (bit-identical
//! probes), and a lazy view is drained through the same
//! extend-and-check walk the engine uses, appending in chunks so a
//! streamed arena materializes exactly once. The SoA arena is itself a
//! [`ProgramView`] (it bakes the same envelope tree), so every scalar
//! engine entry point runs on it unchanged; that equivalence is the
//! bit-for-bit gate in `tests/engine_equivalence.rs`.

use crate::monotone::{Motion, Probe};
use crate::program::{bake_tree, grow_box, tree_range_union, CompiledProgram, Piece, ProgramView};
use rvz_geometry::{Aabb, Vec2};

/// Sentinel in the circular-index column marking an affine lane.
pub const AFFINE: u32 = u32::MAX;

/// The side-table entry for a circular piece: the circle and the phase
/// at the piece's `t0` (the same anchoring as [`Motion::Circular`] in
/// the AoS arena).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircularLaw {
    /// Circle center.
    pub center: Vec2,
    /// Circle radius.
    pub radius: f64,
    /// Signed angular velocity (rad per time unit).
    pub angular_velocity: f64,
    /// Phase at the piece's start time.
    pub angle: f64,
}

/// Pieces appended per growth step when draining a lazy view: matches
/// the lazy arena's own materialization chunk so a streamed build does
/// one `reserve` per chunk the source materializes.
const APPEND_CHUNK: usize = 256;

/// A compiled piece arena in structure-of-arrays layout.
///
/// Semantically identical to the [`CompiledProgram`] it was built from:
/// same pieces, same rest/coverage rules, same envelope tree, same
/// round marks. Only the memory layout differs — parallel arrays for
/// the hot fields, a side table for the cold circular laws.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSoA {
    t0: Vec<f64>,
    t1: Vec<f64>,
    pos0x: Vec<f64>,
    pos0y: Vec<f64>,
    /// Velocity lanes; zero for circular pieces (their law lives in the
    /// side table).
    vx: Vec<f64>,
    vy: Vec<f64>,
    eps: Vec<f64>,
    /// [`AFFINE`] for affine lanes, else an index into `circles`.
    circ: Vec<u32>,
    circles: Vec<CircularLaw>,
    /// Baked envelope tree, laid out exactly as the eager program's.
    tree: Vec<Aabb>,
    size: usize,
    end_time: f64,
    rest: Option<Vec2>,
    speed_bound: f64,
    marks: Vec<f64>,
    approx_eps: f64,
}

impl ProgramSoA {
    /// Transposes an eager program's arena field-for-field. Per-piece
    /// `eps` and circular phases are copied exactly, so probes on the
    /// SoA arena are bit-identical to the source program's.
    pub fn from_program(program: &CompiledProgram) -> Self {
        let mut b = Builder::with_capacity(program.pieces().len());
        for piece in program.pieces() {
            b.push(piece);
        }
        // The piece set is copied field-for-field, so the leaf boxes —
        // and therefore the whole baked tree — are identical to the
        // source program's. Cloning it skips re-deriving every
        // arc-chunk disk, which dominates transposition cost on
        // circular-heavy programs.
        let (tree, size) = program.baked_tree();
        b.finish_with_tree(
            tree.to_vec(),
            size,
            program.rest(),
            program.speed_bound(),
            program.round_marks().to_vec(),
            program.approx_eps(),
        )
    }

    /// Drains any [`ProgramView`] into an SoA arena covering
    /// `[0, horizon]` (or to the view's coverage boundary, whichever
    /// comes first — truncated views yield truncated arenas, exactly
    /// like the eager lowering).
    ///
    /// Lazy views materialize through their own extend-and-check
    /// [`ProgramView::covers`]; the walk appends in
    /// `APPEND_CHUNK`-piece reservations so a streamed arena is
    /// transposed as it materializes rather than after a full copy.
    /// Per-piece error bounds are not observable through a probe, so
    /// every piece carries the view-wide [`ProgramView::approx_eps`] —
    /// looser per-piece envelopes than [`ProgramSoA::from_program`],
    /// but the same program-wide bound, so engine thresholds are
    /// unchanged.
    pub fn from_view<V: ProgramView + ?Sized>(view: &V, horizon: f64) -> Self {
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "SoA build horizon must be positive and finite, got {horizon}"
        );
        let eps = view.approx_eps();
        let mut b = Builder::with_capacity(APPEND_CHUNK);
        let mut rest = None;
        let mut t = 0.0_f64;
        let mut index = 0usize;
        let mut stalls = 0u32;
        while t < horizon {
            if !view.covers(t) {
                break; // truncated source: keep the covered prefix
            }
            if b.t0.len() == b.t0.capacity() {
                b.reserve(APPEND_CHUNK);
            }
            let p = view.probe_from(&mut index, t);
            if p.piece_end == f64::INFINITY {
                if let Motion::Affine { velocity } = p.motion {
                    if velocity == Vec2::ZERO {
                        rest = Some(p.position);
                        break;
                    }
                }
                // Infinite moving piece: close the arena at the horizon,
                // as the lowering stream does.
                b.push(&Piece {
                    t0: t,
                    t1: horizon,
                    pos0: p.position,
                    motion: p.motion,
                    eps,
                });
                break;
            }
            if p.piece_end <= t {
                // Ulp-skewed boundary (see the lowering stream's stall
                // nudges); a view that keeps stalling gets truncated
                // rather than looping forever.
                stalls += 1;
                if stalls > 4 {
                    break;
                }
                t = t.next_up();
                continue;
            }
            stalls = 0;
            b.push(&Piece {
                t0: t,
                t1: p.piece_end.min(horizon),
                pos0: p.position,
                motion: p.motion,
                eps,
            });
            t = p.piece_end;
        }
        // Marks are exposed only as a successor query; walk them out.
        let mut marks = Vec::new();
        let mut m = 0.0_f64;
        while let Some(next) = view.next_mark_after(m) {
            if next > horizon {
                break;
            }
            marks.push(next);
            m = next;
        }
        b.finish(rest, view.speed_bound(), marks, eps)
    }

    /// Number of pieces in the arena.
    pub fn len(&self) -> usize {
        self.t0.len()
    }

    /// `true` for a rest-only (or empty) arena.
    pub fn is_empty(&self) -> bool {
        self.t0.is_empty()
    }

    /// Piece start times (the dense binary-search index).
    #[inline]
    pub fn t0s(&self) -> &[f64] {
        &self.t0
    }

    /// Piece end times.
    #[inline]
    pub fn t1s(&self) -> &[f64] {
        &self.t1
    }

    /// Start-position x lane.
    #[inline]
    pub fn pos0xs(&self) -> &[f64] {
        &self.pos0x
    }

    /// Start-position y lane.
    #[inline]
    pub fn pos0ys(&self) -> &[f64] {
        &self.pos0y
    }

    /// Velocity x lane (zero on circular pieces).
    #[inline]
    pub fn vxs(&self) -> &[f64] {
        &self.vx
    }

    /// Velocity y lane (zero on circular pieces).
    #[inline]
    pub fn vys(&self) -> &[f64] {
        &self.vy
    }

    /// Per-piece certified error bounds.
    #[inline]
    pub fn epss(&self) -> &[f64] {
        &self.eps
    }

    /// The circular sentinel column ([`AFFINE`] on affine lanes).
    #[inline]
    pub fn circ_column(&self) -> &[u32] {
        &self.circ
    }

    /// `true` when piece `i` is an affine lane.
    #[inline]
    pub fn is_affine(&self, i: usize) -> bool {
        self.circ[i] == AFFINE
    }

    /// The side-table law of circular piece `i`.
    ///
    /// # Panics
    ///
    /// Panics when piece `i` is affine.
    #[inline]
    pub fn circle(&self, i: usize) -> &CircularLaw {
        &self.circles[self.circ[i] as usize]
    }

    /// Reconstructs piece `i` as an AoS [`Piece`] (the scalar-ladder
    /// and test view of a lane).
    #[inline]
    pub fn piece(&self, i: usize) -> Piece {
        let motion = if self.circ[i] == AFFINE {
            Motion::Affine {
                velocity: Vec2::new(self.vx[i], self.vy[i]),
            }
        } else {
            let c = &self.circles[self.circ[i] as usize];
            Motion::Circular {
                center: c.center,
                radius: c.radius,
                angular_velocity: c.angular_velocity,
                angle: c.angle,
            }
        };
        Piece {
            t0: self.t0[i],
            t1: self.t1[i],
            pos0: Vec2::new(self.pos0x[i], self.pos0y[i]),
            motion,
            eps: self.eps[i],
        }
    }

    /// Time covered by the arena.
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// The rest position, when the source finishes within the arena.
    pub fn rest(&self) -> Option<Vec2> {
        self.rest
    }

    /// The recorded round marks.
    pub fn round_marks(&self) -> &[f64] {
        &self.marks
    }

    /// Index of the piece containing `t` (clamped like
    /// [`CompiledProgram::piece_index_at`]).
    pub fn piece_index_at(&self, t: f64) -> usize {
        self.t0
            .partition_point(|&s| s <= t)
            .saturating_sub(1)
            .min(self.t0.len().saturating_sub(1))
    }

    /// [`CompiledProgram::envelope_box`], lane edition: identical tree
    /// layout, identical chunk math, so the box is bit-identical to the
    /// source program's on the same query.
    pub fn envelope_box_impl(&self, t0: f64, t1: f64) -> Aabb {
        let t1 = t1.max(t0);
        if self.t0.is_empty() {
            return Aabb::point(self.rest.unwrap_or(Vec2::ZERO));
        }
        if let Some(p) = self.rest {
            if t0 >= self.end_time {
                return Aabb::point(p);
            }
            return self.envelope_within(t0, t1.min(self.end_time));
        }
        if t0 >= self.end_time {
            let anchor = self.piece(self.len() - 1).position_at(self.end_time);
            return grow_box(Aabb::point(anchor), self.speed_bound, t1 - self.end_time);
        }
        if t1 > self.end_time {
            let base = self.envelope_within(t0, self.end_time);
            return grow_box(base, self.speed_bound, t1 - self.end_time);
        }
        self.envelope_within(t0, t1)
    }

    fn envelope_within(&self, t0: f64, t1: f64) -> Aabb {
        let i0 = self.piece_index_at(t0);
        let i1 = self.piece_index_at(t1);
        let p0 = self.piece(i0);
        let first = p0.chunk_box(t0, t1.min(p0.t1));
        if i0 == i1 {
            return first;
        }
        let p1 = self.piece(i1);
        let last = p1.chunk_box(p1.t0, t1);
        let mut acc = first.union(&last);
        if i1 > i0 + 1 {
            acc = acc.union(&tree_range_union(&self.tree, self.size, i0 + 1, i1 - 1));
        }
        acc
    }
}

impl ProgramView for ProgramSoA {
    fn speed_bound(&self) -> f64 {
        self.speed_bound
    }

    fn approx_eps(&self) -> f64 {
        self.approx_eps
    }

    fn covers(&self, t: f64) -> bool {
        self.rest.is_some() || t <= self.end_time
    }

    fn covered_end(&self) -> f64 {
        self.end_time
    }

    /// The indexed probe walk of [`CompiledProgram::probe_from`] over
    /// the transposed arrays: same hop/gallop structure, pieces
    /// reconstructed on the fly, so probes are bit-identical to the
    /// source program's.
    #[inline]
    fn probe_from(&self, index: &mut usize, t: f64) -> Probe {
        let n = self.t1.len();
        let mut i = *index;
        let mut hops = 0;
        while i < n && t >= self.t1[i] {
            i += 1;
            hops += 1;
            if hops == 8 && i < n && t >= self.t1[i] {
                i += self.t0[i..].partition_point(|&s| s <= t);
                i = i.saturating_sub(1).max(*index);
                while i < n && t >= self.t1[i] {
                    i += 1;
                }
                break;
            }
        }
        *index = i;
        if i == n {
            debug_assert!(
                self.rest.is_some() || t <= self.end_time * (1.0 + 16.0 * f64::EPSILON),
                "probe at t={t} beyond the covered span {}",
                self.end_time
            );
            return match self.rest {
                Some(p) => Probe::resting(p),
                None => self.piece(n - 1).probe_at(t.min(self.end_time)),
            };
        }
        if self.circ[i] == AFFINE {
            // Hot path: the affine probe straight off the columns —
            // the same `pos0 + velocity * u` the AoS piece computes,
            // without reconstructing the struct (and without touching
            // the `eps` column a probe never reports).
            let u = t - self.t0[i];
            let velocity = Vec2::new(self.vx[i], self.vy[i]);
            return Probe {
                position: Vec2::new(self.pos0x[i], self.pos0y[i]) + velocity * u,
                piece_end: self.t1[i],
                motion: Motion::Affine { velocity },
            };
        }
        self.piece(i).probe_at(t)
    }

    fn envelope_box(&self, t0: f64, t1: f64) -> Aabb {
        self.envelope_box_impl(t0, t1)
    }

    fn next_mark_after(&self, t: f64) -> Option<f64> {
        let i = self.marks.partition_point(|&m| m <= t);
        self.marks.get(i).copied()
    }
}

/// Column-push builder shared by both constructors.
struct Builder {
    t0: Vec<f64>,
    t1: Vec<f64>,
    pos0x: Vec<f64>,
    pos0y: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    eps: Vec<f64>,
    circ: Vec<u32>,
    circles: Vec<CircularLaw>,
}

impl Builder {
    fn with_capacity(n: usize) -> Self {
        Builder {
            t0: Vec::with_capacity(n),
            t1: Vec::with_capacity(n),
            pos0x: Vec::with_capacity(n),
            pos0y: Vec::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
            eps: Vec::with_capacity(n),
            circ: Vec::with_capacity(n),
            circles: Vec::new(),
        }
    }

    fn reserve(&mut self, n: usize) {
        self.t0.reserve(n);
        self.t1.reserve(n);
        self.pos0x.reserve(n);
        self.pos0y.reserve(n);
        self.vx.reserve(n);
        self.vy.reserve(n);
        self.eps.reserve(n);
        self.circ.reserve(n);
    }

    fn push(&mut self, piece: &Piece) {
        self.t0.push(piece.t0);
        self.t1.push(piece.t1);
        self.pos0x.push(piece.pos0.x);
        self.pos0y.push(piece.pos0.y);
        self.eps.push(piece.eps);
        match piece.motion {
            Motion::Affine { velocity } => {
                self.vx.push(velocity.x);
                self.vy.push(velocity.y);
                self.circ.push(AFFINE);
            }
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } => {
                assert!(
                    self.circles.len() < AFFINE as usize,
                    "circular side table overflow"
                );
                self.vx.push(0.0);
                self.vy.push(0.0);
                self.circ.push(self.circles.len() as u32);
                self.circles.push(CircularLaw {
                    center,
                    radius,
                    angular_velocity,
                    angle,
                });
            }
            Motion::Curved => {
                unreachable!("compiled arenas never hold curved pieces")
            }
        }
    }

    fn finish(
        self,
        rest: Option<Vec2>,
        speed_bound: f64,
        marks: Vec<f64>,
        approx_eps: f64,
    ) -> ProgramSoA {
        let (tree, size) = bake_tree((0..self.t0.len()).map(|i| {
            Piece {
                t0: self.t0[i],
                t1: self.t1[i],
                pos0: Vec2::new(self.pos0x[i], self.pos0y[i]),
                motion: if self.circ[i] == AFFINE {
                    Motion::Affine {
                        velocity: Vec2::new(self.vx[i], self.vy[i]),
                    }
                } else {
                    let c = &self.circles[self.circ[i] as usize];
                    Motion::Circular {
                        center: c.center,
                        radius: c.radius,
                        angular_velocity: c.angular_velocity,
                        angle: c.angle,
                    }
                },
                eps: self.eps[i],
            }
            .bounding_box()
        }));
        self.finish_with_tree(tree, size, rest, speed_bound, marks, approx_eps)
    }

    fn finish_with_tree(
        self,
        tree: Vec<Aabb>,
        size: usize,
        rest: Option<Vec2>,
        speed_bound: f64,
        marks: Vec<f64>,
        approx_eps: f64,
    ) -> ProgramSoA {
        let end_time = self.t1.last().copied().unwrap_or(0.0);
        let mut marks: Vec<f64> = marks
            .into_iter()
            .filter(|&m| m.is_finite() && m > 0.0)
            .collect();
        marks.sort_by(f64::total_cmp);
        marks.dedup();
        ProgramSoA {
            t0: self.t0,
            t1: self.t1,
            pos0x: self.pos0x,
            pos0y: self.pos0y,
            vx: self.vx,
            vy: self.vy,
            eps: self.eps,
            circ: self.circ,
            circles: self.circles,
            tree,
            size,
            end_time,
            rest,
            speed_bound,
            marks,
            approx_eps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Compile, CompileOptions};
    use crate::PathBuilder;

    fn sample_path() -> crate::Path {
        PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(3.0, 0.0))
            .wait(1.5)
            .full_circle(Vec2::new(3.0, 2.0))
            .line_to(Vec2::new(-1.0, 4.0))
            .build()
    }

    #[test]
    fn from_program_probes_bit_identical() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e3)).unwrap();
        let soa = ProgramSoA::from_program(&program);
        assert_eq!(soa.len(), program.pieces().len());
        assert_eq!(soa.end_time(), program.end_time());
        assert_eq!(soa.rest(), program.rest());
        assert_eq!(soa.round_marks(), program.round_marks());
        let horizon = p.duration() + 2.0;
        let (mut ia, mut ib) = (0usize, 0usize);
        for i in 0..=4096 {
            let t = horizon * i as f64 / 4096.0;
            let a = program.probe_from(&mut ia, t);
            let b = soa.probe_from(&mut ib, t);
            assert_eq!(a.position, b.position, "t={t}");
            assert_eq!(a.piece_end, b.piece_end, "t={t}");
            assert_eq!(a.motion, b.motion, "t={t}");
        }
    }

    #[test]
    fn from_program_envelopes_bit_identical() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e3)).unwrap();
        let soa = ProgramSoA::from_program(&program);
        let horizon = p.duration() + 2.0;
        for w in 0..61 {
            let t0 = horizon * w as f64 / 61.0;
            for span in [0.0, 0.03, 0.9, 4.2, horizon, f64::INFINITY] {
                let a = program.envelope_box(t0, t0 + span);
                let b = soa.envelope_box_impl(t0, t0 + span);
                assert_eq!(a, b, "window [{t0}, {}]", t0 + span);
            }
        }
    }

    #[test]
    fn pieces_reconstruct_exactly() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e3)).unwrap();
        let soa = ProgramSoA::from_program(&program);
        for (i, piece) in program.pieces().iter().enumerate() {
            assert_eq!(soa.piece(i), *piece, "piece {i}");
        }
        // The arc landed in the side table; straight legs did not.
        assert!(soa.circ_column().iter().any(|&c| c != AFFINE));
        assert!(soa.circ_column().contains(&AFFINE));
    }

    #[test]
    fn from_view_matches_from_program_on_eager_sources() {
        let p = sample_path();
        let program = p.compile(&CompileOptions::to_horizon(1e3)).unwrap();
        let direct = ProgramSoA::from_program(&program);
        let walked = ProgramSoA::from_view(&program, 1e3);
        assert_eq!(walked.len(), direct.len());
        assert_eq!(walked.rest(), direct.rest());
        assert_eq!(walked.round_marks(), direct.round_marks());
        for i in 0..direct.len() {
            assert_eq!(walked.piece(i), direct.piece(i), "piece {i}");
        }
    }

    #[test]
    fn from_view_drains_lazy_sources() {
        use crate::lazy::LazyProgram;
        let p = sample_path();
        let opts = CompileOptions::to_horizon(64.0);
        let lazy = LazyProgram::new(&p, opts);
        let soa = ProgramSoA::from_view(&lazy, 64.0);
        let eager = p.compile(&opts).unwrap();
        assert_eq!(soa.len(), eager.pieces().len());
        for i in 0..soa.len() {
            let a = soa.piece(i);
            let b = eager.pieces()[i];
            assert_eq!(a.t0, b.t0, "piece {i}");
            assert_eq!(a.t1, b.t1, "piece {i}");
            assert_eq!(a.pos0, b.pos0, "piece {i}");
            assert_eq!(a.motion, b.motion, "piece {i}");
        }
        assert_eq!(soa.rest(), eager.rest());
    }

    #[test]
    fn rest_only_arena_is_well_formed() {
        let p = PathBuilder::at(Vec2::new(2.0, -1.0)).build();
        let program = p.compile(&CompileOptions::to_horizon(5.0)).unwrap();
        let soa = ProgramSoA::from_program(&program);
        assert_eq!(soa.is_empty(), program.pieces().is_empty());
        assert!(soa.covers(1e9));
        let (mut i, mut j) = (0usize, 0usize);
        assert_eq!(
            soa.probe_from(&mut i, 3.0).position,
            program.probe_from(&mut j, 3.0).position
        );
        assert_eq!(
            soa.envelope_box_impl(0.0, 10.0),
            program.envelope_box(0.0, 10.0)
        );
    }
}
