//! The reference-frame combinator of Lemma 4.
//!
//! A robot with attributes `(v, τ, φ, χ)` executing the common algorithm
//! `S(·)` occupies, at *global* time `t`, the position
//!
//! ```text
//! b⃗ + (v·τ)·Rot(φ)·Refl(χ)·S(t / τ)
//! ```
//!
//! where `b⃗` is its starting point. The factor `v·τ` is the robot's own
//! distance unit (its speed times its time unit, Section 1.1 of the
//! paper); `t/τ` converts global time to the robot's local clock. For
//! `τ = 1` this specializes exactly to Lemma 4's
//! `S'(t) = v·Rot(φ)·Refl(χ)·S(t)`.
//!
//! [`FrameWarp`] implements this as a general affine + time-dilation
//! wrapper over any [`Trajectory`], so the *same* algorithm value can be
//! instantiated for both robots.

use crate::Trajectory;
use rvz_geometry::{Mat2, Vec2};

/// A trajectory viewed through another reference frame:
/// `position(t) = translation + linear · inner.position(t / time_scale)`.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{FrameWarp, PathBuilder, Trajectory};
/// use rvz_geometry::{Mat2, Vec2};
///
/// let unit = PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build();
/// // A robot that is half as fast (v = 1/2, τ = 1): scale 0.5, same clock.
/// let slow = FrameWarp::new(unit, Mat2::scaling(0.5), Vec2::ZERO, 1.0);
/// assert_eq!(slow.position(1.0), Vec2::new(0.5, 0.0));
/// assert_eq!(slow.speed_bound(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrameWarp<T> {
    inner: T,
    linear: Mat2,
    translation: Vec2,
    time_scale: f64,
}

impl<T> FrameWarp<T> {
    /// Wraps `inner` with a linear map, a translation, and a time dilation.
    ///
    /// `time_scale` is the paper's `τ`: one local time unit of the warped
    /// robot corresponds to `time_scale` global time units.
    ///
    /// # Panics
    ///
    /// Panics unless `time_scale > 0` and all parameters are finite.
    pub fn new(inner: T, linear: Mat2, translation: Vec2, time_scale: f64) -> Self {
        assert!(
            time_scale > 0.0 && time_scale.is_finite(),
            "time_scale must be positive and finite, got {time_scale}"
        );
        assert!(translation.is_finite(), "translation must be finite");
        FrameWarp {
            inner,
            linear,
            translation,
            time_scale,
        }
    }

    /// The identity warp (useful for treating the reference robot
    /// uniformly with the warped one).
    pub fn identity(inner: T) -> Self {
        FrameWarp::new(inner, Mat2::IDENTITY, Vec2::ZERO, 1.0)
    }

    /// The linear part of the frame map.
    pub fn linear(&self) -> Mat2 {
        self.linear
    }

    /// The translation part (the robot's starting position).
    pub fn translation(&self) -> Vec2 {
        self.translation
    }

    /// The time dilation `τ`.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Consumes the warp and returns the wrapped trajectory.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// A reference to the wrapped trajectory.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Trajectory> Trajectory for FrameWarp<T> {
    fn position(&self, t: f64) -> Vec2 {
        self.translation + self.linear * self.inner.position(t / self.time_scale)
    }

    fn speed_bound(&self) -> f64 {
        // d/dt [M · S(t/σ)] = (1/σ) · M · S'(t/σ), so the speed is bounded
        // by ‖M‖₂ · inner_bound / σ.
        self.linear.operator_norm() * self.inner.speed_bound() / self.time_scale
    }

    fn duration(&self) -> Option<f64> {
        self.inner.duration().map(|d| d * self.time_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathBuilder;
    use rvz_geometry::assert_approx_eq;
    use std::f64::consts::FRAC_PI_2;

    fn unit_leg() -> crate::Path {
        PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build()
    }

    #[test]
    fn identity_warp_is_transparent() {
        let w = FrameWarp::identity(unit_leg());
        assert_eq!(w.position(0.5), Vec2::new(0.5, 0.0));
        assert_eq!(w.speed_bound(), 1.0);
        assert_eq!(w.duration(), Some(1.0));
    }

    #[test]
    fn translation_offsets_start() {
        let d = Vec2::new(3.0, -2.0);
        let w = FrameWarp::new(unit_leg(), Mat2::IDENTITY, d, 1.0);
        assert_eq!(w.position(0.0), d);
        assert_eq!(w.position(1.0), d + Vec2::UNIT_X);
    }

    #[test]
    fn rotation_rotates_the_whole_trajectory() {
        let w = FrameWarp::new(unit_leg(), Mat2::rotation(FRAC_PI_2), Vec2::ZERO, 1.0);
        assert!((w.position(1.0) - Vec2::UNIT_Y).norm() < 1e-15);
        assert_approx_eq!(w.speed_bound(), 1.0);
    }

    #[test]
    fn chirality_mirrors() {
        let diag = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 1.0))
            .build();
        let w = FrameWarp::new(diag, Mat2::chirality_reflection(-1.0), Vec2::ZERO, 1.0);
        let end = w.duration().unwrap();
        assert!((w.position(end) - Vec2::new(1.0, -1.0)).norm() < 1e-15);
    }

    #[test]
    fn time_dilation_slows_local_clock() {
        // τ = 2: the robot needs 2 global time units per local unit. With
        // v·τ scale folded into `linear`, a robot with v = 1, τ = 2 covers
        // the unit leg (scaled by v·τ = 2) in 2 global time units at
        // global speed v = 1.
        let tau = 2.0;
        let v = 1.0;
        let w = FrameWarp::new(unit_leg(), Mat2::scaling(v * tau), Vec2::ZERO, tau);
        assert_eq!(w.duration(), Some(2.0));
        assert_eq!(w.position(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(w.position(2.0), Vec2::new(2.0, 0.0));
        assert_approx_eq!(w.speed_bound(), v);
    }

    #[test]
    fn speed_bound_combines_norm_and_dilation() {
        let w = FrameWarp::new(unit_leg(), Mat2::scaling(3.0), Vec2::ZERO, 2.0);
        assert_approx_eq!(w.speed_bound(), 1.5);
    }

    #[test]
    fn accessors_and_into_inner() {
        let w = FrameWarp::new(unit_leg(), Mat2::scaling(2.0), Vec2::UNIT_Y, 4.0);
        assert_eq!(w.linear(), Mat2::scaling(2.0));
        assert_eq!(w.translation(), Vec2::UNIT_Y);
        assert_eq!(w.time_scale(), 4.0);
        assert_eq!(w.inner().duration(), 1.0);
        let inner = w.into_inner();
        assert_eq!(inner.duration(), 1.0);
    }

    #[test]
    #[should_panic(expected = "time_scale must be positive")]
    fn zero_time_scale_panics() {
        let _ = FrameWarp::new(unit_leg(), Mat2::IDENTITY, Vec2::ZERO, 0.0);
    }
}
