//! The reference-frame combinator of Lemma 4.
//!
//! A robot with attributes `(v, τ, φ, χ)` executing the common algorithm
//! `S(·)` occupies, at *global* time `t`, the position
//!
//! ```text
//! b⃗ + (v·τ)·Rot(φ)·Refl(χ)·S(t / τ)
//! ```
//!
//! where `b⃗` is its starting point. The factor `v·τ` is the robot's own
//! distance unit (its speed times its time unit, Section 1.1 of the
//! paper); `t/τ` converts global time to the robot's local clock. For
//! `τ = 1` this specializes exactly to Lemma 4's
//! `S'(t) = v·Rot(φ)·Refl(χ)·S(t)`.
//!
//! [`FrameWarp`] implements this as a general affine + time-dilation
//! wrapper over any [`Trajectory`], so the *same* algorithm value can be
//! instantiated for both robots.

use crate::monotone::{Cursor, MonotoneTrajectory, Motion, Probe};
use crate::Trajectory;
use rvz_geometry::{Mat2, Vec2};

/// A trajectory viewed through another reference frame:
/// `position(t) = translation + linear · inner.position(t / time_scale)`.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{FrameWarp, PathBuilder, Trajectory};
/// use rvz_geometry::{Mat2, Vec2};
///
/// let unit = PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build();
/// // A robot that is half as fast (v = 1/2, τ = 1): scale 0.5, same clock.
/// let slow = FrameWarp::new(unit, Mat2::scaling(0.5), Vec2::ZERO, 1.0);
/// assert_eq!(slow.position(1.0), Vec2::new(0.5, 0.0));
/// assert_eq!(slow.speed_bound(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrameWarp<T> {
    inner: T,
    linear: Mat2,
    translation: Vec2,
    time_scale: f64,
}

impl<T> FrameWarp<T> {
    /// Wraps `inner` with a linear map, a translation, and a time dilation.
    ///
    /// `time_scale` is the paper's `τ`: one local time unit of the warped
    /// robot corresponds to `time_scale` global time units.
    ///
    /// # Panics
    ///
    /// Panics unless `time_scale > 0` and all parameters are finite.
    pub fn new(inner: T, linear: Mat2, translation: Vec2, time_scale: f64) -> Self {
        assert!(
            time_scale > 0.0 && time_scale.is_finite(),
            "time_scale must be positive and finite, got {time_scale}"
        );
        assert!(translation.is_finite(), "translation must be finite");
        FrameWarp {
            inner,
            linear,
            translation,
            time_scale,
        }
    }

    /// The identity warp (useful for treating the reference robot
    /// uniformly with the warped one).
    pub fn identity(inner: T) -> Self {
        FrameWarp::new(inner, Mat2::IDENTITY, Vec2::ZERO, 1.0)
    }

    /// The linear part of the frame map.
    pub fn linear(&self) -> Mat2 {
        self.linear
    }

    /// The translation part (the robot's starting position).
    pub fn translation(&self) -> Vec2 {
        self.translation
    }

    /// The time dilation `τ`.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Consumes the warp and returns the wrapped trajectory.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// A reference to the wrapped trajectory.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Trajectory> Trajectory for FrameWarp<T> {
    fn position(&self, t: f64) -> Vec2 {
        self.translation + self.linear * self.inner.position(t / self.time_scale)
    }

    fn speed_bound(&self) -> f64 {
        // d/dt [M · S(t/σ)] = (1/σ) · M · S'(t/σ), so the speed is bounded
        // by ‖M‖₂ · inner_bound / σ.
        self.linear.operator_norm() * self.inner.speed_bound() / self.time_scale
    }

    fn duration(&self) -> Option<f64> {
        self.inner.duration().map(|d| d * self.time_scale)
    }
}

/// Cursor of a [`FrameWarp`]: composes the inner trajectory's cursor with
/// the affine frame map.
///
/// The composition preserves the analytic structure: an inner affine
/// piece with velocity `v` maps to an affine piece with velocity
/// `M·v / τ`, so straight legs and waits stay exactly solvable through
/// any stack of frame warps.
#[derive(Debug, Clone)]
pub struct WarpCursor<C> {
    inner: C,
    linear: Mat2,
    translation: Vec2,
    time_scale: f64,
    speed_bound: f64,
    /// `‖linear‖₂`, cached once: an inner envelope disk of radius `r`
    /// maps into a disk of radius `‖M‖₂·r` around the mapped center.
    operator_norm: f64,
    /// `Some((scale, rotation, handedness))` when the linear map is
    /// conformal (`s·Rot(α)` or `s·Rot(α)·Refl`), cached once. Conformal
    /// maps send circles to circles, so inner [`Motion::Circular`]
    /// pieces survive the warp exactly: the radius scales by `s`, the
    /// phase becomes `α ± θ`, and the angular velocity `±ω/τ` (the sign
    /// flipping under a reflection). The paper's attribute frames
    /// (`v·τ·Rot(φ)·Refl(χ)`) are always conformal.
    conformal: Option<(f64, f64, f64)>,
}

/// Decomposes a conformal linear map into `(scale, rotation, handedness)`
/// with handedness `+1` for `s·Rot(α)` and `−1` for `s·Rot(α)·Refl`
/// (reflection about the x-axis applied first). `None` for
/// non-conformal maps or the zero map.
fn conformal_parts(m: Mat2) -> Option<(f64, f64, f64)> {
    let c0 = m.col0();
    let c1 = m.col1();
    let s2 = c0.norm_squared();
    if s2 == 0.0 {
        return None;
    }
    let tol = 1e-12 * s2;
    if (c1.norm_squared() - s2).abs() > tol || c0.dot(c1).abs() > tol {
        return None;
    }
    let scale = s2.sqrt();
    let rotation = c0.angle();
    let handedness = if m.det() >= 0.0 { 1.0 } else { -1.0 };
    Some((scale, rotation, handedness))
}

impl<C: Cursor> Cursor for WarpCursor<C> {
    fn probe(&mut self, t: f64) -> Probe {
        let p = self.inner.probe(t / self.time_scale);
        Probe {
            position: self.translation + self.linear * p.position,
            // ∞ · τ = ∞, so permanent rests stay permanent.
            piece_end: p.piece_end * self.time_scale,
            motion: match p.motion {
                Motion::Affine { velocity } => Motion::Affine {
                    velocity: self.linear * velocity / self.time_scale,
                },
                Motion::Circular {
                    center,
                    radius,
                    angular_velocity,
                    angle,
                } => match self.conformal {
                    Some((scale, rotation, handedness)) => Motion::Circular {
                        center: self.translation + self.linear * center,
                        radius: scale * radius,
                        angular_velocity: handedness * angular_velocity / self.time_scale,
                        angle: rotation + handedness * angle,
                    },
                    // A non-conformal map turns circles into ellipses;
                    // degrade to the speed-bound-only description.
                    None => Motion::Curved,
                },
                Motion::Curved => Motion::Curved,
            },
        }
    }

    fn speed_bound(&self) -> f64 {
        self.speed_bound
    }

    /// Maps the inner envelope through the affine stack: the local
    /// interval is `[t0/τ, t1/τ]`, the center maps exactly, and the
    /// radius scales by `‖M‖₂` — every point within `r` of the inner
    /// center lands within `‖M‖₂·r` of the mapped center.
    fn envelope(&mut self, t0: f64, t1: f64) -> rvz_geometry::Disk {
        let inner = self
            .inner
            .envelope(t0 / self.time_scale, t1 / self.time_scale);
        let radius = if inner.radius.is_finite() {
            self.operator_norm * inner.radius
        } else if self.operator_norm == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        rvz_geometry::Disk::new(self.translation + self.linear * inner.center, radius)
    }
}

impl<T: MonotoneTrajectory> MonotoneTrajectory for FrameWarp<T> {
    type Cursor<'a>
        = WarpCursor<T::Cursor<'a>>
    where
        T: 'a;

    fn cursor(&self) -> Self::Cursor<'_> {
        WarpCursor {
            inner: self.inner.cursor(),
            linear: self.linear,
            translation: self.translation,
            time_scale: self.time_scale,
            speed_bound: self.speed_bound(),
            operator_norm: self.linear.operator_norm(),
            conformal: conformal_parts(self.linear),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathBuilder;
    use rvz_geometry::assert_approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn unit_leg() -> crate::Path {
        PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build()
    }

    #[test]
    fn identity_warp_is_transparent() {
        let w = FrameWarp::identity(unit_leg());
        assert_eq!(w.position(0.5), Vec2::new(0.5, 0.0));
        assert_eq!(w.speed_bound(), 1.0);
        assert_eq!(w.duration(), Some(1.0));
    }

    #[test]
    fn translation_offsets_start() {
        let d = Vec2::new(3.0, -2.0);
        let w = FrameWarp::new(unit_leg(), Mat2::IDENTITY, d, 1.0);
        assert_eq!(w.position(0.0), d);
        assert_eq!(w.position(1.0), d + Vec2::UNIT_X);
    }

    #[test]
    fn rotation_rotates_the_whole_trajectory() {
        let w = FrameWarp::new(unit_leg(), Mat2::rotation(FRAC_PI_2), Vec2::ZERO, 1.0);
        assert!((w.position(1.0) - Vec2::UNIT_Y).norm() < 1e-15);
        assert_approx_eq!(w.speed_bound(), 1.0);
    }

    #[test]
    fn chirality_mirrors() {
        let diag = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 1.0))
            .build();
        let w = FrameWarp::new(diag, Mat2::chirality_reflection(-1.0), Vec2::ZERO, 1.0);
        let end = w.duration().unwrap();
        assert!((w.position(end) - Vec2::new(1.0, -1.0)).norm() < 1e-15);
    }

    #[test]
    fn time_dilation_slows_local_clock() {
        // τ = 2: the robot needs 2 global time units per local unit. With
        // v·τ scale folded into `linear`, a robot with v = 1, τ = 2 covers
        // the unit leg (scaled by v·τ = 2) in 2 global time units at
        // global speed v = 1.
        let tau = 2.0;
        let v = 1.0;
        let w = FrameWarp::new(unit_leg(), Mat2::scaling(v * tau), Vec2::ZERO, tau);
        assert_eq!(w.duration(), Some(2.0));
        assert_eq!(w.position(1.0), Vec2::new(1.0, 0.0));
        assert_eq!(w.position(2.0), Vec2::new(2.0, 0.0));
        assert_approx_eq!(w.speed_bound(), v);
    }

    #[test]
    fn speed_bound_combines_norm_and_dilation() {
        let w = FrameWarp::new(unit_leg(), Mat2::scaling(3.0), Vec2::ZERO, 2.0);
        assert_approx_eq!(w.speed_bound(), 1.5);
    }

    #[test]
    fn accessors_and_into_inner() {
        let w = FrameWarp::new(unit_leg(), Mat2::scaling(2.0), Vec2::UNIT_Y, 4.0);
        assert_eq!(w.linear(), Mat2::scaling(2.0));
        assert_eq!(w.translation(), Vec2::UNIT_Y);
        assert_eq!(w.time_scale(), 4.0);
        assert_eq!(w.inner().duration(), 1.0);
        let inner = w.into_inner();
        assert_eq!(inner.duration(), 1.0);
    }

    #[test]
    fn cursor_composes_affine_pieces() {
        use crate::Motion;
        let tau = 2.0;
        let w = FrameWarp::new(
            PathBuilder::at(Vec2::ZERO)
                .line_to(Vec2::UNIT_X)
                .wait(1.0)
                .build(),
            Mat2::rotation(FRAC_PI_2) * Mat2::scaling(2.0),
            Vec2::UNIT_Y,
            tau,
        );
        let mut c = w.cursor();
        // Inner leg [0,1) maps to global [0,2): velocity rotated, scaled
        // by 2, slowed by τ = 2 ⇒ |v| = 1, pointing along +y.
        let p = c.probe(1.0);
        assert!(p.position.distance(w.position(1.0)) < 1e-15);
        assert_eq!(p.piece_end, 2.0);
        match p.motion {
            Motion::Affine { velocity } => {
                assert!((velocity - Vec2::UNIT_Y).norm() < 1e-15, "{velocity}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The inner wait maps to a zero-velocity piece ending at 4.
        let p = c.probe(3.0);
        assert_eq!(p.piece_end, 4.0);
        assert_eq!(
            p.motion,
            Motion::Affine {
                velocity: Vec2::ZERO
            }
        );
        // Past the end: permanent rest.
        assert_eq!(c.probe(9.0).piece_end, f64::INFINITY);
    }

    #[test]
    fn cursor_matches_random_access_through_nested_warps() {
        let inner = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(2.0, 0.0))
            .arc_around(Vec2::new(2.0, 1.0), PI)
            .line_to(Vec2::ZERO)
            .build();
        let w = FrameWarp::new(
            FrameWarp::new(inner, Mat2::rotation(0.7), Vec2::new(1.0, -2.0), 0.8),
            Mat2::chirality_reflection(-1.0) * Mat2::scaling(1.3),
            Vec2::new(-0.5, 0.25),
            1.7,
        );
        let mut c = w.cursor();
        let horizon = w.duration().unwrap() + 2.0;
        for i in 0..=500 {
            let t = horizon * i as f64 / 500.0;
            assert!(
                c.probe(t).position.distance(w.position(t)) < 1e-12,
                "mismatch at t={t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "time_scale must be positive")]
    fn zero_time_scale_panics() {
        let _ = FrameWarp::new(unit_leg(), Mat2::IDENTITY, Vec2::ZERO, 0.0);
    }
}
