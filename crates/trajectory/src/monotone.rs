//! Amortized-O(1) forward evaluation: the monotone-cursor layer.
//!
//! The conservative-advancement engine in `rvz-sim` queries trajectory
//! positions at strictly non-decreasing times, yet [`Trajectory::position`]
//! is a *random-access* API: every call pays the full lookup cost from
//! scratch (`Path` re-runs its start-time binary search, Algorithm 7
//! re-derives its round/block indexing, `FrameWarp` re-applies the affine
//! stack). This module adds the forward-only counterpart:
//!
//! * [`MonotoneTrajectory`] — implemented by every trajectory in the
//!   workspace; `cursor()` returns a stateful evaluator;
//! * [`Cursor`] — answers non-decreasing [`Cursor::probe`] queries in
//!   amortized O(1) by caching the active piece, and *describes* that
//!   piece (its global end time and motion law) so callers can reason
//!   about the trajectory analytically between boundaries;
//! * [`Probe`] / [`Motion`] — the piece description: on an
//!   [`Motion::Affine`] piece the position is an exact linear function of
//!   time until [`Probe::piece_end`], which is what lets the engine solve
//!   first-contact queries in closed form instead of ulp-crawling.
//!
//! ## The cursor contract
//!
//! For a cursor obtained from `t.cursor()` and queried at non-decreasing
//! times `t₁ ≤ t₂ ≤ …`:
//!
//! 1. **Agreement** — `cursor.probe(tᵢ).position == t.position(tᵢ)` up to
//!    floating-point noise from the incremental evaluation (property-
//!    tested against dense grids for every implementation);
//! 2. **Piece validity** — with `p = cursor.probe(tᵢ)`, for every
//!    `u ∈ [tᵢ, p.piece_end)` the trajectory's motion law holds: on an
//!    affine piece `t.position(u) = p.position + (u − tᵢ)·velocity`
//!    exactly (again up to fp noise); on a [`Motion::Circular`] piece
//!    the position follows the reported circle and phase; on a
//!    [`Motion::Curved`] piece only the trajectory's speed bound is
//!    promised;
//! 3. **Monotonicity** — querying a smaller time than a previous query is
//!    a contract violation (checked with `debug_assert!`, unchecked in
//!    release builds — hot loops must not pay for it);
//! 4. **Persistence** — once a finite trajectory has ended, probes report
//!    an affine piece with zero velocity and `piece_end = ∞`.
//!
//! Implementations may return conservative descriptions (shorter pieces,
//! `Curved` for a piece that happens to be straight); that costs speed,
//! never correctness.
//!
//! ## The envelope extension
//!
//! [`Cursor::envelope`] answers *set* queries: a [`Disk`] guaranteed to
//! contain `position(u)` for every `u ∈ [t0, t1]`. The engine's
//! coarse-to-fine pruning tests `envelope_a.gap(envelope_b) > radius` to
//! discard whole future intervals — entire dyadic sub-rounds — in one
//! query instead of stepping through their Θ(4ᵏ) segments.
//!
//! The contract mirrors `probe`:
//!
//! 5. **Soundness** — the returned disk contains the position at every
//!    time in `[t0, t1]`; a *larger* disk is always a legal (slower)
//!    answer, and the provided default derives one from `position(t0)`
//!    plus the speed bound, so every cursor supports envelopes without
//!    writing any code;
//! 6. **Monotone starts** — an envelope query counts as a query at `t0`
//!    for the monotonicity rule (the default implementation advances the
//!    cursor there); `t1` may lie arbitrarily far ahead and must not
//!    disturb the cursor's forward state.

use crate::Trajectory;
use rvz_geometry::{Disk, Vec2};

/// The motion law on the piece a cursor currently sits on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Motion {
    /// Exactly linear motion until the piece ends: from the probe time
    /// `t`, `position(u) = probe.position + (u − t)·velocity` for all
    /// `u ∈ [t, piece_end)`. Waits and rest states are affine with zero
    /// velocity.
    Affine {
        /// Velocity in global coordinates per global time unit.
        velocity: Vec2,
    },
    /// Exactly circular motion until the piece ends: from the probe time
    /// `t`, `position(u) = center + radius·e^{i(angle + ω·(u − t))}` for
    /// all `u ∈ [t, piece_end)` (with `e^{iφ}` the unit vector at angle
    /// `φ`). The dyadic schedules' arcs report this, which lets the
    /// engine solve circle-versus-wait and phase-locked circle pairs in
    /// closed form instead of conservative stepping — on an infeasible
    /// twin pair the relative displacement of two equal-`ω` circular
    /// pieces has *constant* magnitude, so one certificate covers the
    /// entire arc.
    Circular {
        /// Circle center in global coordinates.
        center: Vec2,
        /// Circle radius (≥ 0).
        radius: f64,
        /// Signed angular velocity `ω` in radians per global time unit
        /// (positive = counter-clockwise).
        angular_velocity: f64,
        /// Phase angle at the probe time (radians).
        angle: f64,
    },
    /// No closed form is exposed (spirals, arbitrary closures); only the
    /// trajectory's speed bound constrains the motion.
    Curved,
}

/// One forward query answered by a [`Cursor`]: the position at the query
/// time plus a description of the active piece.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// The position at the queried time (equal to
    /// [`Trajectory::position`] at that time).
    pub position: Vec2,
    /// Global time at which the current piece ends and the reported
    /// [`Motion`] stops being valid; `f64::INFINITY` once the trajectory
    /// rests forever.
    pub piece_end: f64,
    /// The motion law valid on `[t, piece_end)`.
    pub motion: Motion,
}

impl Probe {
    /// A probe for a permanent rest at `position`.
    pub fn resting(position: Vec2) -> Self {
        Probe {
            position,
            piece_end: f64::INFINITY,
            motion: Motion::Affine {
                velocity: Vec2::ZERO,
            },
        }
    }

    /// Time remaining until the current piece's boundary when queried at
    /// time `now` (clamped to zero; `∞` for a permanent rest).
    pub fn time_to_boundary(&self, now: f64) -> f64 {
        (self.piece_end - now).max(0.0)
    }
}

/// A forward-only evaluator over a trajectory.
///
/// Obtained from [`MonotoneTrajectory::cursor`]; see the
/// [module docs](self) for the full contract.
pub trait Cursor {
    /// Advances to time `t` (non-decreasing across calls) and reports the
    /// position plus the active piece.
    fn probe(&mut self, t: f64) -> Probe;

    /// The wrapped trajectory's speed bound (constant over the cursor's
    /// lifetime).
    fn speed_bound(&self) -> f64;

    /// Position only — [`Cursor::probe`] without the piece description.
    fn position(&mut self, t: f64) -> Vec2 {
        self.probe(t).position
    }

    /// A disk guaranteed to contain `position(u)` for all `u ∈ [t0, t1]`
    /// — the swept envelope of the trajectory over the interval.
    ///
    /// The default derives a sound certificate from the probe at `t0`:
    /// the exact segment disk when the active piece is affine and covers
    /// the whole interval, the speed-bound disk
    /// `D(position(t0), speed_bound·(t1−t0))` otherwise. Schedule-aware
    /// implementations override this with closed-form hierarchy bounds
    /// (per-round / per-sub-round disks) that stay tight over intervals
    /// spanning millions of segments.
    ///
    /// The query counts as a probe at `t0` for the monotonicity contract;
    /// see the [module docs](self).
    fn envelope(&mut self, t0: f64, t1: f64) -> Disk {
        let p = self.probe(t0);
        let span = (t1 - t0).max(0.0);
        if span == 0.0 {
            return Disk::point(p.position);
        }
        match p.motion {
            Motion::Affine { velocity } if t1 <= p.piece_end => {
                if velocity == Vec2::ZERO {
                    return Disk::point(p.position);
                }
                if span.is_finite() {
                    return Disk::spanning(p.position, p.position + velocity * span);
                }
            }
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } if t1 <= p.piece_end => {
                // The arc chunk traced over the interval.
                return Disk::arc_chunk(center, radius, angle, angular_velocity * span);
            }
            _ => {}
        }
        let s = self.speed_bound();
        let radius = if span.is_finite() {
            s * span
        } else if s == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        Disk::new(p.position, radius)
    }
}

impl<C: Cursor + ?Sized> Cursor for &mut C {
    fn probe(&mut self, t: f64) -> Probe {
        (**self).probe(t)
    }
    fn speed_bound(&self) -> f64 {
        (**self).speed_bound()
    }
    fn envelope(&mut self, t0: f64, t1: f64) -> Disk {
        (**self).envelope(t0, t1)
    }
}

impl<C: Cursor + ?Sized> Cursor for Box<C> {
    fn probe(&mut self, t: f64) -> Probe {
        (**self).probe(t)
    }
    fn speed_bound(&self) -> f64 {
        (**self).speed_bound()
    }
    fn envelope(&mut self, t0: f64, t1: f64) -> Disk {
        (**self).envelope(t0, t1)
    }
}

/// A trajectory that supports amortized-O(1) monotone evaluation.
///
/// Every trajectory shipped by the workspace implements this; exotic
/// downstream [`Trajectory`] impls can either implement it too or be
/// wrapped in [`GenericCursor`], which degrades gracefully to the plain
/// conservative behavior.
pub trait MonotoneTrajectory: Trajectory {
    /// The cursor type; borrows the trajectory.
    type Cursor<'a>: Cursor
    where
        Self: 'a;

    /// A fresh cursor positioned at time `0`.
    fn cursor(&self) -> Self::Cursor<'_>;
}

impl<T: MonotoneTrajectory + ?Sized> MonotoneTrajectory for &T {
    type Cursor<'a>
        = T::Cursor<'a>
    where
        Self: 'a;

    fn cursor(&self) -> Self::Cursor<'_> {
        (**self).cursor()
    }
}

impl<T: MonotoneTrajectory + ?Sized> MonotoneTrajectory for Box<T> {
    type Cursor<'a>
        = T::Cursor<'a>
    where
        Self: 'a;

    fn cursor(&self) -> Self::Cursor<'_> {
        (**self).cursor()
    }
}

/// Object-safe access to monotone cursors.
///
/// [`MonotoneTrajectory`]'s generic associated cursor type makes it
/// non-object-safe; heterogeneous collections (`&[&dyn MonotoneDyn]`, as
/// in `rvz-sim`'s multi-robot module) use this facade instead. It is
/// implemented automatically for every [`MonotoneTrajectory`].
pub trait MonotoneDyn: Trajectory {
    /// A fresh boxed cursor positioned at time `0`.
    fn dyn_cursor(&self) -> Box<dyn Cursor + '_>;

    /// Scoped access to a fresh cursor **without** the box: the cursor
    /// lives on the callee's stack and is handed to `f` by unsized
    /// reference. This is the allocation-free twin of
    /// [`MonotoneDyn::dyn_cursor`] — the blanket impl for
    /// [`MonotoneTrajectory`] types never touches the heap, so query
    /// loops (`rvz-sim`'s pairwise meetings, the bench cursor arm) stay
    /// at zero allocations per query. The default body falls back to
    /// the boxed cursor for hand-rolled `MonotoneDyn` impls.
    fn with_cursor(&self, f: &mut dyn FnMut(&mut dyn Cursor)) {
        f(&mut *self.dyn_cursor());
    }
}

impl<T: MonotoneTrajectory> MonotoneDyn for T {
    fn dyn_cursor(&self) -> Box<dyn Cursor + '_> {
        Box::new(self.cursor())
    }

    fn with_cursor(&self, f: &mut dyn FnMut(&mut dyn Cursor)) {
        f(&mut self.cursor());
    }
}

/// The graceful-degradation adapter: wraps *any* [`Trajectory`] as a
/// cursor that reports a single [`Motion::Curved`] piece (switching to a
/// permanent rest after a finite duration).
///
/// Driving the engine through two `GenericCursor`s reproduces the plain
/// conservative-advancement behavior exactly, so exotic trajectory types
/// lose the fast path but nothing else.
///
/// # Example
///
/// ```
/// use rvz_trajectory::{Cursor, FnTrajectory, GenericCursor, Motion};
/// use rvz_geometry::Vec2;
///
/// let t = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
/// let mut c = GenericCursor::new(&t);
/// let p = c.probe(2.0);
/// assert_eq!(p.position, Vec2::new(2.0, 0.0));
/// assert_eq!(p.motion, Motion::Curved);
/// ```
#[derive(Debug, Clone)]
pub struct GenericCursor<'a, T: Trajectory + ?Sized> {
    trajectory: &'a T,
    speed_bound: f64,
    /// `duration()` cached once; `None` for infinite trajectories.
    duration: Option<f64>,
    guard: MonotoneGuard,
}

impl<'a, T: Trajectory + ?Sized> GenericCursor<'a, T> {
    /// Wraps a trajectory reference.
    pub fn new(trajectory: &'a T) -> Self {
        GenericCursor {
            trajectory,
            speed_bound: trajectory.speed_bound(),
            duration: trajectory.duration(),
            guard: MonotoneGuard::default(),
        }
    }
}

impl<T: Trajectory + ?Sized> Cursor for GenericCursor<'_, T> {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        match self.duration {
            Some(d) if t >= d => Probe::resting(self.trajectory.position(t)),
            Some(d) => Probe {
                position: self.trajectory.position(t),
                piece_end: d,
                motion: Motion::Curved,
            },
            None => Probe {
                position: self.trajectory.position(t),
                piece_end: f64::INFINITY,
                motion: Motion::Curved,
            },
        }
    }

    fn speed_bound(&self) -> f64 {
        self.speed_bound
    }
}

/// Debug-only enforcement of the non-decreasing-query contract.
///
/// Embed one per cursor and call [`MonotoneGuard::check`] at the top of
/// `probe`. The stored state and the check both compile to nothing in
/// release builds, so hot loops pay zero for the contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotoneGuard {
    #[cfg(debug_assertions)]
    last_query: f64,
}

impl MonotoneGuard {
    /// Asserts (debug-only) that `t` is valid and non-decreasing.
    #[inline]
    pub fn check(&mut self, t: f64) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(!t.is_nan() && t >= 0.0, "cursor time must be >= 0, got {t}");
            debug_assert!(
                t >= self.last_query,
                "cursor queries must be non-decreasing: {t} after {}",
                self.last_query
            );
            self.last_query = t;
        }
        #[cfg(not(debug_assertions))]
        let _ = t;
    }
}

/// The [`Motion`] of one [`Segment`](crate::Segment) probed `u` time
/// units after the segment began, used by every segment-structured
/// cursor (paths, the search schedules). The elapsed time matters only
/// for arcs, whose [`Motion::Circular`] law carries the phase at the
/// probe.
pub fn segment_motion(segment: &crate::Segment, u: f64) -> Motion {
    match *segment {
        crate::Segment::Line { from, to } => {
            let d = from.distance(to);
            if d == 0.0 {
                Motion::Affine {
                    velocity: Vec2::ZERO,
                }
            } else {
                Motion::Affine {
                    velocity: (to - from) / d,
                }
            }
        }
        crate::Segment::Wait { .. } => Motion::Affine {
            velocity: Vec2::ZERO,
        },
        crate::Segment::Arc {
            center,
            radius,
            start_angle,
            sweep,
        } => {
            if radius == 0.0 {
                Motion::Affine {
                    velocity: Vec2::ZERO,
                }
            } else {
                Motion::Circular {
                    center,
                    radius,
                    angular_velocity: sweep.signum() / radius,
                    angle: start_angle + sweep.signum() * (u / radius),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnTrajectory, Segment};

    #[test]
    fn generic_cursor_matches_random_access() {
        let t = FnTrajectory::new(|t| Vec2::new(t.cos(), t.sin()), 1.0);
        let mut c = GenericCursor::new(&t);
        for i in 0..100 {
            let time = i as f64 * 0.37;
            assert_eq!(c.probe(time).position, t.position(time));
        }
    }

    #[test]
    fn generic_cursor_rests_after_finite_duration() {
        let t = FnTrajectory::with_duration(|t| Vec2::new(t, 0.0), 1.0, 3.0);
        let mut c = GenericCursor::new(&t);
        let moving = c.probe(1.0);
        assert_eq!(moving.motion, Motion::Curved);
        assert_eq!(moving.piece_end, 3.0);
        let resting = c.probe(10.0);
        assert_eq!(resting.position, Vec2::new(3.0, 0.0));
        assert_eq!(resting.piece_end, f64::INFINITY);
        assert_eq!(
            resting.motion,
            Motion::Affine {
                velocity: Vec2::ZERO
            }
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-decreasing")]
    fn generic_cursor_rejects_backward_queries_in_debug() {
        let t = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let mut c = GenericCursor::new(&t);
        let _ = c.probe(2.0);
        let _ = c.probe(1.0);
    }

    #[test]
    fn segment_motion_classification() {
        let line = Segment::line(Vec2::ZERO, Vec2::new(3.0, 4.0));
        match segment_motion(&line, 0.5) {
            Motion::Affine { velocity } => {
                assert!((velocity - Vec2::new(0.6, 0.8)).norm() < 1e-15);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            segment_motion(&Segment::wait(Vec2::UNIT_X, 2.0), 1.0),
            Motion::Affine {
                velocity: Vec2::ZERO
            }
        );
        match segment_motion(&Segment::full_circle(Vec2::ZERO, 2.0, 0.0), 2.0) {
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                angle,
            } => {
                assert_eq!(center, Vec2::ZERO);
                assert_eq!(radius, 2.0);
                assert_eq!(angular_velocity, 0.5);
                // Arc length 2 on radius 2 = one radian of phase.
                assert!((angle - 1.0).abs() < 1e-15);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Degenerate lines are stationary.
        assert_eq!(
            segment_motion(&Segment::line(Vec2::UNIT_X, Vec2::UNIT_X), 0.0),
            Motion::Affine {
                velocity: Vec2::ZERO
            }
        );
    }

    #[test]
    fn probe_time_to_boundary_clamps() {
        let p = Probe {
            position: Vec2::ZERO,
            piece_end: 5.0,
            motion: Motion::Curved,
        };
        assert_eq!(p.time_to_boundary(3.0), 2.0);
        assert_eq!(p.time_to_boundary(6.0), 0.0);
        assert_eq!(
            Probe::resting(Vec2::ZERO).time_to_boundary(1.0),
            f64::INFINITY
        );
    }

    #[test]
    fn monotone_impls_forward_through_ref_and_box() {
        let p = crate::PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(2.0, 0.0))
            .build();
        let by_ref = &p;
        let mut c = by_ref.cursor();
        assert_eq!(c.probe(1.0).position, Vec2::new(1.0, 0.0));
        let boxed: Box<crate::Path> = Box::new(p);
        let mut c = boxed.cursor();
        assert_eq!(c.probe(2.0).position, Vec2::new(2.0, 0.0));
    }

    #[test]
    fn default_envelope_is_sound_for_curved_motion() {
        let t = FnTrajectory::new(|t| Vec2::new(t.cos(), t.sin()), 1.0);
        let mut c = GenericCursor::new(&t);
        let disk = c.envelope(1.0, 4.0);
        for i in 0..=60 {
            let u = 1.0 + 3.0 * i as f64 / 60.0;
            assert!(disk.contains(t.position(u), 1e-9), "u={u}");
        }
        // Speed-bound fallback: radius = 1·span.
        assert!((disk.radius - 3.0).abs() < 1e-12);
    }

    #[test]
    fn default_envelope_tightens_on_covered_affine_pieces() {
        let p = crate::PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let mut c = p.cursor();
        // Whole query inside the single leg: exact segment disk.
        let disk = c.envelope(2.0, 6.0);
        assert!((disk.radius - 2.0).abs() < 1e-12);
        assert!((disk.center - Vec2::new(4.0, 0.0)).norm() < 1e-12);
        // Resting forever: a point, even for an unbounded query.
        let disk = c.envelope(50.0, f64::INFINITY);
        assert_eq!(disk.radius, 0.0);
        assert_eq!(disk.center, Vec2::new(10.0, 0.0));
    }

    #[test]
    fn default_envelope_handles_unbounded_curved_queries() {
        let t = FnTrajectory::new(|t| Vec2::new(t.cos(), t.sin()), 1.0);
        let mut c = GenericCursor::new(&t);
        let disk = c.envelope(0.0, f64::INFINITY);
        assert_eq!(disk.radius, f64::INFINITY);
    }

    #[test]
    fn dyn_monotone_boxes_cursors() {
        let p = crate::PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(1.0, 0.0))
            .build();
        let dynamic: &dyn MonotoneDyn = &p;
        let mut c = dynamic.dyn_cursor();
        assert_eq!(c.probe(0.5).position, Vec2::new(0.5, 0.0));
        assert_eq!(c.speed_bound(), 1.0);
    }
}
