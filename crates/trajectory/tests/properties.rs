//! Property-based tests for the trajectory substrate.
//!
//! These check the `Trajectory` contract documented on the trait: unit
//! speed bound for paths, continuity, agreement between the random-access
//! `Path` index and the sequential `StreamCursor`, and the algebra of
//! `FrameWarp`.

use proptest::prelude::*;
use rvz_geometry::{Mat2, Vec2};
use rvz_trajectory::{FrameWarp, Path, PathBuilder, Segment, StreamCursor, Trajectory};

/// Strategy: a small step for a random path (line / arc / wait).
fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        ((-5.0..5.0f64), (-5.0..5.0f64)).prop_map(|(x, y)| Step::LineTo(Vec2::new(x, y))),
        ((0.05..3.0f64), (-6.0..6.0f64)).prop_map(|(r, sweep)| Step::Arc { radius: r, sweep }),
        (0.0..4.0f64).prop_map(Step::Wait),
    ]
}

#[derive(Debug, Clone, Copy)]
enum Step {
    LineTo(Vec2),
    Arc { radius: f64, sweep: f64 },
    Wait(f64),
}

fn build_path(start: Vec2, steps: &[Step]) -> Path {
    let mut b = PathBuilder::at(start);
    for step in steps {
        b = match *step {
            Step::LineTo(p) => b.line_to(p),
            Step::Arc { radius, sweep } => {
                // Center placed `radius` to the left of the current position
                // so the arc starts exactly at the current point.
                let center = b.current_position() - Vec2::new(radius, 0.0);
                b.arc_around(center, sweep)
            }
            Step::Wait(d) => b.wait(d),
        };
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total duration equals the sum of segment durations.
    #[test]
    fn duration_is_additive(
        steps in proptest::collection::vec(step_strategy(), 1..12),
        sx in -3.0..3.0f64,
        sy in -3.0..3.0f64,
    ) {
        let p = build_path(Vec2::new(sx, sy), &steps);
        let sum: f64 = p.segments().iter().map(Segment::duration).sum();
        prop_assert!((p.duration() - sum).abs() <= 1e-9 * (1.0 + sum));
    }

    /// Paths never exceed unit speed: |S(t₂) − S(t₁)| ≤ t₂ − t₁.
    #[test]
    fn unit_speed_bound_holds(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        samples in proptest::collection::vec(0.0..1.0f64, 2..20),
    ) {
        let p = build_path(Vec2::ZERO, &steps);
        let dur = p.duration();
        let mut times: Vec<f64> = samples.iter().map(|f| f * dur).collect();
        times.sort_by(f64::total_cmp);
        for w in times.windows(2) {
            let (t1, t2) = (w[0], w[1]);
            let dist = p.position(t1).distance(p.position(t2));
            prop_assert!(
                dist <= (t2 - t1) + 1e-7,
                "speed violated: moved {dist} in {}", t2 - t1
            );
        }
    }

    /// Continuity at every segment boundary.
    #[test]
    fn continuous_at_boundaries(
        steps in proptest::collection::vec(step_strategy(), 1..10),
    ) {
        let p = build_path(Vec2::ZERO, &steps);
        for i in 0..p.len() {
            let t = p.segment_start_time(i);
            if t == 0.0 { continue; }
            let before = p.position((t - 1e-9).max(0.0));
            let at = p.position(t);
            prop_assert!(before.distance(at) < 1e-7, "jump at boundary {i}");
        }
    }

    /// Random access through `Path` agrees with sequential `StreamCursor`.
    #[test]
    fn path_matches_cursor(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        samples in proptest::collection::vec(0.0..1.2f64, 1..30),
    ) {
        let p = build_path(Vec2::ZERO, &steps);
        let dur = p.duration();
        let mut times: Vec<f64> = samples.iter().map(|f| f * dur).collect();
        times.sort_by(f64::total_cmp);
        let mut cursor = StreamCursor::new(p.segments().iter().copied());
        for t in times {
            let a = p.position(t);
            let b = cursor.position(t);
            prop_assert!(a.distance(b) < 1e-9, "mismatch at t={t}: {a} vs {b}");
        }
    }

    /// FrameWarp evaluates exactly `translation + linear·inner(t/σ)`.
    #[test]
    fn warp_formula(
        steps in proptest::collection::vec(step_strategy(), 1..6),
        t in 0.0..50.0f64,
        angle in 0.0..std::f64::consts::TAU,
        scale in 0.1..3.0f64,
        tx in -4.0..4.0f64,
        ty in -4.0..4.0f64,
        sigma in 0.2..4.0f64,
    ) {
        let p = build_path(Vec2::ZERO, &steps);
        let m = Mat2::rotation(angle) * Mat2::scaling(scale);
        let b = Vec2::new(tx, ty);
        let w = FrameWarp::new(p.clone(), m, b, sigma);
        let expected = b + m * p.position(t / sigma);
        prop_assert!(w.position(t).distance(expected) < 1e-9);
    }

    /// The warp's declared speed bound really bounds observed speeds.
    #[test]
    fn warp_speed_bound_holds(
        steps in proptest::collection::vec(step_strategy(), 1..6),
        angle in 0.0..std::f64::consts::TAU,
        scale in 0.1..3.0f64,
        sigma in 0.2..4.0f64,
        samples in proptest::collection::vec(0.0..1.0f64, 2..12),
    ) {
        let p = build_path(Vec2::ZERO, &steps);
        let m = Mat2::rotation(angle) * Mat2::scaling(scale);
        let w = FrameWarp::new(p, m, Vec2::ZERO, sigma);
        let dur = w.duration().unwrap_or(10.0);
        let bound = w.speed_bound();
        let mut times: Vec<f64> = samples.iter().map(|f| f * dur).collect();
        times.sort_by(f64::total_cmp);
        for pair in times.windows(2) {
            let (t1, t2) = (pair[0], pair[1]);
            if t2 - t1 < 1e-12 { continue; }
            let dist = w.position(t1).distance(w.position(t2));
            prop_assert!(dist <= bound * (t2 - t1) + 1e-7);
        }
    }
}
