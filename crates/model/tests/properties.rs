//! Property-based tests for the model crate: the Theorem 4 predicate's
//! case analysis and the frame-map algebra.

use proptest::prelude::*;
use rvz_model::{
    feasibility, Chirality, Feasibility, RendezvousInstance, RobotAttributes, SearchInstance,
    SymmetryBreaker,
};
use rvz_geometry::Vec2;
use rvz_trajectory::{PathBuilder, Trajectory};

fn chirality() -> impl Strategy<Value = Chirality> {
    prop_oneof![Just(Chirality::Consistent), Just(Chirality::Mirrored)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 4 as a formula: feasible ⟺ τ≠1 ∨ v≠1 ∨ (χ=+1 ∧ φ≠0).
    #[test]
    fn predicate_equals_formula(
        v in prop_oneof![Just(1.0f64), 0.1..3.0f64],
        tau in prop_oneof![Just(1.0f64), 0.1..3.0f64],
        phi in prop_oneof![Just(0.0f64), 0.0..std::f64::consts::TAU],
        chi in chirality(),
    ) {
        let attrs = RobotAttributes::new(v, tau, phi, chi);
        let expected = attrs.time_unit() != 1.0
            || attrs.speed() != 1.0
            || (attrs.chirality() == Chirality::Consistent && attrs.orientation() != 0.0);
        prop_assert_eq!(feasibility(&attrs).is_feasible(), expected, "{}", attrs);
    }

    /// The reported symmetry breaker is truthful: the named attribute
    /// really differs.
    #[test]
    fn breaker_is_truthful(
        v in 0.1..3.0f64,
        tau in 0.1..3.0f64,
        phi in 0.0..std::f64::consts::TAU,
        chi in chirality(),
    ) {
        let attrs = RobotAttributes::new(v, tau, phi, chi);
        match feasibility(&attrs) {
            Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks) => {
                prop_assert!(attrs.time_unit() != 1.0)
            }
            Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds) => {
                prop_assert!(attrs.speed() != 1.0)
            }
            Feasibility::Feasible(SymmetryBreaker::OrientationOffset) => {
                prop_assert!(attrs.orientation() != 0.0);
                prop_assert_eq!(attrs.chirality(), Chirality::Consistent);
            }
            Feasibility::Infeasible(_) => {
                prop_assert_eq!(attrs.speed(), 1.0);
                prop_assert_eq!(attrs.time_unit(), 1.0);
            }
        }
    }

    /// µ ∈ [|1−v|, 1+v] with the extremes at φ = 0 and φ = π.
    #[test]
    fn mu_bounds(v in 0.05..3.0f64, phi in 0.0..std::f64::consts::TAU) {
        let mu = RobotAttributes::reference()
            .with_speed(v)
            .with_orientation(phi)
            .mu();
        prop_assert!(mu >= (1.0 - v).abs() - 1e-12);
        prop_assert!(mu <= 1.0 + v + 1e-12);
    }

    /// The frame map's speed bound: a warped unit-speed trajectory moves
    /// at speed exactly v (time dilation and distance unit cancel).
    #[test]
    fn frame_speed_is_v(
        v in 0.1..3.0f64,
        tau in 0.1..3.0f64,
        phi in 0.0..std::f64::consts::TAU,
        chi in chirality(),
        t in 0.0..0.9f64,
    ) {
        let attrs = RobotAttributes::new(v, tau, phi, chi);
        let leg = PathBuilder::at(Vec2::ZERO).line_to(Vec2::new(1.0, 0.0)).build();
        let warped = attrs.frame_warp(leg, Vec2::ZERO);
        prop_assert!((warped.speed_bound() - v).abs() <= 1e-9 * (1.0 + v));
        // Sampled speed matches the bound on the moving part.
        let total = warped.duration().unwrap();
        let h = total * 1e-6;
        let t = t * total;
        let speed = warped.position(t + h).distance(warped.position(t)) / h;
        prop_assert!(speed <= v * (1.0 + 1e-6));
    }

    /// The warped trajectory ends after τ·(local duration) global time.
    #[test]
    fn frame_duration_scales_by_tau(tau in 0.1..3.0f64) {
        let attrs = RobotAttributes::reference().with_time_unit(tau);
        let leg = PathBuilder::at(Vec2::ZERO).line_to(Vec2::new(2.0, 0.0)).build();
        let warped = attrs.frame_warp(leg, Vec2::ZERO);
        prop_assert!((warped.duration().unwrap() - 2.0 * tau).abs() < 1e-9);
    }

    /// Instance difficulty d²/r is shared between a rendezvous instance
    /// and its stationary-search reduction.
    #[test]
    fn reduction_preserves_difficulty(
        dx in -5.0..5.0f64,
        dy in -5.0..5.0f64,
        r in 0.001..1.0f64,
    ) {
        let d = Vec2::new(dx, dy);
        prop_assume!(d.norm() > 1e-6);
        let inst = RendezvousInstance::new(d, r, RobotAttributes::reference()).unwrap();
        let search = inst.as_stationary_search();
        prop_assert_eq!(search.difficulty(), inst.difficulty());
        prop_assert_eq!(search.target(), inst.offset());
    }

    /// Orientation is always normalized into [0, 2π).
    #[test]
    fn orientation_normalized(phi in -100.0..100.0f64) {
        let a = RobotAttributes::reference().with_orientation(phi);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&a.orientation()));
    }

    /// Validation rejects exactly the bad inputs.
    #[test]
    fn instance_validation(r in -1.0..1.0f64, dx in -1.0..1.0f64) {
        let target = Vec2::new(dx, 0.0);
        let result = SearchInstance::new(target, r);
        let should_be_ok = r > 0.0 && target != Vec2::ZERO;
        prop_assert_eq!(result.is_ok(), should_be_ok);
    }
}
