//! The Theorem 4 feasibility characterization, as a decidable predicate.
//!
//! Rendezvous between the reference robot and a robot with attributes
//! `(v, τ, φ, χ)` is feasible **iff** at least one of the following
//! symmetry breakers is available:
//!
//! * `τ ≠ 1` — asymmetric clocks (Section 4);
//! * `v ≠ 1` — different speeds (Section 3, both chiralities);
//! * `χ = +1 ∧ 0 < φ < 2π` — orientation offset with equal chirality
//!   (Section 3, via `µ > 0`).
//!
//! When none applies the robots are doomed: either they are exact twins
//! (every trajectory pair stays at constant offset `d⃗`), or they are
//! mirror twins (`v = τ = 1, χ = −1`), in which case the relative motion
//! `S(t) − S'(t)` is confined to a line and an adversarial placement of
//! `R'` perpendicular to that line keeps the distance at least `d`
//! forever. [`InfeasibleReason::invariant_direction`] exposes that
//! adversarial direction so the simulator tests can certify infeasibility.

use crate::attributes::{Chirality, RobotAttributes};
use rvz_geometry::Vec2;
use std::fmt;

/// Which attribute difference a universal algorithm can exploit.
///
/// Ordered by the paper's presentation; when several apply, the
/// `feasibility` predicate reports the *strongest* one in this order
/// (clocks, then speeds, then orientation), matching the case analysis of
/// Theorems 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymmetryBreaker {
    /// `τ ≠ 1`: Algorithm 7's wait/search phases de-synchronize (Theorem 3).
    AsymmetricClocks,
    /// `v ≠ 1`: the equivalent search matrix is non-singular (Theorem 2).
    DifferentSpeeds,
    /// `v = 1, τ = 1, χ = +1, φ ≠ 0`: `µ = √(2 − 2cos φ) > 0` (Lemma 6).
    OrientationOffset,
}

impl fmt::Display for SymmetryBreaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymmetryBreaker::AsymmetricClocks => write!(f, "asymmetric clocks (τ ≠ 1)"),
            SymmetryBreaker::DifferentSpeeds => write!(f, "different speeds (v ≠ 1)"),
            SymmetryBreaker::OrientationOffset => {
                write!(f, "orientation offset with equal chirality (φ ≠ 0, χ = +1)")
            }
        }
    }
}

/// Why no deterministic symmetric algorithm can force rendezvous.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfeasibleReason {
    /// All four attributes equal: the robots are indistinguishable twins
    /// and their distance is invariant under any common algorithm.
    IdenticalTwins,
    /// `v = τ = 1, χ = −1`: the relative trajectory `S − S'` is confined
    /// to the line orthogonal to `invariant_direction`, so a target offset
    /// along that direction is never approached.
    MirrorTwins {
        /// The robots' orientation difference `φ` (any value allowed).
        orientation: f64,
    },
}

impl InfeasibleReason {
    /// A unit direction `û` such that placing `R'` at `d·û` keeps the
    /// robots at distance ≥ `d` forever — the adversarial placement used
    /// to *demonstrate* infeasibility in simulation.
    ///
    /// For mirror twins with orientation `φ` this is `(cos φ/2, sin φ/2)`:
    /// with `v = 1, χ = −1` the equivalent-search matrix
    /// `T∘ = I − Rot(φ)·Refl(−1)` is the rank-≤1 map `2·sin(φ/2)·…` whose
    /// range is orthogonal to `û`, hence `(S(t) − S'(t))·û = 0` for all
    /// `t`. For identical twins any direction works; `û = x̂` is returned.
    pub fn invariant_direction(&self) -> Vec2 {
        match *self {
            InfeasibleReason::IdenticalTwins => Vec2::UNIT_X,
            InfeasibleReason::MirrorTwins { orientation } => {
                Vec2::from_polar(1.0, orientation / 2.0)
            }
        }
    }
}

impl fmt::Display for InfeasibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfeasibleReason::IdenticalTwins => write!(f, "identical twins (v=τ=1, φ=0, χ=+1)"),
            InfeasibleReason::MirrorTwins { orientation } => {
                write!(f, "mirror twins (v=τ=1, χ=−1, φ={orientation:.4})")
            }
        }
    }
}

/// The verdict of the Theorem 4 characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Feasibility {
    /// Rendezvous is achievable; the payload names an exploitable
    /// attribute difference.
    Feasible(SymmetryBreaker),
    /// No deterministic symmetric algorithm can force rendezvous for
    /// every initial placement.
    Infeasible(InfeasibleReason),
}

impl Feasibility {
    /// `true` for the feasible verdict.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }
}

impl fmt::Display for Feasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feasibility::Feasible(b) => write!(f, "feasible via {b}"),
            Feasibility::Infeasible(r) => write!(f, "infeasible: {r}"),
        }
    }
}

/// Decides Theorem 4 for the given attributes.
///
/// # Example
///
/// ```
/// use rvz_model::{feasibility, Chirality, Feasibility, RobotAttributes, SymmetryBreaker};
///
/// // Mirrored robot with same speed and clock: infeasible regardless of φ.
/// let mirror = RobotAttributes::reference()
///     .with_chirality(Chirality::Mirrored)
///     .with_orientation(2.0);
/// assert!(!feasibility(&mirror).is_feasible());
///
/// // ... but give it a different clock and the clock wins:
/// let fixed = mirror.with_time_unit(0.5);
/// assert_eq!(
///     feasibility(&fixed),
///     Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks)
/// );
/// ```
pub fn feasibility(attrs: &RobotAttributes) -> Feasibility {
    if attrs.time_unit() != 1.0 {
        return Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks);
    }
    if attrs.speed() != 1.0 {
        return Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds);
    }
    match attrs.chirality() {
        Chirality::Consistent => {
            if attrs.orientation() != 0.0 {
                Feasibility::Feasible(SymmetryBreaker::OrientationOffset)
            } else {
                Feasibility::Infeasible(InfeasibleReason::IdenticalTwins)
            }
        }
        Chirality::Mirrored => Feasibility::Infeasible(InfeasibleReason::MirrorTwins {
            orientation: attrs.orientation(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Mat2;
    use std::f64::consts::PI;

    #[test]
    fn identical_twins_are_infeasible() {
        let verdict = feasibility(&RobotAttributes::reference());
        assert_eq!(
            verdict,
            Feasibility::Infeasible(InfeasibleReason::IdenticalTwins)
        );
        assert!(!verdict.is_feasible());
    }

    #[test]
    fn each_single_difference_is_feasible() {
        let clock = RobotAttributes::reference().with_time_unit(0.5);
        assert_eq!(
            feasibility(&clock),
            Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks)
        );
        let speed = RobotAttributes::reference().with_speed(2.0);
        assert_eq!(
            feasibility(&speed),
            Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds)
        );
        let orient = RobotAttributes::reference().with_orientation(1.0);
        assert_eq!(
            feasibility(&orient),
            Feasibility::Feasible(SymmetryBreaker::OrientationOffset)
        );
    }

    #[test]
    fn mirrored_without_other_breakers_is_infeasible_for_all_phi() {
        for phi in [0.0, 0.5, PI, 5.0] {
            let attrs = RobotAttributes::reference()
                .with_chirality(Chirality::Mirrored)
                .with_orientation(phi);
            let verdict = feasibility(&attrs);
            assert!(
                matches!(
                    verdict,
                    Feasibility::Infeasible(InfeasibleReason::MirrorTwins { .. })
                ),
                "φ={phi} should be infeasible, got {verdict}"
            );
        }
    }

    #[test]
    fn clock_difference_rescues_mirror_twins() {
        let attrs = RobotAttributes::reference()
            .with_chirality(Chirality::Mirrored)
            .with_time_unit(0.3);
        assert!(feasibility(&attrs).is_feasible());
    }

    #[test]
    fn speed_difference_rescues_mirror_twins() {
        let attrs = RobotAttributes::reference()
            .with_chirality(Chirality::Mirrored)
            .with_speed(0.9);
        assert_eq!(
            feasibility(&attrs),
            Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds)
        );
    }

    #[test]
    fn breaker_priority_is_clock_speed_orientation() {
        let all = RobotAttributes::new(0.5, 0.5, 1.0, Chirality::Consistent);
        assert_eq!(
            feasibility(&all),
            Feasibility::Feasible(SymmetryBreaker::AsymmetricClocks)
        );
        let speed_and_orient = RobotAttributes::new(0.5, 1.0, 1.0, Chirality::Consistent);
        assert_eq!(
            feasibility(&speed_and_orient),
            Feasibility::Feasible(SymmetryBreaker::DifferentSpeeds)
        );
    }

    /// The invariant direction really is invariant: for mirror twins the
    /// matrix T∘ = I − Rot(φ)·Refl(−1) maps every vector orthogonally to û.
    #[test]
    fn mirror_invariant_direction_annihilates_relative_motion() {
        for phi in [0.0, 0.4, 1.0, PI, 4.5] {
            let reason = InfeasibleReason::MirrorTwins { orientation: phi };
            let u = reason.invariant_direction();
            let t_circ = Mat2::IDENTITY - Mat2::rotation(phi) * Mat2::chirality_reflection(-1.0);
            // Every column of T∘ must be orthogonal to û.
            assert!(t_circ.col0().dot(u).abs() < 1e-12, "φ={phi}");
            assert!(t_circ.col1().dot(u).abs() < 1e-12, "φ={phi}");
            assert!((u.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identical_twins_direction_is_unit() {
        assert_eq!(
            InfeasibleReason::IdenticalTwins.invariant_direction(),
            Vec2::UNIT_X
        );
    }

    #[test]
    fn displays_are_informative() {
        assert!(feasibility(&RobotAttributes::reference())
            .to_string()
            .contains("identical twins"));
        assert!(SymmetryBreaker::AsymmetricClocks.to_string().contains("τ"));
        let mirror = InfeasibleReason::MirrorTwins { orientation: 1.0 };
        assert!(mirror.to_string().contains("mirror"));
    }
}
