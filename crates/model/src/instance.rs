//! Concrete problem instances for search and rendezvous.
//!
//! An *instance* fixes the quantities the robots do **not** know: the
//! initial offset `d⃗`, the visibility radius `r`, and (for rendezvous)
//! the other robot's attributes. The simulator consumes instances; the
//! bound calculators in `rvz-core` consume the same instances so that
//! measured and predicted values always refer to identical parameters.

use crate::attributes::RobotAttributes;
use rvz_geometry::Vec2;
use std::fmt;

/// Validation failure for an instance.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// Visibility radius was zero, negative or non-finite.
    BadVisibility(f64),
    /// The offset/target vector was non-finite.
    BadOffset(Vec2),
    /// The robots (or robot and target) start at the same point, which the
    /// model excludes ("placed at different locations").
    CoincidentStart,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::BadVisibility(r) => {
                write!(f, "visibility radius must be positive and finite, got {r}")
            }
            InstanceError::BadOffset(d) => write!(f, "offset must be finite, got {d}"),
            InstanceError::CoincidentStart => {
                write!(f, "initial positions must differ (d > 0)")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A search problem: one robot at the origin, a stationary target at
/// `target`, visibility radius `visibility` (Section 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchInstance {
    target: Vec2,
    visibility: f64,
}

impl SearchInstance {
    /// Creates a validated search instance.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] when `visibility ≤ 0`, any value is
    /// non-finite, or the target coincides with the origin.
    pub fn new(target: Vec2, visibility: f64) -> Result<Self, InstanceError> {
        if !(visibility > 0.0 && visibility.is_finite()) {
            return Err(InstanceError::BadVisibility(visibility));
        }
        if !target.is_finite() {
            return Err(InstanceError::BadOffset(target));
        }
        if target == Vec2::ZERO {
            return Err(InstanceError::CoincidentStart);
        }
        Ok(SearchInstance { target, visibility })
    }

    /// The target position (the paper's `d⃗`).
    pub fn target(&self) -> Vec2 {
        self.target
    }

    /// The initial distance `d = |d⃗|`.
    pub fn distance(&self) -> f64 {
        self.target.norm()
    }

    /// The visibility radius `r`.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// The difficulty ratio `d²/r` that governs all of the paper's bounds.
    pub fn difficulty(&self) -> f64 {
        let d = self.distance();
        d * d / self.visibility
    }

    /// `true` when the target is already visible at time zero (`d ≤ r`).
    pub fn solved_at_start(&self) -> bool {
        self.distance() <= self.visibility
    }
}

/// A rendezvous problem: the reference robot `R` at the origin, robot `R'`
/// with `attributes` at `offset`, both with visibility `visibility`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RendezvousInstance {
    offset: Vec2,
    visibility: f64,
    attributes: RobotAttributes,
}

impl RendezvousInstance {
    /// Creates a validated rendezvous instance.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] when `visibility ≤ 0`, any value is
    /// non-finite, or the robots start at the same point.
    pub fn new(
        offset: Vec2,
        visibility: f64,
        attributes: RobotAttributes,
    ) -> Result<Self, InstanceError> {
        if !(visibility > 0.0 && visibility.is_finite()) {
            return Err(InstanceError::BadVisibility(visibility));
        }
        if !offset.is_finite() {
            return Err(InstanceError::BadOffset(offset));
        }
        if offset == Vec2::ZERO {
            return Err(InstanceError::CoincidentStart);
        }
        Ok(RendezvousInstance {
            offset,
            visibility,
            attributes,
        })
    }

    /// The initial offset `d⃗` from `R` to `R'`.
    pub fn offset(&self) -> Vec2 {
        self.offset
    }

    /// The initial distance `d = |d⃗|`.
    pub fn distance(&self) -> f64 {
        self.offset.norm()
    }

    /// The visibility radius `r`.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// The attributes of robot `R'` relative to `R`.
    pub fn attributes(&self) -> &RobotAttributes {
        &self.attributes
    }

    /// The difficulty ratio `d²/r`.
    pub fn difficulty(&self) -> f64 {
        let d = self.distance();
        d * d / self.visibility
    }

    /// `true` when the robots already see each other at time zero.
    pub fn solved_at_start(&self) -> bool {
        self.distance() <= self.visibility
    }

    /// The search instance a stationary `R'` would induce: `R` searching
    /// for a target at `offset` — the reduction used throughout Section 4.
    pub fn as_stationary_search(&self) -> SearchInstance {
        SearchInstance {
            target: self.offset,
            visibility: self.visibility,
        }
    }
}

impl fmt::Display for RendezvousInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d={:.4}, r={:.4}, {}",
            self.distance(),
            self.visibility,
            self.attributes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Chirality;

    #[test]
    fn valid_search_instance() {
        let s = SearchInstance::new(Vec2::new(3.0, 4.0), 0.5).unwrap();
        assert_eq!(s.distance(), 5.0);
        assert_eq!(s.visibility(), 0.5);
        assert_eq!(s.difficulty(), 50.0);
        assert!(!s.solved_at_start());
    }

    #[test]
    fn search_solved_at_start_when_d_le_r() {
        let s = SearchInstance::new(Vec2::new(0.1, 0.0), 0.5).unwrap();
        assert!(s.solved_at_start());
    }

    #[test]
    fn search_validation_errors() {
        assert_eq!(
            SearchInstance::new(Vec2::UNIT_X, 0.0),
            Err(InstanceError::BadVisibility(0.0))
        );
        assert!(matches!(
            SearchInstance::new(Vec2::UNIT_X, f64::NAN),
            Err(InstanceError::BadVisibility(r)) if r.is_nan()
        ));
        assert_eq!(
            SearchInstance::new(Vec2::new(f64::INFINITY, 0.0), 1.0),
            Err(InstanceError::BadOffset(Vec2::new(f64::INFINITY, 0.0)))
        );
        assert_eq!(
            SearchInstance::new(Vec2::ZERO, 1.0),
            Err(InstanceError::CoincidentStart)
        );
    }

    #[test]
    fn rendezvous_instance_accessors() {
        let attrs = RobotAttributes::new(0.5, 1.0, 0.0, Chirality::Consistent);
        let inst = RendezvousInstance::new(Vec2::new(0.0, 2.0), 0.25, attrs).unwrap();
        assert_eq!(inst.distance(), 2.0);
        assert_eq!(inst.difficulty(), 16.0);
        assert_eq!(inst.attributes().speed(), 0.5);
        assert!(!inst.solved_at_start());
    }

    #[test]
    fn rendezvous_validation_errors() {
        let attrs = RobotAttributes::reference();
        assert!(matches!(
            RendezvousInstance::new(Vec2::UNIT_X, -1.0, attrs),
            Err(InstanceError::BadVisibility(_))
        ));
        assert!(matches!(
            RendezvousInstance::new(Vec2::ZERO, 1.0, attrs),
            Err(InstanceError::CoincidentStart)
        ));
    }

    #[test]
    fn stationary_search_reduction_shares_parameters() {
        let attrs = RobotAttributes::reference().with_time_unit(0.5);
        let inst = RendezvousInstance::new(Vec2::new(1.0, 1.0), 0.1, attrs).unwrap();
        let search = inst.as_stationary_search();
        assert_eq!(search.target(), inst.offset());
        assert_eq!(search.visibility(), inst.visibility());
        assert_eq!(search.difficulty(), inst.difficulty());
    }

    #[test]
    fn error_display() {
        assert!(InstanceError::BadVisibility(0.0)
            .to_string()
            .contains("positive"));
        assert!(InstanceError::CoincidentStart
            .to_string()
            .contains("differ"));
    }
}
