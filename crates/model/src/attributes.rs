//! Robot attributes and the Lemma 4 reference-frame map.

use rvz_geometry::{normalize_angle, Mat2, Vec2};
use rvz_trajectory::FrameWarp;
use std::fmt;

/// Whether a robot's `+y` axis agrees with the global frame.
///
/// The paper's `χ = ±1`: [`Chirality::Consistent`] is `+1`,
/// [`Chirality::Mirrored`] is `−1` (the robot's trajectory is reflected
/// about its local x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Chirality {
    /// `χ = +1`: both robots agree on counter-clockwise.
    #[default]
    Consistent,
    /// `χ = −1`: the robots disagree on the `+y` direction.
    Mirrored,
}

impl Chirality {
    /// The paper's numeric `χ ∈ {+1, −1}`.
    pub fn sign(self) -> f64 {
        match self {
            Chirality::Consistent => 1.0,
            Chirality::Mirrored => -1.0,
        }
    }

    /// The reflection matrix `diag(1, χ)`.
    pub fn reflection(self) -> Mat2 {
        Mat2::chirality_reflection(self.sign())
    }
}

impl fmt::Display for Chirality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chirality::Consistent => write!(f, "+1"),
            Chirality::Mirrored => write!(f, "-1"),
        }
    }
}

/// The hidden attributes of the non-reference robot `R'`, expressed
/// relative to the reference robot `R` (which has speed 1, time unit 1,
/// orientation 0 and chirality +1 WLOG, Section 1.1 of the paper).
///
/// Build with [`RobotAttributes::reference`] plus the `with_*` methods:
///
/// ```
/// use rvz_model::{Chirality, RobotAttributes};
///
/// let attrs = RobotAttributes::reference()
///     .with_speed(0.75)
///     .with_time_unit(0.5)
///     .with_orientation(1.2)
///     .with_chirality(Chirality::Mirrored);
/// assert_eq!(attrs.speed(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobotAttributes {
    speed: f64,
    time_unit: f64,
    orientation: f64,
    chirality: Chirality,
}

impl RobotAttributes {
    /// The reference frame: `v = τ = 1`, `φ = 0`, `χ = +1`.
    pub fn reference() -> Self {
        RobotAttributes {
            speed: 1.0,
            time_unit: 1.0,
            orientation: 0.0,
            chirality: Chirality::Consistent,
        }
    }

    /// Creates attributes from all four parameters at once.
    ///
    /// # Panics
    ///
    /// Panics when `speed ≤ 0`, `time_unit ≤ 0`, or either is non-finite.
    /// `orientation` is normalized into `[0, 2π)`.
    pub fn new(speed: f64, time_unit: f64, orientation: f64, chirality: Chirality) -> Self {
        RobotAttributes::reference()
            .with_speed(speed)
            .with_time_unit(time_unit)
            .with_orientation(orientation)
            .with_chirality(chirality)
    }

    /// Sets the movement speed `v > 0`.
    ///
    /// # Panics
    ///
    /// Panics when `speed` is not positive and finite.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(
            speed > 0.0 && speed.is_finite(),
            "speed must be positive and finite, got {speed}"
        );
        self.speed = speed;
        self
    }

    /// Sets the clock time-unit `τ > 0` (one local time unit lasts `τ`
    /// global time units).
    ///
    /// # Panics
    ///
    /// Panics when `time_unit` is not positive and finite.
    pub fn with_time_unit(mut self, time_unit: f64) -> Self {
        assert!(
            time_unit > 0.0 && time_unit.is_finite(),
            "time unit must be positive and finite, got {time_unit}"
        );
        self.time_unit = time_unit;
        self
    }

    /// Sets the compass orientation `φ`, normalized into `[0, 2π)`.
    ///
    /// # Panics
    ///
    /// Panics when `orientation` is not finite.
    pub fn with_orientation(mut self, orientation: f64) -> Self {
        assert!(orientation.is_finite(), "orientation must be finite");
        self.orientation = normalize_angle(orientation);
        self
    }

    /// Sets the chirality `χ`.
    pub fn with_chirality(mut self, chirality: Chirality) -> Self {
        self.chirality = chirality;
        self
    }

    /// Movement speed `v`.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Clock time-unit `τ`.
    pub fn time_unit(&self) -> f64 {
        self.time_unit
    }

    /// Compass orientation `φ ∈ [0, 2π)`.
    pub fn orientation(&self) -> f64 {
        self.orientation
    }

    /// Chirality `χ`.
    pub fn chirality(&self) -> Chirality {
        self.chirality
    }

    /// `true` when these are exactly the reference attributes (an
    /// indistinguishable twin of `R`).
    pub fn is_reference(&self) -> bool {
        *self == RobotAttributes::reference()
    }

    /// The Lemma 4 matrix `v·Rot(φ)·Refl(χ)`, i.e. the linear part of the
    /// frame map **per local time unit scale** (without the clock's `τ`
    /// distance-unit factor).
    ///
    /// With symmetric clocks (`τ = 1`) the robot `R'` executing the common
    /// trajectory `S(t)` follows exactly `d⃗ + lemma4_matrix()·S(t)`.
    pub fn lemma4_matrix(&self) -> Mat2 {
        self.speed * (Mat2::rotation(self.orientation) * self.chirality.reflection())
    }

    /// The full linear part of the global-frame map, `(v·τ)·Rot(φ)·Refl(χ)`.
    ///
    /// The `v·τ` factor is the robot's own distance unit — the product of
    /// its speed and its time unit (Section 1.1) — so that traversing one
    /// local distance unit takes one local clock unit.
    pub fn frame_linear(&self) -> Mat2 {
        (self.speed * self.time_unit)
            * (Mat2::rotation(self.orientation) * self.chirality.reflection())
    }

    /// Wraps the common algorithm trajectory into this robot's frame,
    /// starting from `start`: the robot's global-time position is
    /// `start + frame_linear()·S(t/τ)` (Lemma 4, generalized to `τ ≠ 1`).
    ///
    /// ```
    /// use rvz_model::RobotAttributes;
    /// use rvz_trajectory::{PathBuilder, Trajectory};
    /// use rvz_geometry::Vec2;
    ///
    /// let algo = PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build();
    /// let attrs = RobotAttributes::reference().with_speed(0.5);
    /// let robot = attrs.frame_warp(algo, Vec2::new(3.0, 0.0));
    /// // After the (local and global) unit of time it has moved 0.5 right.
    /// assert_eq!(robot.position(1.0), Vec2::new(3.5, 0.0));
    /// ```
    pub fn frame_warp<T>(&self, algorithm: T, start: Vec2) -> FrameWarp<T> {
        FrameWarp::new(algorithm, self.frame_linear(), start, self.time_unit)
    }

    /// The symmetry-breaking factor `µ = √(v² − 2v·cos φ + 1)` from
    /// Theorem 2 / Lemma 5.
    ///
    /// `µ` is the operator that scales the equivalent search trajectory
    /// when chiralities agree; `µ = 0` exactly when `v = 1 ∧ φ = 0`.
    pub fn mu(&self) -> f64 {
        let v = self.speed;
        (v * v - 2.0 * v * self.orientation.cos() + 1.0)
            .max(0.0)
            .sqrt()
    }
}

impl Default for RobotAttributes {
    fn default() -> Self {
        RobotAttributes::reference()
    }
}

impl fmt::Display for RobotAttributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "v={}, τ={}, φ={:.4}, χ={}",
            self.speed, self.time_unit, self.orientation, self.chirality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use rvz_trajectory::{PathBuilder, Trajectory};
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn reference_is_identity_frame() {
        let r = RobotAttributes::reference();
        assert!(r.is_reference());
        assert_eq!(r.lemma4_matrix(), Mat2::IDENTITY);
        assert_eq!(r.frame_linear(), Mat2::IDENTITY);
        assert_eq!(r.mu(), 0.0);
    }

    #[test]
    fn builder_methods_set_fields() {
        let a = RobotAttributes::new(0.5, 2.0, PI, Chirality::Mirrored);
        assert_eq!(a.speed(), 0.5);
        assert_eq!(a.time_unit(), 2.0);
        assert_eq!(a.orientation(), PI);
        assert_eq!(a.chirality(), Chirality::Mirrored);
        assert!(!a.is_reference());
    }

    #[test]
    fn orientation_is_normalized() {
        let a = RobotAttributes::reference().with_orientation(-FRAC_PI_2);
        assert_approx_eq!(a.orientation(), 3.0 * FRAC_PI_2);
        let b = RobotAttributes::reference().with_orientation(2.0 * PI);
        assert_eq!(b.orientation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = RobotAttributes::reference().with_speed(0.0);
    }

    #[test]
    #[should_panic(expected = "time unit must be positive")]
    fn negative_time_unit_rejected() {
        let _ = RobotAttributes::reference().with_time_unit(-1.0);
    }

    #[test]
    fn lemma4_matrix_matches_paper_form() {
        // Paper, Lemma 4: S'(t) = [v cosφ, −vχ sinφ; v sinφ, vχ cosφ]·S(t).
        let v = 0.7;
        let phi = 1.3;
        for (chi, chi_sign) in [(Chirality::Consistent, 1.0), (Chirality::Mirrored, -1.0)] {
            let a = RobotAttributes::new(v, 1.0, phi, chi);
            let m = a.lemma4_matrix();
            let expected = Mat2::new(
                v * phi.cos(),
                -v * chi_sign * phi.sin(),
                v * phi.sin(),
                v * chi_sign * phi.cos(),
            );
            assert!((m - expected).frobenius_norm() < 1e-14);
        }
    }

    #[test]
    fn frame_linear_includes_distance_unit() {
        let a = RobotAttributes::new(0.5, 4.0, 0.0, Chirality::Consistent);
        assert_eq!(a.frame_linear(), Mat2::scaling(2.0));
    }

    #[test]
    fn mu_known_values() {
        // v = 1, φ = π: µ = √(1 + 2 + 1) = 2.
        let a = RobotAttributes::reference().with_orientation(PI);
        assert_approx_eq!(a.mu(), 2.0);
        // v = 1, φ = π/2: µ = √2.
        let b = RobotAttributes::reference().with_orientation(FRAC_PI_2);
        assert_approx_eq!(b.mu(), 2.0_f64.sqrt());
        // φ = 0: µ = |1 − v|.
        let c = RobotAttributes::reference().with_speed(0.25);
        assert_approx_eq!(c.mu(), 0.75);
    }

    #[test]
    fn frame_warp_respects_clock_and_speed() {
        // Unit-leg algorithm; v = 2, τ = 0.5: distance unit vτ = 1, so the
        // robot covers 1 global distance in 0.5 global time (speed 2).
        let algo = PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_X).build();
        let a = RobotAttributes::reference()
            .with_speed(2.0)
            .with_time_unit(0.5);
        let w = a.frame_warp(algo, Vec2::ZERO);
        assert_eq!(w.position(0.5), Vec2::UNIT_X);
        assert_approx_eq!(w.speed_bound(), 2.0);
        assert_eq!(w.duration(), Some(0.5));
    }

    #[test]
    fn mirrored_warp_reflects_y() {
        let algo = PathBuilder::at(Vec2::ZERO).line_to(Vec2::UNIT_Y).build();
        let a = RobotAttributes::reference().with_chirality(Chirality::Mirrored);
        let w = a.frame_warp(algo, Vec2::ZERO);
        assert!((w.position(1.0) + Vec2::UNIT_Y).norm() < 1e-15);
    }

    #[test]
    fn display_is_informative() {
        let a = RobotAttributes::new(0.5, 2.0, 1.0, Chirality::Mirrored);
        let s = a.to_string();
        assert!(s.contains("v=0.5") && s.contains("τ=2") && s.contains("χ=-1"));
    }
}
