//! # rvz-model
//!
//! The problem model of the paper: robot attributes, reference frames, and
//! the feasibility characterization of Theorem 4.
//!
//! Two anonymous robots are dropped at unknown positions in the plane.
//! Each carries four hidden attributes relative to the (WLOG) reference
//! robot `R`: a movement speed `v`, a clock time-unit `τ`, a compass
//! orientation `φ` and a chirality `χ` ([`RobotAttributes`]). Neither
//! robot knows its own or the other's attributes; the attributes act only
//! through the frame map of Lemma 4, which [`RobotAttributes::frame_warp`]
//! constructs.
//!
//! The central feasibility question — *for which attribute combinations
//! can any deterministic symmetric algorithm achieve rendezvous?* — is
//! answered by Theorem 4 and implemented by [`feasibility`]:
//!
//! > Rendezvous is feasible **iff** `τ ≠ 1`, or `v ≠ 1`, or
//! > (`χ = +1` and `0 < φ < 2π`).
//!
//! ## Example
//!
//! ```
//! use rvz_model::{RobotAttributes, feasibility, Feasibility};
//!
//! let slow = RobotAttributes::reference().with_speed(0.5);
//! assert!(matches!(feasibility(&slow), Feasibility::Feasible(_)));
//!
//! let twin = RobotAttributes::reference();
//! assert!(matches!(feasibility(&twin), Feasibility::Infeasible(_)));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod attributes;
pub mod instance;
pub mod predicate;

pub use attributes::{Chirality, RobotAttributes};
pub use instance::{InstanceError, RendezvousInstance, SearchInstance};
pub use predicate::{feasibility, Feasibility, InfeasibleReason, SymmetryBreaker};
