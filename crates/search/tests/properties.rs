//! Property-based tests for the search schedule and its closed-form
//! indexing — the foundation every other crate relies on.

use proptest::prelude::*;
use rvz_geometry::Vec2;
use rvz_model::SearchInstance;
use rvz_search::{first_discovery, times, RoundSchedule, SubRound, UniversalSearch};
use rvz_trajectory::Trajectory;

fn round_strategy() -> impl Strategy<Value = u32> {
    1u32..=8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dyadic invariant δ²/ρ = 2^{k+1} holds for every sub-round.
    #[test]
    fn granularity_invariant(k in 1u32..=times::MAX_ROUND) {
        for j in 0..2 * k {
            let sub = SubRound::new(k, j);
            let ratio = sub.inner_radius() * sub.inner_radius() / sub.granularity();
            let expected = (k as f64 + 1.0).exp2();
            prop_assert!((ratio - expected).abs() <= 1e-9 * expected);
        }
    }

    /// Circle radii are increasing and end exactly at the outer radius.
    #[test]
    fn circle_radii_cover_annulus(k in 1u32..=10, j_frac in 0.0..1.0f64) {
        let j = ((2 * k) as f64 * j_frac) as u32;
        let j = j.min(2 * k - 1);
        let sub = SubRound::new(k, j);
        let count = sub.circle_count();
        prop_assert_eq!(sub.circle_radius(0), sub.inner_radius());
        prop_assert_eq!(sub.circle_radius(count - 1), sub.outer_radius());
        // Spacing is exactly 2ρ.
        let spacing = sub.circle_radius(1) - sub.circle_radius(0);
        prop_assert!((spacing - 2.0 * sub.granularity()).abs() < 1e-15);
    }

    /// circle_index_at inverts circle_start on random times.
    #[test]
    fn circle_index_inverts_start(k in 1u32..=12, j_frac in 0.0..1.0f64, w_frac in 0.0..1.0f64) {
        let j = (((2 * k) as f64 * j_frac) as u32).min(2 * k - 1);
        let sub = SubRound::new(k, j);
        let w = w_frac * sub.duration() * (1.0 - 1e-12);
        let i = sub.circle_index_at(w);
        prop_assert!(sub.circle_start(i) <= w);
        prop_assert!(w < sub.circle_start(i + 1));
    }

    /// The closed-form segment lookup agrees with a locally reconstructed
    /// segment at random times (beyond what the small-k stream test covers).
    #[test]
    fn segment_lookup_is_consistent(k in 1u32..=14, u_frac in 0.0..1.0f64) {
        let round = RoundSchedule::new(k);
        let u = u_frac * round.duration() * (1.0 - 1e-12);
        let (start, seg) = round.segment_at(u);
        prop_assert!(start <= u);
        prop_assert!(u <= start + seg.duration() + 1e-9);
        // The segment endpoints lie on the origin or the circle radius.
        let pos = seg.position_at(u - start);
        prop_assert!(pos.is_finite());
    }

    /// Sequential positions never exceed unit speed at random offsets
    /// deep into the schedule (round ≤ 14 ⇒ times up to ~1e7).
    #[test]
    fn deep_positions_respect_speed(t0 in 0.0..1e6f64, dt in 1e-6..10.0f64) {
        let s = UniversalSearch;
        let p0 = s.position(t0);
        let p1 = s.position(t0 + dt);
        prop_assert!(p0.distance(p1) <= dt * (1.0 + 1e-9) + 1e-9);
    }

    /// Radial reach: at time t the robot is within the outer radius of
    /// the current round (plus nothing) — it never teleports outward.
    #[test]
    fn radial_reach_bounded_by_round(t in 0.0..1e6f64) {
        let s = UniversalSearch;
        let k = UniversalSearch::round_at(t);
        let max_radius = times::outer_radius(k, 2 * k - 1);
        prop_assert!(s.position(t).norm() <= max_radius + 1e-9);
    }

    /// Discovery monotonicity: enlarging the visibility radius can only
    /// make discovery (weakly) earlier.
    #[test]
    fn discovery_monotone_in_visibility(
        x in -2.0..2.0f64,
        y in 0.1..2.0f64,
        r_small in 0.001..0.01f64,
        factor in 1.5..20.0f64,
    ) {
        let p = Vec2::new(x, y);
        let r_big = (r_small * factor).min(p.norm() * 0.9);
        prop_assume!(r_big > r_small);
        let small = first_discovery(&SearchInstance::new(p, r_small).unwrap(), 20);
        let big = first_discovery(&SearchInstance::new(p, r_big).unwrap(), 20);
        if let (Some(s), Some(b)) = (small, big) {
            prop_assert!(
                b.time <= s.time + 1e-9,
                "larger r later: {} vs {}",
                b.time,
                s.time
            );
        }
    }

    /// Discovery reported by the oracle is a true contact on the
    /// trajectory (validity for random instances).
    #[test]
    fn discovery_is_a_true_contact(
        x in -2.0..2.0f64,
        y in -2.0..2.0f64,
        rexp in -8.0..-3.0f64,
    ) {
        let p = Vec2::new(x, y);
        prop_assume!(p.norm() > 1e-2);
        let r = rexp.exp2();
        let inst = SearchInstance::new(p, r).unwrap();
        if let Some(found) = first_discovery(&inst, 16) {
            let s = UniversalSearch;
            let dist = s.position(found.time).distance(p);
            prop_assert!(dist <= r + 1e-9, "distance {dist} > r {r} at reported time");
        }
    }

    /// Round boundaries of Algorithm 4 partition time.
    #[test]
    fn round_at_partition(k in round_strategy(), frac in 0.0..1.0f64) {
        let start = UniversalSearch::round_start(k);
        let end = UniversalSearch::round_start(k + 1);
        let t = start + frac * (end - start) * (1.0 - 1e-12);
        prop_assert_eq!(UniversalSearch::round_at(t), k);
    }
}
