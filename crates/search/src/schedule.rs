//! Closed-form indexing into the dyadic search schedule.
//!
//! `Search(k)` (Algorithm 3) traverses, for each sub-round `j < 2k`, the
//! circles of radius `δ_{j,k} + 2iρ_{j,k}` for `i = 0…2^{2k−j}` — about
//! `4^k` segments per round. [`SubRound`] and [`RoundSchedule`] expose
//! that structure *without materializing it*: every circle radius, start
//! time and index is an exact closed form, and the segment active at any
//! local time is found by binary search over those closed forms.

use crate::times;
use rvz_geometry::Vec2;

use rvz_trajectory::Segment;

/// One annulus sweep: sub-round `j` of `Search(k)`.
///
/// # Example
///
/// ```
/// use rvz_search::SubRound;
///
/// let sub = SubRound::new(3, 2); // k = 3, j = 2
/// assert_eq!(sub.inner_radius(), 0.5);
/// assert_eq!(sub.outer_radius(), 1.0);
/// assert_eq!(sub.circle_count(), 17); // 2^{2·3−2} + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubRound {
    k: u32,
    j: u32,
}

impl SubRound {
    /// Creates the sub-round `j` of round `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ MAX_ROUND` and `j < 2k`.
    pub fn new(k: u32, j: u32) -> Self {
        // Validation is delegated to the times module.
        let _ = times::inner_radius(k, j);
        SubRound { k, j }
    }

    /// The round index `k`.
    pub fn round(&self) -> u32 {
        self.k
    }

    /// The sub-round index `j`.
    pub fn index(&self) -> u32 {
        self.j
    }

    /// Inner radius `δ_{j,k} = 2^{j−k}`.
    pub fn inner_radius(&self) -> f64 {
        times::inner_radius(self.k, self.j)
    }

    /// Outer radius `δ_{j+1,k} = 2^{j−k+1}`.
    pub fn outer_radius(&self) -> f64 {
        times::outer_radius(self.k, self.j)
    }

    /// Granularity `ρ_{j,k} = 2^{2j−3k−1}`.
    pub fn granularity(&self) -> f64 {
        times::granularity(self.k, self.j)
    }

    /// Number of circles traversed: `m + 1` with `m = 2^{2k−j}` (the
    /// dyadic parameters make the paper's ceiling exact).
    pub fn circle_count(&self) -> u64 {
        (1_u64 << (2 * self.k - self.j)) + 1
    }

    /// Radius of circle `i`: `δ_{j,k} + 2iρ_{j,k}`.
    ///
    /// # Panics
    ///
    /// Panics when `i ≥ circle_count()`.
    pub fn circle_radius(&self, i: u64) -> f64 {
        assert!(i < self.circle_count(), "circle index {i} out of range");
        self.inner_radius() + 2.0 * i as f64 * self.granularity()
    }

    /// Local start time of circle `i` within this sub-round:
    /// `Σ_{l<i} 2(π+1)·radius(l) = 2(π+1)(i·δ + i(i−1)ρ)`.
    ///
    /// `i = circle_count()` is allowed and yields the sub-round duration.
    pub fn circle_start(&self, i: u64) -> f64 {
        assert!(i <= self.circle_count(), "circle index {i} out of range");
        let i = i as f64;
        2.0 * times::PI_PLUS_1 * (i * self.inner_radius() + i * (i - 1.0) * self.granularity())
    }

    /// Duration of this sub-round, `3(π+1)(2^{j−k} + 2^k)`.
    pub fn duration(&self) -> f64 {
        times::subround_duration(self.k, self.j)
    }

    /// Local start time of this sub-round within its round.
    pub fn start_within_round(&self) -> f64 {
        times::subround_start(self.k, self.j)
    }

    /// The circle being traversed at local sub-round time `w`, by binary
    /// search over the closed-form [`SubRound::circle_start`] times.
    ///
    /// # Panics
    ///
    /// Panics when `w` is negative or at/after the sub-round's end.
    pub fn circle_index_at(&self, w: f64) -> u64 {
        assert!(
            w >= 0.0 && w < self.duration(),
            "local time {w} outside sub-round of duration {}",
            self.duration()
        );
        let mut lo = 0_u64;
        let mut hi = self.circle_count() - 1;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.circle_start(mid) <= w {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// The full `Search(k)` schedule: `2k` sub-rounds followed by a wait.
///
/// # Example
///
/// ```
/// use rvz_search::RoundSchedule;
/// use rvz_trajectory::Segment;
///
/// let round = RoundSchedule::new(2);
/// // At local time 0 the robot is heading out to the innermost circle.
/// let (start, seg) = round.segment_at(0.0);
/// assert_eq!(start, 0.0);
/// assert!(matches!(seg, Segment::Line { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoundSchedule {
    k: u32,
}

/// Which leg of a `SearchCircle` traversal is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircleLeg {
    /// Moving from the origin out to `(δ, 0)`.
    Outbound,
    /// Traversing the circle counter-clockwise.
    Sweep,
    /// Returning from `(δ, 0)` to the origin.
    Inbound,
}

/// Introspective position within a round (see [`RoundSchedule::locate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundPhase {
    /// Inside sub-round `j`, circle `i`, on the given leg.
    SubRound {
        /// Sub-round index `j < 2k`.
        j: u32,
        /// Circle index within the sub-round.
        circle: u64,
        /// Radius of that circle.
        radius: f64,
        /// Which third of the SearchCircle traversal.
        leg: CircleLeg,
    },
    /// The terminal wait at the origin.
    Wait,
}

impl RoundSchedule {
    /// Creates the schedule for `Search(k)`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ MAX_ROUND`.
    pub fn new(k: u32) -> Self {
        let _ = times::round_duration(k);
        RoundSchedule { k }
    }

    /// The round index `k`.
    pub fn round(&self) -> u32 {
        self.k
    }

    /// Total round duration `3(π+1)(k+1)·2^{k+1}`.
    pub fn duration(&self) -> f64 {
        times::round_duration(self.k)
    }

    /// Start of the terminal wait (= total duration of the `2k` sub-rounds).
    pub fn wait_start(&self) -> f64 {
        times::subround_start(self.k, 2 * self.k)
    }

    /// The sub-round active at local round time `u`, or `None` during the
    /// terminal wait.
    ///
    /// # Panics
    ///
    /// Panics when `u` is negative or at/after the round's end.
    pub fn subround_index_at(&self, u: f64) -> Option<u32> {
        assert!(
            u >= 0.0 && u < self.duration(),
            "local time {u} outside round of duration {}",
            self.duration()
        );
        if u >= self.wait_start() {
            return None;
        }
        // Binary search over the closed-form sub-round start times.
        let mut lo = 0_u32;
        let mut hi = 2 * self.k - 1;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if times::subround_start(self.k, mid) <= u {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(lo)
    }

    /// The segment active at local round time `u ∈ [0, duration)`, with
    /// its local start time. The segment geometry is identical to what the
    /// explicit stream ([`RoundSchedule::segments`]) produces at that
    /// time, but found in `O(log)` instead of by enumeration.
    pub fn segment_at(&self, u: f64) -> (f64, Segment) {
        match self.subround_index_at(u) {
            None => {
                let start = self.wait_start();
                (start, Segment::wait(Vec2::ZERO, times::round_wait(self.k)))
            }
            Some(j) => {
                let sub = SubRound::new(self.k, j);
                let sub_start = sub.start_within_round();
                let w = u - sub_start;
                let i = sub.circle_index_at(w);
                let circle_start = sub_start + sub.circle_start(i);
                let radius = sub.circle_radius(i);
                let x = u - circle_start;
                let tau = std::f64::consts::TAU;
                if x < radius {
                    (
                        circle_start,
                        Segment::line(Vec2::ZERO, Vec2::new(radius, 0.0)),
                    )
                } else if x < radius + radius * tau {
                    (
                        circle_start + radius,
                        Segment::full_circle(Vec2::ZERO, radius, 0.0),
                    )
                } else {
                    (
                        circle_start + radius + radius * tau,
                        Segment::line(Vec2::new(radius, 0.0), Vec2::ZERO),
                    )
                }
            }
        }
    }

    /// The largest radius swept anywhere in this round:
    /// `δ_{2k,k} = 2^k` (the outer radius of the last sub-round).
    pub fn max_radius(&self) -> f64 {
        times::outer_radius(self.k, 2 * self.k - 1)
    }

    /// An upper bound on the robot's distance from the origin over the
    /// whole local interval `[0, u]` — the round level of the
    /// swept-envelope hierarchy.
    ///
    /// Exactness comes from the schedule's monotone structure: circle
    /// radii are non-decreasing within a sub-round, and each sub-round's
    /// first circle equals the previous sub-round's outer radius, so the
    /// radius of the circle active at `u` bounds everything before it
    /// (legs and waits stay inside it: every `SearchCircle(δ)` traversal
    /// is contained in the disk of radius `δ` around the origin).
    ///
    /// `u` is clamped to the round; at/after the terminal wait this is
    /// [`RoundSchedule::max_radius`]. Cost: the two closed-form binary
    /// searches of [`RoundSchedule::segment_at`], no enumeration.
    pub fn reach(&self, u: f64) -> f64 {
        if u < 0.0 {
            return 0.0;
        }
        let u = u.min(self.duration() * (1.0 - f64::EPSILON));
        match self.subround_index_at(u) {
            None => self.max_radius(),
            Some(j) => {
                let sub = SubRound::new(self.k, j);
                sub.circle_radius(sub.circle_index_at(u - sub.start_within_round()))
            }
        }
    }

    /// Rich introspection of the phase active at local time `u`.
    pub fn locate(&self, u: f64) -> RoundPhase {
        match self.subround_index_at(u) {
            None => RoundPhase::Wait,
            Some(j) => {
                let sub = SubRound::new(self.k, j);
                let w = u - sub.start_within_round();
                let i = sub.circle_index_at(w);
                let radius = sub.circle_radius(i);
                let x = w - sub.circle_start(i);
                let leg = if x < radius {
                    CircleLeg::Outbound
                } else if x < radius * (1.0 + std::f64::consts::TAU) {
                    CircleLeg::Sweep
                } else {
                    CircleLeg::Inbound
                };
                RoundPhase::SubRound {
                    j,
                    circle: i,
                    radius,
                    leg,
                }
            }
        }
    }

    /// Explicit segment stream for this round (3 segments per circle plus
    /// the terminal wait). Θ(4^k) items — intended for tests and small `k`.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let k = self.k;
        (0..2 * k)
            .flat_map(move |j| {
                let sub = SubRound::new(k, j);
                (0..sub.circle_count()).flat_map(move |i| {
                    let radius = sub.circle_radius(i);
                    [
                        Segment::line(Vec2::ZERO, Vec2::new(radius, 0.0)),
                        Segment::full_circle(Vec2::ZERO, radius, 0.0),
                        Segment::line(Vec2::new(radius, 0.0), Vec2::ZERO),
                    ]
                })
            })
            .chain(std::iter::once(Segment::wait(
                Vec2::ZERO,
                times::round_wait(k),
            )))
    }
}

/// A forward-only pointer into one round's segment sequence.
///
/// The engine's cursors visit a round's segments *in order* (piece after
/// piece), yet [`RoundSchedule::segment_at`] re-runs its two binary
/// searches from scratch on every transition. `RoundCursor` caches the
/// `(sub-round, circle, leg)` coordinates of the active segment and hops
/// to the next leg/circle/sub-round in O(1) closed-form arithmetic,
/// falling back to the binary search only when a query leaps past
/// several segments at once. Every boundary it produces comes from the
/// same closed forms as `segment_at`, so the two agree bit-for-bit.
#[derive(Debug, Clone)]
pub struct RoundCursor {
    schedule: RoundSchedule,
    segment: Segment,
    /// Local [start, end) of the cached segment.
    start: f64,
    end: f64,
    /// Sub-round of the cached segment; `== 2k` once in the final wait.
    j: u32,
    /// Circle within the sub-round.
    i: u64,
    /// 0 = outbound leg, 1 = circle sweep, 2 = inbound leg.
    leg: u8,
    /// Local start of circle `i` (sub-round start + circle offset).
    circle_base: f64,
    radius: f64,
}

/// Sequential hops attempted before falling back to binary search.
const MAX_HOPS: u32 = 8;

impl RoundCursor {
    /// A cursor over `Search(k)`, positioned before the first segment.
    pub fn new(k: u32) -> Self {
        let mut cursor = RoundCursor {
            schedule: RoundSchedule::new(k),
            segment: Segment::wait(Vec2::ZERO, 0.0),
            start: 0.0,
            // Sentinel: the first query always refreshes.
            end: -1.0,
            j: 0,
            i: 0,
            leg: 0,
            circle_base: 0.0,
            radius: 0.0,
        };
        cursor.seek(0.0);
        cursor
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &RoundSchedule {
        &self.schedule
    }

    /// The segment active at local time `u ∈ [0, duration)` with its
    /// local start time — the forward-friendly [`RoundSchedule::segment_at`].
    ///
    /// Queries may move forward arbitrarily (backward queries within the
    /// cached segment are also fine); cost is O(1) per segment visited
    /// in order.
    pub fn segment_at(&mut self, u: f64) -> (f64, Segment) {
        if u >= self.end {
            let mut hops = 0;
            loop {
                if hops >= MAX_HOPS {
                    self.seek(u);
                    break;
                }
                self.hop();
                hops += 1;
                if u < self.end {
                    break;
                }
            }
        }
        (self.start, self.segment)
    }

    /// Rebuilds the cached coordinates via the binary searches.
    fn seek(&mut self, u: f64) {
        let k = self.schedule.round();
        match self.schedule.subround_index_at(u) {
            None => {
                self.j = 2 * k;
                self.set_wait();
            }
            Some(j) => {
                let sub = SubRound::new(k, j);
                let sub_start = sub.start_within_round();
                let i = sub.circle_index_at(u - sub_start);
                self.j = j;
                self.i = i;
                self.circle_base = sub_start + sub.circle_start(i);
                self.radius = sub.circle_radius(i);
                // The same floating-point boundary expressions as
                // `segment_at` (`r` then `r + r*tau`), so seek and the
                // binary search never disagree, even by an ulp.
                let x = u - self.circle_base;
                let tau = std::f64::consts::TAU;
                self.leg = if x < self.radius {
                    0
                } else if x < self.radius + self.radius * tau {
                    1
                } else {
                    2
                };
                self.set_leg();
            }
        }
    }

    /// Advances to the next segment in schedule order.
    fn hop(&mut self) {
        let k = self.schedule.round();
        if self.j >= 2 * k {
            // Already in (or past) the terminal wait: stay there.
            self.set_wait();
            return;
        }
        if self.leg < 2 {
            self.leg += 1;
            self.set_leg();
            return;
        }
        // Finished a circle: next circle, next sub-round, or the wait.
        let sub = SubRound::new(k, self.j);
        if self.i + 1 < sub.circle_count() {
            self.i += 1;
            self.circle_base = sub.start_within_round() + sub.circle_start(self.i);
            self.radius = sub.circle_radius(self.i);
        } else if self.j + 1 < 2 * k {
            self.j += 1;
            let next = SubRound::new(k, self.j);
            self.i = 0;
            self.circle_base = next.start_within_round();
            self.radius = next.circle_radius(0);
        } else {
            self.j = 2 * k;
            self.set_wait();
            return;
        }
        self.leg = 0;
        self.set_leg();
    }

    /// Installs the cached circle's current leg as the active segment.
    ///
    /// Start times use the *same floating-point expressions* as
    /// [`RoundSchedule::segment_at`] (left-associated sums off the
    /// circle base), so sequential hops agree with the binary search
    /// bit-for-bit.
    fn set_leg(&mut self) {
        let r = self.radius;
        let tau = std::f64::consts::TAU;
        let (start, duration, segment) = match self.leg {
            0 => (
                self.circle_base,
                r,
                Segment::line(Vec2::ZERO, Vec2::new(r, 0.0)),
            ),
            1 => (
                self.circle_base + r,
                r * tau,
                Segment::full_circle(Vec2::ZERO, r, 0.0),
            ),
            _ => (
                self.circle_base + r + r * tau,
                r,
                Segment::line(Vec2::new(r, 0.0), Vec2::ZERO),
            ),
        };
        self.segment = segment;
        self.start = start;
        self.end = start + duration;
    }

    /// Installs the terminal wait as the active segment.
    fn set_wait(&mut self) {
        let k = self.schedule.round();
        self.segment = Segment::wait(Vec2::ZERO, times::round_wait(k));
        self.start = self.schedule.wait_start();
        self.end = f64::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use rvz_numerics::KahanSum;

    #[test]
    fn subround_radii_match_times_module() {
        let sub = SubRound::new(4, 5);
        assert_eq!(sub.inner_radius(), times::inner_radius(4, 5));
        assert_eq!(sub.outer_radius(), times::outer_radius(4, 5));
        assert_eq!(sub.granularity(), times::granularity(4, 5));
        assert_eq!(sub.round(), 4);
        assert_eq!(sub.index(), 5);
    }

    #[test]
    fn circle_count_is_dyadic() {
        // m = 2^{2k−j} extra circles.
        assert_eq!(SubRound::new(1, 0).circle_count(), 5); // 2^2 + 1
        assert_eq!(SubRound::new(1, 1).circle_count(), 3); // 2^1 + 1
        assert_eq!(SubRound::new(3, 0).circle_count(), 65); // 2^6 + 1
    }

    #[test]
    fn last_circle_reaches_outer_radius() {
        for k in 1..=6 {
            for j in 0..2 * k {
                let sub = SubRound::new(k, j);
                let last = sub.circle_radius(sub.circle_count() - 1);
                // δ + 2mρ = δ + δ = 2δ = outer radius exactly.
                assert_eq!(last, sub.outer_radius(), "k={k} j={j}");
            }
        }
    }

    #[test]
    fn circle_starts_telescope() {
        let sub = SubRound::new(2, 1);
        let mut acc = KahanSum::new();
        for i in 0..sub.circle_count() {
            assert_approx_eq!(sub.circle_start(i), acc.value(), 1e-10);
            acc.add(times::search_circle_duration(sub.circle_radius(i)));
        }
        assert_approx_eq!(sub.circle_start(sub.circle_count()), sub.duration(), 1e-10);
        assert_approx_eq!(acc.value(), sub.duration(), 1e-10);
    }

    #[test]
    fn circle_index_binary_search_agrees_with_linear() {
        let sub = SubRound::new(3, 1);
        let dur = sub.duration();
        let mut w = 0.0;
        while w < dur {
            let fast = sub.circle_index_at(w);
            // Linear reference.
            let mut slow = 0;
            for i in 0..sub.circle_count() {
                if sub.circle_start(i) <= w {
                    slow = i;
                } else {
                    break;
                }
            }
            assert_eq!(fast, slow, "at w={w}");
            w += dur / 97.0;
        }
    }

    #[test]
    fn round_segment_at_matches_stream() {
        // The closed-form lookup must reproduce the explicit stream exactly.
        for k in 1..=3u32 {
            let round = RoundSchedule::new(k);
            let mut start = 0.0;
            for seg in round.segments() {
                // Query in the middle of each segment (skip zero-duration).
                if seg.duration() > 0.0 {
                    let mid = start + seg.duration() / 2.0;
                    let (found_start, found_seg) = round.segment_at(mid);
                    assert!(
                        (found_start - start).abs() < 1e-7,
                        "k={k}: start {found_start} vs {start}"
                    );
                    assert_eq!(found_seg, seg, "k={k} at t={mid}");
                }
                start += seg.duration();
            }
            assert_approx_eq!(start, round.duration(), 1e-9);
        }
    }

    #[test]
    fn wait_phase_is_reported() {
        let round = RoundSchedule::new(2);
        let in_wait = round.wait_start() + 1.0;
        assert_eq!(round.subround_index_at(in_wait), None);
        assert_eq!(round.locate(in_wait), RoundPhase::Wait);
        let (_, seg) = round.segment_at(in_wait);
        assert!(matches!(seg, Segment::Wait { .. }));
    }

    #[test]
    fn locate_reports_legs_in_order() {
        let round = RoundSchedule::new(1);
        let sub = SubRound::new(1, 0);
        let r0 = sub.circle_radius(0);
        // Outbound at time r0/2, sweep just after r0, inbound near the end.
        match round.locate(r0 / 2.0) {
            RoundPhase::SubRound { leg, circle, .. } => {
                assert_eq!(leg, CircleLeg::Outbound);
                assert_eq!(circle, 0);
            }
            other => panic!("unexpected phase {other:?}"),
        }
        match round.locate(r0 * 1.5) {
            RoundPhase::SubRound { leg, .. } => assert_eq!(leg, CircleLeg::Sweep),
            other => panic!("unexpected phase {other:?}"),
        }
        let end_of_first = sub.circle_start(1);
        match round.locate(end_of_first - r0 * 0.5) {
            RoundPhase::SubRound { leg, circle, .. } => {
                assert_eq!(leg, CircleLeg::Inbound);
                assert_eq!(circle, 0);
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside round")]
    fn segment_at_rejects_out_of_range() {
        let round = RoundSchedule::new(1);
        let _ = round.segment_at(round.duration());
    }

    /// The sequential pointer must reproduce `segment_at` exactly — same
    /// segments, same closed-form start times — across every access
    /// pattern the engine produces (piece-by-piece, short hops, leaps).
    #[test]
    fn round_cursor_matches_segment_at() {
        for k in 1..=4u32 {
            let round = RoundSchedule::new(k);
            for stride_mul in [0.001, 0.37, 2.9, 41.0] {
                let mut cursor = RoundCursor::new(k);
                let mut u = 0.0;
                let stride = stride_mul * k as f64;
                while u < round.duration() {
                    let (fast_start, fast_seg) = cursor.segment_at(u);
                    let (slow_start, slow_seg) = round.segment_at(u);
                    assert_eq!(fast_start.to_bits(), slow_start.to_bits(), "k={k} u={u}");
                    assert_eq!(fast_seg, slow_seg, "k={k} u={u}");
                    u += stride;
                }
            }
        }
    }

    #[test]
    fn max_radius_is_last_outer_radius() {
        for k in 1..=6 {
            let round = RoundSchedule::new(k);
            assert_eq!(round.max_radius(), times::outer_radius(k, 2 * k - 1));
            assert_eq!(round.max_radius(), (k as f64).exp2());
        }
    }

    #[test]
    fn reach_is_monotone_and_bounds_the_walk() {
        // Walk round 2's explicit stream, tracking the true running
        // maximum distance from the origin; `reach` must dominate it at
        // every sampled time while never exceeding the round maximum.
        let round = RoundSchedule::new(2);
        let mut cursor = rvz_trajectory::StreamCursor::new(round.segments());
        let mut true_max = 0.0_f64;
        let mut prev_reach = 0.0_f64;
        let n = 4000;
        for i in 0..n {
            let u = round.duration() * i as f64 / n as f64;
            true_max = true_max.max(cursor.position(u).norm());
            let reach = round.reach(u);
            assert!(
                reach >= true_max - 1e-9,
                "reach {reach} below true max {true_max} at u={u}"
            );
            assert!(reach >= prev_reach, "reach not monotone at u={u}");
            assert!(reach <= round.max_radius());
            prev_reach = reach;
        }
        // At/after the terminal wait the reach is the full sweep radius.
        assert_eq!(round.reach(round.wait_start()), round.max_radius());
        assert_eq!(round.reach(round.duration() + 5.0), round.max_radius());
        assert_eq!(round.reach(-1.0), 0.0);
    }
}
