//! Lemma 2: the closed-form running times of Algorithms 1–4.
//!
//! Every formula here is stated (or directly derived) in the paper:
//!
//! * `SearchCircle(δ)` takes `2(π+1)·δ`;
//! * `SearchAnnulus(δ₁, δ₂, ρ)` takes `2(π+1)(1+m)(δ₁+ρm)` with
//!   `m = ⌈(δ₂−δ₁)/(2ρ)⌉`;
//! * sub-round `j` of `Search(k)` takes `3(π+1)(2^{j−k} + 2^k)`;
//! * `Search(k)` takes `3(π+1)(k+1)·2^{k+1}` (including its final wait of
//!   `3(π+1)(2^k + 2^{−k})`);
//! * the first `k` rounds of Algorithm 4 take `3(π+1)·k·2^{k+2}`.
//!
//! All dyadic quantities are computed from integer exponents
//! ([`rvz_numerics::pow2i`]) so they are bit-exact, and all *cumulative*
//! times come from these closed forms rather than running sums — there is
//! no accumulation error anywhere in the schedule.

use rvz_numerics::pow2i;

/// The constant `π + 1` appearing in every bound of the paper.
pub const PI_PLUS_1: f64 = std::f64::consts::PI + 1.0;

/// Largest supported round index `k` for the dyadic schedule.
///
/// `2^{2k}` circle counts must fit comfortably in `u64` and the phase
/// times (`≈ 3(π+1)·k·2^{k+2}`) must retain sub-unit absolute precision
/// in `f64`; `k ≤ 31` satisfies both with a wide margin.
pub const MAX_ROUND: u32 = 31;

/// Duration of `SearchCircle(δ)`: `2(π+1)·δ`.
pub fn search_circle_duration(delta: f64) -> f64 {
    2.0 * PI_PLUS_1 * delta
}

/// The paper's `m = ⌈(δ₂−δ₁)/(2ρ)⌉`: the number of *additional* circles
/// (beyond the first) traversed by `SearchAnnulus(δ₁, δ₂, ρ)`.
///
/// # Panics
///
/// Panics on non-positive or non-finite inputs or `δ₂ ≤ δ₁`.
pub fn annulus_steps(delta1: f64, delta2: f64, rho: f64) -> u64 {
    assert!(
        delta1 > 0.0 && delta2 > delta1 && rho > 0.0,
        "annulus parameters invalid: ({delta1}, {delta2}, {rho})"
    );
    ((delta2 - delta1) / (2.0 * rho)).ceil() as u64
}

/// Duration of `SearchAnnulus(δ₁, δ₂, ρ)`: `2(π+1)(1+m)(δ₁+ρm)`.
pub fn search_annulus_duration(delta1: f64, delta2: f64, rho: f64) -> f64 {
    let m = annulus_steps(delta1, delta2, rho) as f64;
    2.0 * PI_PLUS_1 * (1.0 + m) * (delta1 + rho * m)
}

fn check_round(k: u32) {
    assert!(
        (1..=MAX_ROUND).contains(&k),
        "round index must be in 1..={MAX_ROUND}, got {k}"
    );
}

fn check_subround(k: u32, j: u32) {
    check_round(k);
    assert!(
        j < 2 * k,
        "sub-round index must satisfy j < 2k, got j={j}, k={k}"
    );
}

/// Inner radius `δ_{j,k} = 2^{j−k}` of sub-round `j` in round `k`.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ MAX_ROUND` and `j < 2k`.
pub fn inner_radius(k: u32, j: u32) -> f64 {
    check_subround(k, j);
    pow2i(j as i64 - k as i64)
}

/// Outer radius `δ_{j+1,k} = 2^{j−k+1}` of sub-round `j` in round `k`.
///
/// # Panics
///
/// Same domain as [`inner_radius`].
pub fn outer_radius(k: u32, j: u32) -> f64 {
    check_subround(k, j);
    pow2i(j as i64 - k as i64 + 1)
}

/// Granularity `ρ_{j,k} = 2^{2j−3k−1}` of sub-round `j` in round `k`.
///
/// Chosen so that `δ_{j,k}²/ρ_{j,k} = 2^{k+1}` — the invariant behind
/// Lemma 3.
///
/// # Panics
///
/// Same domain as [`inner_radius`].
pub fn granularity(k: u32, j: u32) -> f64 {
    check_subround(k, j);
    pow2i(2 * j as i64 - 3 * k as i64 - 1)
}

/// Duration of sub-round `j` of `Search(k)`: `3(π+1)(2^{j−k} + 2^k)`.
///
/// # Panics
///
/// Same domain as [`inner_radius`].
pub fn subround_duration(k: u32, j: u32) -> f64 {
    check_subround(k, j);
    3.0 * PI_PLUS_1 * (pow2i(j as i64 - k as i64) + pow2i(k as i64))
}

/// Start time of sub-round `j` within its round:
/// `Σ_{l<j} 3(π+1)(2^{l−k} + 2^k) = 3(π+1)(2^{−k}(2^j − 1) + j·2^k)`.
///
/// `j = 2k` is allowed and gives the start of the round's final wait.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ MAX_ROUND` and `j ≤ 2k`.
pub fn subround_start(k: u32, j: u32) -> f64 {
    check_round(k);
    assert!(
        j <= 2 * k,
        "sub-round start requires j <= 2k, got j={j}, k={k}"
    );
    3.0 * PI_PLUS_1 * (pow2i(-(k as i64)) * (pow2i(j as i64) - 1.0) + j as f64 * pow2i(k as i64))
}

/// The wait at the end of `Search(k)`: `3(π+1)(2^k + 2^{−k})`.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ MAX_ROUND`.
pub fn round_wait(k: u32) -> f64 {
    check_round(k);
    3.0 * PI_PLUS_1 * (pow2i(k as i64) + pow2i(-(k as i64)))
}

/// Total duration of `Search(k)`: `3(π+1)(k+1)·2^{k+1}`.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ MAX_ROUND`.
pub fn round_duration(k: u32) -> f64 {
    check_round(k);
    3.0 * PI_PLUS_1 * (k as f64 + 1.0) * pow2i(k as i64 + 1)
}

/// Total duration of the first `k` rounds of Algorithm 4:
/// `F(k) = 3(π+1)·k·2^{k+2}` (with `F(0) = 0`).
///
/// This is also the duration of `SearchAll(k)` (Algorithm 5) and of
/// `SearchAllRev(k)` (Algorithm 6), written `S(k)` in Section 4 where the
/// paper notes `S(n) = 12(π+1)·n·2^n` — the same quantity.
///
/// # Panics
///
/// Panics when `k > MAX_ROUND`.
pub fn rounds_total(k: u32) -> f64 {
    assert!(
        k <= MAX_ROUND,
        "round index must be <= {MAX_ROUND}, got {k}"
    );
    if k == 0 {
        0.0
    } else {
        3.0 * PI_PLUS_1 * k as f64 * pow2i(k as i64 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;

    #[test]
    fn circle_duration() {
        assert_approx_eq!(search_circle_duration(1.0), 2.0 * PI_PLUS_1);
        assert_approx_eq!(search_circle_duration(0.5), PI_PLUS_1);
    }

    #[test]
    fn annulus_steps_matches_ceiling() {
        assert_eq!(annulus_steps(1.0, 2.0, 0.25), 2);
        assert_eq!(annulus_steps(1.0, 2.0, 0.3), 2);
        assert_eq!(annulus_steps(1.0, 2.0, 0.2), 3);
        // Dyadic case from the paper: m = 2^{2k−j} exactly.
        assert_eq!(annulus_steps(0.5, 1.0, 0.0625), 4);
    }

    #[test]
    fn annulus_duration_is_sum_of_circles() {
        let (d1, d2, rho) = (0.5, 1.0, 0.1);
        let m = annulus_steps(d1, d2, rho);
        let sum: f64 = (0..=m)
            .map(|i| search_circle_duration(d1 + 2.0 * i as f64 * rho))
            .sum();
        assert_approx_eq!(search_annulus_duration(d1, d2, rho), sum);
    }

    #[test]
    fn dyadic_radii_and_granularity() {
        // k = 2: sub-rounds j = 0..3 with δ = 1/4, 1/2, 1, 2.
        assert_eq!(inner_radius(2, 0), 0.25);
        assert_eq!(outer_radius(2, 0), 0.5);
        assert_eq!(inner_radius(2, 3), 2.0);
        assert_eq!(outer_radius(2, 3), 4.0);
        // ρ_{j,k} = 2^{2j−3k−1}.
        assert_eq!(granularity(2, 0), pow2i(-7));
        assert_eq!(granularity(2, 3), pow2i(-1));
    }

    #[test]
    fn ratio_invariant_of_lemma3() {
        // δ_{j,k}² / ρ_{j,k} = 2^{k+1} for every sub-round.
        for k in 1..=6 {
            for j in 0..2 * k {
                let ratio = inner_radius(k, j).powi(2) / granularity(k, j);
                assert_approx_eq!(ratio, pow2i(k as i64 + 1));
            }
        }
    }

    #[test]
    fn subround_duration_closed_form() {
        // Direct annulus computation must agree with the 3(π+1)(2^{j−k}+2^k) form.
        for k in 1..=5 {
            for j in 0..2 * k {
                let direct = search_annulus_duration(
                    inner_radius(k, j),
                    outer_radius(k, j),
                    granularity(k, j),
                );
                assert_approx_eq!(direct, subround_duration(k, j), 1e-12);
            }
        }
    }

    #[test]
    fn subround_start_telescopes() {
        for k in 1..=5 {
            let mut acc = 0.0;
            for j in 0..=2 * k {
                assert_approx_eq!(subround_start(k, j), acc, 1e-12);
                if j < 2 * k {
                    acc += subround_duration(k, j);
                }
            }
        }
    }

    #[test]
    fn round_duration_closed_form() {
        // Sub-rounds plus wait must equal 3(π+1)(k+1)2^{k+1}.
        for k in 1..=8 {
            let total = subround_start(k, 2 * k) + round_wait(k);
            assert_approx_eq!(total, round_duration(k), 1e-12);
        }
    }

    #[test]
    fn rounds_total_telescopes() {
        assert_eq!(rounds_total(0), 0.0);
        let mut acc = 0.0;
        for k in 1..=10 {
            acc += round_duration(k);
            assert_approx_eq!(rounds_total(k), acc, 1e-12);
        }
    }

    #[test]
    fn section4_s_n_identity() {
        // S(n) = 12(π+1)·n·2^n (equation (1) in the paper) equals F(n).
        for n in 1..=10 {
            let s = 12.0 * PI_PLUS_1 * n as f64 * pow2i(n as i64);
            assert_approx_eq!(rounds_total(n), s, 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "round index must be in")]
    fn round_zero_rejected() {
        let _ = round_duration(0);
    }

    #[test]
    #[should_panic(expected = "j < 2k")]
    fn subround_out_of_range_rejected() {
        let _ = inner_radius(2, 4);
    }
}
