//! Exact contact *windows*: every interval during which `Search(k)` sees
//! a given target.
//!
//! [`first_discovery`](crate::discovery::first_discovery) returns only
//! the first contact of Algorithm 4; the overlap machinery of Section 4
//! needs more — it asks whether a contact falls inside a *specific* time
//! window (the partner's inactive phase). [`round_contact_windows`]
//! enumerates, in execution order, the maximal sub-intervals of one
//! `Search(k)` round during which the robot is within `r` of the target,
//! using the same closed-form circle geometry as the discovery oracle
//! and skipping the (possibly millions of) non-contacting circles by
//! index arithmetic.

use crate::schedule::SubRound;
use crate::times;
use rvz_geometry::{normalize_angle, Vec2};

/// A maximal contact interval, in time local to the enclosing round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWindow {
    /// Window start (local round time).
    pub start: f64,
    /// Window end (local round time), `≥ start`.
    pub end: f64,
}

/// Enumerates the contact windows of `Search(k)` for a target at `target`
/// with visibility `r`, in increasing time order, local to the round.
///
/// At most `limit` windows are produced (targets close to the positive
/// x-axis contact every outbound/inbound leg, which would otherwise
/// enumerate a window per circle). Consecutive windows may touch (a leg
/// contact can continue seamlessly into the following arc); they are not
/// merged.
///
/// If `d ≤ r` the robot *always* sees the target; one window covering the
/// whole round is returned.
///
/// # Panics
///
/// Panics on invalid `k` (see [`times::round_duration`]), non-positive
/// `r`, non-finite `target`, or `limit == 0`.
pub fn round_contact_windows(k: u32, target: Vec2, r: f64, limit: usize) -> Vec<ContactWindow> {
    let round_duration = times::round_duration(k);
    assert!(
        r > 0.0 && r.is_finite(),
        "visibility must be positive, got {r}"
    );
    assert!(target.is_finite(), "target must be finite");
    assert!(limit > 0, "limit must be positive");

    let d = target.norm();
    if d <= r {
        return vec![ContactWindow {
            start: 0.0,
            end: round_duration,
        }];
    }

    // Leg geometry (see discovery.rs): the robot at (x, 0) sees the
    // target iff x ∈ [x_lo, x_hi]; with d > r the window is positive.
    let leg = if target.y.abs() <= r {
        let half = (r * r - target.y * target.y).sqrt();
        let x_hi = target.x + half;
        if x_hi > 0.0 {
            Some(((target.x - half).max(0.0), x_hi))
        } else {
            None
        }
    } else {
        None
    };
    let alpha = normalize_angle(target.angle());

    let mut out = Vec::new();
    'rounds: for j in 0..2 * k {
        let sub = SubRound::new(k, j);
        let sub_start = sub.start_within_round();
        let m = sub.circle_count() - 1;

        // Circle ranges with any contact.
        let arc_lo = first_index_reaching(&sub, d - r);
        let leg_lo = leg.and_then(|(x_lo, _)| first_index_reaching(&sub, x_lo));
        let start_i = match (arc_lo, leg_lo) {
            (Some(a), Some(l)) => a.min(l),
            (Some(a), None) => a,
            (None, Some(l)) => l,
            (None, None) => continue,
        };

        for i in start_i..=m {
            let delta = sub.circle_radius(i);
            let block = sub_start + sub.circle_start(i);
            let circle_end = 2.0 * times::PI_PLUS_1 * delta;

            // Outbound leg.
            if let Some((x_lo, x_hi)) = leg {
                if delta >= x_lo {
                    push(&mut out, block + x_lo, block + x_hi.min(delta));
                }
            }
            // Arc sweep.
            if (d - delta).abs() <= r {
                let c = ((delta * delta + d * d - r * r) / (2.0 * delta * d)).clamp(-1.0, 1.0);
                let half_width = c.acos();
                let tau = std::f64::consts::TAU;
                let arc_t = |theta: f64| block + delta + delta * theta;
                if half_width >= std::f64::consts::PI {
                    push(&mut out, arc_t(0.0), arc_t(tau));
                } else {
                    let a = normalize_angle(alpha - half_width);
                    let b = a + 2.0 * half_width;
                    if b <= tau {
                        push(&mut out, arc_t(a), arc_t(b));
                    } else {
                        // Wraps through θ = 0: split into two windows in
                        // time order.
                        push(&mut out, arc_t(0.0), arc_t(b - tau));
                        push(&mut out, arc_t(a), arc_t(tau));
                    }
                }
            }
            // Inbound leg.
            if let Some((x_lo, x_hi)) = leg {
                if delta >= x_lo {
                    push(
                        &mut out,
                        block + circle_end - x_hi.min(delta),
                        block + circle_end - x_lo,
                    );
                }
            }
            if out.len() >= limit {
                break 'rounds;
            }
        }
    }
    out.truncate(limit);
    out
}

fn push(out: &mut Vec<ContactWindow>, start: f64, end: f64) {
    if end > start {
        out.push(ContactWindow { start, end });
    }
}

/// Smallest circle index whose radius reaches `x`, or `None`.
fn first_index_reaching(sub: &SubRound, x: f64) -> Option<u64> {
    let m = sub.circle_count() - 1;
    if sub.circle_radius(m) < x {
        return None;
    }
    let delta1 = sub.inner_radius();
    let rho = sub.granularity();
    let mut i = if x <= delta1 {
        0
    } else {
        (((x - delta1) / (2.0 * rho)).ceil() as u64).min(m)
    };
    while i > 0 && sub.circle_radius(i - 1) >= x {
        i -= 1;
    }
    while sub.circle_radius(i) < x {
        i += 1;
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RoundSchedule;
    use rvz_trajectory::Segment;

    /// Dense-sampling oracle over the explicit round path.
    fn brute_windows(k: u32, target: Vec2, r: f64, dt: f64) -> Vec<(f64, f64)> {
        let round = RoundSchedule::new(k);
        let segments: Vec<Segment> = round.segments().collect();
        let mut cursor = rvz_trajectory::StreamCursor::new(segments.into_iter());
        let duration = round.duration();
        let mut windows = Vec::new();
        let mut inside = false;
        let mut start = 0.0;
        let mut t = 0.0;
        while t <= duration {
            let within = cursor.position(t).distance(target) <= r;
            if within && !inside {
                inside = true;
                start = t;
            } else if !within && inside {
                inside = false;
                windows.push((start, t));
            }
            t += dt;
        }
        if inside {
            windows.push((start, duration));
        }
        windows
    }

    /// Windows must cover exactly the sampled contact times.
    fn assert_matches_brute(k: u32, target: Vec2, r: f64) {
        let exact = round_contact_windows(k, target, r, 10_000);
        let dt = 1e-3;
        let brute = brute_windows(k, target, r, dt);
        // Every brute window's interior is covered by some exact window.
        for &(bs, be) in &brute {
            let mid = 0.5 * (bs + be);
            assert!(
                exact.iter().any(|w| w.start <= mid && mid <= w.end),
                "k={k}, target={target}: brute window ({bs}, {be}) not covered"
            );
        }
        // Every exact window's midpoint is a true contact.
        let round = RoundSchedule::new(k);
        for w in &exact {
            let mid = 0.5 * (w.start + w.end);
            let (seg_start, seg) = round.segment_at(mid);
            let pos = seg.position_at(mid - seg_start);
            assert!(
                pos.distance(target) <= r + 1e-9,
                "k={k}: window midpoint {mid} is not a contact"
            );
        }
    }

    #[test]
    fn generic_target_matches_brute_force() {
        assert_matches_brute(2, Vec2::new(0.3, 0.55), 0.05);
        assert_matches_brute(3, Vec2::new(-0.8, 0.4), 0.1);
        assert_matches_brute(2, Vec2::new(0.0, -1.2), 0.07);
    }

    #[test]
    fn on_axis_target_has_leg_windows() {
        // Target on the +x axis: every sufficiently long leg sees it.
        let target = Vec2::new(0.9, 0.0);
        assert_matches_brute(2, target, 0.08);
        let windows = round_contact_windows(2, target, 0.08, 10_000);
        assert!(windows.len() > 4, "expected many leg windows");
    }

    #[test]
    fn visible_target_covers_whole_round() {
        let w = round_contact_windows(1, Vec2::new(0.05, 0.0), 0.2, 100);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start, 0.0);
        assert_eq!(w[0].end, times::round_duration(1));
    }

    #[test]
    fn windows_are_time_ordered() {
        let ws = round_contact_windows(3, Vec2::new(0.4, 0.6), 0.1, 10_000);
        assert!(!ws.is_empty());
        for pair in ws.windows(2) {
            assert!(pair[0].start <= pair[1].start, "{pair:?}");
        }
    }

    #[test]
    fn limit_truncates() {
        let ws = round_contact_windows(3, Vec2::new(0.9, 0.0), 0.2, 3);
        assert_eq!(ws.len(), 3);
    }

    #[test]
    fn first_window_start_equals_first_discovery() {
        use crate::discovery::first_discovery;
        use rvz_model::SearchInstance;
        for (target, r) in [
            (Vec2::new(0.3, 0.55), 0.05),
            (Vec2::new(0.9, 0.0), 0.2),
            (Vec2::new(-0.6, -0.6), 0.03),
        ] {
            let inst = SearchInstance::new(target, r).unwrap();
            let found = first_discovery(&inst, 8).unwrap();
            let ws = round_contact_windows(found.round, target, r, 10_000);
            let round_start = crate::universal::UniversalSearch::round_start(found.round);
            let first = ws.first().expect("window exists");
            assert!(
                (round_start + first.start - found.time).abs() < 1e-9 * (1.0 + found.time),
                "target {target}: window {} vs discovery {}",
                round_start + first.start,
                found.time
            );
        }
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_rejected() {
        let _ = round_contact_windows(1, Vec2::UNIT_Y, 0.1, 0);
    }
}
