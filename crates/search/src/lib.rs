//! # rvz-search
//!
//! Section 2 of the paper: the search algorithms that underlie every
//! rendezvous strategy.
//!
//! A single robot with visibility radius `r` must find a stationary target
//! at unknown distance `d`. The paper solves this with a hierarchy of four
//! procedures, all reproduced here:
//!
//! | paper | this crate |
//! |---|---|
//! | Algorithm 1, `SearchCircle(δ)` | [`search_circle`] |
//! | Algorithm 2, `SearchAnnulus(δ₁, δ₂, ρ)` | [`search_annulus`] |
//! | Algorithm 3, `Search(k)` | [`search_round`] / [`schedule::RoundSchedule`] |
//! | Algorithm 4 (repeat `Search(k)` forever) | [`UniversalSearch`] |
//!
//! Two representations are provided for each level:
//!
//! * **segment streams / [`Path`]s** — explicit
//!   geometry, used by tests and small simulations; round `k` has
//!   `Θ(4^k)` segments, so this form does not scale;
//! * **closed-form indexing** — every radius, circle count, and phase
//!   start time follows the paper's exact dyadic formulas
//!   ([`times`], [`schedule`]), giving `O(log)` random access to the
//!   segment active at any time `t` ([`UniversalSearch::segment_at`]).
//!   This is what lets the conservative-advancement simulator in
//!   `rvz-sim` take large time steps over millions of segments.
//!
//! The [`discovery`] module computes the *exact* first time Algorithm 4
//! sees a given target, analytically — an independent oracle used to
//! cross-check the simulator and to reproduce Theorem 1 at scales the
//! step-based simulator cannot reach.
//!
//! ## Example
//!
//! ```
//! use rvz_search::{UniversalSearch, discovery, coverage};
//! use rvz_model::SearchInstance;
//! use rvz_geometry::Vec2;
//!
//! let inst = SearchInstance::new(Vec2::new(0.7, 0.9), 1e-3).unwrap();
//! let found = discovery::first_discovery(&inst, 20).expect("target is found");
//! let bound = coverage::theorem1_bound(inst.distance(), inst.visibility());
//! assert!(found.time < bound, "Theorem 1 holds");
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod coverage;
pub mod discovery;
pub mod schedule;
pub mod times;
pub mod universal;
pub mod windows;

pub use discovery::{first_discovery, Discovery, DiscoveryEvent};
pub use schedule::{RoundCursor, RoundSchedule, SubRound};
pub use universal::UniversalSearch;
pub use windows::{round_contact_windows, ContactWindow};

use rvz_geometry::Vec2;
use rvz_trajectory::{Path, PathBuilder};

/// Algorithm 1, `SearchCircle(δ)`: move along the x-axis to radius `δ`,
/// traverse the circle of radius `δ`, and return to the start.
///
/// The returned path starts and ends at the origin and takes time
/// `2(π+1)·δ` (Lemma 2).
///
/// # Panics
///
/// Panics unless `δ > 0` and finite.
///
/// # Example
///
/// ```
/// use rvz_search::search_circle;
/// let p = search_circle(2.0);
/// assert!((p.duration() - 4.0 * (std::f64::consts::PI + 1.0)).abs() < 1e-12);
/// ```
pub fn search_circle(delta: f64) -> Path {
    assert!(
        delta > 0.0 && delta.is_finite(),
        "SearchCircle requires δ > 0, got {delta}"
    );
    PathBuilder::at(Vec2::ZERO)
        .line_to(Vec2::new(delta, 0.0))
        .full_circle(Vec2::ZERO)
        .line_to(Vec2::ZERO)
        .build()
}

/// Algorithm 2, `SearchAnnulus(δ₁, δ₂, ρ)`: `SearchCircle(δ₁ + 2iρ)` for
/// `i = 0, …, ⌈(δ₂−δ₁)/(2ρ)⌉`.
///
/// After the sweep, every point of the annulus with radii `[δ₁, δ₂]` has
/// been within distance `ρ` of the robot.
///
/// # Panics
///
/// Panics unless `0 < δ₁ < δ₂` and `ρ > 0`, or if the explicit segment
/// list would be unreasonably large (> 2²⁴ circles) — use the closed-form
/// [`schedule`] API at that scale instead.
pub fn search_annulus(delta1: f64, delta2: f64, rho: f64) -> Path {
    assert!(
        delta1 > 0.0 && delta2 > delta1 && rho > 0.0,
        "SearchAnnulus requires 0 < δ₁ < δ₂ and ρ > 0, got ({delta1}, {delta2}, {rho})"
    );
    let m = times::annulus_steps(delta1, delta2, rho);
    assert!(
        m <= (1 << 24),
        "explicit annulus with {m} circles is too large; use the schedule API"
    );
    let mut b = PathBuilder::at(Vec2::ZERO);
    for i in 0..=m {
        let radius = delta1 + 2.0 * (i as f64) * rho;
        b = b
            .line_to(Vec2::new(radius, 0.0))
            .full_circle(Vec2::ZERO)
            .line_to(Vec2::ZERO);
    }
    b.build()
}

/// Algorithm 3, `Search(k)`: sweep the `2k` dyadic annuli
/// `[2^{j−k}, 2^{j−k+1}]` with granularity `2^{2j−3k−1}` for
/// `j = 0, …, 2k−1`, then wait `3(π+1)(2^k + 2^{−k})` at the start point.
///
/// The explicit path has `Θ(4^k)` segments; this constructor refuses
/// `k > 10` (≈ 4 million segments). Use [`UniversalSearch`] /
/// [`schedule::RoundSchedule`] for closed-form access at any `k`.
///
/// # Panics
///
/// Panics when `k == 0` or `k > 10`.
pub fn search_round(k: u32) -> Path {
    assert!(k >= 1, "Search(k) requires k >= 1");
    assert!(
        k <= 10,
        "explicit Search({k}) would have ~4^{k} segments; use the schedule API"
    );
    let mut b = PathBuilder::at(Vec2::ZERO);
    for j in 0..2 * k {
        let sub = SubRound::new(k, j);
        for i in 0..sub.circle_count() {
            let radius = sub.circle_radius(i);
            b = b
                .line_to(Vec2::new(radius, 0.0))
                .full_circle(Vec2::ZERO)
                .line_to(Vec2::ZERO);
        }
    }
    b.wait(times::round_wait(k)).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use rvz_trajectory::Trajectory;

    #[test]
    fn search_circle_shape() {
        let p = search_circle(1.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.start_position(), Vec2::ZERO);
        assert_eq!(p.end_position(), Vec2::ZERO);
        assert_approx_eq!(p.duration(), times::search_circle_duration(1.0));
        // Mid-arc: the robot is on the circle.
        let mid = p.position(1.0 + std::f64::consts::PI);
        assert_approx_eq!(mid.norm(), 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires δ > 0")]
    fn search_circle_rejects_zero() {
        let _ = search_circle(0.0);
    }

    #[test]
    fn search_annulus_duration_matches_lemma2() {
        let (d1, d2, rho) = (0.5, 1.0, 0.0625);
        let p = search_annulus(d1, d2, rho);
        assert_approx_eq!(p.duration(), times::search_annulus_duration(d1, d2, rho));
        // m + 1 circles, 3 segments each.
        let m = times::annulus_steps(d1, d2, rho);
        assert_eq!(p.len() as u64, 3 * (m + 1));
    }

    #[test]
    #[should_panic(expected = "SearchAnnulus requires")]
    fn search_annulus_rejects_inverted_radii() {
        let _ = search_annulus(1.0, 0.5, 0.1);
    }

    #[test]
    fn search_round_duration_matches_lemma2() {
        for k in 1..=4 {
            let p = search_round(k);
            assert_approx_eq!(p.duration(), times::round_duration(k), 1e-9);
            assert_eq!(p.end_position(), Vec2::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "requires k >= 1")]
    fn search_round_rejects_zero() {
        let _ = search_round(0);
    }
}
