//! Exact analytic discovery times for Algorithm 4.
//!
//! Because the searcher's trajectory is made of axis-aligned legs and
//! origin-centered circles, the *first* moment it comes within `r` of a
//! stationary target `p⃗` has a closed form per circle traversal:
//!
//! * on an **outbound leg** along the x-axis the robot is within `r` of
//!   `p⃗ = (p_x, p_y)` iff `|p_y| ≤ r` and its abscissa reaches
//!   `x_lo = p_x − √(r² − p_y²)`;
//! * on a **circle sweep** of radius `δ` the distance to a target at
//!   radius `d` and polar angle `α` is `√(δ² + d² − 2δd·cos(θ − α))`,
//!   within `r` iff `cos(θ − α) ≥ (δ² + d² − r²)/(2δd)`.
//!
//! Scanning sub-rounds in execution order and finding the first circle
//! index admitting either contact (a constant-time computation from the
//! closed-form schedule) yields the exact discovery time without
//! enumerating the Θ(4^k) segments — this is the oracle used to
//! reproduce Theorem 1 at large `d²/r` and to validate the
//! conservative-advancement simulator.

use crate::schedule::SubRound;
use crate::times;
use crate::universal::UniversalSearch;
use rvz_geometry::normalize_angle;
use rvz_model::SearchInstance;

/// How the target was first seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscoveryEvent {
    /// Already visible at time zero (`d ≤ r`).
    AtStart,
    /// Seen while the robot headed out along the x-axis (only possible for
    /// targets within `r` of the positive x-axis).
    OutboundLeg,
    /// Seen during a circle traversal — the generic case the paper's
    /// analysis is built on.
    CircleSweep,
}

/// The first time Algorithm 4 sees the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discovery {
    /// Global time of first visibility.
    pub time: f64,
    /// Round `k` in which discovery happens (1-based).
    pub round: u32,
    /// Sub-round `j` within the round.
    pub subround: u32,
    /// Circle index within the sub-round.
    pub circle: u64,
    /// The kind of contact.
    pub event: DiscoveryEvent,
}

/// Candidate contact within one sub-round.
struct Candidate {
    circle: u64,
    /// Local time within that circle's 3-segment block.
    local: f64,
    event: DiscoveryEvent,
}

/// Computes the exact first discovery time of `instance.target()` by a
/// robot running Algorithm 4 from the origin, scanning at most
/// `max_round` rounds.
///
/// Returns `None` when the target is not reached within `max_round`
/// rounds (which, by Lemma 1, means `max_round` was set below
/// `⌊log(d²/r)⌋`).
///
/// # Panics
///
/// Panics when `max_round` exceeds [`times::MAX_ROUND`].
///
/// # Example
///
/// ```
/// use rvz_search::{first_discovery, DiscoveryEvent};
/// use rvz_model::SearchInstance;
/// use rvz_geometry::Vec2;
///
/// // A target two units up: found during a circle sweep.
/// let inst = SearchInstance::new(Vec2::new(0.0, 2.0), 0.05).unwrap();
/// let d = first_discovery(&inst, 16).unwrap();
/// assert_eq!(d.event, DiscoveryEvent::CircleSweep);
/// assert!(d.time > 0.0);
/// ```
pub fn first_discovery(instance: &SearchInstance, max_round: u32) -> Option<Discovery> {
    assert!(
        max_round <= times::MAX_ROUND,
        "max_round {max_round} exceeds supported {}",
        times::MAX_ROUND
    );
    let p = instance.target();
    let r = instance.visibility();
    let d = instance.distance();

    if d <= r {
        return Some(Discovery {
            time: 0.0,
            round: 1,
            subround: 0,
            circle: 0,
            event: DiscoveryEvent::AtStart,
        });
    }

    // Outbound-leg window on the positive x-axis: the robot at (x, 0) is
    // within r of p iff x ∈ [x_lo, x_hi]. Since d > r, the window (when it
    // exists and intersects x ≥ 0) is strictly positive.
    let leg_x_lo = if p.y.abs() <= r {
        let half = (r * r - p.y * p.y).sqrt();
        let x_hi = p.x + half;
        if x_hi > 0.0 {
            Some((p.x - half).max(0.0))
        } else {
            None
        }
    } else {
        None
    };

    let alpha = normalize_angle(p.angle());

    for k in 1..=max_round {
        for j in 0..2 * k {
            let sub = SubRound::new(k, j);
            if let Some(c) = best_candidate_in_subround(&sub, d, r, alpha, leg_x_lo) {
                let time = UniversalSearch::round_start(k)
                    + sub.start_within_round()
                    + sub.circle_start(c.circle)
                    + c.local;
                return Some(Discovery {
                    time,
                    round: k,
                    subround: j,
                    circle: c.circle,
                    event: c.event,
                });
            }
        }
    }
    None
}

/// First circle index `i ≥ lower_estimate` whose radius is ≥ `x`, fixed up
/// against floating-point rounding; `None` if no circle reaches `x`.
fn first_circle_reaching(sub: &SubRound, x: f64) -> Option<u64> {
    let m = sub.circle_count() - 1;
    if sub.circle_radius(m) < x {
        return None;
    }
    let delta1 = sub.inner_radius();
    let rho = sub.granularity();
    let mut i = if x <= delta1 {
        0
    } else {
        (((x - delta1) / (2.0 * rho)).ceil() as u64).min(m)
    };
    while i > 0 && sub.circle_radius(i - 1) >= x {
        i -= 1;
    }
    while sub.circle_radius(i) < x {
        i += 1; // cannot pass m: checked above
    }
    Some(i)
}

fn best_candidate_in_subround(
    sub: &SubRound,
    d: f64,
    r: f64,
    alpha: f64,
    leg_x_lo: Option<f64>,
) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;

    // Leg contact: first circle whose outbound leg reaches x_lo.
    if let Some(x_lo) = leg_x_lo {
        if let Some(i) = first_circle_reaching(sub, x_lo) {
            best = Some(Candidate {
                circle: i,
                local: x_lo,
                event: DiscoveryEvent::OutboundLeg,
            });
        }
    }

    // Sweep contact: first circle with |d − δᵢ| ≤ r.
    if let Some(i) = first_circle_reaching(sub, d - r) {
        let delta = sub.circle_radius(i);
        if delta <= d + r {
            let local = delta + delta * first_contact_angle(delta, d, r, alpha);
            let cand = Candidate {
                circle: i,
                local,
                event: DiscoveryEvent::CircleSweep,
            };
            best = match best {
                None => Some(cand),
                Some(prev) => {
                    let prev_t = sub.circle_start(prev.circle) + prev.local;
                    let cand_t = sub.circle_start(cand.circle) + cand.local;
                    Some(if cand_t < prev_t { cand } else { prev })
                }
            };
        }
    }

    best
}

/// First angle `θ ∈ [0, 2π)` of the counter-clockwise sweep of the circle
/// with radius `delta` at which the robot is within `r` of the target at
/// radius `d`, polar angle `alpha`.
///
/// Precondition: `|d − delta| ≤ r` (a contact exists).
fn first_contact_angle(delta: f64, d: f64, r: f64, alpha: f64) -> f64 {
    let c = ((delta * delta + d * d - r * r) / (2.0 * delta * d)).clamp(-1.0, 1.0);
    let half_width = c.acos();
    if half_width >= std::f64::consts::PI {
        return 0.0; // entire circle within range
    }
    let a = normalize_angle(alpha - half_width);
    let b = normalize_angle(alpha + half_width);
    if a > b {
        // The contact window wraps through θ = 0: contact at sweep start.
        0.0
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::Trajectory;

    /// Brute-force oracle: densely sample the actual trajectory.
    fn brute_force_discovery(inst: &SearchInstance, horizon: f64, dt: f64) -> Option<f64> {
        let s = UniversalSearch;
        let p = inst.target();
        let r = inst.visibility();
        let mut t = 0.0;
        while t <= horizon {
            if s.position(t).distance(p) <= r {
                return Some(t);
            }
            t += dt;
        }
        None
    }

    #[test]
    fn immediate_when_target_visible() {
        let inst = SearchInstance::new(Vec2::new(0.05, 0.0), 0.1).unwrap();
        let d = first_discovery(&inst, 4).unwrap();
        assert_eq!(d.time, 0.0);
        assert_eq!(d.event, DiscoveryEvent::AtStart);
    }

    #[test]
    fn matches_brute_force_on_generic_targets() {
        let s = UniversalSearch;
        let targets = [
            Vec2::new(0.0, 0.8),
            Vec2::new(-0.6, 0.3),
            Vec2::new(0.4, -0.9),
            Vec2::new(-1.3, -0.2),
            Vec2::new(0.9, 1.4),
        ];
        for p in targets {
            let r = 0.05;
            let inst = SearchInstance::new(p, r).unwrap();
            let exact = first_discovery(&inst, 8).expect("must be found");
            // The reported time really is a contact ...
            let dist = s.position(exact.time).distance(p);
            assert!(
                dist <= r + 1e-9,
                "target {p}: no contact at reported time (distance {dist})"
            );
            // ... and dense sampling finds nothing strictly earlier.
            let earlier = brute_force_discovery(&inst, exact.time - 1e-6, 2e-4);
            assert_eq!(
                earlier, None,
                "target {p}: earlier contact than {}",
                exact.time
            );
        }
    }

    #[test]
    fn on_axis_target_found_by_leg() {
        // Target sitting on the +x axis gets caught by an outbound leg.
        let inst = SearchInstance::new(Vec2::new(0.9, 0.0), 0.2).unwrap();
        let d = first_discovery(&inst, 6).unwrap();
        assert_eq!(d.event, DiscoveryEvent::OutboundLeg);
        // Contact when the robot reaches x = 0.7 on a leg whose circle
        // radius ≥ 0.7; in round 1 sub-round 0 the circles are spaced
        // 2ρ = 1/8 apart (0.5, 0.625, 0.75, 0.875, 1.0), so circle i=2
        // (radius 0.75) is the first that reaches far enough.
        assert_eq!(d.round, 1);
        assert_eq!(d.subround, 0);
        assert_eq!(d.circle, 2);
        let expected = SubRound::new(1, 0).circle_start(2) + 0.7;
        assert!((d.time - expected).abs() < 1e-12);
    }

    #[test]
    fn target_exactly_on_circle_radius() {
        // |p| = 0.5 is exactly the innermost circle of round 1.
        let inst = SearchInstance::new(Vec2::new(0.0, 0.5), 0.01).unwrap();
        let d = first_discovery(&inst, 4).unwrap();
        assert_eq!(d.event, DiscoveryEvent::CircleSweep);
        assert_eq!((d.round, d.subround, d.circle), (1, 0, 0));
        // The target is at angle π/2; contact begins half-width before.
        let brute = brute_force_discovery(&inst, d.time + 1.0, 1e-4).unwrap();
        assert!(brute >= d.time - 1e-9 && brute - d.time < 5e-4);
    }

    #[test]
    fn harder_instances_take_later_rounds() {
        let near = SearchInstance::new(Vec2::new(0.3, 0.7), 0.05).unwrap();
        let far = SearchInstance::new(Vec2::new(0.3, 0.7), 0.0005).unwrap();
        let dn = first_discovery(&near, 16).unwrap();
        let df = first_discovery(&far, 16).unwrap();
        assert!(df.round > dn.round, "{} vs {}", df.round, dn.round);
        assert!(df.time > dn.time);
    }

    #[test]
    fn none_when_max_round_too_small() {
        let inst = SearchInstance::new(Vec2::new(0.3, 0.7), 1e-6).unwrap();
        assert!(first_discovery(&inst, 2).is_none());
        assert!(first_discovery(&inst, 20).is_some());
    }

    #[test]
    fn contact_angle_window_wraps() {
        // Target at angle 0 (on the +x axis): the window [−Δ, +Δ] wraps
        // through θ = 0, so contact is at sweep start.
        assert_eq!(first_contact_angle(1.0, 1.05, 0.1, 0.0), 0.0);
        // Target at angle π: contact strictly before π.
        let theta = first_contact_angle(1.0, 1.05, 0.1, std::f64::consts::PI);
        assert!(theta > 0.0 && theta < std::f64::consts::PI);
    }

    #[test]
    fn discovery_time_is_within_theorem1_form() {
        // Sanity: time grows roughly like (d²/r)·log(d²/r); exact bound is
        // asserted in the coverage module's tests.
        let inst = SearchInstance::new(Vec2::new(0.0, 1.0), 1e-4).unwrap();
        let d = first_discovery(&inst, 20).unwrap();
        let ratio = inst.difficulty();
        assert!(d.time < 6.0 * times::PI_PLUS_1 * ratio.log2() * ratio);
    }
}
