//! Lemma 1, Lemma 3 and the Theorem 1 bound.
//!
//! * [`lemma1_witness`] — the explicit round/sub-round pair the paper's
//!   Lemma 1 exhibits: `k = ⌊log(d²/r)⌋`, `j = ⌊log d⌋ + k`, valid when
//!   the target's dyadic annulus lies inside round `k`'s sweep.
//! * [`guaranteed_discovery_round`] — the first round whose circle sweep
//!   provably passes within `r` of *every* point at distance `d`
//!   (direction-independent; legs are ignored, as in the paper's
//!   worst-case analysis).
//! * [`theorem1_bound`] — `6(π+1)·log(d²/r)·(d²/r)`.
//! * [`lemma3_lower_bound`] — `2^{k+1}`, the difficulty certified by a
//!   round-`k` discovery in the paper's granularity regime.
//!
//! All logarithms are base 2, as everywhere in the paper.

use crate::schedule::SubRound;
use crate::times;
use rvz_numerics::dyadic::{floor_log2, pow2i};

/// The Theorem 1 upper bound on the search time:
/// `T(d, r) < 6(π+1)·log(d²/r)·(d²/r)`.
///
/// # Panics
///
/// Panics unless `d > 0`, `r > 0` and `d²/r ≥ 2` (below that the bound's
/// logarithm degenerates; such instances are found in round 1 and need no
/// bound).
pub fn theorem1_bound(d: f64, r: f64) -> f64 {
    assert!(d > 0.0 && r > 0.0, "d and r must be positive");
    let ratio = d * d / r;
    assert!(
        ratio >= 2.0,
        "Theorem 1 bound requires d²/r ≥ 2, got {ratio}"
    );
    6.0 * times::PI_PLUS_1 * ratio.log2() * ratio
}

/// Lemma 3: a discovery on round `k` (in the granularity regime)
/// certifies `d²/r ≥ 2^{k+1}`.
pub fn lemma3_lower_bound(k: u32) -> f64 {
    pow2i(k as i64 + 1)
}

/// The explicit witnesses from the proof of Lemma 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lemma1Witness {
    /// Round `k = ⌊log(d²/r)⌋`.
    pub round: u32,
    /// Sub-round `j = ⌊log d⌋ + k`.
    pub subround: u32,
}

/// Computes Lemma 1's witness pair, or `None` when the closed forms fall
/// outside their valid ranges (`k < 1`, or `j ∉ [0, 2k−1]` — the paper's
/// "it is not hard to confirm" step implicitly assumes they hold, which
/// is the case whenever `r ≤ ρ`-style discovery is the binding one).
pub fn lemma1_witness(d: f64, r: f64) -> Option<Lemma1Witness> {
    assert!(d > 0.0 && r > 0.0, "d and r must be positive");
    let ratio = d * d / r;
    if ratio < 2.0 {
        return None;
    }
    let k = floor_log2(ratio);
    if k < 1 || k as u32 > times::MAX_ROUND {
        return None;
    }
    let j = floor_log2(d) + k;
    if j < 0 || j >= 2 * k {
        return None;
    }
    let (k, j) = (k as u32, j as u32);
    // Verify the two constraints Lemma 1 demands.
    debug_assert!(times::outer_radius(k, j) >= d);
    debug_assert!(times::granularity(k, j) <= r);
    Some(Lemma1Witness {
        round: k,
        subround: j,
    })
}

/// The minimum distance from any point at radius `d` to the circles swept
/// in round `k` (over all sub-rounds): the round's *effective granularity*
/// at that radius.
///
/// # Panics
///
/// Panics unless `d > 0` and `1 ≤ k ≤ MAX_ROUND`.
pub fn min_sweep_distance(d: f64, k: u32) -> f64 {
    assert!(d > 0.0 && d.is_finite(), "d must be positive");
    let mut best = f64::INFINITY;
    for j in 0..2 * k {
        let sub = SubRound::new(k, j);
        let delta1 = sub.inner_radius();
        let rho = sub.granularity();
        let m = sub.circle_count() - 1;
        // Nearest circle index to radius d, clamped into range; check its
        // neighbours to absorb rounding.
        let raw = ((d - delta1) / (2.0 * rho)).round();
        let i0 = if raw <= 0.0 { 0 } else { (raw as u64).min(m) };
        for i in i0.saturating_sub(1)..=(i0 + 1).min(m) {
            best = best.min((d - sub.circle_radius(i)).abs());
        }
    }
    best
}

/// The first round `k` whose circle sweep passes within `r` of every
/// point at distance `d` — i.e. discovery is *guaranteed* regardless of
/// the target's direction. `None` if no round up to `MAX_ROUND` suffices.
pub fn guaranteed_discovery_round(d: f64, r: f64) -> Option<u32> {
    assert!(d > 0.0 && r > 0.0, "d and r must be positive");
    if d <= r {
        return Some(1); // visible before the sweep even starts
    }
    (1..=times::MAX_ROUND).find(|&k| min_sweep_distance(d, k) <= r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::first_discovery;
    use rvz_geometry::Vec2;
    use rvz_model::SearchInstance;

    #[test]
    fn bound_is_positive_and_monotone_in_difficulty() {
        let b1 = theorem1_bound(1.0, 0.25); // ratio 4
        let b2 = theorem1_bound(1.0, 0.125); // ratio 8
        assert!(b1 > 0.0 && b2 > b1);
    }

    #[test]
    #[should_panic(expected = "requires d²/r ≥ 2")]
    fn bound_rejects_trivial_instances() {
        let _ = theorem1_bound(1.0, 1.0);
    }

    #[test]
    fn witness_constraints_hold_when_present() {
        for (d, r) in [(1.0, 0.01), (0.7, 1e-4), (3.3, 1e-3), (0.2, 1e-5)] {
            if let Some(w) = lemma1_witness(d, r) {
                assert!(times::outer_radius(w.round, w.subround) >= d, "d={d} r={r}");
                assert!(times::granularity(w.round, w.subround) <= r, "d={d} r={r}");
            } else {
                panic!("witness expected for d={d}, r={r}");
            }
        }
    }

    #[test]
    fn witness_none_outside_valid_range() {
        // Tiny difficulty: no k ≥ 1 exists.
        assert_eq!(lemma1_witness(1.0, 0.6), None);
        // Large d with mild r: j = ⌊log d⌋ + k can exceed 2k − 1.
        assert_eq!(lemma1_witness(64.0, 1800.0), None);
    }

    #[test]
    fn discovery_never_later_than_witness_round() {
        for (p, r) in [
            (Vec2::new(0.3, 0.8), 1e-3),
            (Vec2::new(-1.1, 0.4), 1e-4),
            (Vec2::new(0.05, -0.2), 1e-5),
        ] {
            let inst = SearchInstance::new(p, r).unwrap();
            let w = lemma1_witness(inst.distance(), r).expect("witness");
            let found = first_discovery(&inst, times::MAX_ROUND).expect("found");
            assert!(
                found.round <= w.round,
                "found round {} after witness round {}",
                found.round,
                w.round
            );
            // And the Theorem 1 time bound holds.
            assert!(found.time < theorem1_bound(inst.distance(), r));
        }
    }

    #[test]
    fn guaranteed_round_bounds_sweep_discovery() {
        // For targets away from the x-axis (no leg shortcuts), discovery
        // happens no later than the guaranteed round.
        for (p, r) in [(Vec2::new(0.0, 1.3), 0.01), (Vec2::new(0.0, -0.45), 1e-3)] {
            let inst = SearchInstance::new(p, r).unwrap();
            let guar = guaranteed_discovery_round(inst.distance(), r).unwrap();
            let found = first_discovery(&inst, times::MAX_ROUND).unwrap();
            assert!(found.round <= guar);
        }
    }

    #[test]
    fn min_sweep_distance_decreases_with_rounds() {
        let d = 0.9;
        let m1 = min_sweep_distance(d, 1);
        let m3 = min_sweep_distance(d, 3);
        let m6 = min_sweep_distance(d, 6);
        assert!(m3 <= m1 && m6 <= m3);
        // The sweep distance is bounded by the granularity of the annulus
        // containing radius d: for d = 0.9 in round k that is
        // ρ = 2^{2j−3k−1} with j = k − 1, i.e. 2^{−k−3}.
        for k in [1u32, 3, 6] {
            let rho = times::granularity(k, k - 1);
            assert!(
                min_sweep_distance(d, k) <= rho,
                "round {k}: sweep distance exceeds granularity {rho}"
            );
        }
        // Eventually the sweep passes arbitrarily close.
        assert!(min_sweep_distance(d, 10) < 1e-3);
    }

    #[test]
    fn lemma3_bound_values() {
        assert_eq!(lemma3_lower_bound(1), 4.0);
        assert_eq!(lemma3_lower_bound(4), 32.0);
    }

    /// Lemma 3 in its regime: when discovery happens via the sweep in the
    /// round where granularity first reaches `r`, the difficulty is at
    /// least `2^{k+1}`.
    #[test]
    fn lemma3_holds_in_granularity_regime() {
        for (d, rexp) in [(0.9_f64, -8), (1.7, -10), (0.33, -9), (2.9, -12)] {
            let r = pow2i(rexp);
            let inst = SearchInstance::new(Vec2::new(0.0, d), r).unwrap();
            let found = first_discovery(&inst, times::MAX_ROUND).unwrap();
            assert!(
                d * d / r >= lemma3_lower_bound(found.round),
                "d={d} r={r}: found on round {} but d²/r = {}",
                found.round,
                d * d / r
            );
        }
    }
}
