//! Algorithm 4: the universal search trajectory.
//!
//! `repeat Search(k) for k = 1, 2, 3, …` — an infinite, parameter-free
//! trajectory that finds any target at any distance `d` with any
//! visibility `r` in time `O(log(d²/r)·d²/r)` (Theorem 1). It is also,
//! reinterpreted through the equivalent-search reduction of Section 3,
//! the paper's rendezvous algorithm for robots with symmetric clocks.

use crate::schedule::{RoundCursor, RoundPhase, RoundSchedule};
use crate::times;
use rvz_geometry::Vec2;
use rvz_trajectory::monotone::{segment_motion, Cursor, MonotoneGuard, MonotoneTrajectory, Probe};
use rvz_trajectory::{Segment, Trajectory};

/// The Algorithm 4 trajectory.
///
/// A zero-sized value: the algorithm has no parameters (that is the
/// point — the robots know nothing). Implements [`Trajectory`] with
/// `O(log)` random access via the closed-form schedule, and exposes an
/// explicit segment stream for cross-checking.
///
/// # Example
///
/// ```
/// use rvz_search::UniversalSearch;
/// use rvz_trajectory::Trajectory;
///
/// let s = UniversalSearch;
/// assert_eq!(s.position(0.0), rvz_geometry::Vec2::ZERO);
/// assert_eq!(s.speed_bound(), 1.0);
/// assert_eq!(s.duration(), None); // runs forever
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UniversalSearch;

/// Introspection result of [`UniversalSearch::locate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// Round index `k ≥ 1`.
    pub round: u32,
    /// Global time at which round `k` began (`= rounds_total(k−1)`).
    pub round_start: f64,
    /// Phase within the round.
    pub phase: RoundPhase,
}

impl UniversalSearch {
    /// Global start time of round `k` (`k ≥ 1`): `F(k−1) = 3(π+1)(k−1)2^{k+1}`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or `k − 1 > MAX_ROUND`.
    pub fn round_start(k: u32) -> f64 {
        assert!(k >= 1, "rounds are numbered from 1");
        times::rounds_total(k - 1)
    }

    /// The round index active at global time `t`.
    ///
    /// # Panics
    ///
    /// Panics for negative/NaN `t` or `t` beyond the supported horizon
    /// (`rounds_total(MAX_ROUND)`).
    pub fn round_at(t: f64) -> u32 {
        assert!(t >= 0.0 && !t.is_nan(), "time must be >= 0, got {t}");
        for k in 1..=times::MAX_ROUND {
            if t < times::rounds_total(k) {
                return k;
            }
        }
        panic!(
            "time {t} beyond the supported horizon {}",
            times::rounds_total(times::MAX_ROUND)
        );
    }

    /// The segment active at global time `t`, with its global start time.
    ///
    /// This is the closed-form random access that the simulator uses; it
    /// agrees exactly with the lazily enumerated [`UniversalSearch::segments`]
    /// stream (property-tested).
    pub fn segment_at(t: f64) -> (f64, Segment) {
        let k = Self::round_at(t);
        let round_start = Self::round_start(k);
        let (local_start, seg) = RoundSchedule::new(k).segment_at(t - round_start);
        (round_start + local_start, seg)
    }

    /// Rich phase introspection at global time `t`.
    pub fn locate(t: f64) -> Location {
        let k = Self::round_at(t);
        let round_start = Self::round_start(k);
        Location {
            round: k,
            round_start,
            phase: RoundSchedule::new(k).locate(t - round_start),
        }
    }

    /// The infinite explicit segment stream of Algorithm 4
    /// (`Search(1), Search(2), …`). Θ(4^k) segments for round `k`; use
    /// only for bounded prefixes.
    pub fn segments() -> impl Iterator<Item = Segment> {
        (1..=times::MAX_ROUND).flat_map(|k| RoundSchedule::new(k).segments().collect::<Vec<_>>())
    }

    /// An upper bound on the robot's distance from the origin anywhere
    /// in the global interval `[t0, t1]` — the closed-form certificate
    /// behind [`UniversalSearchCursor`]'s swept envelope.
    ///
    /// If the interval stays within one round this is that round's
    /// [`RoundSchedule::reach`] at `t1` (radii never shrink within a
    /// round); across rounds, every earlier round is bounded by
    /// `2^{k₁−1}`. Times beyond the supported schedule horizon fall back
    /// to the global maximum `2^{MAX_ROUND}` instead of panicking, so
    /// envelope queries may look arbitrarily far ahead.
    pub fn reach_between(t0: f64, t1: f64) -> f64 {
        let t1 = t1.max(t0);
        if t1 >= times::rounds_total(times::MAX_ROUND) {
            return rvz_numerics::pow2i(times::MAX_ROUND as i64);
        }
        let k1 = Self::round_at(t1);
        let bound = RoundSchedule::new(k1).reach(t1 - Self::round_start(k1));
        if t0 >= Self::round_start(k1) || k1 == 1 {
            bound
        } else {
            bound.max(rvz_numerics::pow2i(k1 as i64 - 1))
        }
    }
}

impl Trajectory for UniversalSearch {
    fn position(&self, t: f64) -> Vec2 {
        let (start, seg) = Self::segment_at(t);
        seg.position_at(t - start)
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }
}

/// The [`MonotoneTrajectory`] cursor of [`UniversalSearch`].
///
/// Caches the active round `k` (advanced incrementally instead of
/// re-scanning `round_at` every query) and the active segment with its
/// global span, so a probe that stays inside the current segment costs
/// O(1); a segment transition costs one `O(log)` closed-form lookup.
#[derive(Debug, Clone)]
pub struct UniversalSearchCursor {
    /// Active round index (`≥ 1`).
    round: u32,
    /// `rounds_total(round − 1)` — global start of the active round.
    round_start: f64,
    /// `rounds_total(round)` — global end of the active round.
    round_end: f64,
    /// Sequential pointer into the active round's segment sequence.
    round_cursor: RoundCursor,
    /// Active segment with its global start, and its global end.
    segment: Segment,
    segment_start: f64,
    segment_end: f64,
    guard: MonotoneGuard,
}

impl UniversalSearchCursor {
    fn new() -> Self {
        UniversalSearchCursor {
            round: 1,
            round_start: 0.0,
            round_end: times::rounds_total(1),
            round_cursor: RoundCursor::new(1),
            // A sentinel forcing a lookup on the first probe.
            segment: Segment::wait(Vec2::ZERO, 0.0),
            segment_start: 0.0,
            segment_end: -1.0,
            guard: MonotoneGuard::default(),
        }
    }

    /// Refreshes the cached round/segment so that the last query time `t`
    /// falls inside `[segment_start, segment_end)`.
    fn refresh(&mut self, t: f64) {
        // Advance the round incrementally; queries are non-decreasing, so
        // scanning forward from the cached round reproduces `round_at`.
        let mut round_changed = false;
        while t >= self.round_end {
            assert!(
                self.round < times::MAX_ROUND,
                "time {t} beyond the supported horizon {}",
                times::rounds_total(times::MAX_ROUND)
            );
            self.round += 1;
            self.round_start = self.round_end;
            self.round_end = times::rounds_total(self.round);
            round_changed = true;
        }
        if round_changed {
            self.round_cursor = RoundCursor::new(self.round);
        }
        // The round-total closed forms round independently of the round
        // duration; clamp strictly inside so an ulp-edge query resolves
        // to the terminal wait instead of tripping the range assert.
        let duration = self.round_cursor.schedule().duration();
        let local = (t - self.round_start).clamp(0.0, duration * (1.0 - f64::EPSILON));
        let (local_start, seg) = self.round_cursor.segment_at(local);
        self.segment = seg;
        self.segment_start = self.round_start + local_start;
        // Cap at the round boundary: the terminal wait's nominal duration
        // can overshoot the closed-form round end by an ulp.
        self.segment_end = (self.segment_start + seg.duration()).min(self.round_end);
    }
}

impl Cursor for UniversalSearchCursor {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        if t >= self.segment_end {
            self.refresh(t);
        }
        let u = t - self.segment_start;
        Probe {
            position: self.segment.position_at(u),
            piece_end: self.segment_end,
            motion: segment_motion(&self.segment, u),
        }
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }

    /// Two tiers: an interval inside the cached segment gets the exact
    /// chunk disk (tight even on the long arcs of deep rounds); anything
    /// wider gets the origin-centered schedule bound
    /// [`UniversalSearch::reach_between`], which skips whole sub-rounds
    /// and rounds without visiting their Θ(4ᵏ) segments.
    fn envelope(&mut self, t0: f64, t1: f64) -> rvz_geometry::Disk {
        if t0 >= self.segment_start && t1 <= self.segment_end {
            return self
                .segment
                .chunk_disk(t0 - self.segment_start, t1 - self.segment_start);
        }
        rvz_geometry::Disk::new(Vec2::ZERO, UniversalSearch::reach_between(t0, t1))
    }
}

impl MonotoneTrajectory for UniversalSearch {
    type Cursor<'a> = UniversalSearchCursor;

    fn cursor(&self) -> UniversalSearchCursor {
        UniversalSearchCursor::new()
    }
}

impl rvz_trajectory::Compile for UniversalSearch {
    /// Round and sub-round starts — the dyadic hierarchy the compiled
    /// engine seeds its pruning windows with.
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        let mut marks = Vec::new();
        for k in 1..=times::MAX_ROUND {
            let start = Self::round_start(k);
            if start > horizon {
                break;
            }
            for j in 0..=2 * k {
                let s = start + times::subround_start(k, j);
                if s > horizon {
                    break;
                }
                marks.push(s);
            }
        }
        marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use rvz_trajectory::StreamCursor;

    #[test]
    fn starts_at_origin_heading_out() {
        let s = UniversalSearch;
        assert_eq!(s.position(0.0), Vec2::ZERO);
        // First motion is along +x toward radius 1/2.
        let p = s.position(0.25);
        assert_eq!(p, Vec2::new(0.25, 0.0));
    }

    #[test]
    fn round_boundaries() {
        assert_eq!(UniversalSearch::round_start(1), 0.0);
        assert_approx_eq!(UniversalSearch::round_start(2), times::round_duration(1));
        assert_eq!(UniversalSearch::round_at(0.0), 1);
        let just_before = times::round_duration(1) * (1.0 - 1e-12);
        assert_eq!(UniversalSearch::round_at(just_before), 1);
        assert_eq!(UniversalSearch::round_at(times::round_duration(1)), 2);
    }

    #[test]
    fn position_at_round_boundary_is_origin() {
        // Every round ends (after its wait) at the origin.
        let s = UniversalSearch;
        for k in 1..=4 {
            let t = UniversalSearch::round_start(k);
            assert!(
                s.position(t).norm() < 1e-9,
                "round {k} does not begin at the origin"
            );
        }
    }

    /// The closed-form random access must agree with sequentially walking
    /// the explicit segment stream — this validates all the index algebra.
    #[test]
    fn random_access_matches_stream_cursor() {
        let s = UniversalSearch;
        let horizon = times::rounds_total(3); // covers rounds 1..=3
        let mut cursor = StreamCursor::new(UniversalSearch::segments());
        let n = 2000;
        for i in 0..n {
            let t = horizon * (i as f64) / (n as f64);
            let direct = s.position(t);
            let streamed = cursor.position(t);
            assert!(
                direct.distance(streamed) < 1e-7,
                "mismatch at t={t}: {direct} vs {streamed}"
            );
        }
    }

    #[test]
    fn cursor_matches_random_access() {
        use rvz_trajectory::monotone::{Cursor as _, MonotoneTrajectory as _};
        let s = UniversalSearch;
        let mut cursor = s.cursor();
        let horizon = times::rounds_total(3);
        let n = 4000;
        for i in 0..=n {
            let t = horizon * (i as f64) / (n as f64);
            let p = cursor.probe(t);
            let direct = s.position(t);
            assert!(
                p.position.distance(direct) < 1e-9,
                "mismatch at t={t}: {} vs {direct}",
                p.position
            );
            assert!(p.piece_end > t, "stale piece end at t={t}");
        }
    }

    #[test]
    fn locate_reports_round_and_phase() {
        let loc = UniversalSearch::locate(0.1);
        assert_eq!(loc.round, 1);
        assert_eq!(loc.round_start, 0.0);
        assert!(matches!(
            loc.phase,
            RoundPhase::SubRound {
                j: 0,
                circle: 0,
                ..
            }
        ));
        // Inside round 2's wait.
        let t = UniversalSearch::round_start(2) + RoundSchedule::new(2).wait_start() + 1.0;
        let loc = UniversalSearch::locate(t);
        assert_eq!(loc.round, 2);
        assert_eq!(loc.phase, RoundPhase::Wait);
    }

    #[test]
    #[should_panic(expected = "time must be >= 0")]
    fn negative_time_rejected() {
        let _ = UniversalSearch::round_at(-1.0);
    }

    #[test]
    fn reach_between_bounds_dense_samples() {
        let s = UniversalSearch;
        let horizon = times::rounds_total(3);
        // Deterministic pseudo-random windows (LCG), checked against a
        // dense sample of the true positions.
        let mut state = 0x9E3779B97F4A7C15_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1_u64 << 53) as f64
        };
        for _ in 0..200 {
            let a = next() * horizon;
            let b = next() * horizon;
            let (t0, t1) = if a <= b { (a, b) } else { (b, a) };
            let bound = UniversalSearch::reach_between(t0, t1);
            for i in 0..=40 {
                let t = t0 + (t1 - t0) * i as f64 / 40.0;
                let r = s.position(t).norm();
                assert!(
                    r <= bound + 1e-9,
                    "|pos({t})| = {r} > bound {bound} for [{t0}, {t1}]"
                );
            }
        }
    }

    #[test]
    fn reach_beyond_horizon_caps_at_global_maximum() {
        let far = times::rounds_total(times::MAX_ROUND);
        assert_eq!(
            UniversalSearch::reach_between(0.0, far * 2.0),
            (times::MAX_ROUND as f64).exp2()
        );
    }

    #[test]
    fn cursor_envelope_contains_positions() {
        use rvz_trajectory::monotone::{Cursor as _, MonotoneTrajectory as _};
        let s = UniversalSearch;
        let mut cursor = s.cursor();
        let horizon = times::rounds_total(3);
        let mut t0 = 0.0;
        while t0 < horizon {
            let t1 = (t0 + 7.3).min(horizon);
            let disk = cursor.envelope(t0, t1);
            for i in 0..=20 {
                let t = t0 + (t1 - t0) * i as f64 / 20.0;
                assert!(
                    disk.contains(s.position(t), 1e-9),
                    "envelope [{t0}, {t1}] misses t={t}"
                );
            }
            t0 += 11.9;
        }
    }

    #[test]
    fn unit_speed_between_samples() {
        let s = UniversalSearch;
        let mut prev = s.position(0.0);
        let dt = 0.05;
        let mut t = 0.0;
        while t < 100.0 {
            t += dt;
            let cur = s.position(t);
            assert!(
                prev.distance(cur) <= dt + 1e-9,
                "speed bound violated near t={t}"
            );
            prev = cur;
        }
    }
}
