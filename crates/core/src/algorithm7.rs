//! Algorithms 5, 6 and 7: `SearchAll`, `SearchAllRev`, and the universal
//! wait-and-search rendezvous trajectory.
//!
//! Algorithm 7 proceeds in rounds `n = 1, 2, …`:
//!
//! 1. **inactive** — wait at the start point for `2S(n)`;
//! 2. **active** — perform `SearchAll(n)` (rounds `Search(1)…Search(n)` in
//!    order, Algorithm 5) then `SearchAllRev(n)` (the same rounds in
//!    reverse order `Search(n)…Search(1)`, Algorithm 6).
//!
//! Running both the forward and the reversed sweep is what makes the
//! overlap argument of Lemmas 9/10 work in *both* alignment cases
//! (Figure 3): whichever end of the active phase falls inside the other
//! robot's inactive window contains a complete prefix `Search(1..=n*)`
//! (forward) or suffix `Search(n*..=1)` (reverse) — either way the full
//! low-round sweep that finds a stationary robot runs while the other
//! robot actually is stationary.
//!
//! Like Algorithm 4, the trajectory is infinite with Θ(4ⁿ) segments per
//! round, so [`WaitAndSearch`] provides `O(log)` closed-form random
//! access plus an explicit segment stream for cross-checks.

use crate::phases::{PhaseSchedule, MAX_PHASE_ROUND};
use rvz_geometry::Vec2;
use rvz_search::{times, RoundSchedule};
use rvz_trajectory::{Segment, Trajectory};

/// The Algorithm 7 trajectory (a ZST — the algorithm is parameter-free).
///
/// By Theorem 4 this is the paper's **universal** rendezvous algorithm:
/// it succeeds whenever `τ ≠ 1`, or `v ≠ 1`, or `χ = +1 ∧ φ ≠ 0`,
/// without knowing which.
///
/// # Example
///
/// ```
/// use rvz_core::{WaitAndSearch, PhaseSchedule};
/// use rvz_trajectory::Trajectory;
/// use rvz_geometry::Vec2;
///
/// let algo = WaitAndSearch;
/// // During round 1's inactive phase the robot sits at the origin.
/// assert_eq!(algo.position(0.5 * PhaseSchedule::active_start(1)), Vec2::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WaitAndSearch;

/// Introspection of Algorithm 7 at a time instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm7Phase {
    /// Waiting at the start point (round `n`'s inactive phase).
    Inactive {
        /// The Algorithm 7 round `n`.
        n: u32,
    },
    /// Inside `SearchAll(n)`, currently executing `Search(k)`.
    Forward {
        /// The Algorithm 7 round `n`.
        n: u32,
        /// The `Search(k)` block being executed (`1 ≤ k ≤ n`).
        k: u32,
    },
    /// Inside `SearchAllRev(n)`, currently executing `Search(k)`.
    Reverse {
        /// The Algorithm 7 round `n`.
        n: u32,
        /// The `Search(k)` block being executed (`n ≥ k ≥ 1`).
        k: u32,
    },
}

impl WaitAndSearch {
    /// The `Search(k)` block index inside a `SearchAll(n)` at local time
    /// `u ∈ [0, S(n))`, together with the block's local start time.
    fn forward_block(n: u32, u: f64) -> (u32, f64) {
        debug_assert!(u >= 0.0 && u < PhaseSchedule::search_all_duration(n));
        for k in 1..=n {
            if u < times::rounds_total(k) {
                return (k, times::rounds_total(k - 1));
            }
        }
        // Float drift at the upper edge: clamp to the final block.
        (n, times::rounds_total(n - 1))
    }

    /// The `Search(k)` block inside a `SearchAllRev(n)` at local time
    /// `u ∈ [0, S(n))`: block `k` occupies `[S(n)−F(k), S(n)−F(k−1))`.
    fn reverse_block(n: u32, u: f64) -> (u32, f64) {
        let s_n = PhaseSchedule::search_all_duration(n);
        debug_assert!(u >= 0.0 && u < s_n);
        let remaining = s_n - u;
        for k in 1..=n {
            if times::rounds_total(k) >= remaining {
                return (k, s_n - times::rounds_total(k));
            }
        }
        (n, 0.0)
    }

    /// The segment active at global time `t`, with its global start time.
    ///
    /// Exactly matches the explicit [`WaitAndSearch::segments`] stream
    /// (property-tested) but costs `O(log)` regardless of `t`.
    pub fn segment_at(t: f64) -> (f64, Segment) {
        let n = PhaseSchedule::round_at(t);
        let i_n = PhaseSchedule::inactive_start(n);
        let a_n = PhaseSchedule::active_start(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        if t < a_n {
            return (i_n, Segment::wait(Vec2::ZERO, 2.0 * s_n));
        }
        if t < a_n + s_n {
            // SearchAll(n).
            let u = t - a_n;
            let (k, block_start) = Self::forward_block(n, u);
            let (local_start, seg) = RoundSchedule::new(k).segment_at(u - block_start);
            (a_n + block_start + local_start, seg)
        } else {
            // SearchAllRev(n).
            let rev_start = a_n + s_n;
            let u = t - rev_start;
            let (k, block_start) = Self::reverse_block(n, u);
            let (local_start, seg) = RoundSchedule::new(k).segment_at(u - block_start);
            (rev_start + block_start + local_start, seg)
        }
    }

    /// Which phase and `Search(k)` block is active at global time `t`.
    pub fn locate(t: f64) -> Algorithm7Phase {
        let n = PhaseSchedule::round_at(t);
        let a_n = PhaseSchedule::active_start(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        if t < a_n {
            Algorithm7Phase::Inactive { n }
        } else if t < a_n + s_n {
            let (k, _) = Self::forward_block(n, t - a_n);
            Algorithm7Phase::Forward { n, k }
        } else {
            let (k, _) = Self::reverse_block(n, t - (a_n + s_n));
            Algorithm7Phase::Reverse { n, k }
        }
    }

    /// Explicit segment stream for rounds `1..=max_n` (Θ(4ⁿ) items per
    /// round — tests and small demos only).
    ///
    /// # Panics
    ///
    /// Panics when `max_n` exceeds [`MAX_PHASE_ROUND`].
    pub fn segments(max_n: u32) -> impl Iterator<Item = Segment> {
        assert!(max_n <= MAX_PHASE_ROUND, "max_n {max_n} too large");
        (1..=max_n).flat_map(|n| {
            let wait = std::iter::once(Segment::wait(
                Vec2::ZERO,
                2.0 * PhaseSchedule::search_all_duration(n),
            ));
            let forward =
                (1..=n).flat_map(|k| RoundSchedule::new(k).segments().collect::<Vec<_>>());
            let reverse = (1..=n)
                .rev()
                .flat_map(|k| RoundSchedule::new(k).segments().collect::<Vec<_>>());
            wait.chain(forward).chain(reverse)
        })
    }
}

impl Trajectory for WaitAndSearch {
    fn position(&self, t: f64) -> Vec2 {
        let (start, seg) = Self::segment_at(t);
        seg.position_at(t - start)
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use rvz_trajectory::StreamCursor;

    #[test]
    fn inactive_phase_is_at_origin() {
        let algo = WaitAndSearch;
        // All of [0, A(1)) is waiting.
        let a1 = PhaseSchedule::active_start(1);
        for f in [0.0, 0.3, 0.9] {
            assert_eq!(algo.position(f * a1), Vec2::ZERO);
        }
        assert_eq!(
            WaitAndSearch::locate(0.5 * a1),
            Algorithm7Phase::Inactive { n: 1 }
        );
    }

    #[test]
    fn forward_blocks_run_in_increasing_order() {
        // In round 3's SearchAll the blocks are Search(1), Search(2), Search(3).
        let a3 = PhaseSchedule::active_start(3);
        let mut seen = Vec::new();
        for k in 1..=3u32 {
            let t = a3 + times::rounds_total(k - 1) + 1.0;
            match WaitAndSearch::locate(t) {
                Algorithm7Phase::Forward { n: 3, k: found } => seen.push(found),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn reverse_blocks_run_in_decreasing_order() {
        let n = 3u32;
        let rev_start = PhaseSchedule::active_start(n) + PhaseSchedule::search_all_duration(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        let mut seen = Vec::new();
        for k in (1..=n).rev() {
            // Block k occupies [S(n)−F(k), S(n)−F(k−1)); sample just inside.
            let u = s_n - times::rounds_total(k) + 1.0;
            match WaitAndSearch::locate(rev_start + u) {
                Algorithm7Phase::Reverse { n: 3, k: found } => seen.push(found),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![3, 2, 1]);
    }

    #[test]
    fn reverse_phase_ends_exactly_at_round_end() {
        // The last reverse block (Search(1)) must finish at I(n+1).
        let n = 2u32;
        let end = PhaseSchedule::round_end(n);
        let algo = WaitAndSearch;
        // Just before the end the robot is finishing Search(1)'s wait at origin.
        let p = algo.position(end * (1.0 - 1e-12));
        assert!(p.norm() < 1e-6);
        // Exactly at the end, round n+1's inactive phase begins (origin too).
        assert_eq!(algo.position(end), Vec2::ZERO);
    }

    /// The closed-form random access agrees with the explicit stream for
    /// the first three rounds — validating the forward/reverse indexing.
    #[test]
    fn random_access_matches_stream() {
        let algo = WaitAndSearch;
        let horizon = PhaseSchedule::round_end(3);
        let mut cursor = StreamCursor::new(WaitAndSearch::segments(3));
        let n = 3000;
        for i in 0..n {
            let t = horizon * (i as f64) / (n as f64);
            let direct = algo.position(t);
            let streamed = cursor.position(t);
            assert!(
                direct.distance(streamed) < 1e-6,
                "mismatch at t={t}: {direct} vs {streamed}"
            );
        }
    }

    #[test]
    fn stream_duration_matches_schedule() {
        for max_n in 1..=3u32 {
            let total: f64 = WaitAndSearch::segments(max_n).map(|s| s.duration()).sum();
            assert_approx_eq!(total, PhaseSchedule::round_end(max_n), 1e-9);
        }
    }

    #[test]
    fn active_phase_midpoint_symmetry() {
        // SearchAll(n) and SearchAllRev(n) have equal durations, so the
        // active phase midpoint is the forward/reverse boundary.
        let n = 2u32;
        let a = PhaseSchedule::active_start(n);
        let s = PhaseSchedule::search_all_duration(n);
        match WaitAndSearch::locate(a + s - 1.0) {
            Algorithm7Phase::Forward { k, .. } => assert_eq!(k, n),
            other => panic!("unexpected {other:?}"),
        }
        match WaitAndSearch::locate(a + s + 1.0) {
            Algorithm7Phase::Reverse { k, .. } => assert_eq!(k, n),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unit_speed_over_phase_boundaries() {
        let algo = WaitAndSearch;
        let dt = 0.05;
        // Sample across the round-1 → round-2 boundary region.
        let start = PhaseSchedule::active_start(1);
        let mut prev = algo.position(start);
        let mut t = start;
        while t < PhaseSchedule::active_start(2) + 50.0 {
            t += dt;
            let cur = algo.position(t);
            assert!(prev.distance(cur) <= dt + 1e-9, "speed violated at t={t}");
            prev = cur;
        }
    }
}
