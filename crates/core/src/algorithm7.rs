//! Algorithms 5, 6 and 7: `SearchAll`, `SearchAllRev`, and the universal
//! wait-and-search rendezvous trajectory.
//!
//! Algorithm 7 proceeds in rounds `n = 1, 2, …`:
//!
//! 1. **inactive** — wait at the start point for `2S(n)`;
//! 2. **active** — perform `SearchAll(n)` (rounds `Search(1)…Search(n)` in
//!    order, Algorithm 5) then `SearchAllRev(n)` (the same rounds in
//!    reverse order `Search(n)…Search(1)`, Algorithm 6).
//!
//! Running both the forward and the reversed sweep is what makes the
//! overlap argument of Lemmas 9/10 work in *both* alignment cases
//! (Figure 3): whichever end of the active phase falls inside the other
//! robot's inactive window contains a complete prefix `Search(1..=n*)`
//! (forward) or suffix `Search(n*..=1)` (reverse) — either way the full
//! low-round sweep that finds a stationary robot runs while the other
//! robot actually is stationary.
//!
//! Like Algorithm 4, the trajectory is infinite with Θ(4ⁿ) segments per
//! round, so [`WaitAndSearch`] provides `O(log)` closed-form random
//! access plus an explicit segment stream for cross-checks.

use crate::phases::{PhaseSchedule, MAX_PHASE_ROUND};
use rvz_geometry::Vec2;
use rvz_search::{times, RoundCursor, RoundSchedule};
use rvz_trajectory::monotone::{segment_motion, Cursor, MonotoneGuard, MonotoneTrajectory, Probe};
use rvz_trajectory::{Segment, Trajectory};

/// The Algorithm 7 trajectory (a ZST — the algorithm is parameter-free).
///
/// By Theorem 4 this is the paper's **universal** rendezvous algorithm:
/// it succeeds whenever `τ ≠ 1`, or `v ≠ 1`, or `χ = +1 ∧ φ ≠ 0`,
/// without knowing which.
///
/// # Example
///
/// ```
/// use rvz_core::{WaitAndSearch, PhaseSchedule};
/// use rvz_trajectory::Trajectory;
/// use rvz_geometry::Vec2;
///
/// let algo = WaitAndSearch;
/// // During round 1's inactive phase the robot sits at the origin.
/// assert_eq!(algo.position(0.5 * PhaseSchedule::active_start(1)), Vec2::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WaitAndSearch;

/// Introspection of Algorithm 7 at a time instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm7Phase {
    /// Waiting at the start point (round `n`'s inactive phase).
    Inactive {
        /// The Algorithm 7 round `n`.
        n: u32,
    },
    /// Inside `SearchAll(n)`, currently executing `Search(k)`.
    Forward {
        /// The Algorithm 7 round `n`.
        n: u32,
        /// The `Search(k)` block being executed (`1 ≤ k ≤ n`).
        k: u32,
    },
    /// Inside `SearchAllRev(n)`, currently executing `Search(k)`.
    Reverse {
        /// The Algorithm 7 round `n`.
        n: u32,
        /// The `Search(k)` block being executed (`n ≥ k ≥ 1`).
        k: u32,
    },
}

impl WaitAndSearch {
    /// The `Search(k)` block index inside a `SearchAll(n)` at local time
    /// `u ∈ [0, S(n))`, together with the block's local start time.
    fn forward_block(n: u32, u: f64) -> (u32, f64) {
        debug_assert!(u >= 0.0 && u < PhaseSchedule::search_all_duration(n));
        for k in 1..=n {
            if u < times::rounds_total(k) {
                return (k, times::rounds_total(k - 1));
            }
        }
        // Float drift at the upper edge: clamp to the final block.
        (n, times::rounds_total(n - 1))
    }

    /// The `Search(k)` block inside a `SearchAllRev(n)` at local time
    /// `u ∈ [0, S(n))`: block `k` occupies `[S(n)−F(k), S(n)−F(k−1))`.
    fn reverse_block(n: u32, u: f64) -> (u32, f64) {
        let s_n = PhaseSchedule::search_all_duration(n);
        debug_assert!(u >= 0.0 && u < s_n);
        let remaining = s_n - u;
        for k in 1..=n {
            if times::rounds_total(k) >= remaining {
                return (k, s_n - times::rounds_total(k));
            }
        }
        (n, 0.0)
    }

    /// The segment active at global time `t`, with its global start time.
    ///
    /// Exactly matches the explicit [`WaitAndSearch::segments`] stream
    /// (property-tested) but costs `O(log)` regardless of `t`.
    pub fn segment_at(t: f64) -> (f64, Segment) {
        let n = PhaseSchedule::round_at(t);
        let i_n = PhaseSchedule::inactive_start(n);
        let a_n = PhaseSchedule::active_start(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        if t < a_n {
            return (i_n, Segment::wait(Vec2::ZERO, 2.0 * s_n));
        }
        if t < a_n + s_n {
            // SearchAll(n).
            let u = t - a_n;
            let (k, block_start) = Self::forward_block(n, u);
            let (local_start, seg) = RoundSchedule::new(k).segment_at(u - block_start);
            (a_n + block_start + local_start, seg)
        } else {
            // SearchAllRev(n).
            let rev_start = a_n + s_n;
            let u = t - rev_start;
            let (k, block_start) = Self::reverse_block(n, u);
            let (local_start, seg) = RoundSchedule::new(k).segment_at(u - block_start);
            (rev_start + block_start + local_start, seg)
        }
    }

    /// Which phase and `Search(k)` block is active at global time `t`.
    pub fn locate(t: f64) -> Algorithm7Phase {
        let n = PhaseSchedule::round_at(t);
        let a_n = PhaseSchedule::active_start(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        if t < a_n {
            Algorithm7Phase::Inactive { n }
        } else if t < a_n + s_n {
            let (k, _) = Self::forward_block(n, t - a_n);
            Algorithm7Phase::Forward { n, k }
        } else {
            let (k, _) = Self::reverse_block(n, t - (a_n + s_n));
            Algorithm7Phase::Reverse { n, k }
        }
    }

    /// An upper bound on the robot's distance from its start point
    /// anywhere in the global interval `[t0, t1]` — the closed-form
    /// certificate behind [`WaitAndSearchCursor`]'s swept envelope.
    ///
    /// The bound follows the phase structure top-down. Inactive spans
    /// are exactly `0`. Within `SearchAll(n)` the `Search(k)` blocks
    /// sweep non-decreasing radii, so an interval ending in block `k₁`
    /// is bounded by that block's [`RoundSchedule::reach`] (plus
    /// `2^{k₁−1}` when the interval starts in an earlier block). Within
    /// `SearchAllRev(n)` the blocks *shrink*, so an interval starting in
    /// block `k₀` is bounded by `2^{k₀}`. Intervals spanning the
    /// forward/reverse boundary contain a complete `Search(n)` and are
    /// bounded by `2ⁿ`; intervals spanning rounds add `2^{n₁−1}` for the
    /// completed rounds. Beyond the supported horizon the global
    /// maximum `2^{MAX_PHASE_ROUND}` applies instead of a panic.
    pub fn reach_between(t0: f64, t1: f64) -> f64 {
        let t1 = t1.max(t0);
        if t1 >= PhaseSchedule::inactive_start(MAX_PHASE_ROUND + 1) {
            return (MAX_PHASE_ROUND as f64).exp2();
        }
        let n1 = PhaseSchedule::round_at(t1);
        let start1 = PhaseSchedule::inactive_start(n1);
        if t0 >= start1 {
            Self::round_reach_between(n1, t0, t1)
        } else {
            // Rounds before n₁ (n₁ ≥ 2 here) reach at most 2^{n₁−1}.
            Self::round_reach_between(n1, start1, t1).max(((n1 - 1) as f64).exp2())
        }
    }

    /// [`WaitAndSearch::reach_between`] restricted to one Algorithm 7
    /// round: both times must lie in round `n`.
    fn round_reach_between(n: u32, t0: f64, t1: f64) -> f64 {
        let a_n = PhaseSchedule::active_start(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        if t1 < a_n {
            // Entirely inside the inactive wait: pinned to the start.
            return 0.0;
        }
        let mid = a_n + s_n;
        if t1 < mid {
            // Ends inside SearchAll(n), in forward block k₁.
            let u1 = t1 - a_n;
            let (k1, f_km1) = Self::forward_block(n, u1);
            let block_reach = RoundSchedule::new(k1).reach(u1 - f_km1);
            let same_block = t0 >= a_n && {
                let (k0, _) = Self::forward_block(n, (t0 - a_n).min(u1));
                k0 == k1
            };
            if same_block || k1 == 1 {
                block_reach
            } else {
                block_reach.max(((k1 - 1) as f64).exp2())
            }
        } else {
            // Ends inside SearchAllRev(n), in reverse block k₁.
            let u1 = t1 - mid;
            let (k1, block_start) = Self::reverse_block(n, u1);
            if t0 < mid {
                // The interval contains the forward/reverse boundary and
                // with it a complete Search(n).
                return (n as f64).exp2();
            }
            let u0 = (t0 - mid).min(u1);
            let (k0, _) = Self::reverse_block(n, u0);
            if k0 == k1 {
                RoundSchedule::new(k1).reach(u1 - block_start)
            } else {
                // Block k₀ runs to completion inside the interval and
                // dominates every later (smaller) block.
                (k0 as f64).exp2()
            }
        }
    }

    /// Explicit segment stream for rounds `1..=max_n` (Θ(4ⁿ) items per
    /// round — tests and small demos only).
    ///
    /// # Panics
    ///
    /// Panics when `max_n` exceeds [`MAX_PHASE_ROUND`].
    pub fn segments(max_n: u32) -> impl Iterator<Item = Segment> {
        assert!(max_n <= MAX_PHASE_ROUND, "max_n {max_n} too large");
        (1..=max_n).flat_map(|n| {
            let wait = std::iter::once(Segment::wait(
                Vec2::ZERO,
                2.0 * PhaseSchedule::search_all_duration(n),
            ));
            let forward =
                (1..=n).flat_map(|k| RoundSchedule::new(k).segments().collect::<Vec<_>>());
            let reverse = (1..=n)
                .rev()
                .flat_map(|k| RoundSchedule::new(k).segments().collect::<Vec<_>>());
            wait.chain(forward).chain(reverse)
        })
    }
}

impl Trajectory for WaitAndSearch {
    fn position(&self, t: f64) -> Vec2 {
        let (start, seg) = Self::segment_at(t);
        seg.position_at(t - start)
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }
}

/// The phase-block a [`WaitAndSearchCursor`] is currently inside, with
/// the data needed to index segments within it without re-deriving the
/// round decomposition.
#[derive(Debug, Clone, Copy)]
enum CursorBlock {
    /// Round `n`'s inactive wait, `[I(n), A(n))`.
    Inactive,
    /// `Search(k)` inside `SearchAll(n)`: local times
    /// `[F(k−1), F(k))` relative to `A(n)`.
    Forward { k: u32, f_km1: f64, f_k: f64 },
    /// `Search(k)` inside `SearchAllRev(n)`: local times
    /// `[S(n)−F(k), S(n)−F(k−1))` relative to `A(n)+S(n)`.
    Reverse { k: u32, f_km1: f64, f_k: f64 },
}

/// The [`MonotoneTrajectory`] cursor of [`WaitAndSearch`].
///
/// Caches three nested levels — the Algorithm 7 round `n`, the active
/// `(n, k)` `Search(k)` block with its [`RoundSchedule`], and the active
/// segment with its global span — and refreshes only the levels a query
/// actually crosses. A probe inside the cached segment is O(1); the
/// linear `round_at`/`forward_block` scans of the random-access path run
/// only on block transitions.
#[derive(Debug, Clone)]
pub struct WaitAndSearchCursor {
    /// Algorithm 7 round `n ≥ 1`.
    n: u32,
    /// `A(n)` — global start of round `n`'s active phase.
    active_start: f64,
    /// `S(n)` — duration of `SearchAll(n)`.
    search_all: f64,
    /// `I(n+1)` — global end of round `n`.
    round_end: f64,
    block: CursorBlock,
    /// Sequential pointer into the active `Search(k)` block, keyed by
    /// `(n, phase, k)` so any block change rebuilds it; blocks are
    /// visited in order, so within a block every segment transition is
    /// an O(1) hop instead of two binary searches.
    block_cursor: Option<(u64, RoundCursor)>,
    /// Active segment with its global span.
    segment: Segment,
    segment_start: f64,
    segment_end: f64,
    guard: MonotoneGuard,
}

/// Cache key for the sequential block pointer.
fn block_key(n: u32, phase: u8, k: u32) -> u64 {
    ((n as u64) << 16) | ((phase as u64) << 8) | k as u64
}

impl WaitAndSearchCursor {
    fn new() -> Self {
        let mut cursor = WaitAndSearchCursor {
            n: 1,
            active_start: 0.0,
            search_all: 0.0,
            round_end: 0.0,
            block: CursorBlock::Inactive,
            block_cursor: None,
            segment: Segment::wait(Vec2::ZERO, 0.0),
            segment_start: 0.0,
            // Sentinel forcing a refresh on the first probe.
            segment_end: -1.0,
            guard: MonotoneGuard::default(),
        };
        cursor.enter_round(1);
        cursor.segment_end = -1.0;
        cursor
    }

    fn enter_round(&mut self, n: u32) {
        self.n = n;
        self.active_start = PhaseSchedule::active_start(n);
        self.search_all = PhaseSchedule::search_all_duration(n);
        self.round_end = PhaseSchedule::round_end(n);
        self.block = CursorBlock::Inactive;
        self.segment = Segment::wait(Vec2::ZERO, 2.0 * self.search_all);
        self.segment_start = PhaseSchedule::inactive_start(n);
        self.segment_end = self.active_start;
    }

    /// Re-derives block and segment caches so the query time `t` lies in
    /// `[segment_start, segment_end)` (modulo ulp slack at phase edges,
    /// where evaluation still clamps correctly).
    fn refresh(&mut self, t: f64) {
        // Advance rounds incrementally; equivalent to `round_at` because
        // queries are non-decreasing.
        while t >= self.round_end {
            assert!(
                self.n < MAX_PHASE_ROUND,
                "time {t} beyond the supported horizon {}",
                PhaseSchedule::inactive_start(MAX_PHASE_ROUND + 1)
            );
            self.enter_round(self.n + 1);
        }
        if t < self.active_start {
            // Round n's inactive wait (`enter_round` cached it already,
            // but a fresh query can also re-enter here after a sentinel).
            self.block = CursorBlock::Inactive;
            self.segment = Segment::wait(Vec2::ZERO, 2.0 * self.search_all);
            self.segment_start = PhaseSchedule::inactive_start(self.n);
            self.segment_end = self.active_start;
            return;
        }
        // Same block decomposition (and, crucially, the same floating-
        // point expressions) as `WaitAndSearch::segment_at`, cached.
        let (k, phase, w, block_global_start, block_global_end) =
            if t < self.active_start + self.search_all {
                let u = t - self.active_start;
                let (k, f_km1) = WaitAndSearch::forward_block(self.n, u);
                let f_k = times::rounds_total(k);
                self.block = CursorBlock::Forward { k, f_km1, f_k };
                (
                    k,
                    1,
                    u - f_km1,
                    self.active_start + f_km1,
                    self.active_start + f_k,
                )
            } else {
                let rev_start = self.active_start + self.search_all;
                let u = t - rev_start;
                let (k, block_start) = WaitAndSearch::reverse_block(self.n, u);
                let f_km1 = times::rounds_total(k - 1);
                let f_k = times::rounds_total(k);
                self.block = CursorBlock::Reverse { k, f_km1, f_k };
                (
                    k,
                    2,
                    u - block_start,
                    rev_start + block_start,
                    rev_start + (self.search_all - f_km1),
                )
            };
        // Independently rounded closed forms can disagree by an ulp at a
        // block edge; clamp strictly inside the round (the edge time sits
        // in the terminal wait, whose position the clamp preserves).
        let w = w.clamp(0.0, times::round_duration(k) * (1.0 - f64::EPSILON));
        let (local_start, seg) = self.block_segment_at(phase, k, w);
        self.segment = seg;
        self.segment_start = block_global_start + local_start;
        self.segment_end = (self.segment_start + seg.duration()).min(block_global_end);
    }

    /// Looks up a segment within the active `Search(k)` block through the
    /// sequential pointer, rebuilding it when the block changed.
    fn block_segment_at(&mut self, phase: u8, k: u32, w: f64) -> (f64, Segment) {
        let key = block_key(self.n, phase, k);
        match &mut self.block_cursor {
            Some((cached, rc)) if *cached == key => rc.segment_at(w),
            slot => {
                *slot = Some((key, RoundCursor::new(k)));
                slot.as_mut().expect("just installed").1.segment_at(w)
            }
        }
    }

    /// Refreshes only the segment when the query stays inside the cached
    /// `(n, k)` block, avoiding the block scans.
    fn refresh_segment_within_block(&mut self, t: f64) -> bool {
        if t >= self.round_end {
            return false;
        }
        let (k, phase, block_global_start, block_global_end) = match self.block {
            CursorBlock::Inactive => return false,
            CursorBlock::Forward { k, f_km1, f_k } => {
                let u = t - self.active_start;
                if !(u >= f_km1 && u < f_k && t < self.active_start + self.search_all) {
                    return false;
                }
                (k, 1, self.active_start + f_km1, self.active_start + f_k)
            }
            CursorBlock::Reverse { k, f_km1, f_k } => {
                let rev_start = self.active_start + self.search_all;
                let u = t - rev_start;
                if !(u >= 0.0 && u >= self.search_all - f_k && u < self.search_all - f_km1) {
                    return false;
                }
                (
                    k,
                    2,
                    rev_start + (self.search_all - f_k),
                    rev_start + (self.search_all - f_km1),
                )
            }
        };
        let local = (t - block_global_start).max(0.0);
        if local >= times::round_duration(k) {
            return false;
        }
        let (local_start, seg) = self.block_segment_at(phase, k, local);
        self.segment = seg;
        self.segment_start = block_global_start + local_start;
        self.segment_end = (self.segment_start + seg.duration()).min(block_global_end);
        true
    }
}

impl Cursor for WaitAndSearchCursor {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        if t >= self.segment_end && !self.refresh_segment_within_block(t) {
            self.refresh(t);
        }
        let u = t - self.segment_start;
        Probe {
            position: self.segment.position_at(u),
            piece_end: self.segment_end,
            motion: segment_motion(&self.segment, u),
        }
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }

    /// Two tiers, mirroring [`crate::WaitAndSearch::segment_at`]'s
    /// decomposition: inside the cached segment the exact chunk disk,
    /// otherwise the origin-centered phase-hierarchy bound
    /// [`WaitAndSearch::reach_between`] (inactive phases collapse to a
    /// point, whole `Search(k)` blocks to their sweep radius).
    fn envelope(&mut self, t0: f64, t1: f64) -> rvz_geometry::Disk {
        if t0 >= self.segment_start && t1 <= self.segment_end {
            return self
                .segment
                .chunk_disk(t0 - self.segment_start, t1 - self.segment_start);
        }
        rvz_geometry::Disk::new(Vec2::ZERO, WaitAndSearch::reach_between(t0, t1))
    }
}

impl MonotoneTrajectory for WaitAndSearch {
    type Cursor<'a> = WaitAndSearchCursor;

    fn cursor(&self) -> WaitAndSearchCursor {
        WaitAndSearchCursor::new()
    }
}

impl rvz_trajectory::Compile for WaitAndSearch {
    /// Phase edges and `Search(k)` block starts — the Algorithm 7
    /// hierarchy the compiled engine seeds its pruning windows with.
    fn round_marks(&self, horizon: f64) -> Vec<f64> {
        let mut marks = Vec::new();
        for n in 1..=MAX_PHASE_ROUND {
            let i_n = PhaseSchedule::inactive_start(n);
            if i_n > horizon {
                break;
            }
            marks.push(i_n);
            let a_n = PhaseSchedule::active_start(n);
            if a_n > horizon {
                continue;
            }
            let s_n = PhaseSchedule::search_all_duration(n);
            for k in 1..=n {
                // Forward block Search(k) starts at A(n) + F(k−1); its
                // reverse twin starts at A(n) + S(n) + (S(n) − F(k)).
                marks.push(a_n + times::rounds_total(k - 1));
                marks.push(a_n + s_n + (s_n - times::rounds_total(k)));
            }
            marks.push(a_n + s_n);
        }
        marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use rvz_trajectory::StreamCursor;

    #[test]
    fn inactive_phase_is_at_origin() {
        let algo = WaitAndSearch;
        // All of [0, A(1)) is waiting.
        let a1 = PhaseSchedule::active_start(1);
        for f in [0.0, 0.3, 0.9] {
            assert_eq!(algo.position(f * a1), Vec2::ZERO);
        }
        assert_eq!(
            WaitAndSearch::locate(0.5 * a1),
            Algorithm7Phase::Inactive { n: 1 }
        );
    }

    #[test]
    fn forward_blocks_run_in_increasing_order() {
        // In round 3's SearchAll the blocks are Search(1), Search(2), Search(3).
        let a3 = PhaseSchedule::active_start(3);
        let mut seen = Vec::new();
        for k in 1..=3u32 {
            let t = a3 + times::rounds_total(k - 1) + 1.0;
            match WaitAndSearch::locate(t) {
                Algorithm7Phase::Forward { n: 3, k: found } => seen.push(found),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn reverse_blocks_run_in_decreasing_order() {
        let n = 3u32;
        let rev_start = PhaseSchedule::active_start(n) + PhaseSchedule::search_all_duration(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        let mut seen = Vec::new();
        for k in (1..=n).rev() {
            // Block k occupies [S(n)−F(k), S(n)−F(k−1)); sample just inside.
            let u = s_n - times::rounds_total(k) + 1.0;
            match WaitAndSearch::locate(rev_start + u) {
                Algorithm7Phase::Reverse { n: 3, k: found } => seen.push(found),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![3, 2, 1]);
    }

    #[test]
    fn reverse_phase_ends_exactly_at_round_end() {
        // The last reverse block (Search(1)) must finish at I(n+1).
        let n = 2u32;
        let end = PhaseSchedule::round_end(n);
        let algo = WaitAndSearch;
        // Just before the end the robot is finishing Search(1)'s wait at origin.
        let p = algo.position(end * (1.0 - 1e-12));
        assert!(p.norm() < 1e-6);
        // Exactly at the end, round n+1's inactive phase begins (origin too).
        assert_eq!(algo.position(end), Vec2::ZERO);
    }

    /// The closed-form random access agrees with the explicit stream for
    /// the first three rounds — validating the forward/reverse indexing.
    #[test]
    fn random_access_matches_stream() {
        let algo = WaitAndSearch;
        let horizon = PhaseSchedule::round_end(3);
        let mut cursor = StreamCursor::new(WaitAndSearch::segments(3));
        let n = 3000;
        for i in 0..n {
            let t = horizon * (i as f64) / (n as f64);
            let direct = algo.position(t);
            let streamed = cursor.position(t);
            assert!(
                direct.distance(streamed) < 1e-6,
                "mismatch at t={t}: {direct} vs {streamed}"
            );
        }
    }

    /// The cursor must agree with the closed-form random access over a
    /// dense grid spanning rounds 1–3, including every phase transition.
    #[test]
    fn cursor_matches_random_access() {
        use rvz_trajectory::monotone::{Cursor as _, MonotoneTrajectory as _};
        let algo = WaitAndSearch;
        let mut cursor = algo.cursor();
        let horizon = PhaseSchedule::round_end(3);
        let n = 6000;
        for i in 0..=n {
            let t = horizon * (i as f64) / (n as f64);
            let p = cursor.probe(t);
            let direct = algo.position(t);
            assert!(
                p.position.distance(direct) < 1e-9,
                "mismatch at t={t}: {} vs {direct}",
                p.position
            );
            assert!(p.piece_end > t, "stale piece end at t={t}");
        }
    }

    /// Queries pinned inside one `Search(k)` block must reuse the cached
    /// block (exercised implicitly: correctness across many queries that
    /// alternate short and long strides).
    #[test]
    fn cursor_survives_irregular_strides() {
        use rvz_trajectory::monotone::{Cursor as _, MonotoneTrajectory as _};
        let algo = WaitAndSearch;
        let mut cursor = algo.cursor();
        let mut t = 0.0;
        let horizon = PhaseSchedule::round_end(2);
        let mut stride = 0.013;
        while t < horizon {
            let p = cursor.probe(t);
            let direct = algo.position(t);
            assert!(p.position.distance(direct) < 1e-9, "mismatch at t={t}");
            // Alternate tiny and large strides to hit both cache paths.
            stride = if stride < 1.0 { stride * 17.0 } else { 0.013 };
            t += stride;
        }
    }

    #[test]
    fn stream_duration_matches_schedule() {
        for max_n in 1..=3u32 {
            let total: f64 = WaitAndSearch::segments(max_n).map(|s| s.duration()).sum();
            assert_approx_eq!(total, PhaseSchedule::round_end(max_n), 1e-9);
        }
    }

    #[test]
    fn active_phase_midpoint_symmetry() {
        // SearchAll(n) and SearchAllRev(n) have equal durations, so the
        // active phase midpoint is the forward/reverse boundary.
        let n = 2u32;
        let a = PhaseSchedule::active_start(n);
        let s = PhaseSchedule::search_all_duration(n);
        match WaitAndSearch::locate(a + s - 1.0) {
            Algorithm7Phase::Forward { k, .. } => assert_eq!(k, n),
            other => panic!("unexpected {other:?}"),
        }
        match WaitAndSearch::locate(a + s + 1.0) {
            Algorithm7Phase::Reverse { k, .. } => assert_eq!(k, n),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reach_between_bounds_dense_samples() {
        let algo = WaitAndSearch;
        let horizon = PhaseSchedule::round_end(3);
        let mut state = 0xD1B54A32D192ED03_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1_u64 << 53) as f64
        };
        for _ in 0..300 {
            let a = next() * horizon;
            let b = next() * horizon;
            let (t0, t1) = if a <= b { (a, b) } else { (b, a) };
            let bound = WaitAndSearch::reach_between(t0, t1);
            for i in 0..=40 {
                let t = t0 + (t1 - t0) * i as f64 / 40.0;
                let r = algo.position(t).norm();
                assert!(
                    r <= bound + 1e-9,
                    "|pos({t})| = {r} > bound {bound} for [{t0}, {t1}]"
                );
            }
        }
    }

    #[test]
    fn reach_between_is_tight_on_structure() {
        // Entirely inside an inactive wait: a point certificate.
        let n = 3;
        let (i_n, a_n) = PhaseSchedule::inactive_interval(n);
        assert_eq!(
            WaitAndSearch::reach_between(i_n + 1.0, a_n - 1.0),
            0.0,
            "inactive phase must have zero reach"
        );
        // An interval inside the first forward block of SearchAll(3)
        // must be bounded by Search(1)'s sweep, not the round's.
        let bound = WaitAndSearch::reach_between(a_n, a_n + 1.0);
        assert!(bound <= 2.0, "early forward block bound {bound}");
        // Crossing the forward/reverse midpoint costs the full 2^n.
        let mid = a_n + PhaseSchedule::search_all_duration(n);
        assert_eq!(WaitAndSearch::reach_between(mid - 1.0, mid + 1.0), 8.0);
    }

    #[test]
    fn cursor_envelope_contains_positions() {
        use rvz_trajectory::monotone::{Cursor as _, MonotoneTrajectory as _};
        let algo = WaitAndSearch;
        let mut cursor = algo.cursor();
        let horizon = PhaseSchedule::round_end(2);
        let mut t0 = 0.0;
        while t0 < horizon {
            let t1 = (t0 + 13.7).min(horizon);
            let disk = cursor.envelope(t0, t1);
            for i in 0..=20 {
                let t = t0 + (t1 - t0) * i as f64 / 20.0;
                assert!(
                    disk.contains(algo.position(t), 1e-9),
                    "envelope [{t0}, {t1}] misses t={t}"
                );
            }
            t0 += 29.3;
        }
    }

    #[test]
    fn unit_speed_over_phase_boundaries() {
        let algo = WaitAndSearch;
        let dt = 0.05;
        // Sample across the round-1 → round-2 boundary region.
        let start = PhaseSchedule::active_start(1);
        let mut prev = algo.position(start);
        let mut t = start;
        while t < PhaseSchedule::active_start(2) + 50.0 {
            t += dt;
            let cur = algo.position(t);
            assert!(prev.distance(cur) <= dt + 1e-9, "speed violated at t={t}");
            prev = cur;
        }
    }
}
