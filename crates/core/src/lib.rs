//! # rvz-core
//!
//! The paper's primary contribution: rendezvous algorithms for two robots
//! with unknown attributes, and the analysis machinery of Sections 3–4.
//!
//! ## What lives here
//!
//! * [`equivalent`] — the *equivalent search trajectory* reduction
//!   (Lemmas 4 and 5): a rendezvous execution under attributes
//!   `(v, φ, χ)` (with symmetric clocks) is exactly a single-robot search
//!   under the linear map `T∘ = I − v·Rot(φ)·Refl(χ)`, whose QR
//!   factorization isolates the symmetry-breaking scale `µ`.
//! * [`bounds`] — the closed-form rendezvous time bounds of Theorem 2.
//! * [`phases`] — Lemma 8: the wait/search phase schedule of Algorithm 7
//!   (`I(n)`, `A(n)`, `S(n)`).
//! * [`algorithm7`] — Algorithms 5, 6 and 7: `SearchAll`, `SearchAllRev`
//!   and the universal [`WaitAndSearch`] trajectory, with `O(log)`
//!   closed-form random access like `rvz-search`'s Algorithm 4.
//! * [`overlap`] — Lemmas 9–13: the phase-overlap algebra that proves
//!   Theorem 3, including the Lambert-W round bound and the explicit
//!   rendezvous-round predictor `k*`.
//!
//! ## The universal algorithm
//!
//! Theorem 4: [`WaitAndSearch`] solves rendezvous in finite time whenever
//! rendezvous is feasible at all (`τ ≠ 1`, or `v ≠ 1`, or `χ = +1` with
//! `φ ≠ 0`), with **no knowledge of which attribute differs** — the
//! trajectory value is a ZST with no parameters.
//!
//! ```
//! use rvz_core::WaitAndSearch;
//! use rvz_trajectory::Trajectory;
//!
//! let algo = WaitAndSearch;
//! // Round 1 has no wait (I(1) = 0 ⇒ 2S(1) of waiting first): the robot
//! // stays at the origin for the whole first inactive phase.
//! assert_eq!(algo.position(1.0), rvz_geometry::Vec2::ZERO);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod algorithm7;
pub mod analytic;
pub mod bounds;
pub mod equivalent;
pub mod overlap;
pub mod phases;

pub use algorithm7::{Algorithm7Phase, WaitAndSearch};
pub use analytic::{stationary_contact_time, StationaryContact};
pub use bounds::{theorem2_bound, Theorem2Bound};
pub use equivalent::EquivalentSearch;
pub use overlap::{
    completion_time, first_sufficient_overlap_round, lemma11_round_bound, lemma12_round_bound,
    lemma13_round_bound, lemma14_time_expression, overlap_lemma10, overlap_lemma9,
    tau_decomposition, OverlapReport, TauDecomposition,
};
pub use phases::PhaseSchedule;
