//! Theorem 2: rendezvous time bounds with symmetric clocks.
//!
//! Running Algorithm 4 as the common trajectory, rendezvous completes in
//! time
//!
//! ```text
//! T < 6(π+1)·log(d²/(µr))·d²/(µr)          (χ = +1, µ = √(v²−2v cosφ+1))
//! T < 6(π+1)·log(d²/((1−v)r))·d²/((1−v)r)  (χ = −1)
//! ```
//!
//! The bounds follow by applying Theorem 1 to the equivalent search
//! trajectory (Lemmas 6 and 7). They are finite exactly on the feasible
//! region of Theorem 4 restricted to `τ = 1`, and degenerate to infinity
//! on the infeasible boundary (`µ → 0`, or `v → 1` for mirrored robots).

use crate::equivalent::EquivalentSearch;
use rvz_model::{Chirality, RendezvousInstance};
use rvz_search::times::PI_PLUS_1;
use std::fmt;

/// The result of evaluating Theorem 2 on an instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Theorem2Bound {
    /// A finite bound (the instance is feasible at `τ = 1`).
    Finite {
        /// The bound on the rendezvous time, in global time units.
        time: f64,
        /// The effective difficulty `d²/(factor·r)` the bound is built on.
        effective_difficulty: f64,
        /// The symmetry-breaking factor (`µ` for equal chirality, `1−v`
        /// for opposite).
        factor: f64,
    },
    /// The instance is infeasible (Theorem 4): no finite bound exists.
    Infeasible,
}

impl Theorem2Bound {
    /// The bound as an `Option`.
    pub fn time(&self) -> Option<f64> {
        match self {
            Theorem2Bound::Finite { time, .. } => Some(*time),
            Theorem2Bound::Infeasible => None,
        }
    }
}

impl fmt::Display for Theorem2Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Theorem2Bound::Finite { time, factor, .. } => {
                write!(f, "T < {time:.3} (factor {factor:.4})")
            }
            Theorem2Bound::Infeasible => write!(f, "no finite bound (infeasible)"),
        }
    }
}

/// The common core of both branches: `6(π+1)·log₂(x)·x` for the effective
/// difficulty `x`.
fn theorem1_form(effective_difficulty: f64) -> f64 {
    6.0 * PI_PLUS_1 * effective_difficulty.log2() * effective_difficulty
}

/// Evaluates Theorem 2 for `instance` (which must have `τ = 1`).
///
/// Follows the paper's WLOG normalization: the reference robot has the
/// maximum speed, so `v ≤ 1` is required. The bound's logarithm requires
/// an effective difficulty of at least 2; easier instances rendezvous
/// within the first rounds and are reported with the difficulty clamped
/// to 2 (a conservative, still-valid bound).
///
/// # Panics
///
/// Panics when `instance.attributes().time_unit() != 1` or when
/// `v > 1` (normalize the instance so the reference robot is the faster
/// one, as the paper does).
///
/// # Example
///
/// ```
/// use rvz_core::{theorem2_bound, Theorem2Bound};
/// use rvz_model::{RendezvousInstance, RobotAttributes};
/// use rvz_geometry::Vec2;
///
/// let attrs = RobotAttributes::reference().with_speed(0.5);
/// let inst = RendezvousInstance::new(Vec2::new(0.0, 1.0), 0.01, attrs).unwrap();
/// match theorem2_bound(&inst) {
///     Theorem2Bound::Finite { time, .. } => assert!(time > 0.0),
///     Theorem2Bound::Infeasible => unreachable!("v ≠ 1 is feasible"),
/// }
/// ```
pub fn theorem2_bound(instance: &RendezvousInstance) -> Theorem2Bound {
    let attrs = instance.attributes();
    assert!(
        attrs.time_unit() == 1.0,
        "Theorem 2 requires symmetric clocks (τ = 1), got τ = {}",
        attrs.time_unit()
    );
    assert!(
        attrs.speed() <= 1.0,
        "normalize the instance so the reference robot is fastest (v ≤ 1), got v = {}",
        attrs.speed()
    );

    let eq = EquivalentSearch::new(attrs);
    if eq.is_degenerate() {
        return Theorem2Bound::Infeasible;
    }

    let factor = match attrs.chirality() {
        Chirality::Consistent => eq.mu(),
        Chirality::Mirrored => 1.0 - attrs.speed(),
    };

    let d = instance.distance();
    let r = instance.visibility();
    let effective_difficulty = (d * d / (factor * r)).max(2.0);
    Theorem2Bound::Finite {
        time: theorem1_form(effective_difficulty),
        effective_difficulty,
        factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_model::RobotAttributes;
    use std::f64::consts::PI;

    fn inst(attrs: RobotAttributes, d: f64, r: f64) -> RendezvousInstance {
        RendezvousInstance::new(Vec2::new(0.0, d), r, attrs).unwrap()
    }

    #[test]
    fn consistent_chirality_uses_mu() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        let b = theorem2_bound(&inst(attrs, 1.0, 0.01));
        match b {
            Theorem2Bound::Finite {
                factor,
                effective_difficulty,
                time,
            } => {
                assert!((factor - 0.5).abs() < 1e-12); // µ = 1 − v at φ = 0
                assert!((effective_difficulty - 200.0).abs() < 1e-9);
                assert!((time - theorem1_form(200.0)).abs() < 1e-9);
            }
            _ => panic!("expected finite"),
        }
    }

    #[test]
    fn mirrored_chirality_uses_one_minus_v() {
        let attrs = RobotAttributes::new(0.75, 1.0, 2.0, rvz_model::Chirality::Mirrored);
        match theorem2_bound(&inst(attrs, 1.0, 0.01)) {
            Theorem2Bound::Finite { factor, .. } => assert!((factor - 0.25).abs() < 1e-12),
            _ => panic!("expected finite"),
        }
    }

    #[test]
    fn orientation_alone_gives_finite_bound() {
        // v = 1, χ = +1, φ = π: µ = 2 — orientation is the only breaker.
        let attrs = RobotAttributes::reference().with_orientation(PI);
        match theorem2_bound(&inst(attrs, 1.0, 0.01)) {
            Theorem2Bound::Finite { factor, .. } => assert!((factor - 2.0).abs() < 1e-12),
            _ => panic!("expected finite"),
        }
    }

    #[test]
    fn infeasible_cases_have_no_bound() {
        // Identical twins.
        let twins = RobotAttributes::reference();
        assert_eq!(
            theorem2_bound(&inst(twins, 1.0, 0.01)),
            Theorem2Bound::Infeasible
        );
        // Mirror twins, any φ.
        for phi in [0.0, 1.0, PI] {
            let mirror = RobotAttributes::reference()
                .with_chirality(rvz_model::Chirality::Mirrored)
                .with_orientation(phi);
            assert_eq!(
                theorem2_bound(&inst(mirror, 1.0, 0.01)),
                Theorem2Bound::Infeasible
            );
        }
    }

    #[test]
    fn bound_grows_as_symmetry_weakens() {
        // As v → 1 with φ = 0, µ → 0 and the bound explodes.
        let b_half = theorem2_bound(&inst(
            RobotAttributes::reference().with_speed(0.5),
            1.0,
            1e-3,
        ))
        .time()
        .unwrap();
        let b_near = theorem2_bound(&inst(
            RobotAttributes::reference().with_speed(0.99),
            1.0,
            1e-3,
        ))
        .time()
        .unwrap();
        assert!(b_near > 10.0 * b_half);
    }

    #[test]
    fn easy_instances_clamp_difficulty() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        // Huge r makes the effective difficulty < 2; it is clamped.
        match theorem2_bound(&inst(attrs, 1.0, 100.0)) {
            Theorem2Bound::Finite {
                effective_difficulty,
                ..
            } => assert_eq!(effective_difficulty, 2.0),
            _ => panic!("expected finite"),
        }
    }

    #[test]
    #[should_panic(expected = "symmetric clocks")]
    fn rejects_asymmetric_clocks() {
        let attrs = RobotAttributes::reference().with_time_unit(0.5);
        let _ = theorem2_bound(&inst(attrs, 1.0, 0.01));
    }

    #[test]
    #[should_panic(expected = "v ≤ 1")]
    fn rejects_fast_partner() {
        let attrs = RobotAttributes::reference().with_speed(2.0);
        let _ = theorem2_bound(&inst(attrs, 1.0, 0.01));
    }

    #[test]
    fn display_formats() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        let s = theorem2_bound(&inst(attrs, 1.0, 0.01)).to_string();
        assert!(s.starts_with("T <"));
        assert!(Theorem2Bound::Infeasible.to_string().contains("infeasible"));
    }
}
