//! An exact (simulation-free) rendezvous oracle for asymmetric clocks.
//!
//! Section 4's proof mechanism is: the reference robot `R` sees the
//! partner's *start point* during one of its `Search(k)` sweeps while the
//! partner `R'` (clock `τ < 1`) is sitting in an inactive phase. This
//! module computes the first such moment **exactly**, by intersecting
//! the closed-form contact windows of each `Search(k)` block
//! ([`rvz_search::round_contact_windows`]) with the `τ`-scaled inactive
//! intervals of the partner's schedule.
//!
//! Compared to the conservative-advancement simulator this oracle
//! * is exact (no tolerance band) for the stationary-contact mechanism,
//! * costs time proportional to the number of *contact windows*, so it
//!   reaches parameter cells (`k* ≥ 16`) that step simulation cannot,
//! * but deliberately ignores contacts where **both** robots are moving —
//!   it upper-bounds the true rendezvous time, exactly like the paper's
//!   argument does.

use crate::phases::{PhaseSchedule, MAX_PHASE_ROUND};
use rvz_geometry::Vec2;
use rvz_search::{round_contact_windows, times};

/// Result of the analytic stationary-contact search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryContact {
    /// Global time of the first stationary contact.
    pub time: f64,
    /// `R`'s Algorithm 7 round during which it happens.
    pub round: u32,
    /// The `Search(k)` block index within the active phase.
    pub block: u32,
    /// The partner's inactive round providing the stillness.
    pub partner_round: u32,
}

/// Maximum contact windows examined per `Search(k)` block. When a block
/// has more (targets in very fine annuli at large `k`), later windows of
/// that block are skipped and the oracle may return a slightly later —
/// still valid — contact.
const WINDOW_LIMIT: usize = 20_000;

/// First time the reference robot, running Algorithm 7, comes within `r`
/// of the point `offset` while the partner (same algorithm, clock
/// `τ ∈ (0,1)`, Section 4's `v = 1, φ = 0, χ = +1` setting) is inactive
/// at that point.
///
/// Returns `None` when no such contact exists within `max_round` rounds
/// of `R`'s schedule.
///
/// # Panics
///
/// Panics unless `τ ∈ (0,1)`, `r > 0`, `offset` is finite and non-zero,
/// and `max_round ≤ MAX_PHASE_ROUND`.
///
/// # Example
///
/// ```
/// use rvz_core::analytic::stationary_contact_time;
/// use rvz_geometry::Vec2;
///
/// let c = stationary_contact_time(0.6, Vec2::new(0.3, 0.8), 0.25, 12)
///     .expect("clock asymmetry guarantees a contact");
/// assert!(c.time > 0.0);
/// ```
pub fn stationary_contact_time(
    tau: f64,
    offset: Vec2,
    r: f64,
    max_round: u32,
) -> Option<StationaryContact> {
    assert!(
        tau > 0.0 && tau < 1.0,
        "oracle requires τ ∈ (0,1), got {tau}"
    );
    assert!(r > 0.0 && r.is_finite(), "visibility must be positive");
    assert!(
        offset.is_finite() && offset != Vec2::ZERO,
        "offset must be finite and non-zero"
    );
    assert!(
        (1..=MAX_PHASE_ROUND).contains(&max_round),
        "max_round must be in 1..={MAX_PHASE_ROUND}"
    );

    // If the partner is visible from the start, contact is at t = 0
    // (both robots begin inactive; round 1 starts with I(1) = 0 and a
    // wait of length 2S(1) > 0 for every τ > 0).
    if offset.norm() <= r {
        return Some(StationaryContact {
            time: 0.0,
            round: 1,
            block: 0,
            partner_round: 1,
        });
    }

    for n in 1..=max_round {
        let a_n = PhaseSchedule::active_start(n);
        let s_n = PhaseSchedule::search_all_duration(n);
        // Blocks in execution order: Search(1..n) then Search(n..1).
        let blocks = (1..=n)
            .map(|k| (k, a_n + times::rounds_total(k - 1)))
            .chain(
                (1..=n)
                    .rev()
                    .map(|k| (k, a_n + s_n + (s_n - times::rounds_total(k)))),
            );
        for (block_idx, (k, block_start)) in blocks.enumerate() {
            if let Some(contact) = scan_block(tau, offset, r, k, block_start) {
                return Some(StationaryContact {
                    time: contact.0,
                    round: n,
                    block: block_idx as u32,
                    partner_round: contact.1,
                });
            }
        }
    }
    None
}

/// Scans one `Search(k)` block starting at `block_start` for the first
/// contact window intersecting a partner-inactive interval.
fn scan_block(tau: f64, offset: Vec2, r: f64, k: u32, block_start: f64) -> Option<(f64, u32)> {
    let block_end = block_start + times::round_duration(k);

    // Collect partner-inactive intervals overlapping the block.
    let mut inactives: Vec<(f64, f64, u32)> = Vec::new();
    let local = block_start / tau;
    if local >= PhaseSchedule::inactive_start(MAX_PHASE_ROUND + 1) {
        return None; // beyond the partner's supported schedule horizon
    }
    let mut m = PhaseSchedule::round_at(local);
    while m <= MAX_PHASE_ROUND {
        let (s, e) = PhaseSchedule::inactive_interval(m);
        let (s, e) = (s * tau, e * tau);
        if s >= block_end {
            break;
        }
        if e > block_start {
            inactives.push((s.max(block_start), e.min(block_end), m));
        }
        m += 1;
    }
    if inactives.is_empty() {
        return None;
    }

    let windows = round_contact_windows(k, offset, r, WINDOW_LIMIT);
    for w in &windows {
        let ws = block_start + w.start;
        let we = block_start + w.end;
        for &(is, ie, m) in &inactives {
            let lo = ws.max(is);
            let hi = we.min(ie);
            if lo < hi {
                return Some((lo, m));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm7::WaitAndSearch;
    use crate::overlap::lemma13_round_bound;
    use rvz_model::RobotAttributes;
    use rvz_trajectory::Trajectory;

    /// The reported time really is a contact with a stationary partner.
    #[test]
    fn reported_contact_is_genuine() {
        for (tau, offset, r) in [
            (0.6, Vec2::new(0.3, 0.8), 0.25),
            (0.51, Vec2::new(-0.5, 0.6), 0.1),
            (0.9, Vec2::new(0.2, 0.85), 0.25),
        ] {
            let c = stationary_contact_time(tau, offset, r, 14).expect("contact");
            // R's position at that time is within r of the offset...
            let reference = WaitAndSearch;
            let dist = reference.position(c.time).distance(offset);
            assert!(dist <= r + 1e-9, "τ={tau}: distance {dist} > {r}");
            // ...and the partner is exactly at its start point.
            let attrs = RobotAttributes::reference().with_time_unit(tau);
            let partner = attrs.frame_warp(WaitAndSearch, offset);
            assert!(
                partner.position(c.time).distance(offset) < 1e-12,
                "τ={tau}: partner moved"
            );
        }
    }

    /// Never earlier than the true first contact from the simulator, and
    /// never later than Lemma 13's completion time.
    #[test]
    fn bracketed_by_simulation_and_lemma13() {
        use rvz_model::RendezvousInstance;
        use rvz_sim::{simulate_rendezvous, ContactOptions};
        for tau in [0.6, 0.8] {
            let offset = Vec2::new(0.3, 0.8);
            let r = 0.25;
            let c = stationary_contact_time(tau, offset, r, 14).expect("contact");
            let attrs = RobotAttributes::reference().with_time_unit(tau);
            let inst = RendezvousInstance::new(offset, r, attrs).unwrap();
            let sim = simulate_rendezvous(
                WaitAndSearch,
                &inst,
                &ContactOptions::with_horizon(c.time + 1.0).tolerance(r * 1e-9),
            )
            .contact_time()
            .expect("simulation finds a contact no later than the oracle");
            assert!(
                sim <= c.time + 1e-6,
                "τ={tau}: sim {sim} later than oracle {}",
                c.time
            );

            let n = rvz_search::coverage::guaranteed_discovery_round(offset.norm(), r).unwrap();
            let k_star = lemma13_round_bound(tau, n);
            assert!(
                c.round <= k_star,
                "τ={tau}: oracle round {} beyond k* {k_star}",
                c.round
            );
        }
    }

    /// Works in parameter cells where step simulation is prohibitive.
    #[test]
    fn reaches_deep_tau_cells() {
        // τ = 0.25 ⇒ a = 1 ⇒ k* = 16; the simulator would need ~1e8 time.
        let c = stationary_contact_time(0.25, Vec2::new(0.3, 0.8), 0.25, 20)
            .expect("deep cell still solvable");
        let k_star = lemma13_round_bound(0.25, 1);
        assert!(c.round <= k_star, "round {} vs k* {k_star}", c.round);
    }

    #[test]
    fn visible_at_start_is_time_zero() {
        let c = stationary_contact_time(0.5, Vec2::new(0.1, 0.0), 0.25, 4).unwrap();
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn none_when_round_budget_too_small() {
        // τ very close to 1 needs many rounds for enough overlap.
        let c = stationary_contact_time(0.97, Vec2::new(0.3, 0.8), 0.25, 2);
        assert!(c.is_none());
    }

    #[test]
    #[should_panic(expected = "requires τ ∈ (0,1)")]
    fn tau_one_rejected() {
        let _ = stationary_contact_time(1.0, Vec2::UNIT_Y, 0.1, 4);
    }
}
